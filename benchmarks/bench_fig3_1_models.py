"""E1 — Figure 3-1: latency of the SIMD vs the skewed computation model.

The paper's example: each stage takes 4 steps and the fourth step needs
the previous cell's fourth-step result.  "The latency through each cell
is 4 cycles in the SIMD model, but only one cycle in the skewed model."
The bench regenerates that comparison and sweeps the stage size to show
the paper's observation that the gap grows with per-stage computation.
"""

from repro.models import StageSpec, compare_models, figure_3_1_comparison


def test_figure_3_1_comparison(benchmark, report):
    comparison = benchmark(figure_3_1_comparison, 3, 3)
    assert comparison.simd_latency_per_cell == 4
    assert comparison.skewed_latency_per_cell == 1
    lines = [
        "Stage of 4 steps; step 4 consumes the neighbour's step-4 result",
        f"{'model':<10} {'latency/cell':>13} {'3-cell, 3-iteration total':>26}",
        f"{'SIMD':<10} {comparison.simd_latency_per_cell:>13} "
        f"{comparison.simd_total:>26}",
        f"{'skewed':<10} {comparison.skewed_latency_per_cell:>13} "
        f"{comparison.skewed_total:>26}",
        f"paper: SIMD latency 4 cycles/cell, skewed 1 cycle/cell "
        f"-> reproduced {comparison.latency_ratio:.0f}x",
    ]
    report.section("Figure 3-1: SIMD vs skewed latency", "\n".join(lines))


def test_latency_gap_grows_with_stage_size(benchmark, report):
    def sweep():
        rows = []
        for n_steps in (2, 4, 8, 16, 32, 64):
            spec = StageSpec(n_steps, n_steps, n_steps)
            comparison = compare_models(spec, n_cells=10, n_iterations=1)
            rows.append(
                (
                    n_steps,
                    comparison.simd_latency_per_cell,
                    comparison.skewed_latency_per_cell,
                    comparison.latency_ratio,
                )
            )
        return rows

    rows = benchmark(sweep)
    lines = [f"{'steps/stage':>11} {'SIMD':>6} {'skewed':>7} {'ratio':>7}"]
    for n_steps, simd, skewed, ratio in rows:
        lines.append(f"{n_steps:>11} {simd:>6} {skewed:>7} {ratio:>6.0f}x")
    assert rows[-1][3] > rows[0][3]
    report.section(
        "Figure 3-1 sweep: latency gap vs stage size", "\n".join(lines)
    )
