"""E2 — Figures 4-1/4-2: the polynomial program and its logical
send/receive interleaving on the first two cells.

Compiles the Figure 4-1 program, runs it on the simulated array, checks
the numerics against Horner's rule, and regenerates the Figure 4-2
two-cell trace (coefficient distribution: receive c[0]; then for each
further coefficient receive/forward; then the conservation pad)."""

import numpy as np

from repro.compiler import compile_w2
from repro.machine import simulate
from repro.machine.trace import format_two_cell_trace
from repro.programs import polynomial


def test_polynomial_trace(benchmark, report):
    program = compile_w2(polynomial(16, 4))
    rng = np.random.default_rng(42)
    inputs = {"z": rng.uniform(-1, 1, 16), "c": rng.standard_normal(4)}

    result = benchmark(simulate, program, inputs, 40)
    assert np.allclose(
        result.outputs["results"], np.polyval(inputs["c"], inputs["z"])
    )

    cell0 = [e for e in result.trace if e.cell == 0]
    # Figure 4-2's opening on cell 0: receive coeff c[0]; receive temp
    # c[1]; send temp c[1]; ...
    assert cell0[0].kind == "receive"
    assert cell0[0].value == inputs["c"][0]
    assert cell0[1].kind == "receive"
    assert cell0[2].kind == "send"
    assert cell0[1].value == cell0[2].value == inputs["c"][1]

    report.section(
        "Figure 4-2: polynomial two-cell logical trace",
        format_two_cell_trace(result.trace, max_rows=16),
    )
