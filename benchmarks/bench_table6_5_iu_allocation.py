"""E6 — Table 6-5: operand allocation options for IU address generation.

The paper's example: generate addresses for ``a[i, j+1]`` and
``b[i+j, j]`` inside an ``i``/``j`` nest (N x N arrays).  Different
register allocations trade registers against per-address arithmetic and
per-iteration updates.  The bench regenerates the trade-off rows from
the allocation planner."""

from repro.iucodegen import Strategy, enumerate_allocation_options, plan_allocation
from repro.iucodegen.allocation import LoopInfo
from repro.lang.semantic import AffineIndex

N = 32


def _example():
    a = AffineIndex(1, (("i", N), ("j", 1)))            # &a[i, j+1]
    b = AffineIndex(N * N, (("i", N), ("j", N + 1)))    # &b[i+j, j]
    loops = [LoopInfo("i", 0, 1, N), LoopInfo("j", 0, 1, N)]
    return [a, b], loops


def test_table_6_5_options(benchmark, report):
    exprs, loops = _example()
    plans = benchmark(enumerate_allocation_options, exprs, loops)

    lines = [
        "addresses: a[i, j+1] and b[i+j, j] in an i/j loop nest",
        f"{'allocated to registers':<28} {'regs':>5} "
        f"{'arith ops':>10} {'updates':>8}",
    ]
    for plan in plans:
        lines.append(
            f"{plan.strategy.value:<28} {plan.n_registers:>5} "
            f"{plan.total_emission_adds:>10} "
            f"{plan.updates_per_innermost_iteration:>8}"
        )
    lines.append(
        "paper Table 6-5: 3 regs/6 ops/2 upd, 4 regs/2 ops/2 upd, "
        "5 regs/1 op/3 upd — same register-vs-arithmetic trade-off shape"
    )

    # Full-address needs no arithmetic per emission; decomposed plans
    # trade arithmetic for register sharing (the sharing pays off as the
    # expression count grows — see the escalation bench below).
    by_strategy = {plan.strategy: plan for plan in plans}
    assert by_strategy[Strategy.FULL_ADDRESS].total_emission_adds == 0
    assert (
        by_strategy[Strategy.PER_PRODUCT].total_emission_adds
        > by_strategy[Strategy.SHARED_SIGNATURE].total_emission_adds
    )
    report.section("Table 6-5: IU operand allocation options", "\n".join(lines))


def test_strategy_escalation_under_pressure(benchmark, report):
    """With many address expressions the cheap-arithmetic plan exceeds
    16 registers and the planner escalates (the compiler then falls back
    to table memory if nothing fits)."""
    loops = [LoopInfo("i", 0, 1, 16), LoopInfo("j", 0, 1, 16)]
    exprs = [
        AffineIndex(base, (("i", 16), ("j", 1)))
        for base in range(0, 512, 16)
    ]  # 32 expressions sharing one signature

    def escalate():
        rows = []
        for strategy in Strategy:
            plan = plan_allocation(exprs, loops, strategy)
            rows.append((strategy.value, plan.n_registers, plan.total_emission_adds))
        return rows

    rows = benchmark(escalate)
    lines = [f"{'strategy':<20} {'regs':>5} {'arith':>6}"]
    for name, regs, arith in rows:
        lines.append(f"{name:<20} {regs:>5} {arith:>6}")
    full = dict((r[0], r[1]) for r in rows)
    assert full["full-address"] == 32       # would not fit the IU
    assert full["shared-signature"] <= 16   # fits after sharing
    report.section(
        "Table 6-5 follow-on: strategy escalation at 32 expressions",
        "\n".join(lines),
    )
