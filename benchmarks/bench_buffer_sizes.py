"""E9 — Section 6.2.2: minimum queue sizes.

For every evaluation program: the per-channel minimum buffer size at the
compiled skew, checked against the 128-word hardware queues, plus the
overflow-detection path (the paper: "currently only detected and
reported")."""

import pytest

from repro.compiler import compile_w2
from repro.errors import QueueOverflowError
from repro.config import WarpConfig
from repro.lang import Channel
from repro.programs import TABLE_7_1_PROGRAMS, matmul
from repro.timing import minimum_buffer_sizes, plan_variable_skew


@pytest.fixture(scope="module")
def compiled():
    programs = {
        name: compile_w2(factory())
        for name, factory in TABLE_7_1_PROGRAMS.items()
        if name != "Mandelbrot"  # single cell: no inter-cell queues
    }
    programs["MatMul"] = compile_w2(matmul(32, 8))
    return programs


def test_minimum_buffer_sizes(benchmark, compiled, report):
    sample = compiled["Polynomial"]
    benchmark(
        minimum_buffer_sizes, sample.cell_code, sample.skew.skew
    )

    lines = [
        f"{'program':<12} {'skew':>5} {'X words':>8} {'Y words':>8} "
        f"{'fits 128?':>9}"
    ]
    for name, program in compiled.items():
        x = next(b for b in program.buffers if b.channel.value == "X")
        y = next(b for b in program.buffers if b.channel.value == "Y")
        fits = x.required <= 128 and y.required <= 128
        lines.append(
            f"{name:<12} {program.skew.skew:>5} {x.required:>8} "
            f"{y.required:>8} {str(fits):>9}"
        )
        assert fits
    report.section("Section 6.2.2: minimum queue sizes", "\n".join(lines))


def test_variable_skew_buffer_savings(benchmark, compiled, report):
    """Section 6.2.1's remark: inserting delays before input operations
    'may lower the demand on the size of the buffers ... the latency of
    the computation remains the same'."""
    sample = compiled["ColorSeg"]
    benchmark(
        plan_variable_skew, sample.cell_code, Channel.X, sample.skew.skew
    )

    lines = [
        f"{'program':<12} {'const-skew buf':>14} {'var-skew buf':>13} "
        f"{'final delay':>12} {'skew':>5}"
    ]
    for name, program in compiled.items():
        plan = plan_variable_skew(
            program.cell_code, Channel.X, program.skew.skew
        )
        assert plan.buffer_required <= plan.buffer_constant
        assert plan.final_delay <= program.skew.skew
        lines.append(
            f"{name:<12} {plan.buffer_constant:>14} "
            f"{plan.buffer_required:>13} {plan.final_delay:>12} "
            f"{program.skew.skew:>5}"
        )
    lines.append(
        "variable skew trims buffers without changing the final delay "
        "bound (= the constant minimum skew), as the paper states"
    )
    report.section(
        "Section 6.2.1: variable-skew buffer savings", "\n".join(lines)
    )


def test_overflow_detection_path(benchmark, report):
    """A module whose skew forces deep buffering is detected and
    reported with the required size."""

    def detect():
        try:
            compile_w2(
                TABLE_7_1_PROGRAMS["Polynomial"](),
                config=WarpConfig(queue_depth=2),
            )
        except QueueOverflowError as error:
            return error
        return None

    error = benchmark(detect)
    assert error is not None
    report.section(
        "Section 6.2.2: overflow detection",
        f"queue_depth=2 -> reported: {error}",
    )
