"""E7 — Table 7-1: compilation metrics for the five evaluation programs.

Compiles every program at the paper's problem sizes and reports W2
lines, cell microcode length, IU microcode length and compile time next
to the paper's numbers.  Absolute values differ (the paper's compiler
was 25 kLoC of Common Lisp emitting real Warp microcode on a Perq); the
claim reproduced is the *shape*: ColorSeg is the largest program, the
streaming kernels are compact, and compilation is fully automatic.
"""

import pytest

from repro.compiler import compile_w2, format_metrics_table
from repro.programs import TABLE_7_1_PROGRAMS, conv1d

#: Paper numbers: (W2 lines, cell ucode, IU ucode, compile seconds).
PAPER = {
    "1d-Conv": (59, 69, 72, 298),
    "Binop": (61, 118, 130, 301),
    "ColorSeg": (73, 268, 236, 571),
    "Mandelbrot": (35, 62, 12, 124),
    "Polynomial": (79, 79, 84, 338),
}


@pytest.fixture(scope="module")
def all_metrics():
    return {
        name: compile_w2(factory()).metrics
        for name, factory in TABLE_7_1_PROGRAMS.items()
    }


def test_table_7_1(benchmark, all_metrics, report):
    # Benchmark one representative compilation end to end.
    benchmark(compile_w2, conv1d())

    lines = [
        f"{'Name':<12} {'W2 Lines':>9} {'Cell ucode':>11} {'IU ucode':>9} "
        f"{'Compile':>9}   (ours / paper)"
    ]
    for name, metrics in all_metrics.items():
        p = PAPER[name]
        lines.append(
            f"{name:<12} {metrics.w2_lines:>4}/{p[0]:<4} "
            f"{metrics.cell_ucode:>5}/{p[1]:<5} "
            f"{metrics.iu_ucode:>4}/{p[2]:<4} "
            f"{metrics.compile_seconds:>6.2f}s/{p[3]}s"
        )
    report.section("Table 7-1: compilation metrics", "\n".join(lines))

    # Shape checks against the paper's table.
    cell = {name: m.cell_ucode for name, m in all_metrics.items()}
    assert max(cell, key=cell.get) == "ColorSeg"  # largest in both
    for metrics in all_metrics.values():
        assert metrics.compile_seconds < 60  # minutes in 1986, seconds now


def test_compile_scaling_with_cells(benchmark, report):
    """Compile time is dominated by per-statement work, not the array
    size: metrics stay flat as data sizes grow (the compiler never
    unrolls the data loops)."""

    def compile_sizes():
        return [
            (n, compile_w2(conv1d(n, 9)).metrics.cell_ucode) for n in (64, 512, 4096)
        ]

    rows = benchmark(compile_sizes)
    sizes = {ucode for _, ucode in rows}
    assert len(sizes) == 1  # microcode length independent of data size
    lines = [f"n={n}: cell ucode {u}" for n, u in rows]
    report.section(
        "Table 7-1 follow-on: code size vs problem size", "\n".join(lines)
    )
