"""E4 — Figure 6-2 / Table 6-1 / Figure 6-3: the straight-line
minimum-skew example.

Regenerates the I/O timing table (tau_O, tau_I and their difference),
the minimum skew of 3 cycles, and the two-cell execution diagram of
Figure 6-3."""

from repro.lang import Channel
from repro.timing import (
    input_stream,
    minimum_skew_bound,
    minimum_skew_exact,
    output_stream,
    stream_event_times,
)
from repro.timing.synthetic import figure_6_2_program


def test_table_6_1(benchmark, report):
    code = figure_6_2_program()
    result = benchmark(minimum_skew_exact, code, Channel.X)
    assert result.skew == 3
    assert minimum_skew_bound(code, Channel.X).skew == 3

    outs = stream_event_times(code, output_stream(Channel.X))
    ins = stream_event_times(code, input_stream(Channel.X))
    lines = [f"{'Number':>6} {'tau_O':>6} {'tau_I':>6} {'diff':>6}"]
    for n, (o, i) in enumerate(zip(outs, ins)):
        lines.append(f"{n:>6} {o:>6} {i:>6} {o - i:>6}")
    lines.append(f"{'max':>6} {'':>6} {'':>6} {max(outs - ins):>6}")
    lines.append("paper Table 6-1: diffs [-1, 3], minimum skew 3 -> reproduced")
    report.section("Table 6-1: straight-line timing and skew", "\n".join(lines))


def test_figure_6_3_two_cells(benchmark, report):
    code = figure_6_2_program()
    skew = minimum_skew_exact(code, Channel.X).skew

    def build_diagram():
        outs = stream_event_times(code, output_stream(Channel.X))
        ins = stream_event_times(code, input_stream(Channel.X))
        events: dict[int, list[str]] = {}
        for n, t in enumerate(outs):
            events.setdefault(int(t), []).append(("cell1", f"output{n}"))
        for n, t in enumerate(ins):
            events.setdefault(int(t), []).append(("cell1", f"input{n}"))
        for n, t in enumerate(outs + skew):
            events.setdefault(int(t), []).append(("cell2", f"output{n}"))
        for n, t in enumerate(ins + skew):
            events.setdefault(int(t), []).append(("cell2", f"input{n}"))
        return events

    events = build_diagram()
    benchmark(build_diagram)
    lines = [f"{'Time':>4}  {'Cell 1':<10} {'Cell 2':<10}   (skew = {skew})"]
    for t in sorted(events):
        cell1 = " ".join(n for c, n in events[t] if c == "cell1")
        cell2 = " ".join(n for c, n in events[t] if c == "cell2")
        lines.append(f"{t:>4}  {cell1:<10} {cell2:<10}")
    report.section("Figure 6-3: two cells at minimum skew", "\n".join(lines))
