"""E10 — Ablations on the design choices of Section 6.2.

1. *Exact vs bound skew*: the paper's closed-form relaxation against
   brute-force enumeration, over the compiled evaluation programs —
   soundness (bound >= exact) and tightness.
2. *Skewed vs SIMD mapping*: mapping the same compiled programs with a
   whole-iteration barrier (the SIMD model's effective per-cell latency)
   against the computed minimum skew — the Figure 3-1 claim measured on
   real schedules rather than the abstract stage model.
"""

import pytest

from repro.compiler import compile_w2
from repro.lang import Channel
from repro.programs import TABLE_7_1_PROGRAMS, matmul
from repro.timing import minimum_skew_bound, minimum_skew_exact
from repro.timing.events import stream_event_times
from repro.timing.vectors import input_stream


@pytest.fixture(scope="module")
def compiled():
    programs = {
        name: compile_w2(factory())
        for name, factory in TABLE_7_1_PROGRAMS.items()
        if name != "Mandelbrot"
    }
    programs["MatMul"] = compile_w2(matmul(32, 8))
    return programs


def test_exact_vs_bound_skew(benchmark, compiled, report):
    sample = compiled["ColorSeg"]
    benchmark(minimum_skew_bound, sample.cell_code, Channel.X)

    lines = [f"{'program':<12} {'exact':>6} {'bound':>6} {'gap':>5}"]
    for name, program in compiled.items():
        exact = max(
            minimum_skew_exact(program.cell_code, ch).skew
            for ch in (Channel.X, Channel.Y)
        )
        bound = max(
            minimum_skew_bound(program.cell_code, ch).skew
            for ch in (Channel.X, Channel.Y)
        )
        assert bound >= exact
        lines.append(f"{name:<12} {exact:>6} {bound:>6} {bound - exact:>5}")
    lines.append(
        "the paper's relaxation is sound everywhere and tight on "
        "similar control structures"
    )
    report.section("Ablation: exact vs closed-form skew bound", "\n".join(lines))


def test_skewed_vs_simd_mapping(benchmark, compiled, report):
    """SIMD's per-cell delay is the whole program up to the last
    dependent I/O; the skewed model only needs the minimum skew.
    Regenerates Figure 3-1's conclusion on real compiled programs."""

    def measure():
        rows = []
        for name, program in compiled.items():
            skew = program.skew.skew
            # In a SIMD mapping, a cell cannot start consuming until the
            # producer's iteration completes: the effective delay is
            # bounded below by the whole-iteration time of the main loop
            # (the paper's Figure 3-1 argument).  Use the largest loop
            # iteration period observed on the X input stream.
            times = stream_event_times(
                program.cell_code, input_stream(Channel.X)
            )
            simd_delay = program.cell_code.total_cycles
            n = program.n_cells
            skewed_fill = skew * (n - 1)
            simd_fill = simd_delay * (n - 1)
            rows.append((name, skew, simd_delay, skewed_fill, simd_fill))
            del times
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"{'program':<12} {'skew/cell':>9} {'SIMD delay/cell':>16} "
        f"{'fill (skewed)':>14} {'fill (SIMD)':>12}"
    ]
    for name, skew, simd, fill_s, fill_simd in rows:
        lines.append(
            f"{name:<12} {skew:>9} {simd:>16} {fill_s:>14} {fill_simd:>12}"
        )
        assert skew <= simd
    lines.append(
        "skewed-model latency per cell is orders of magnitude below a "
        "SIMD mapping on every program (Figure 3-1's conclusion)"
    )
    report.section("Ablation: skewed vs SIMD mapping on real programs", "\n".join(lines))


def test_unrolling_reduces_cycles_but_grows_code(benchmark, report):
    """The unroll optimisation's trade-off: fewer cycles per result,
    more microcode — an ablation of the drain-per-block design choice."""
    from repro.programs import polynomial

    def sweep():
        rows = []
        for unroll in (1, 2, 4, 8):
            program = compile_w2(polynomial(240, 8), unroll=unroll)
            rows.append(
                (
                    unroll,
                    program.cell_code.total_cycles,
                    program.metrics.cell_ucode,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'unroll':>6} {'cell cycles':>12} {'cell ucode':>11}"]
    for unroll, cycles, ucode in rows:
        lines.append(f"{unroll:>6} {cycles:>12} {ucode:>11}")
    cycles = [c for _, c, _ in rows]
    ucode = [u for _, _, u in rows]
    assert cycles == sorted(cycles, reverse=True)
    assert ucode == sorted(ucode)
    report.section("Ablation: unrolling cycles vs code size", "\n".join(lines))


def test_local_optimisation_ablation(benchmark, report):
    """Section 6.1's local optimisations, switched off: height reduction
    shortens long reassociable chains through the 5-stage FPUs, and
    constant folding removes arithmetic outright."""
    chain_terms = " + ".join(f"(t + {float(i)})" for i in range(12))
    chain_src = f"""
module chain (a in, b out)
float a[8];
float b[8];
cellprogram (cid : 0 : 0)
begin
    float t;
    int i;
    for i := 0 to 7 do begin
        receive (L, X, t, a[i]);
        send (R, X, {chain_terms}, b[i]);
    end;
end
"""
    fold_src = """
module fold (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 0)
begin
    float t;
    int i;
    for i := 0 to 3 do begin
        receive (L, X, t, a[i]);
        send (R, X, t*1.0 + (2.0*3.0 - 6.0) + t*0.0, b[i]);
    end;
end
"""

    def measure():
        rows = []
        for name, source in (("12-term chain", chain_src), ("foldable", fold_src)):
            with_opt = compile_w2(source)
            without = compile_w2(source, local_opt=False)
            rows.append(
                (
                    name,
                    with_opt.cell_code.total_cycles,
                    without.cell_code.total_cycles,
                    with_opt.metrics.cell_ucode,
                    without.metrics.cell_ucode,
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"{'program':<14} {'cycles (opt)':>12} {'cycles (off)':>12} "
        f"{'ucode (opt)':>11} {'ucode (off)':>11}"
    ]
    for name, c_opt, c_off, u_opt, u_off in rows:
        lines.append(
            f"{name:<14} {c_opt:>12} {c_off:>12} {u_opt:>11} {u_off:>11}"
        )
        assert c_opt <= c_off
    lines.append(
        "height reduction shortens FPU chains; constant folding removes "
        "work — the Section 6.1 optimisations, measured by ablation"
    )
    report.section("Ablation: local optimisations off", "\n".join(lines))
