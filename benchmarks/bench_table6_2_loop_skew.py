"""E5 — Figure 6-4 / Tables 6-2, 6-3, 6-4: the loop-program skew example.

Regenerates the per-event timing table (Table 6-2, minimum skew 18), the
five-vector characterisation of every statement (Table 6-3), and the
timing functions with their domains (Table 6-4), all from the real
implementation."""

from fractions import Fraction

from repro.lang import Channel
from repro.timing import (
    TimingFunction,
    characterize_stream,
    input_stream,
    minimum_skew_bound,
    minimum_skew_exact,
    output_stream,
    stream_event_times,
)
from repro.timing.synthetic import figure_6_4_program


def test_table_6_2(benchmark, report):
    code = figure_6_4_program()
    exact = benchmark(minimum_skew_exact, code, Channel.X)
    assert exact.skew == 18

    outs = stream_event_times(code, output_stream(Channel.X))
    ins = stream_event_times(code, input_stream(Channel.X))
    lines = [f"{'number':>6} {'tau_O':>6} {'tau_I':>6} {'diff':>6}"]
    for n, (o, i) in enumerate(zip(outs, ins)):
        lines.append(f"{n:>6} {o:>6} {i:>6} {o - i:>6}")
    lines.append(f"{'max':>6} {'':>6} {'':>6} {max(outs - ins):>6}")
    lines.append("paper Table 6-2: max 18 -> reproduced")
    report.section("Table 6-2: loop-program timing and skew", "\n".join(lines))


def test_table_6_3_vectors(benchmark, report):
    code = figure_6_4_program()

    def characterise():
        return (
            characterize_stream(code, input_stream(Channel.X)),
            characterize_stream(code, output_stream(Channel.X)),
        )

    ins, outs = benchmark(characterise)
    named = [(f"I({i})", c) for i, c in enumerate(ins)] + [
        (f"O({i})", c) for i, c in enumerate(outs)
    ]
    lines = [f"{'stmt':<6} {'R':<8} {'N':<8} {'S':<8} {'L':<8} {'T':<8}"]
    for name, char in named:
        lines.append(
            f"{name:<6} {str(list(char.R)):<8} {str(list(char.N)):<8} "
            f"{str(list(char.S)):<8} {str(list(char.L)):<8} "
            f"{str(list(char.T)):<8}"
        )
    assert list(ins[0].R) == [5, 1] and list(ins[0].T) == [1, 0]
    assert list(outs[2].S) == [4, 0] and list(outs[2].L) == [5, 1]
    report.section("Table 6-3: five-vector characterisation", "\n".join(lines))


def test_table_6_4_timing_functions(benchmark, report):
    code = figure_6_4_program()
    ins = [
        TimingFunction(c)
        for c in characterize_stream(code, input_stream(Channel.X))
    ]
    outs = [
        TimingFunction(c)
        for c in characterize_stream(code, output_stream(Channel.X))
    ]

    bound = benchmark(minimum_skew_bound, code, Channel.X)
    assert 18 <= bound.skew <= 19

    lines = [f"{'tau':<6} {'domain':<22} {'values':<30}"]
    for name, tau in [(f"I({i})", t) for i, t in enumerate(ins)] + [
        (f"O({i})", t) for i, t in enumerate(outs)
    ]:
        domain = tau.domain()
        values = [tau(n) for n in domain]
        lines.append(f"{name:<6} {str(domain):<22} {str(values):<30}")
    lines.append(
        f"closed-form bound method gives skew {bound.skew} "
        "(paper's relaxation: 17 + 2/3 for the O(4)/I(0) pair)"
    )
    report.section("Table 6-4: timing functions and domains", "\n".join(lines))
