"""Benchmark-suite support: a reporter that prints each experiment's
reproduced table/figure in the terminal summary, so
``pytest benchmarks/ --benchmark-only`` shows the paper artefacts next
to the timing numbers."""

from __future__ import annotations

import pytest

_REPORTS: list[tuple[str, str]] = []


class Reporter:
    """Collects experiment output for the terminal summary."""

    def section(self, title: str, body: str) -> None:
        _REPORTS.append((title, body))


@pytest.fixture(scope="session")
def report() -> Reporter:
    return Reporter()


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced paper artefacts")
    for title, body in _REPORTS:
        terminalreporter.write_sep("-", title)
        terminalreporter.write_line(body)
