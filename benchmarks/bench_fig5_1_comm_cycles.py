"""E3 — Figure 5-1: programs with and without communication cycles.

Program A exchanges *unrelated* data in both directions (no cycles —
mappable in principle, though outside the compiler's unidirectional
subset); program B forwards what it receives in both directions (a right
cycle and a left cycle — unmappable onto the skewed model)."""

import pytest

from repro.analysis import analyze_communication
from repro.compiler import compile_w2
from repro.errors import MappingError
from repro.ir import build_ir
from repro.lang import analyze, parse_module
from repro.programs import bidirectional_cycle, bidirectional_exchange, passthrough


def _classify(source):
    ir = build_ir(analyze(parse_module(source)))
    return analyze_communication(ir.tree)


def test_figure_5_1_classification(benchmark, report):
    def classify_all():
        return {
            "A (unrelated)": _classify(bidirectional_exchange()),
            "B (forwarding)": _classify(bidirectional_cycle()),
            "pipeline": _classify(passthrough()),
        }

    reports = benchmark(classify_all)
    a = reports["A (unrelated)"]
    b = reports["B (forwarding)"]
    pipe = reports["pipeline"]
    assert not a.has_right_cycles and not a.has_left_cycles and a.is_mappable
    assert b.has_right_cycles and b.has_left_cycles and not b.is_mappable
    assert pipe.has_right_cycles and not pipe.has_left_cycles

    lines = [f"{'program':<16} {'right cyc':>9} {'left cyc':>9} {'mappable':>9}"]
    for name, rep in reports.items():
        lines.append(
            f"{name:<16} {str(rep.has_right_cycles):>9} "
            f"{str(rep.has_left_cycles):>9} {str(rep.is_mappable):>9}"
        )
    report.section("Figure 5-1: communication-cycle classification", "\n".join(lines))


def test_compiler_rejection(benchmark):
    def compile_b():
        with pytest.raises(MappingError):
            compile_w2(bidirectional_cycle())
        return True

    assert benchmark(compile_b)
