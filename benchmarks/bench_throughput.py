"""E8 — Section 7's throughput claims.

"All the arithmetic units are fully utilized in the innermost loop,
giving a throughput of one result per cycle" (1d-Conv); "The throughput
is also one result per cycle" (Polynomial); the 10-cell Warp peaks at
100 MFLOPS (2 FP ops x 10 cells per cycle).

Our baseline scheduler drains each loop iteration (no software
pipelining — the paper defers those techniques to its references [6,7]),
so absolute throughput is below 1 result/cycle; the reproduction targets
are (a) the *ordering* — conv and polynomial sustain far higher
arithmetic utilisation than the control-heavy colorseg — and (b) the
trend toward the paper's number as the unroll optimisation amortises the
drain."""

import time

import numpy as np
import pytest

from repro.compiler import compile_w2
from repro.exec import BatchRunner, CompileCache
from repro.machine import simulate
from repro.programs import colorseg, conv1d, polynomial


def _run(source, inputs, unroll=1):
    program = compile_w2(source, unroll=unroll)
    return program, simulate(program, inputs)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(123)


def test_throughput_toward_one_result_per_cycle(benchmark, rng, report):
    n = 240
    inputs = {"z": rng.uniform(-1, 1, n), "c": rng.standard_normal(8)}

    rows = []
    for unroll in (1, 2, 4, 8):
        program, result = _run(polynomial(n, 8), inputs, unroll)
        assert np.allclose(
            result.outputs["results"], np.polyval(inputs["c"], inputs["z"])
        )
        rows.append((unroll, result.total_cycles / n))

    program = compile_w2(polynomial(n, 8), unroll=8)
    benchmark(simulate, program, inputs)

    lines = [f"{'unroll':>6} {'cycles/result':>14}   (paper: 1.0)"]
    for unroll, cycles in rows:
        lines.append(f"{unroll:>6} {cycles:>14.2f}")
    # Unrolling must strictly improve throughput toward the paper's claim.
    per_result = [c for _, c in rows]
    assert per_result == sorted(per_result, reverse=True)
    assert per_result[-1] < per_result[0] / 3
    report.section(
        "Section 7: polynomial throughput vs unrolling", "\n".join(lines)
    )


def test_cycles_per_result_ordering(benchmark, rng, report):
    """The streaming kernels retire results far faster than the
    per-pixel classification cascade; FP-issue utilisation is reported
    alongside (ColorSeg does much more arithmetic per item)."""
    n = 120

    def measure():
        results = {}
        _, conv = _run(
            conv1d(n, 9),
            {"x": rng.standard_normal(n), "w": rng.standard_normal(9)},
            unroll=4,
        )
        results["1d-Conv"] = (
            conv.total_cycles / n,
            np.mean([s.flop_utilization for s in conv.cell_stats]),
        )
        _, poly = _run(
            polynomial(n, 10),
            {"z": rng.uniform(-1, 1, n), "c": rng.standard_normal(10)},
            unroll=4,
        )
        results["Polynomial"] = (
            poly.total_cycles / n,
            np.mean([s.flop_utilization for s in poly.cell_stats]),
        )
        w, h = 10, 6
        _, seg = _run(
            colorseg(w, h, 10),
            {
                "u": rng.uniform(0, 1, w * h),
                "v": rng.uniform(0, 1, w * h),
                "refu": rng.uniform(0, 1, 10),
                "refv": rng.uniform(0, 1, 10),
                "radius": rng.uniform(0.01, 0.2, 10),
                "class": np.arange(1.0, 11.0),
            },
            unroll=4,
        )
        results["ColorSeg"] = (
            seg.total_cycles / (w * h),
            np.mean([s.flop_utilization for s in seg.cell_stats]),
        )
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"{'program':<12} {'cycles/result':>14} {'FP utilisation':>15}"]
    for name, (cycles, util) in results.items():
        lines.append(f"{name:<12} {cycles:>14.2f} {util:>14.1%}")
    lines.append(
        "paper: conv/polynomial sustain ~1 result/cycle; our drain-based "
        "schedule keeps their ordering ahead of ColorSeg"
    )
    assert results["1d-Conv"][0] < results["ColorSeg"][0]
    assert results["Polynomial"][0] < results["ColorSeg"][0]
    report.section("Section 7: throughput ordering", "\n".join(lines))


def test_array_flops_scale_with_cells(benchmark, rng, report):
    """Aggregate arithmetic per cycle grows linearly with the array
    (the machine's 10-cell = 10x single-cell MFLOPS claim)."""
    n = 200

    def measure():
        rows = []
        for k in (2, 5, 10):
            inputs = {"z": rng.uniform(-1, 1, n), "c": rng.standard_normal(k)}
            _, result = _run(polynomial(n, k), inputs, unroll=4)
            flops = sum(s.alu_ops + s.mpy_ops for s in result.cell_stats)
            rows.append((k, flops / result.total_cycles))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"{'cells':>5} {'FP ops/cycle':>13}"]
    for k, rate in rows:
        lines.append(f"{k:>5} {rate:>13.2f}")
    rates = [rate for _, rate in rows]
    assert rates[-1] > 3 * rates[0] / (10 / 2) * 2  # clearly growing
    assert rates == sorted(rates)
    report.section(
        "Section 7: aggregate FP ops/cycle vs array size", "\n".join(lines)
    )


def test_batched_execution_speedup(benchmark, rng, report):
    """E-BATCH: compile-once/run-many vs compile-per-item.

    The paper's skewed model amortises the cell-program load over many
    invocations (Section 3); the software analogue is a warm compile
    cache plus one reused machine.  A 100-item batch must be at least
    5x faster end to end than 100 independent compile+simulate calls —
    and bit-identical to them."""
    source = polynomial(16, 8)
    n_items = 100
    items = [
        {"z": rng.standard_normal(16), "c": rng.standard_normal(8)}
        for _ in range(n_items)
    ]

    def measure():
        cache = CompileCache()
        compile_w2(source, unroll="auto", cache=cache)  # warm the cache

        started = time.perf_counter()
        one_shot = [
            simulate(compile_w2(source, unroll="auto"), item)
            for item in items
        ]
        one_shot_s = time.perf_counter() - started

        started = time.perf_counter()
        program = compile_w2(source, unroll="auto", cache=cache)
        batched = BatchRunner(program).run(items)
        batched_s = time.perf_counter() - started

        assert cache.stats.hits == 1  # the batch compile came from cache
        for theirs, mine in zip(one_shot, batched.results):
            assert np.array_equal(
                mine.outputs["results"], theirs.outputs["results"]
            )
            assert mine.total_cycles == theirs.total_cycles
        return one_shot_s, batched_s

    one_shot_s, batched_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = one_shot_s / batched_s
    lines = [
        f"{'mode':<28} {'wall':>9} {'items/s':>9}",
        f"{'100x (compile + simulate)':<28} {one_shot_s:>8.3f}s "
        f"{n_items / one_shot_s:>9.1f}",
        f"{'warm cache + batched run':<28} {batched_s:>8.3f}s "
        f"{n_items / batched_s:>9.1f}",
        f"speedup: {speedup:.1f}x (outputs bit-identical item for item)",
    ]
    assert speedup >= 5.0, f"batched speedup {speedup:.2f}x below the 5x bar"
    report.section(
        "E-BATCH: batched execution vs one-shot", "\n".join(lines)
    )


def test_pipelining_headroom(benchmark, rng, report):
    """ResMII analysis: the paper's 1-result/cycle claim is exactly the
    resource bound of the inner loop (the queue port); the gap between
    our achieved interval and ResMII is the cost of substituting
    unrolling for software pipelining."""
    from repro.cellcodegen import pipelining_report

    def measure():
        rows = []
        for unroll in (1, 2, 4, 8):
            program = compile_w2(polynomial(240, 8), unroll=unroll)
            stats = max(
                pipelining_report(program.cell_code), key=lambda s: s.trip
            )
            rows.append(
                (
                    unroll,
                    stats.achieved_interval / unroll,
                    stats.resource_min_interval / unroll,
                    stats.bottleneck,
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"{'unroll':>6} {'achieved/result':>16} {'ResMII/result':>14} "
        f"{'bottleneck':>12}"
    ]
    for unroll, achieved, resmii, bottleneck in rows:
        lines.append(
            f"{unroll:>6} {achieved:>16.2f} {resmii:>14.2f} {bottleneck:>12}"
        )
    lines.append(
        "ResMII is 1 cycle/result — the paper's fully-pipelined claim is "
        "exactly the resource bound; unrolling closes most of the gap"
    )
    assert all(abs(resmii - 1.0) < 1e-9 for _, _, resmii, _ in rows)
    achieved = [a for _, a, _, _ in rows]
    assert achieved == sorted(achieved, reverse=True)
    report.section("Section 7: pipelining headroom (ResMII)", "\n".join(lines))
