"""Seeded fault-injection soak: random plans, forever-or-for-N-seconds.

Hammers the bundled programs with seed-derived
:class:`~repro.faults.InjectionPlan`\\ s and asserts the one invariant
the fault layer promises: a faulty run either completes **bit-identical**
to the clean run or raises a structured
:class:`~repro.errors.SimulationError`.  Any third outcome — a wrong
answer without an exception — aborts the soak with the seed that
produced it, so a failure is a one-line repro::

    python -m repro run polynomial --inject random:seed=<seed>

Usage (CI runs the 2-minute variant)::

    PYTHONPATH=src python benchmarks/fault_soak.py --seconds 120 --seed 20260806
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.compiler import compile_w2
from repro.errors import SimulationError
from repro.faults import FaultInjector, InjectionPlan
from repro.machine import simulate
from repro.programs import conv1d, passthrough, polynomial

#: name -> (W2 source, input generator).  The same fleet as
#: tests/test_faults_matrix.py.
PROGRAMS = {
    "polynomial": (
        polynomial(12, 4),
        lambda rng: {
            "z": rng.standard_normal(12),
            "c": rng.standard_normal(4),
        },
    ),
    "conv1d": (
        conv1d(12, 3),
        lambda rng: {
            "x": rng.standard_normal(12),
            "w": rng.standard_normal(3),
        },
    ),
    "passthrough": (
        passthrough(8, 2),
        lambda rng: {"din": rng.standard_normal(8)},
    ),
}


def soak(seconds: float, seed: int) -> int:
    rng = np.random.default_rng(seed)
    fleet = []
    for name, (source, gen) in sorted(PROGRAMS.items()):
        program = compile_w2(source)
        inputs = gen(rng)
        clean = simulate(program, inputs)
        fleet.append((name, program, inputs, clean))

    deadline = time.monotonic() + seconds
    runs = recovered = detected = 0
    plan_seed = seed
    while time.monotonic() < deadline:
        for name, program, inputs, clean in fleet:
            plan_seed += 1
            plan = InjectionPlan.random(plan_seed, n_cells=program.n_cells)
            injector = FaultInjector(plan)
            runs += 1
            try:
                result = simulate(program, inputs, faults=injector)
            except SimulationError as error:
                detected += 1
                continue
            for out, data in clean.outputs.items():
                if not np.array_equal(result.outputs[out], data):
                    print(
                        f"SILENT WRONG ANSWER: program={name} "
                        f"seed={plan_seed} output={out!r}\n"
                        f"  plan: {[s.describe() for s in plan.specs]}\n"
                        f"  fired: {injector.report()}",
                        file=sys.stderr,
                    )
                    return 1
            recovered += 1
    print(
        f"soak OK: {runs} faulty runs in {seconds:.0f}s "
        f"({recovered} recovered bit-identical, {detected} detected), "
        f"0 silent wrong answers"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seconds", type=float, default=120.0,
        help="soak duration (default: 120)",
    )
    parser.add_argument(
        "--seed", type=int, default=20260806,
        help="base seed; plan seeds count up from here (default: 20260806)",
    )
    args = parser.parse_args(argv)
    return soak(args.seconds, args.seed)


if __name__ == "__main__":
    sys.exit(main())
