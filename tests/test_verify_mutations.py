"""The mutation harness verifies the verifier.

Every seeded artifact miscompile (slot swaps, off-by-one addresses,
dropped/duplicated enqueues, aliased temp registers, understated queue
bounds) is run through both detectors:

* the **verifier** (static re-derivation from the artifacts), and
* the **differential sweep** (cycle simulation vs the AST reference
  interpreter, runtime errors counting as detection).

The contract is strict: the verifier must flag every mutant the
differential sweep flags (zero silent escapes), and — because the
generators are restricted to observable mutations — every produced
mutant at all.
"""

import dataclasses

import numpy as np
import pytest

from repro.compiler import compile_w2
from repro.config import DEFAULT_CONFIG
from repro.lang import analyze, parse_module
from repro.machine import interpret, simulate
from repro.verify import MUTATION_KINDS, mutate, mutation_suite, verify_program

SEEDS = (0, 1, 2)

#: Programs with complementary artifact shapes: polynomial (queue-heavy
#: distribution idiom), conv1d (pinned-register inner product), matmul
#: (queue-addressed local memory, the PR 3 bug's habitat).
MUTATED_PROGRAMS = ("polynomial", "conv1d", "matmul")


def _compile_unverified(source, unroll=1):
    config = dataclasses.replace(DEFAULT_CONFIG, verify="off")
    return compile_w2(source, config=config, unroll=unroll)


def _case(program_suite, name):
    return next(c for c in program_suite if c[0] == name)


def _differential_flags(mutant_program, source, inputs) -> bool:
    """True when the classic detector notices the miscompile: the
    simulation crashes (underflow, overflow, hang, corruption audit) or
    its outputs diverge from the reference interpreter."""
    reference = interpret(analyze(parse_module(source)), inputs)
    try:
        result = simulate(mutant_program, inputs)
    except Exception:
        return True
    for name, expected in reference.items():
        got = result.outputs.get(name)
        if got is None or got.shape != expected.shape:
            return True
        if not np.allclose(got, expected, rtol=1e-9, atol=1e-12):
            return True
    return False


class TestNoSilentEscapes:
    @pytest.mark.parametrize("name", MUTATED_PROGRAMS)
    def test_verifier_flags_every_mutant(self, program_suite, name):
        """The strict matrix: every produced mutant is verifier-caught,
        so in particular no differential-caught mutant escapes."""
        _name, source, inputs, _ref = _case(program_suite, name)
        program = _compile_unverified(source)
        escapes = []
        produced = 0
        for mutant in mutation_suite(program, seeds=SEEDS):
            produced += 1
            report = verify_program(mutant.program, level="full")
            if report.ok:
                differential = _differential_flags(
                    mutant.program, source, inputs
                )
                escapes.append(
                    f"{mutant.kind} seed {mutant.seed} "
                    f"({mutant.description}): verifier silent, "
                    f"differential {'FLAGS' if differential else 'silent'}"
                )
        assert not escapes, "\n".join(escapes)
        assert produced >= 6, (
            f"{name}: expected a substantive mutant population, got "
            f"{produced}"
        )

    @pytest.mark.parametrize("name", MUTATED_PROGRAMS)
    def test_differential_subset_of_verifier(self, program_suite, name):
        """The ISSUE contract stated directly: differential-flagged ⊆
        verifier-flagged, checked mutant by mutant."""
        _name, source, inputs, _ref = _case(program_suite, name)
        program = _compile_unverified(source)
        for mutant in mutation_suite(program, seeds=SEEDS[:2]):
            verifier_flags = not verify_program(
                mutant.program, level="full"
            ).ok
            if _differential_flags(mutant.program, source, inputs):
                assert verifier_flags, (
                    f"silent escape: {mutant.kind} seed {mutant.seed} "
                    f"({mutant.description}) — the differential sweep "
                    "flags it but the verifier does not"
                )

    def test_every_mutation_kind_is_caught_somewhere(self, program_suite):
        """Each miscompile class has at least one verifier-caught mutant
        across the program set — no check family is dead weight."""
        caught: set[str] = set()
        for name in MUTATED_PROGRAMS:
            _name, source, _inputs, _ref = _case(program_suite, name)
            program = _compile_unverified(source)
            for mutant in mutation_suite(program, seeds=SEEDS):
                if not verify_program(mutant.program, level="full").ok:
                    caught.add(mutant.kind)
        assert caught == set(MUTATION_KINDS)


class TestHarnessMechanics:
    def test_mutations_are_deterministic(self, program_suite):
        _name, source, _inputs, _ref = _case(program_suite, "matmul")
        program = _compile_unverified(source)
        for kind in MUTATION_KINDS:
            first = mutate(program, kind, 1)
            second = mutate(program, kind, 1)
            assert (first is None) == (second is None), kind
            if first is not None:
                assert first.description == second.description, kind

    def test_mutation_leaves_the_original_intact(self, program_suite):
        _name, source, _inputs, _ref = _case(program_suite, "conv1d")
        program = _compile_unverified(source)
        list(mutation_suite(program, seeds=SEEDS))
        report = verify_program(program, level="full")
        assert report.ok, (
            "mutating must deep-copy; the pristine program now fails:\n"
            + report.format()
        )

    def test_unknown_kind_rejected(self, program_suite):
        _name, source, _inputs, _ref = _case(program_suite, "conv1d")
        program = _compile_unverified(source)
        with pytest.raises(ValueError, match="unknown mutation kind"):
            mutate(program, "reticulate_splines", 0)

    def test_inapplicable_kinds_return_none(self, program_suite):
        """polynomial has no queue-addressed memory: the off-by-one
        address mutation has no site and must say so, not crash."""
        _name, source, _inputs, _ref = _case(program_suite, "polynomial")
        program = _compile_unverified(source)
        assert mutate(program, "off_by_one_address", 0) is None
