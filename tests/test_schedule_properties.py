"""Property-based verification of the block scheduler.

Random DAGs are generated and scheduled; every schedule must satisfy
all the machine constraints: per-cycle resource capacities, operand
latencies, per-queue ordering, memory ordering, and write-after-read
anti-dependences.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cellcodegen.isa import ALU_OPS, MPY_OPS
from repro.cellcodegen.schedule import schedule_block
from repro.config import CellConfig
from repro.ir.dag import Dag, MemRef, OpKind, QueueRef
from repro.lang.ast import Channel, Direction
from repro.lang.semantic import affine_const

CFG = CellConfig()

IN_Q = QueueRef(Direction.LEFT, Channel.X)
IN_QY = QueueRef(Direction.LEFT, Channel.Y)
OUT_Q = QueueRef(Direction.RIGHT, Channel.X)


@st.composite
def random_dags(draw):
    """A random but well-formed block DAG with queue ops, arithmetic,
    memory traffic and scalar reads/writes."""
    dag = Dag()
    values = [dag.const(1.5), dag.read("s0"), dag.read("s1")]
    last_recv = {IN_Q: None, IN_QY: None}
    last_send = None
    stores = []
    n_ops = draw(st.integers(3, 25))
    for _ in range(n_ops):
        choice = draw(st.integers(0, 5))
        if choice == 0:
            queue = draw(st.sampled_from([IN_Q, IN_QY]))
            node = dag.recv(queue)
            if last_recv[queue] is not None:
                dag.add_order_edge(last_recv[queue], node)
            last_recv[queue] = node
            values.append(node)
        elif choice == 1 and len(values) >= 1:
            value = draw(st.sampled_from(values))
            node = dag.send(OUT_Q, value)
            if last_send is not None:
                dag.add_order_edge(last_send, node)
            last_send = node
        elif choice == 2:
            index = draw(st.integers(0, 3))
            node = dag.load(MemRef("arr", affine_const(index)))
            for store in stores:
                dag.add_order_edge(store, node)
            values.append(node)
        elif choice == 3 and len(values) >= 1:
            value = draw(st.sampled_from(values))
            node = dag.store(MemRef("arr", affine_const(draw(st.integers(0, 3)))), value)
            stores.append(node)
        elif choice in (4, 5) and len(values) >= 2:
            op = draw(
                st.sampled_from(
                    [OpKind.FADD, OpKind.FSUB, OpKind.FMUL, OpKind.CMP_LT]
                )
            )
            left = draw(st.sampled_from(values))
            right = draw(st.sampled_from(values))
            values.append(dag.pure(op, left, right))
    # Block-final scalar writes (the builder's close_block invariant:
    # WRITEs are the last actions and anti-edge against the entry READ).
    for var in ("s0", "s1"):
        if draw(st.booleans()):
            value = draw(st.sampled_from(values))
            write = dag.write(var, value)
            read_id = dag._value_numbers.get((OpKind.READ, (), var))
            if read_id is not None:
                dag.add_order_edge(dag.nodes[read_id], write)
    # Anchor: make sure something is observable.
    if not dag.effects:
        dag.send(OUT_Q, values[0])
    return dag


def _resource_of(item):
    if item.kind in ("deq", "enq"):
        return f"{item.kind}:{item.node.attr}"
    return item.kind


class TestScheduleInvariants:
    @given(random_dags())
    @settings(max_examples=150, deadline=None)
    def test_resource_capacities(self, dag):
        schedule = schedule_block(dag, CFG)
        usage = {}
        for item in schedule.items.values():
            key = (_resource_of(item), item.cycle)
            usage[key] = usage.get(key, 0) + 1
        for (resource, _cycle), count in usage.items():
            if resource == "mem":
                assert count <= CFG.mem_ports
            else:
                assert count <= 1

    @given(random_dags())
    @settings(max_examples=150, deadline=None)
    def test_value_latencies(self, dag):
        schedule = schedule_block(dag, CFG)
        for item in schedule.items.values():
            for operand in item.operands:
                producer_item_id = (
                    schedule.node_to_item.get(operand)
                    if operand >= 0
                    else -operand - 1
                )
                if producer_item_id is None or producer_item_id == item.item_id:
                    continue
                producer = schedule.items[producer_item_id]
                node = dag.nodes.get(operand)
                if node is not None and node.op in (OpKind.CONST, OpKind.READ):
                    continue
                assert item.cycle >= producer.cycle + producer.latency

    @given(random_dags())
    @settings(max_examples=150, deadline=None)
    def test_every_op_scheduled_exactly_once(self, dag):
        schedule = schedule_block(dag, CFG)
        alive = {
            n.node_id
            for n in dag.live_nodes()
            if n.op
            in (ALU_OPS | MPY_OPS | {OpKind.LOAD, OpKind.STORE, OpKind.RECV, OpKind.SEND})
        }
        scheduled_nodes = {
            item.node.node_id
            for item in schedule.items.values()
            if item.node is not None
        }
        assert alive <= scheduled_nodes
        assert all(item.cycle >= 0 for item in schedule.items.values())

    @given(random_dags())
    @settings(max_examples=150, deadline=None)
    def test_queue_order_preserved(self, dag):
        schedule = schedule_block(dag, CFG)
        for queue in (IN_Q, IN_QY, OUT_Q):
            for kind in (OpKind.RECV, OpKind.SEND):
                cycles = [
                    schedule.items[schedule.node_to_item[n]].cycle
                    for n in dag.effects
                    if dag.nodes[n].op is kind and dag.nodes[n].attr == queue
                ]
                assert cycles == sorted(cycles)

    @given(random_dags())
    @settings(max_examples=150, deadline=None)
    def test_length_covers_all_latencies(self, dag):
        schedule = schedule_block(dag, CFG)
        for item in schedule.items.values():
            assert schedule.length >= item.cycle + max(item.latency, 1)
