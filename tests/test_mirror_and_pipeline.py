"""Tests for right-to-left mirroring and the pipelining-headroom
(ResMII) analysis."""

import numpy as np
import pytest

from repro.cellcodegen import pipelining_report, resource_min_interval
from repro.compiler import compile_w2
from repro.compiler.mirror import mirror_module
from repro.errors import MappingError
from repro.lang import Direction, analyze, parse_module
from repro.machine import simulate
from repro.programs import polynomial

RL_PIPELINE = """
module rl (din in, dout out)
float din[8];
float dout[8];
cellprogram (cid : 0 : 2)
begin
    float t;
    int i;
    for i := 0 to 7 do begin
        receive (R, X, t, din[i]);
        send (L, X, t + 1.0, dout[i]);
    end;
end
"""


class TestMirroring:
    def test_mirror_flips_every_direction(self):
        module = parse_module(RL_PIPELINE)
        mirrored = mirror_module(module)
        loop = mirrored.cellprogram.body[0]
        recv, send = loop.body.statements[0], loop.body.statements[1]
        assert recv.direction is Direction.LEFT
        assert send.direction is Direction.RIGHT

    def test_mirrored_module_reanalyzes(self):
        analyze(mirror_module(parse_module(RL_PIPELINE)))

    def test_rl_program_compiles_and_runs(self):
        program = compile_w2(RL_PIPELINE)
        assert program.mirrored
        data = np.arange(8.0)
        result = simulate(program, {"din": data})
        assert np.allclose(result.outputs["dout"], data + 3.0)  # 3 cells

    def test_lr_program_not_mirrored(self):
        program = compile_w2(polynomial(8, 3))
        assert not program.mirrored

    def test_double_mirror_is_identity(self):
        from repro.lang import format_module

        module = parse_module(RL_PIPELINE)
        twice = mirror_module(mirror_module(module))
        assert format_module(twice) == format_module(module)

    def test_bidirectional_still_rejected(self):
        from repro.programs import bidirectional_cycle

        with pytest.raises(MappingError):
            compile_w2(bidirectional_cycle())

    def test_mirror_inside_if_and_functions(self):
        src = """
module m (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 1)
begin
    function f
    begin
        float t, u;
        int i;
        for i := 0 to 3 do begin
            receive (R, X, t, a[i]);
            if t < 0.0 then u := 0.0; else u := t;
            send (L, X, u, b[i]);
        end;
    end
    call f;
end
"""
        program = compile_w2(src)
        assert program.mirrored
        result = simulate(program, {"a": np.array([-1.0, 2.0, -3.0, 4.0])})
        assert list(result.outputs["b"]) == [0.0, 2.0, 0.0, 4.0]


class TestPipeliningReport:
    def test_resmii_is_queue_bound_for_polynomial(self):
        program = compile_w2(polynomial(48, 4))
        stats = max(pipelining_report(program.cell_code), key=lambda s: s.trip)
        # Per iteration: 2 deq on X? No — one deq each on X and Y, one
        # enq each; one mul, one add.  Every resource needs 1 slot.
        assert stats.resource_min_interval == 1
        assert stats.achieved_interval > stats.resource_min_interval

    def test_unrolling_closes_headroom(self):
        headrooms = []
        for unroll in (1, 4):
            program = compile_w2(polynomial(48, 4), unroll=unroll)
            stats = max(
                pipelining_report(program.cell_code), key=lambda s: s.trip
            )
            headrooms.append(stats.headroom)
        assert headrooms[1] < headrooms[0]

    def test_resource_min_interval_counts_ports(self):
        from repro.cellcodegen.emit import ScheduledBlock
        from repro.cellcodegen.isa import (
            AddressSource,
            MemOp,
            MicroInstr,
            Reg,
        )
        from repro.config import CellConfig

        instr = MicroInstr()
        for _ in range(4):
            instr.mem.append(
                MemOp(True, AddressSource.LITERAL, 0, Reg(0))
            )
        block = ScheduledBlock(0, [instr], length=1)
        interval, usage = resource_min_interval([block], CellConfig())
        assert interval == 2  # 4 references / 2 ports
        assert usage["mem"] == (4, 2)

    def test_bottleneck_named(self):
        program = compile_w2(polynomial(48, 4))
        stats = max(pipelining_report(program.cell_code), key=lambda s: s.trip)
        assert stats.bottleneck  # some resource is the binding one
