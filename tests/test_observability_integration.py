"""Integration tests for the observability layer.

The paper's central claims are timing claims, so the instrumentation
must agree with the compile-time theory:

* the static performance prediction and the measured ``MachineMetrics``
  cycle counts agree exactly (tolerance 0 — schedules are static; any
  drift is a bug in one side or the other, see EXPERIMENTS.md E-OBS);
* every simulated queue's high-water mark stays within the compile-time
  minimum buffer size of Section 6.2.2;
* the per-cell busy/stall/idle breakdown partitions the run.
"""

import numpy as np
import pytest

from repro import obs
from repro.compiler import compile_w2, predict_performance
from repro.machine import simulate
from repro.programs import conv1d, polynomial

#: Documented tolerance for predicted vs measured total cycles.
#: Schedules are fully static, so the reproduction holds this at zero;
#: relax only with a written justification in EXPERIMENTS.md.
PREDICTION_TOLERANCE_CYCLES = 0


class TestPredictedVsMeasured:
    @pytest.mark.parametrize(
        "source,inputs_factory",
        [
            (
                polynomial(24, 4),
                lambda rng: {
                    "z": rng.uniform(-1, 1, 24),
                    "c": rng.standard_normal(4),
                },
            ),
            (
                conv1d(20, 3),
                lambda rng: {
                    "x": rng.standard_normal(20),
                    "w": rng.standard_normal(3),
                },
            ),
        ],
        ids=["polynomial", "conv1d"],
    )
    def test_bundled_programs_within_tolerance(
        self, rng, source, inputs_factory
    ):
        program = compile_w2(source)
        prediction = predict_performance(program)
        result = simulate(program, inputs_factory(rng))
        metrics = result.machine_metrics
        delta = abs(metrics.total_cycles - prediction.total_cycles)
        assert delta <= PREDICTION_TOLERANCE_CYCLES
        for cell in metrics.cells:
            assert cell.alu_ops == prediction.alu_ops
            assert cell.mpy_ops == prediction.mpy_ops
            assert cell.receives == prediction.receives
            assert cell.sends == prediction.sends
            assert (
                cell.end_cycle - cell.start_cycle
                == prediction.cycles_per_cell
            )

    def test_compare_report_states_exactness(self, rng):
        program = compile_w2(polynomial(24, 4))
        result = simulate(
            program,
            {"z": rng.uniform(-1, 1, 24), "c": rng.standard_normal(4)},
        )
        text = obs.format_compare(
            predict_performance(program), result.machine_metrics
        )
        assert "prediction exact" in text


class TestQueueBounds:
    def test_high_water_within_compile_time_minimum(self, program_suite):
        """Simulated inter-cell queue occupancy never exceeds the
        Section 6.2.2 minimum buffer sizes the compiler computed."""
        for name, source, inputs, _ in program_suite:
            program = compile_w2(source)
            result = simulate(program, inputs)
            required = {
                str(req.channel): req.required for req in program.buffers
            }
            for queue_name, queue in result.machine_metrics.queues.items():
                if not queue_name.startswith("link"):
                    continue
                index, channel = queue_name[len("link"):].split(".")
                if int(index) == 0:
                    continue  # host boundary, flow-controlled
                assert queue.high_water <= required[channel], (
                    name,
                    queue_name,
                )

    def test_high_water_matches_audit(self, rng):
        program = compile_w2(polynomial(24, 4))
        result = simulate(
            program,
            {"z": rng.uniform(-1, 1, 24), "c": rng.standard_normal(4)},
        )
        for queue_name, peak in result.queue_occupancy.items():
            assert (
                result.machine_metrics.queues[queue_name].high_water == peak
            )


class TestMachineMetricsConsistency:
    def test_breakdown_partitions_run(self, program_suite):
        for name, source, inputs, _ in program_suite:
            program = compile_w2(source)
            result = simulate(program, inputs)
            metrics = result.machine_metrics
            assert metrics.total_cycles == result.total_cycles
            for cell in metrics.cells:
                total = (
                    cell.busy_cycles + cell.stall_cycles + cell.idle_cycles
                )
                assert total == metrics.total_cycles, name
                assert 0.0 <= cell.utilization <= 1.0

    def test_receive_wait_attribution(self, rng):
        """Cell i's receive wait equals the residency of its input
        links."""
        program = compile_w2(polynomial(24, 4))
        result = simulate(
            program,
            {"z": rng.uniform(-1, 1, 24), "c": rng.standard_normal(4)},
        )
        metrics = result.machine_metrics
        for cell in metrics.cells:
            expected = sum(
                queue.total_wait_cycles
                for queue_name, queue in metrics.queues.items()
                if queue_name.startswith(f"link{cell.cell}.")
            )
            assert cell.receive_wait_cycles == expected

    def test_iu_metrics_cover_address_stream(self, rng):
        program = compile_w2(conv1d(20, 3))
        result = simulate(
            program,
            {"x": rng.standard_normal(20), "w": rng.standard_normal(3)},
        )
        iu = result.machine_metrics.iu
        emissions = list(program.iu_program.emission_times())
        assert iu.addresses_emitted == len(emissions)
        if emissions:
            assert iu.first_emit_cycle == min(t for t, _, _ in emissions)
            assert iu.last_emit_cycle == max(t for t, _, _ in emissions)

    def test_stats_issue_cycles_bounded(self, rng):
        program = compile_w2(polynomial(24, 4))
        result = simulate(
            program,
            {"z": rng.uniform(-1, 1, 24), "c": rng.standard_normal(4)},
        )
        for stats in result.cell_stats:
            assert 0 < stats.issue_cycles <= stats.busy_cycles
            assert stats.stall_cycles == (
                stats.busy_cycles - stats.issue_cycles
            )


class TestIUMachineCounters:
    def test_dynamic_instruction_mix(self):
        from repro.iucodegen.lower import lower_iu_program
        from repro.machine.iu_machine import IUMachine

        program = compile_w2(conv1d(20, 3))
        lowered = lower_iu_program(program.iu_program)
        machine = IUMachine(lowered)
        emitted = machine.run()
        state = machine.state
        assert state.ops_executed == sum(state.ops_by_kind.values())
        emit_ops = state.ops_by_kind.get("EMIT", 0) + state.ops_by_kind.get(
            "EMIT_TABLE", 0
        )
        assert emit_ops == len(emitted)
        assert state.table_reads == state.ops_by_kind.get("EMIT_TABLE", 0)

    def test_iu_run_reports_telemetry_counters(self):
        from repro.iucodegen.lower import lower_iu_program
        from repro.machine.iu_machine import run_iu_program

        program = compile_w2(conv1d(20, 3))
        lowered = lower_iu_program(program.iu_program)
        with obs.collecting() as telemetry:
            emitted = run_iu_program(lowered)
        assert telemetry.counters["iu.addresses_emitted"] == len(emitted)
        assert telemetry.counters["iu.ops_executed"] > 0


class TestCompileTelemetry:
    def test_driver_phases_recorded(self):
        with obs.collecting() as telemetry:
            compile_w2(polynomial(12, 3))
        names = {span.name for span in telemetry.spans}
        assert {
            "frontend.lex",
            "frontend.parse",
            "frontend.semantic",
            "decomposition.build-ir",
            "cellcodegen",
            "analysis.comm",
            "timing.skew",
            "timing.buffers",
            "iucodegen",
            "hostcodegen",
        } <= names

    def test_driver_counters_recorded(self):
        with obs.collecting() as telemetry:
            program = compile_w2(polynomial(12, 3))
        counters = telemetry.counters
        assert counters["ir.blocks"] > 0
        assert counters["ir.dag_nodes"] > 0
        assert counters["timing.skew_cycles"] == program.skew.skew
        assert (
            counters["codegen.cell_instructions"]
            == program.cell_code.n_instructions
        )
        assert "timing.min_buffer.X" in counters

    def test_cse_hits_counted(self):
        source = """
module cse (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 0)
begin
    float x, y, z;
    int i;
    for i := 0 to 3 do begin
        receive (L, X, x, a[i]);
        y := (x + 1.0) * (x + 1.0);
        z := (x + 1.0) * (x + 1.0);
        send (R, X, y + z, b[i]);
    end;
end
"""
        with obs.collecting() as telemetry:
            compile_w2(source)
        assert telemetry.counters["ir.cse_hits"] > 0

    def test_compile_works_identically_without_telemetry(self):
        source = polynomial(12, 3)
        baseline = compile_w2(source)
        with obs.collecting():
            instrumented = compile_w2(source)
        assert (
            baseline.cell_code.n_instructions
            == instrumented.cell_code.n_instructions
        )
        assert baseline.skew.skew == instrumented.skew.skew
