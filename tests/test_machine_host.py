"""Unit tests for the host feeder/collector and HostMemory."""

import numpy as np
import pytest

from repro.compiler import compile_w2
from repro.errors import HostDataError
from repro.hostcodegen import generate_host_program
from repro.lang import Channel
from repro.machine import TimedQueue
from repro.machine.host import HostMemory, collect_outputs, feed_input_queues
from repro.programs import polynomial


class TestHostMemory:
    def test_inputs_padded_to_declared_size(self):
        memory = HostMemory.from_inputs(
            {"a": (10,)}, {"a": np.array([1.0, 2.0])}
        )
        assert memory.arrays["a"].size == 10
        assert list(memory.arrays["a"][:3]) == [1.0, 2.0, 0.0]

    def test_oversized_input_rejected(self):
        with pytest.raises(HostDataError, match="declares"):
            HostMemory.from_inputs({"a": (2,)}, {"a": np.zeros(3)})

    def test_missing_inputs_zeroed(self):
        memory = HostMemory.from_inputs({"a": (4,), "b": (2,)}, {})
        assert np.all(memory.arrays["a"] == 0)
        assert np.all(memory.arrays["b"] == 0)

    def test_multidim_flattened(self):
        data = np.arange(6.0).reshape(2, 3)
        memory = HostMemory.from_inputs({"m": (2, 3)}, {"m": data})
        assert list(memory.arrays["m"]) == list(range(6))

    def test_scalar_declaration(self):
        memory = HostMemory.from_inputs({"s": ()}, {"s": np.array([7.0])})
        assert memory.arrays["s"].size == 1


class TestFeeder:
    @pytest.fixture()
    def program(self):
        return compile_w2(polynomial(6, 3))

    def test_one_word_per_cycle(self, program):
        memory = HostMemory.from_inputs(
            program.ir.host_arrays,
            {"z": np.arange(6.0), "c": np.arange(3.0)},
        )
        queues = {
            Channel.X: TimedQueue("x"),
            Channel.Y: TimedQueue("y"),
        }
        feed_input_queues(program.host_program, memory, queues)
        # Item k enters at cycle k (host bandwidth budget).
        assert queues[Channel.X].send_times == list(range(9))
        # First three X items are the coefficients.
        assert queues[Channel.X].values[:3] == [0.0, 1.0, 2.0]

    def test_literals_fed_directly(self, program):
        memory = HostMemory.from_inputs(program.ir.host_arrays, {})
        queues = {Channel.X: TimedQueue("x"), Channel.Y: TimedQueue("y")}
        feed_input_queues(program.host_program, memory, queues)
        assert all(v == 0.0 for v in queues[Channel.Y].values)


class TestCollector:
    def test_count_mismatch_detected(self):
        program = compile_w2(polynomial(6, 3))
        memory = HostMemory.from_inputs(program.ir.host_arrays, {})
        queues = {Channel.X: TimedQueue("x"), Channel.Y: TimedQueue("y")}
        queues[Channel.Y].enqueue(0, 1.0)  # only one item; expects 6
        with pytest.raises(HostDataError, match="expects"):
            collect_outputs(program.host_program, memory, queues)

    def test_discards_skipped(self):
        program = compile_w2(polynomial(6, 3))
        memory = HostMemory.from_inputs(program.ir.host_arrays, {})
        queues = {Channel.X: TimedQueue("x"), Channel.Y: TimedQueue("y")}
        host = program.host_program
        for k in range(host.output_count(Channel.X)):
            queues[Channel.X].enqueue(k, 99.0)
        for k in range(host.output_count(Channel.Y)):
            queues[Channel.Y].enqueue(k, float(k))
        collect_outputs(host, memory, queues)
        # X outputs are all discards; results took the Y values.
        assert list(memory.arrays["results"]) == [float(k) for k in range(6)]
        assert not np.any(memory.arrays["z"] == 99.0)
