"""Tests for diagnostic quality: precise locations and actionable
messages across the front end and back end."""

import pytest

from repro.compiler import compile_w2
from repro.errors import MappingError, QueueOverflowError
from repro.config import WarpConfig
from repro.lang import (
    LexError,
    ParseError,
    SemanticError,
    SourceLocation,
    UnsupportedProgramError,
    parse_module,
    analyze,
)


def location_of(excinfo) -> SourceLocation:
    location = excinfo.value.location
    assert location is not None
    return location


class TestLexerLocations:
    def test_bad_character_location(self):
        with pytest.raises(LexError) as excinfo:
            parse_module("module m (a in)\nfloat a[1];\n@")
        location = location_of(excinfo)
        assert location.line == 3
        assert location.column == 1

    def test_unterminated_comment_points_at_start(self):
        with pytest.raises(LexError) as excinfo:
            parse_module("module m /* oops")
        assert location_of(excinfo).column == 10


class TestParserMessages:
    def test_expected_token_named(self):
        with pytest.raises(ParseError, match="expected"):
            parse_module("module (a in)")

    def test_location_in_message_string(self):
        with pytest.raises(ParseError) as excinfo:
            parse_module("module m (a in) float a[1]; cellprogram (c : 0 : 0) begin end extra")
        assert "line" in str(excinfo.value)

    def test_direction_message(self):
        src = """
module m (a in)
float a[1];
cellprogram (c : 0 : 0)
begin
    float t;
    receive (Q, X, t, a[0]);
end
"""
        with pytest.raises(ParseError, match="'L' or 'R'"):
            parse_module(src)


class TestSemanticMessages:
    def _analyze(self, body, decls="float t;\n    int i;"):
        return analyze(
            parse_module(
                f"""
module m (a in, b out)
float a[8];
float b[8];
cellprogram (cid : 0 : 0)
begin
    {decls}
{body}
end
"""
            )
        )

    def test_undefined_name_is_named(self):
        with pytest.raises(SemanticError, match="'mystery'"):
            self._analyze("    t := mystery;")

    def test_dynamic_bounds_cites_section(self):
        with pytest.raises(UnsupportedProgramError, match="Section 5.1"):
            self._analyze(
                "    for i := 0 to j do t := 1.0;",
                decls="float t;\n    int i, j;",
            )

    def test_nonaffine_mentions_iu(self):
        with pytest.raises(UnsupportedProgramError, match="IU"):
            self._analyze(
                "    for i := 0 to 3 do t := w[i*i];",
                decls="float t, w[16];\n    int i;",
            )

    def test_loop_index_as_value_explains_datapath(self):
        with pytest.raises(SemanticError, match="integer datapath|no integer"):
            self._analyze("    for i := 0 to 3 do t := i;")


class TestBackendMessages:
    def test_bidirectional_cites_section(self):
        from repro.programs import bidirectional_cycle

        with pytest.raises(MappingError, match="Section 5.1.1"):
            compile_w2(bidirectional_cycle())

    def test_queue_overflow_suggests_remedies(self):
        from repro.programs import polynomial

        with pytest.raises(QueueOverflowError, match="re-block|enlarge"):
            compile_w2(polynomial(30, 10), config=WarpConfig(queue_depth=1))

    def test_cell_count_in_error(self):
        from repro.programs import polynomial

        with pytest.raises(MappingError, match="10 cells"):
            compile_w2(polynomial(20, 10), config=WarpConfig(n_cells=4))
