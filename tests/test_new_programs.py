"""Tests for the extra workloads: conv2d and the FIR filter bank."""

import numpy as np
import pytest

from repro.compiler import compile_w2
from repro.lang import analyze, parse_module
from repro.machine import interpret, simulate
from repro.programs import conv2d, fir_bank


class TestConv2D:
    def test_separable_blur_matches_scipy_interior(self):
        from scipy import signal as sp_signal

        h, w = 12, 16
        rng = np.random.default_rng(2)
        x = rng.standard_normal((h, w))
        k = np.outer([1.0, 2.0, 1.0], [1.0, 2.0, 1.0]) / 16.0
        program = compile_w2(conv2d(w, h))
        result = simulate(program, {"x": x, "k": k})
        y = result.output("y", (h, w))
        # Stream semantics: y[r, c] = sum k[i, j] x[r-i, c-2+j] with
        # zero padding; in scipy terms the interior matches a 'full'
        # correlation sampled at (r, c+ ... ). Compare via direct shifts.
        xpad = np.zeros((h + 2, w + 2))
        xpad[2:, 2:] = x
        expected = np.zeros((h, w))
        for i in range(3):
            for j in range(3):
                expected += k[i, j] * xpad[2 - i : 2 - i + h, j : j + w]
        assert np.allclose(y[:, 2:], expected[:, 2:])
        del sp_signal  # imported to assert the dependency is available

    def test_identity_kernel_delays_stream(self):
        """k = delta at [0, 2] makes each output the current pixel."""
        h, w = 6, 8
        x = np.arange(float(h * w)).reshape(h, w)
        k = np.zeros((3, 3))
        k[0, 2] = 1.0
        program = compile_w2(conv2d(w, h))
        result = simulate(program, {"x": x, "k": k})
        assert np.allclose(result.output("y", (h, w)), x)

    def test_row_delay_kernel(self):
        """k = delta at [1, 2] reads the pixel one row up."""
        h, w = 6, 8
        rng = np.random.default_rng(3)
        x = rng.standard_normal((h, w))
        k = np.zeros((3, 3))
        k[1, 2] = 1.0
        program = compile_w2(conv2d(w, h))
        result = simulate(program, {"x": x, "k": k})
        y = result.output("y", (h, w))
        assert np.allclose(y[1:], x[:-1])
        assert np.allclose(y[0], 0.0)

    def test_ring_buffer_uses_cell_memory(self):
        program = compile_w2(conv2d(32, 8))
        assert program.cell_code.layout.total_words >= 32

    def test_iu_two_addresses_per_pixel(self):
        program = compile_w2(conv2d(8, 4))
        addresses = sum(1 for _ in program.iu_program.emission_times())
        assert addresses == 2 * 8 * 4  # load + store per pixel


class TestFirBank:
    @pytest.mark.parametrize("n_taps", [1, 2, 5, 8])
    def test_tap_counts(self, n_taps):
        n, filters = 20, 3
        rng = np.random.default_rng(n_taps)
        x = rng.standard_normal(n)
        taps = rng.standard_normal((filters, n_taps))
        program = compile_w2(fir_bank(n, filters, n_taps))
        result = simulate(program, {"x": x, "taps": taps})
        y = result.output("y", (filters, n))
        expected = np.stack(
            [np.convolve(x, taps[f])[:n] for f in range(filters)]
        )
        assert np.allclose(y, expected)

    def test_single_filter(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(16)
        taps = rng.standard_normal((1, 4))
        program = compile_w2(fir_bank(16, 1, 4))
        result = simulate(program, {"x": x, "taps": taps})
        assert np.allclose(
            result.output("y", (1, 16))[0], np.convolve(x, taps[0])[:16]
        )

    def test_interpreter_agreement(self):
        rng = np.random.default_rng(5)
        source = fir_bank(12, 3, 3)
        inputs = {
            "x": rng.standard_normal(12),
            "taps": rng.standard_normal(9),
        }
        expected = interpret(analyze(parse_module(source)), inputs)
        result = simulate(compile_w2(source), inputs)
        assert np.allclose(result.outputs["y"], expected["y"])

    def test_unrolled_variant(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal(24)
        taps = rng.standard_normal((4, 4))
        program = compile_w2(fir_bank(24, 4, 4), unroll=4)
        result = simulate(program, {"x": x, "taps": taps})
        expected = np.stack([np.convolve(x, taps[f])[:24] for f in range(4)])
        assert np.allclose(result.output("y", (4, 24)), expected)

    def test_parallel_mode_skew_is_small(self):
        """Parallel-mode programs have tiny skews — cells mostly work on
        their own data (Section 3's parallel-mode discussion)."""
        program = compile_w2(fir_bank(64, 8, 6))
        assert program.skew.skew <= 5
