"""Unit tests for W2 semantic analysis and the affine index machinery."""

import pytest

from repro.lang import (
    SemanticError,
    UnsupportedProgramError,
    analyze,
    parse_module,
)
from repro.lang.semantic import (
    AffineIndex,
    affine_add,
    affine_const,
    affine_scale,
    affine_var,
)


def wrap(body, decls="float t;\n    int i;", params="a in, b out",
         host="float a[16];\nfloat b[16];", cells="0 : 1"):
    return f"""
module m ({params})
{host}
cellprogram (cid : {cells})
begin
    {decls}
{body}
end
"""


def check(body, **kwargs):
    return analyze(parse_module(wrap(body, **kwargs)))


class TestDeclarations:
    def test_param_without_host_decl(self):
        src = """
module m (a in)
cellprogram (c : 0 : 0)
begin
    float t;
    receive (L, X, t, 0.0);
end
"""
        with pytest.raises(SemanticError, match="host declaration"):
            analyze(parse_module(src))

    def test_host_decl_without_param(self):
        src = wrap("    t := 1.0;", host="float a[16];\nfloat b[16];\nfloat c[4];")
        with pytest.raises(SemanticError, match="does not match any"):
            analyze(parse_module(src))

    def test_duplicate_cell_decl(self):
        with pytest.raises(SemanticError, match="duplicate"):
            check("    t := 1.0;", decls="float t, t;")

    def test_int_array_rejected(self):
        with pytest.raises(SemanticError, match="int arrays"):
            check("    t := 1.0;", decls="float t;\n    int q[4];")


class TestTypeRules:
    def test_undefined_variable(self):
        with pytest.raises(SemanticError, match="undefined"):
            check("    t := nosuch;")

    def test_host_var_not_readable_by_cell(self):
        with pytest.raises(SemanticError, match="cannot be (read|accessed)"):
            check("    t := a[0];")

    def test_host_var_not_assignable_by_cell(self):
        with pytest.raises(SemanticError):
            check("    b[0] := 1.0;")

    def test_loop_index_not_a_float_value(self):
        with pytest.raises(SemanticError, match="loop index"):
            check("    for i := 0 to 3 do t := i;")

    def test_loop_index_not_assignable(self):
        with pytest.raises(SemanticError):
            check("    i := 1.0;")

    def test_if_condition_must_be_boolean(self):
        with pytest.raises(SemanticError, match="boolean"):
            check("    if t then t := 1.0;")

    def test_boolean_not_storable(self):
        with pytest.raises(SemanticError):
            check("    t := t < 1.0;")

    def test_and_needs_booleans(self):
        with pytest.raises(SemanticError):
            check("    if t and t < 1.0 then t := 1.0;")

    def test_array_used_without_subscript(self):
        with pytest.raises(SemanticError, match="without subscripts"):
            check("    t := w;", decls="float t, w[4];\n    int i;")

    def test_wrong_subscript_count(self):
        with pytest.raises(SemanticError, match="subscripts"):
            check("    t := w[1, 2];", decls="float t, w[4];\n    int i;")

    def test_valid_conditional(self):
        check("    if t <= 1.0 and not (t = 0.0) then t := 2.0; else t := 3.0;")


class TestLoops:
    def test_loop_var_must_be_int(self):
        with pytest.raises(SemanticError, match="declared int"):
            check("    for t := 0 to 3 do begin end;")

    def test_dynamic_bound_rejected(self):
        with pytest.raises(UnsupportedProgramError, match="compile-time"):
            check("    for i := 0 to j do t := 1.0;", decls="float t;\n    int i, j;")

    def test_constant_expression_bound(self):
        analyzed = check("    for i := 0 to 2*4 - 1 do t := 1.0;")
        loop = analyzed.module.cellprogram.body[0]
        assert analyzed.bounds_for(loop) == (0, 7, 8)

    def test_downto_trip_count(self):
        analyzed = check("    for i := 7 downto 3 do t := 1.0;")
        loop = analyzed.module.cellprogram.body[0]
        assert analyzed.bounds_for(loop) == (7, 3, 5)

    def test_empty_loop_rejected(self):
        with pytest.raises(UnsupportedProgramError, match="zero iterations"):
            check("    for i := 3 to 1 do t := 1.0;")


class TestIOStatements:
    def test_receive_external_must_be_input(self):
        with pytest.raises(SemanticError, match="direction"):
            check("    receive (L, X, t, b[0]);")

    def test_send_external_must_be_output(self):
        with pytest.raises(SemanticError, match="direction"):
            check("    send (R, X, t, a[0]);")

    def test_literal_external_allowed(self):
        analyzed = check("    receive (L, Y, t, 0.0);")
        stmt = analyzed.module.cellprogram.body[0]
        assert analyzed.io_info[id(stmt)].external_literal == 0.0

    def test_send_int_value_promoted(self):
        check("    send (R, X, 0);")

    def test_receive_target_must_be_float(self):
        with pytest.raises(SemanticError):
            check("    receive (L, X, i, a[0]);")


class TestSubscriptAffinity:
    def test_affine_subscript_accepted(self):
        analyzed = check(
            "    for i := 0 to 3 do t := w[2*i + 1];",
            decls="float t, w[16];\n    int i;",
        )
        ref = analyzed.module.cellprogram.body[0].body.value
        form = analyzed.indices_for(ref)[0]
        assert form.constant == 1
        assert form.coefficient("i") == 2

    def test_nonaffine_subscript_rejected(self):
        with pytest.raises(UnsupportedProgramError, match="affine"):
            check(
                "    for i := 0 to 3 do t := w[i*i];",
                decls="float t, w[16];\n    int i;",
            )

    def test_float_subscript_rejected(self):
        with pytest.raises(SemanticError):
            check("    t := w[t];", decls="float t, w[4];\n    int i;")


class TestFunctions:
    def test_call_undefined_function(self):
        src = wrap("    call nothing;")
        with pytest.raises(SemanticError, match="undefined function"):
            analyze(parse_module(src))

    def test_call_inside_function_rejected(self):
        src = """
module m (a in)
float a[4];
cellprogram (c : 0 : 0)
begin
    function f
    begin
        float t;
        call f;
    end
    call f;
end
"""
        with pytest.raises(SemanticError, match="not allowed inside"):
            analyze(parse_module(src))


class TestAffineAlgebra:
    def test_add(self):
        form = affine_add(affine_var("i"), affine_const(3))
        assert form.constant == 3
        assert form.coefficient("i") == 1

    def test_subtract_cancels(self):
        form = affine_add(affine_var("i"), affine_var("i"), sign=-1)
        assert form.is_constant
        assert form.constant == 0

    def test_scale(self):
        form = affine_scale(affine_add(affine_var("i"), affine_const(2)), 5)
        assert form.constant == 10
        assert form.coefficient("i") == 5

    def test_scale_by_zero(self):
        assert affine_scale(affine_var("i"), 0) == affine_const(0)

    def test_evaluate(self):
        form = AffineIndex(4, (("i", 2), ("j", -1)))
        assert form.evaluate({"i": 3, "j": 5}) == 4 + 6 - 5

    def test_str_roundtrip_is_readable(self):
        form = AffineIndex(1, (("i", 2),))
        assert str(form) == "1 + 2*i"
