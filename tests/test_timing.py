"""Tests for the compile-time synchronisation theory (Section 6.2).

Includes exact reproductions of the paper's worked examples:
Figure 6-2 / Table 6-1 (straight-line, minimum skew 3) and
Figure 6-4 / Tables 6-2, 6-3, 6-4 (loops, minimum skew 18).
"""

import numpy as np
import pytest

from repro.lang import Channel
from repro.timing import (
    TimingFunction,
    characterize_stream,
    check_buffers,
    input_stream,
    max_time_difference_bound,
    minimum_buffer_sizes,
    minimum_skew_bound,
    minimum_skew_exact,
    occupancy_requirement,
    output_stream,
    stream_event_times,
    stream_times_by_statement,
)
from repro.timing.synthetic import (
    block,
    build_program,
    figure_6_2_program,
    figure_6_4_program,
    loop,
)
from repro.errors import QueueOverflowError


class TestTable61Straightline:
    """Figure 6-2 / Table 6-1 / Figure 6-3."""

    def test_timing_table(self):
        code = figure_6_2_program()
        outs = stream_event_times(code, output_stream(Channel.X))
        ins = stream_event_times(code, input_stream(Channel.X))
        assert list(outs) == [0, 5]  # tau_O
        assert list(ins) == [1, 2]  # tau_I
        assert list(outs - ins) == [-1, 3]  # tau_O - tau_I column

    def test_minimum_skew_is_3(self):
        code = figure_6_2_program()
        assert minimum_skew_exact(code, Channel.X).skew == 3
        assert minimum_skew_bound(code, Channel.X).skew == 3

    def test_figure_6_3_two_cell_execution(self):
        """With skew 3, no input of cell 2 precedes the matching output
        of cell 1."""
        code = figure_6_2_program()
        outs = stream_event_times(code, output_stream(Channel.X))
        ins = stream_event_times(code, input_stream(Channel.X)) + 3
        assert (outs <= ins).all()
        # And skew 2 would break it:
        assert not (outs <= ins - 1).all()


class TestTable63Vectors:
    """The five-vector characterisation of Figure 6-4's statements."""

    @pytest.fixture(scope="class")
    def code(self):
        return figure_6_4_program()

    def test_input_vectors(self, code):
        chars = characterize_stream(code, input_stream(Channel.X))
        assert len(chars) == 2
        i0, i1 = chars
        assert (i0.R, i0.N, i0.S, i0.L, i0.T) == (
            (5, 1), (2, 1), (0, 0), (3, 1), (1, 0)
        )
        assert (i1.S, i1.T) == ((0, 1), (1, 1))

    def test_output_vectors(self, code):
        chars = characterize_stream(code, output_stream(Channel.X))
        assert len(chars) == 5
        o0, o1, o2, o3, o4 = chars
        assert (o0.R, o0.N, o0.S, o0.L, o0.T) == (
            (2, 1), (2, 1), (0, 0), (2, 1), (18, 0)
        )
        assert (o1.S, o1.T) == ((0, 1), (18, 1))
        assert (o2.R, o2.N, o2.S, o2.L, o2.T) == (
            (2, 1), (3, 1), (4, 0), (5, 1), (24, 0)
        )
        assert (o3.S, o3.T) == ((4, 1), (24, 1))
        assert (o4.S, o4.T) == ((4, 2), (24, 2))


class TestTable64TimingFunctions:
    """tau values and domains of Figure 6-4's statements."""

    @pytest.fixture(scope="class")
    def functions(self):
        code = figure_6_4_program()
        ins = [
            TimingFunction(c)
            for c in characterize_stream(code, input_stream(Channel.X))
        ]
        outs = [
            TimingFunction(c)
            for c in characterize_stream(code, output_stream(Channel.X))
        ]
        return ins, outs

    def test_i0_closed_form(self, functions):
        ins, _ = functions
        # tau(n) = 1 + 3/2 n - 1/2 (n mod 2), domain n even in [0, 8].
        assert ins[0].domain() == [0, 2, 4, 6, 8]
        for n in ins[0].domain():
            assert ins[0](n) == 1 + (3 * n) // 2  # n even

    def test_i1_domain(self, functions):
        ins, _ = functions
        assert ins[1].domain() == [1, 3, 5, 7, 9]
        assert ins[1](1) == 2 and ins[1](9) == 14

    def test_o0_values(self, functions):
        _, outs = functions
        assert outs[0].domain() == [0, 2]
        assert [outs[0](n) for n in (0, 2)] == [18, 20]

    def test_o2_values(self, functions):
        _, outs = functions
        # tau(n) = 52/3 + 5/3 n - 2/3 ((n-4) mod 3) on n in {4, 7}.
        assert outs[2].domain() == [4, 7]
        assert [outs[2](n) for n in (4, 7)] == [24, 29]

    def test_disjoint_domains(self, functions):
        """I(0) and O(1): even vs odd ordinals never intersect — but the
        interval bound is still finite (the paper's relaxation ignores
        the mod constraints)."""
        ins, outs = functions
        assert not (set(ins[0].domain()) & set(outs[1].domain()))

    def test_completely_overlapped_bound(self, functions):
        """O(0)'s domain is inside I(0)'s; max difference <= 17."""
        ins, outs = functions
        bound = max_time_difference_bound(outs[0], ins[0])
        exact = max(
            outs[0](n) - ins[0](n)
            for n in set(outs[0].domain()) & set(ins[0].domain())
        )
        assert exact == 17
        assert bound >= exact

    def test_partially_overlapped_bound(self, functions):
        """O(4) vs I(0): the paper bounds the difference by 17 + 2/3."""
        ins, outs = functions
        bound = max_time_difference_bound(outs[4], ins[0])
        assert bound is not None
        assert float(bound) <= 17 + 2 / 3 + 1e-9


class TestTable62Skew:
    def test_minimum_skew_is_18(self):
        code = figure_6_4_program()
        assert minimum_skew_exact(code, Channel.X).skew == 18

    def test_bound_at_least_exact(self):
        code = figure_6_4_program()
        bound = minimum_skew_bound(code, Channel.X).skew
        assert bound >= 18
        # The relaxation is tight within one cycle here.
        assert bound <= 19

    def test_per_event_table(self):
        """Reproduce the full (tau_O - tau_I) column of Table 6-2."""
        code = figure_6_4_program()
        outs = stream_event_times(code, output_stream(Channel.X))
        ins = stream_event_times(code, input_stream(Channel.X))
        assert list(outs) == [18, 19, 20, 21, 24, 25, 26, 29, 30, 31]
        assert list(ins) == [1, 2, 4, 5, 7, 8, 10, 11, 13, 14]
        assert list(outs - ins) == [17, 17, 16, 16, 17, 17, 16, 18, 17, 17]


class TestTauAgainstEnumeration:
    """tau functions must agree with brute-force enumeration on every
    statement of every shape we can build."""

    SHAPES = [
        build_program(block(4, ("out", 0), ("in", 2))),
        build_program(loop(7, block(3, ("in", 0), ("out", 2)))),
        build_program(
            block(2, ("in", 1)),
            loop(3, block(2, ("in", 0)), loop(4, block(3, ("out", 1)))),
            block(5, ("out", 4)),
        ),
        build_program(
            loop(2, loop(3, loop(4, block(2, ("in", 0), ("out", 1)))))
        ),
    ]

    @pytest.mark.parametrize("index", range(len(SHAPES)))
    def test_tau_matches_events(self, index):
        code = self.SHAPES[index]
        for stream in (input_stream(Channel.X), output_stream(Channel.X)):
            per_statement = stream_times_by_statement(code, stream)
            for char in characterize_stream(code, stream):
                tau = TimingFunction(char)
                times = per_statement[char.io_index]
                domain = tau.domain()
                assert len(domain) == len(times)
                assert [tau(n) for n in domain] == list(times)
                assert tau.n_min() == domain[0]
                assert tau.n_max() == domain[-1]

    @pytest.mark.parametrize("index", range(len(SHAPES)))
    def test_bound_dominates_exact(self, index):
        code = self.SHAPES[index]
        exact = minimum_skew_exact(code, Channel.X)
        bound = minimum_skew_bound(code, Channel.X)
        if exact.method == "none":
            return
        assert bound.skew >= exact.skew


class TestBuffers:
    def test_occupancy_simple(self):
        sends = np.array([0, 1, 2, 3])
        recvs = np.array([0, 1, 2, 3])
        # With skew 2, two items wait before the first receive fires.
        assert occupancy_requirement(sends, recvs, skew=0) == 1
        assert occupancy_requirement(sends, recvs, skew=2) == 3

    def test_residual_items_counted(self):
        sends = np.array([0, 1, 2, 3, 4])
        recvs = np.array([0, 1])
        assert occupancy_requirement(sends, recvs, skew=0) >= 3

    def test_no_receives(self):
        assert occupancy_requirement(np.array([1, 2]), np.array([]), 0) == 2

    def test_buffer_grows_with_skew(self):
        code = figure_6_4_program()
        small = minimum_buffer_sizes(code, skew=18)
        large = minimum_buffer_sizes(code, skew=40)
        x_small = next(b for b in small if b.channel is Channel.X)
        x_large = next(b for b in large if b.channel is Channel.X)
        assert x_large.required >= x_small.required

    def test_overflow_reported(self):
        code = figure_6_4_program()
        with pytest.raises(QueueOverflowError) as excinfo:
            check_buffers(code, skew=18, queue_depth=1)
        assert excinfo.value.required > 1

    def test_paper_queue_fits(self):
        code = figure_6_4_program()
        requirements = check_buffers(code, skew=18, queue_depth=128)
        assert all(r.required <= 128 for r in requirements)
