"""Tests for the machine simulator internals: queues, cell execution,
and the violation detectors."""

import numpy as np
import pytest

from repro.compiler import compile_w2
from repro.config import CellConfig, WarpConfig
from repro.errors import (
    HostDataError,
    QueueCapacityError,
    QueueUnderflowError,
)
from repro.machine import TimedQueue, simulate
from repro.machine.trace import format_two_cell_trace
from repro.programs import passthrough, polynomial


class TestTimedQueue:
    def test_fifo_order(self):
        q = TimedQueue("q")
        q.enqueue(0, 1.0)
        q.enqueue(1, 2.0)
        assert q.dequeue(5) == 1.0
        assert q.dequeue(5) == 2.0

    def test_same_cycle_transfer_allowed(self):
        q = TimedQueue("q")
        q.enqueue(3, 7.0)
        assert q.dequeue(3) == 7.0

    def test_underflow_on_early_dequeue(self):
        q = TimedQueue("q")
        q.enqueue(5, 1.0)
        with pytest.raises(QueueUnderflowError):
            q.dequeue(4)

    def test_underflow_on_empty(self):
        q = TimedQueue("q")
        with pytest.raises(QueueUnderflowError):
            q.dequeue(0)

    def test_nonmonotonic_enqueue_rejected(self):
        q = TimedQueue("q")
        q.enqueue(5, 1.0)
        with pytest.raises(ValueError):
            q.enqueue(4, 2.0)

    def test_capacity_audit(self):
        q = TimedQueue("q", capacity=2)
        for t in range(3):
            q.enqueue(t, float(t))
        for _ in range(3):
            q.dequeue(10)
        with pytest.raises(QueueCapacityError):
            q.audit_capacity()

    def test_occupancy_value(self):
        q = TimedQueue("q", capacity=8)
        q.enqueue(0, 1.0)
        q.enqueue(1, 2.0)
        q.dequeue(1)
        q.dequeue(2)
        assert q.audit_capacity() == 2


class TestSimulationChecks:
    def test_skew_too_small_underflows(self):
        """Forcing a smaller skew than computed must trip the underflow
        detector — this is the minimality of the skew, observed at run
        time."""
        program = compile_w2(polynomial(8, 3))
        assert program.skew.skew > 1
        object.__setattr__(program.skew, "skew", program.skew.skew - 1)
        rng = np.random.default_rng(0)
        with pytest.raises(QueueUnderflowError):
            simulate(
                program,
                {"z": rng.standard_normal(8), "c": rng.standard_normal(3)},
            )

    def test_input_too_large_rejected(self):
        program = compile_w2(passthrough(4, 2))
        with pytest.raises(HostDataError):
            simulate(program, {"din": np.zeros(9)})

    def test_missing_input_defaults_to_zero(self):
        program = compile_w2(passthrough(4, 2))
        result = simulate(program, {})
        assert np.all(result.outputs["dout"] == 0.0)

    def test_short_input_zero_padded(self):
        program = compile_w2(passthrough(4, 2))
        result = simulate(program, {"din": np.array([1.0, 2.0])})
        assert list(result.outputs["dout"]) == [1.0, 2.0, 0.0, 0.0]


class TestStatsAndTrace:
    def test_cell_start_times_follow_skew(self):
        program = compile_w2(polynomial(8, 4))
        rng = np.random.default_rng(1)
        result = simulate(
            program,
            {"z": rng.standard_normal(8), "c": rng.standard_normal(4)},
        )
        starts = [s.start_time for s in result.cell_stats]
        skew = program.skew.skew
        assert starts == [i * skew for i in range(4)]

    def test_op_counts(self):
        program = compile_w2(polynomial(8, 4))
        rng = np.random.default_rng(1)
        result = simulate(
            program,
            {"z": rng.standard_normal(8), "c": rng.standard_normal(4)},
        )
        stats = result.cell_stats[0]
        # Horner: one multiply and one add per data point.
        assert stats.mpy_ops == 8
        assert stats.alu_ops == 8
        assert stats.receives == 4 + 16  # coefficients + (z, y) pairs
        assert stats.sends == 4 + 16

    def test_trace_rendering(self):
        program = compile_w2(polynomial(8, 4))
        rng = np.random.default_rng(1)
        result = simulate(
            program,
            {"z": rng.standard_normal(8), "c": rng.standard_normal(4)},
            trace_limit=40,
        )
        text = format_two_cell_trace(result.trace)
        assert "Cell 0" in text and "receive" in text and "send" in text

    def test_queue_occupancy_within_analysis(self):
        """Observed peak occupancy must match the compile-time buffer
        requirement exactly (same definition, two implementations)."""
        program = compile_w2(polynomial(8, 4))
        rng = np.random.default_rng(1)
        result = simulate(
            program,
            {"z": rng.standard_normal(8), "c": rng.standard_normal(4)},
        )
        analysis = {str(b.channel): b.required for b in program.buffers}
        observed_x = max(
            v for k, v in result.queue_occupancy.items() if k.endswith(".X")
        )
        assert observed_x == analysis["X"]
