"""Tests for global flow summaries and communication-cycle analysis."""

import pytest

from repro.analysis import (
    analyze_communication,
    analyze_global_flow,
    eliminate_dead_writes,
)
from repro.ir import build_ir
from repro.ir.dag import OpKind
from repro.lang import analyze, parse_module
from repro.programs import (
    TABLE_7_1_PROGRAMS,
    bidirectional_cycle,
    bidirectional_exchange,
    passthrough,
    polynomial,
)


def lower(source):
    return build_ir(analyze(parse_module(source)))


class TestGlobalFlow:
    def test_read_write_summaries(self):
        ir = lower(polynomial(8, 3))
        info = analyze_global_flow(ir.tree)
        # coeff is written before the main loop and read inside it.
        coeff = next(n for n in info.read_scalars if n.endswith("coeff"))
        assert coeff in info.written_scalars

    def test_dead_writes_detected_and_removed(self):
        ir = lower(passthrough(6, 2))
        info = analyze_global_flow(ir.tree)
        assert info.dead_written_scalars  # 't' is written, never read
        removed = eliminate_dead_writes(ir.tree)
        assert removed == len(info.dead_written_scalars)
        info_after = analyze_global_flow(ir.tree)
        assert not info_after.written_scalars

    def test_live_write_preserved(self):
        # conv1d's xold is loop-carried: written and read in the loop.
        from repro.programs import conv1d

        ir = lower(conv1d(8, 3))
        eliminate_dead_writes(ir.tree)
        info = analyze_global_flow(ir.tree)
        assert any(n.endswith("xold") for n in info.written_scalars)

    def test_array_summaries(self):
        from repro.programs import matmul

        ir = lower(matmul(4, 2))
        info = analyze_global_flow(ir.tree)
        bcol = next(a for a in info.array_stores if a.endswith("bcol"))
        assert bcol in info.array_loads


class TestCommunicationGraph:
    def test_figure_5_1_program_a_no_cycles(self):
        """Unrelated bidirectional traffic: acyclic, hence mappable."""
        ir = lower(bidirectional_exchange())
        report = analyze_communication(ir.tree)
        assert not report.has_right_cycles
        assert not report.has_left_cycles
        assert report.is_mappable
        assert report.is_bidirectional

    def test_figure_5_1_program_b_both_cycles(self):
        """Forwarding in both directions: right and left cycles, not
        mappable onto the skewed model."""
        ir = lower(bidirectional_cycle())
        report = analyze_communication(ir.tree)
        assert report.has_right_cycles
        assert report.has_left_cycles
        assert not report.is_mappable

    def test_pipeline_has_right_cycle_only(self):
        ir = lower(passthrough(6, 3))
        report = analyze_communication(ir.tree)
        assert report.has_right_cycles
        assert not report.has_left_cycles
        assert report.is_mappable
        assert report.is_unidirectional_lr

    @pytest.mark.parametrize("name", list(TABLE_7_1_PROGRAMS))
    def test_paper_programs_unidirectional(self, name):
        ir = lower(TABLE_7_1_PROGRAMS[name]())
        report = analyze_communication(ir.tree)
        assert report.is_unidirectional_lr
        assert report.is_mappable

    def test_cycle_through_memory_flow(self):
        """A value forwarded through a cell array still forms a right
        cycle (store -> load flow is tracked)."""
        src = """
module m (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 1)
begin
    float t, buf[2];
    int i;
    for i := 0 to 3 do begin
        receive (L, X, t, a[i]);
        buf[0] := t;
        send (R, X, buf[0] + 0.0, b[i]);
    end;
end
"""
        ir = lower(src)
        report = analyze_communication(ir.tree)
        assert report.has_right_cycles

    def test_constant_sender_no_cycle(self):
        src = """
module m (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 1)
begin
    float t;
    int i;
    for i := 0 to 3 do begin
        receive (L, X, t, a[i]);
        send (R, X, 1.0, b[i]);
    end;
end
"""
        ir = lower(src)
        report = analyze_communication(ir.tree)
        assert not report.has_right_cycles
        assert not report.has_left_cycles
