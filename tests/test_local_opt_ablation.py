"""Tests for the local-optimisation toggle (ablation support)."""

import numpy as np

from repro.compiler import compile_w2
from repro.machine import simulate
from repro.programs import colorseg, polynomial


class TestToggle:
    CHAIN = """
module chain (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 0)
begin
    float t;
    int i;
    for i := 0 to 3 do begin
        receive (L, X, t, a[i]);
        send (R, X, t*1.0 + (2.0 - 2.0) + ((t + 1.0) + 2.0) + 3.0, b[i]);
    end;
end
"""

    def test_results_identical_up_to_rounding(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal(4)
        with_opt = simulate(compile_w2(self.CHAIN), {"a": data})
        without = simulate(
            compile_w2(self.CHAIN, local_opt=False), {"a": data}
        )
        assert np.allclose(with_opt.outputs["b"], without.outputs["b"])

    def test_optimised_is_never_slower(self):
        for source in (self.CHAIN, polynomial(24, 4), colorseg(6, 4, 3)):
            fast = compile_w2(source)
            slow = compile_w2(source, local_opt=False)
            assert fast.cell_code.total_cycles <= slow.cell_code.total_cycles

    def test_folding_removes_arithmetic(self):
        fast = compile_w2(self.CHAIN)
        slow = compile_w2(self.CHAIN, local_opt=False)
        assert fast.metrics.cell_ucode < slow.metrics.cell_ucode

    def test_unoptimised_still_correct_on_suite(self, program_suite):
        for name, source, inputs, reference in program_suite[:4]:
            program = compile_w2(source, local_opt=False)
            result = simulate(program, inputs)
            for array, values in reference(inputs).items():
                assert np.allclose(
                    result.outputs[array][: len(values)], values
                ), f"{name} (local_opt=False)"
