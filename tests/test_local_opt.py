"""Tests for local optimisations: folding, algebra, height reduction."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import local_opt
from repro.ir.dag import Dag, OpKind


def fold2(dag, op, a, b):
    result = local_opt.fold(dag, op, (a, b))
    if result is None:
        result = dag.pure(op, a, b)
    return result


class TestConstantFolding:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (OpKind.FADD, 2.0, 3.0, 5.0),
            (OpKind.FSUB, 2.0, 3.0, -1.0),
            (OpKind.FMUL, 2.0, 3.0, 6.0),
            (OpKind.FDIV, 3.0, 2.0, 1.5),
            (OpKind.CMP_LT, 1.0, 2.0, 1.0),
            (OpKind.CMP_GE, 1.0, 2.0, 0.0),
            (OpKind.BAND, 1.0, 0.0, 0.0),
            (OpKind.BOR, 1.0, 0.0, 1.0),
        ],
    )
    def test_binary_folds(self, op, a, b, expected):
        dag = Dag()
        node = fold2(dag, op, dag.const(a), dag.const(b))
        assert node.op is OpKind.CONST
        assert node.attr == expected

    def test_division_by_zero_not_folded(self):
        dag = Dag()
        node = fold2(dag, OpKind.FDIV, dag.const(1.0), dag.const(0.0))
        assert node.op is OpKind.FDIV

    def test_unary_fold(self):
        dag = Dag()
        node = local_opt.fold(dag, OpKind.FNEG, (dag.const(4.0),))
        assert node.attr == -4.0

    def test_select_on_constant_condition(self):
        dag = Dag()
        a, b = dag.read("a"), dag.read("b")
        chosen = local_opt.fold(dag, OpKind.SELECT, (dag.const(1.0), a, b))
        assert chosen is a


class TestAlgebraicIdentities:
    def test_add_zero(self):
        dag = Dag()
        a = dag.read("a")
        assert fold2(dag, OpKind.FADD, a, dag.const(0.0)) is a
        assert fold2(dag, OpKind.FADD, dag.const(0.0), a) is a

    def test_mul_one(self):
        dag = Dag()
        a = dag.read("a")
        assert fold2(dag, OpKind.FMUL, a, dag.const(1.0)) is a

    def test_mul_zero(self):
        dag = Dag()
        a = dag.read("a")
        node = fold2(dag, OpKind.FMUL, a, dag.const(0.0))
        assert node.op is OpKind.CONST and node.attr == 0.0

    def test_sub_self_is_zero(self):
        dag = Dag()
        a = dag.read("a")
        node = fold2(dag, OpKind.FSUB, a, a)
        assert node.attr == 0.0

    def test_div_one(self):
        dag = Dag()
        a = dag.read("a")
        assert fold2(dag, OpKind.FDIV, a, dag.const(1.0)) is a

    def test_double_negation(self):
        dag = Dag()
        a = dag.read("a")
        neg = dag.pure(OpKind.FNEG, a)
        assert local_opt.fold(dag, OpKind.FNEG, (neg,)) is a

    def test_idempotent_and(self):
        dag = Dag()
        a = dag.read("a")
        assert fold2(dag, OpKind.BAND, a, a) is a

    def test_idempotent_or(self):
        dag = Dag()
        a = dag.read("a")
        assert fold2(dag, OpKind.BOR, a, a) is a

    def test_not_of_compare_inverts(self):
        dag = Dag()
        a, b = dag.read("a"), dag.read("b")
        le = dag.pure(OpKind.CMP_LE, a, b)
        inverted = local_opt.fold(dag, OpKind.BNOT, (le,))
        assert inverted.op is OpKind.CMP_GT

    def test_select_same_arms(self):
        dag = Dag()
        c, a = dag.read("c"), dag.read("a")
        assert local_opt.fold(dag, OpKind.SELECT, (c, a, a)) is a


class TestHeightReduction:
    def _chain(self, dag, op, n):
        node = dag.read("x0")
        for i in range(1, n):
            node = fold2(dag, op, node, dag.read(f"x{i}"))
        return node

    @pytest.mark.parametrize("op", [OpKind.FADD, OpKind.FMUL])
    def test_chain_depth_is_logarithmic(self, op):
        dag = Dag()
        node = self._chain(dag, op, 16)
        depth = local_opt.depth(dag, node)
        assert depth <= 6  # a linear chain would be depth 15

    def test_subtraction_chain_not_reassociated(self):
        dag = Dag()
        node = dag.read("x0")
        for i in range(1, 8):
            node = fold2(dag, OpKind.FSUB, node, dag.read(f"x{i}"))
        assert local_opt.depth(dag, node) == 7


class TestEvaluatePure:
    @given(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_python_semantics(self, a, b):
        assert local_opt.evaluate_pure(OpKind.FADD, [a, b]) == a + b
        assert local_opt.evaluate_pure(OpKind.FSUB, [a, b]) == a - b
        assert local_opt.evaluate_pure(OpKind.CMP_LE, [a, b]) == (
            1.0 if a <= b else 0.0
        )

    def test_select_semantics(self):
        assert local_opt.evaluate_pure(OpKind.SELECT, [1.0, 5.0, 7.0]) == 5.0
        assert local_opt.evaluate_pure(OpKind.SELECT, [0.0, 5.0, 7.0]) == 7.0

    def test_bnot(self):
        assert local_opt.evaluate_pure(OpKind.BNOT, [0.0]) == 1.0
        assert local_opt.evaluate_pure(OpKind.BNOT, [3.0]) == 0.0


class TestFoldedEvaluationConsistency:
    """Folding must agree with evaluate_pure for every op it folds."""

    @given(
        st.sampled_from(
            [
                OpKind.FADD,
                OpKind.FSUB,
                OpKind.FMUL,
                OpKind.CMP_EQ,
                OpKind.CMP_NE,
                OpKind.CMP_LT,
                OpKind.CMP_LE,
                OpKind.CMP_GT,
                OpKind.CMP_GE,
                OpKind.BAND,
                OpKind.BOR,
            ]
        ),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=300, deadline=None)
    def test_fold_equals_evaluate(self, op, a, b):
        dag = Dag()
        node = fold2(dag, op, dag.const(a), dag.const(b))
        expected = local_opt.evaluate_pure(op, [a, b])
        if math.isfinite(expected):
            assert node.op is OpKind.CONST
            assert node.attr == expected
