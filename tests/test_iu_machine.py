"""Tests for IU lowering and the IU register-machine executor.

The strength-reduction loop is closed here: the planner's direct affine
evaluation and the lowered add/subtract-only register machine must
produce identical address streams for every program.
"""

import pytest

from repro.compiler import compile_w2
from repro.config import IUConfig, WarpConfig
from repro.iucodegen import lower_iu_program
from repro.iucodegen.isa import IUOp, IUOpKind, IUReg
from repro.iucodegen.lower import LoweredBlock, LoweredIUProgram, LoweredLoop
from repro.machine.iu_machine import IUMachine, TableOrderError, run_iu_program
from repro.programs import conv2d, matmul

MEMORY_HEAVY = """
module m (a in, b out)
float a[24];
float b[24];
cellprogram (cid : 0 : 0)
begin
    float t, w[24];
    int i, j;
    for i := 0 to 5 do
        for j := 0 to 3 do begin
            receive (L, X, t, a[4*i + j]);
            w[4*i + j] := t;
        end;
    for i := 0 to 23 do
        send (R, X, w[i] * 2.0, b[i]);
end
"""


def _expected(program):
    return [addr for _, _, addr in program.iu_program.emission_times()]


class TestLoweringEquivalence:
    @pytest.mark.parametrize(
        "source",
        [MEMORY_HEAVY, matmul(8, 4), matmul(12, 3), conv2d(8, 6)],
        ids=["nested", "matmul8", "matmul12", "conv2d"],
    )
    def test_register_machine_matches_plan(self, source):
        program = compile_w2(source)
        lowered = lower_iu_program(program.iu_program)
        assert run_iu_program(lowered) == _expected(program)

    def test_unrolled_program_matches_too(self):
        program = compile_w2(matmul(8, 4), unroll=4)
        lowered = lower_iu_program(program.iu_program)
        assert run_iu_program(lowered) == _expected(program)

    def test_register_budget_respected(self):
        program = compile_w2(matmul(8, 4))
        lowered = lower_iu_program(program.iu_program)
        indices = [reg.index for reg in lowered.register_names.values()]
        indices += [reg.index for reg in lowered.scratch]
        assert indices and max(indices) < 16

    def test_prologue_initialises_every_register(self):
        program = compile_w2(MEMORY_HEAVY)
        lowered = lower_iu_program(program.iu_program)
        initialised = {
            op.dest.index for op in lowered.prologue if op.kind is IUOpKind.SETI
        }
        used = {reg.index for reg in lowered.register_names.values()}
        assert used <= initialised


class TestTableMemory:
    def _tiny(self, source):
        config = WarpConfig(iu=IUConfig(n_registers=1))
        program = compile_w2(source, config=config)
        lowered = lower_iu_program(program.iu_program, n_registers=1)
        return program, lowered

    SOURCE = MEMORY_HEAVY.replace(
        "send (R, X, w[i] * 2.0, b[i]);",
        "send (R, X, w[i] + w[23 - i], b[i]);",
    )

    def test_table_contents_in_consumption_order(self):
        program, lowered = self._tiny(self.SOURCE)
        assert program.iu_program.table_expressions
        assert run_iu_program(lowered) == _expected(program)

    def test_sequential_only_access_enforced(self):
        _, lowered = self._tiny(self.SOURCE)
        machine = IUMachine(lowered)
        machine.state.table_cursor = len(lowered.table)
        with pytest.raises(TableOrderError):
            machine._execute(IUOp(IUOpKind.EMIT_TABLE))

    def test_leftover_table_entries_detected(self):
        lowered = LoweredIUProgram(
            prologue=[],
            items=[],
            table=[1, 2, 3],
            register_names={},
            scratch=[],
        )
        machine = IUMachine(lowered)
        machine.state.table_cursor = 1  # consumed one of three
        with pytest.raises(TableOrderError):
            machine.run()


class TestLoweredStructure:
    def test_boundary_ops_include_loop_test(self):
        program = compile_w2(MEMORY_HEAVY)
        lowered = lower_iu_program(program.iu_program)

        def loops(items):
            for item in items:
                if isinstance(item, LoweredLoop):
                    yield item
                    yield from loops(item.body)

        for loop in loops(lowered.items):
            kinds = [op.kind for op in loop.boundary_ops]
            assert kinds[-1] is IUOpKind.LOOP_TEST

    def test_static_op_count_reported(self):
        program = compile_w2(matmul(8, 4))
        lowered = lower_iu_program(program.iu_program)
        assert lowered.n_static_ops > 0

    def test_emit_ops_only_in_blocks(self):
        program = compile_w2(MEMORY_HEAVY)
        lowered = lower_iu_program(program.iu_program)

        def check(items):
            for item in items:
                if isinstance(item, LoweredBlock):
                    continue
                for op in item.boundary_ops + item.exit_ops:
                    assert op.kind is not IUOpKind.EMIT
                check(item.body)

        check(lowered.items)
