"""End-to-end tests: compile + simulate every program, comparing against
closed-form numpy references AND the independent AST interpreter."""

import numpy as np
import pytest

from repro.compiler import compile_w2
from repro.lang import analyze, parse_module
from repro.machine import interpret, simulate


class TestAgainstNumpyReferences:
    def test_all_programs(self, program_suite):
        for name, source, inputs, reference in program_suite:
            program = compile_w2(source)
            result = simulate(program, inputs)
            expected = reference(inputs)
            for array, values in expected.items():
                got = result.outputs[array][: len(values)]
                assert np.allclose(got, values), (
                    f"{name}: output {array} mismatches"
                )


class TestAgainstReferenceInterpreter:
    def test_all_programs(self, program_suite):
        for name, source, inputs, _reference in program_suite:
            analyzed = analyze(parse_module(source))
            expected = interpret(analyzed, inputs)
            program = compile_w2(source)
            result = simulate(program, inputs)
            for array in result.outputs:
                assert np.allclose(
                    result.outputs[array], expected[array]
                ), f"{name}: {array} differs from the reference interpreter"


class TestInterpreterAgainstNumpy:
    def test_all_programs(self, program_suite):
        for name, source, inputs, reference in program_suite:
            analyzed = analyze(parse_module(source))
            outputs = interpret(analyzed, inputs)
            for array, values in reference(inputs).items():
                assert np.allclose(
                    outputs[array][: len(values)], values
                ), f"{name}: interpreter output {array} mismatches"


class TestSimulationInvariants:
    def test_no_queue_exceeds_depth(self, program_suite):
        for name, source, inputs, _ in program_suite:
            program = compile_w2(source)
            result = simulate(program, inputs)
            for queue, occupancy in result.queue_occupancy.items():
                limit = (
                    program.config.address_queue_depth
                    if queue.startswith("adr")
                    else program.config.queue_depth
                )
                assert occupancy <= limit, f"{name}: {queue}"

    def test_total_time_is_skew_plus_program(self, program_suite):
        for name, source, inputs, _ in program_suite:
            program = compile_w2(source)
            result = simulate(program, inputs)
            expected = (
                program.skew.skew * (program.n_cells - 1)
                + program.cell_code.total_cycles
            )
            assert result.total_cycles == expected, name

    def test_determinism(self, program_suite):
        name, source, inputs, _ = program_suite[0]
        program = compile_w2(source)
        first = simulate(program, inputs)
        second = simulate(program, inputs)
        for array in first.outputs:
            assert np.array_equal(first.outputs[array], second.outputs[array])


class TestLargerInstances:
    def test_polynomial_paper_size(self):
        """The Figure 4-1 configuration: 10 coefficients, 100 points."""
        from repro.programs import polynomial

        rng = np.random.default_rng(7)
        z = rng.uniform(-1, 1, 100)
        c = rng.standard_normal(10)
        program = compile_w2(polynomial(100, 10))
        result = simulate(program, {"z": z, "c": c})
        assert np.allclose(result.outputs["results"], np.polyval(c, z))

    def test_conv1d_kernel9(self):
        """The Table 7-1 configuration: kernel size 9 (reduced points)."""
        from repro.programs import conv1d

        rng = np.random.default_rng(8)
        x = rng.standard_normal(120)
        w = rng.standard_normal(9)
        program = compile_w2(conv1d(120, 9))
        result = simulate(program, {"x": x, "w": w})
        assert np.allclose(result.outputs["y"], np.convolve(x, w)[:120])

    def test_matmul_16x16_on_8_cells(self):
        from repro.programs import matmul

        rng = np.random.default_rng(9)
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        program = compile_w2(matmul(16, 8))
        result = simulate(program, {"a": a, "b": b})
        assert np.allclose(result.output("c", (16, 16)), a @ b)

    def test_mandelbrot_paper_size(self):
        """32x32, 4 iterations, one cell — the Table 7-1 instance."""
        from repro.programs import mandelbrot

        xs = np.linspace(-2.0, 1.0, 32)
        ys = np.linspace(-1.5, 1.5, 32)
        cx, cy = np.meshgrid(xs, ys)
        cx, cy = cx.ravel(), cy.ravel()
        program = compile_w2(mandelbrot(32, 32, 4))
        result = simulate(program, {"cx": cx, "cy": cy})
        counts = np.zeros_like(cx)
        zr = np.zeros_like(cx)
        zi = np.zeros_like(cy)
        for _ in range(4):
            mag = zr * zr + zi * zi
            new_zr = zr * zr - zi * zi + cx
            zi = 2.0 * zr * zi + cy
            zr = new_zr
            counts += mag <= 4.0
        assert np.allclose(result.outputs["counts"], counts)
