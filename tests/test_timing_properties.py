"""Property-based tests of the timing theory over random program shapes.

Random loop trees with random I/O placements drive the five-vector
characterisation, the tau functions and the skew/buffer analyses; every
analytic result is checked against brute-force event enumeration.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import Channel
from repro.timing import (
    TimingFunction,
    characterize_stream,
    count_stream_events,
    input_stream,
    minimum_buffer_sizes,
    minimum_skew_bound,
    minimum_skew_exact,
    occupancy_requirement,
    output_stream,
    stream_event_times,
    stream_times_by_statement,
)
from repro.timing.synthetic import SynthBlock, SynthLoop, build_program


@st.composite
def synth_blocks(draw):
    length = draw(st.integers(min_value=1, max_value=6))
    n_events = draw(st.integers(min_value=0, max_value=min(3, length)))
    cycles = sorted(
        draw(
            st.lists(
                st.integers(0, length - 1),
                min_size=n_events,
                max_size=n_events,
                unique=True,
            )
        )
    )
    events = [
        (draw(st.sampled_from(["in", "out"])), cycle) for cycle in cycles
    ]
    return SynthBlock(length=length, events=events)


@st.composite
def synth_items(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        return draw(synth_blocks())
    trip = draw(st.integers(min_value=1, max_value=4))
    n_children = draw(st.integers(min_value=1, max_value=2))
    body = [draw(synth_items(depth=depth + 1)) for _ in range(n_children)]
    return SynthLoop(trip=trip, body=body)


@st.composite
def synth_programs(draw):
    n_items = draw(st.integers(min_value=1, max_value=4))
    items = [draw(synth_items()) for _ in range(n_items)]
    return build_program(*items)


class TestTimingFunctionProperties:
    @given(synth_programs())
    @settings(max_examples=120, deadline=None)
    def test_tau_equals_enumeration(self, code):
        for stream in (input_stream(Channel.X), output_stream(Channel.X)):
            per_statement = stream_times_by_statement(code, stream)
            for char in characterize_stream(code, stream):
                tau = TimingFunction(char)
                domain = tau.domain()
                times = per_statement.get(char.io_index)
                assert times is not None
                assert [tau(n) for n in domain] == list(times)

    @given(synth_programs())
    @settings(max_examples=120, deadline=None)
    def test_statement_domains_partition_the_stream(self, code):
        """Every stream ordinal belongs to exactly one statement."""
        for stream in (input_stream(Channel.X), output_stream(Channel.X)):
            total = count_stream_events(code.items, stream)
            seen: set[int] = set()
            for char in characterize_stream(code, stream):
                domain = set(TimingFunction(char).domain())
                assert not (domain & seen)
                seen |= domain
            assert seen == set(range(total))

    @given(synth_programs())
    @settings(max_examples=120, deadline=None)
    def test_event_times_strictly_increasing(self, code):
        for stream in (input_stream(Channel.X), output_stream(Channel.X)):
            times = stream_event_times(code, stream)
            assert (np.diff(times) > 0).all() if times.size > 1 else True


class TestSkewProperties:
    @given(synth_programs())
    @settings(max_examples=150, deadline=None)
    def test_bound_dominates_exact(self, code):
        sends = stream_event_times(code, output_stream(Channel.X))
        recvs = stream_event_times(code, input_stream(Channel.X))
        if recvs.size > sends.size or recvs.size == 0:
            return  # unbalanced programs are rejected elsewhere
        exact = minimum_skew_exact(code, Channel.X)
        bound = minimum_skew_bound(code, Channel.X)
        assert exact.skew >= 0  # clamped: a no-constraint channel is 0
        assert bound.skew >= exact.skew

    @given(synth_programs())
    @settings(max_examples=150, deadline=None)
    def test_exact_skew_is_minimal(self, code):
        """At the exact skew every receive follows its send; one cycle
        less and some receive precedes it."""
        sends = stream_event_times(code, output_stream(Channel.X))
        recvs = stream_event_times(code, input_stream(Channel.X))
        if recvs.size > sends.size or recvs.size == 0:
            return
        skew = minimum_skew_exact(code, Channel.X).skew
        matched = sends[: recvs.size]
        assert (matched <= recvs + skew).all()
        if skew > 0:
            # Minimality only when the zero-clamp did not engage: at
            # skew 0 the channel may have slack (all sends early).
            assert not (matched <= recvs + skew - 1).all()

    @given(st.data())
    @settings(max_examples=150, deadline=None)
    def test_occupancy_residual_accounting(self, data):
        """Direct-array occupancy with strictly fewer receives than
        sends: the residual items left behind are accounted exactly."""
        sends = np.asarray(
            sorted(
                data.draw(
                    st.lists(
                        st.integers(0, 50),
                        min_size=1,
                        max_size=12,
                        unique=True,
                    ),
                    label="sends",
                )
            ),
            dtype=np.int64,
        )
        m = data.draw(st.integers(0, sends.size - 1), label="n_recvs")
        recvs = np.asarray(
            sorted(
                data.draw(
                    st.lists(
                        st.integers(0, 50),
                        min_size=m,
                        max_size=m,
                        unique=True,
                    ),
                    label="recvs",
                )
            ),
            dtype=np.int64,
        )
        extra = data.draw(st.integers(0, 8), label="extra_skew")
        feasible = max(0, int((sends[:m] - recvs).max())) if m else 0
        skew = feasible + extra
        required = occupancy_requirement(sends, recvs, skew)
        assert required >= sends.size - recvs.size  # the residual floor
        events = [(int(t), 1) for t in sends] + [
            (int(t) + skew, -1) for t in recvs
        ]
        events.sort(key=lambda e: (e[0], -e[1]))
        occupancy = peak = 0
        for _t, delta in events:
            occupancy += delta
            peak = max(peak, occupancy)
        assert peak == required

    @given(synth_programs(), st.integers(min_value=0, max_value=10))
    @settings(max_examples=100, deadline=None)
    def test_buffer_requirement_is_exact(self, code, extra_skew):
        """The computed occupancy is achieved and never exceeded in an
        explicit queue replay."""
        sends = stream_event_times(code, output_stream(Channel.X))
        recvs = stream_event_times(code, input_stream(Channel.X))
        if recvs.size > sends.size or recvs.size == 0 or sends.size == 0:
            return
        skew = minimum_skew_exact(code, Channel.X).skew + extra_skew
        required = occupancy_requirement(sends, recvs, skew)
        # Replay: walk a merged timeline counting queue occupancy.
        events = [(t, 1) for t in sends] + [(t + skew, -1) for t in recvs]
        # At equal times, the send lands before the receive consumes.
        events.sort(key=lambda e: (e[0], -e[1]))
        occupancy = 0
        peak = 0
        for _t, delta in events:
            occupancy += delta
            peak = max(peak, occupancy)
        assert peak == required
