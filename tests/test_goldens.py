"""Golden-file tests for the cell microcode listings.

Three fixed small programs are compiled and their
:func:`repro.cellcodegen.listing.format_cell_code` output compared
*character for character* against ``tests/goldens/*.listing``.  Any
change to scheduling, register allocation or the listing format shows
up as a diff here; run ``pytest --update-goldens`` to accept an
intentional change and review the new files in the commit.
"""

from __future__ import annotations

import difflib
from pathlib import Path

import pytest

from repro.cellcodegen.listing import format_cell_code
from repro.compiler import compile_w2
from repro.programs import conv1d, conv2d, passthrough, polynomial

GOLDENS_DIR = Path(__file__).resolve().parent / "goldens"

#: name -> (W2 source, compile kwargs).  Parameters are pinned: goldens
#: are exact artefacts, not families.
GOLDEN_PROGRAMS = {
    "polynomial_8x3": (polynomial(8, 3), {}),
    "conv1d_12x3": (conv1d(12, 3), {}),
    "passthrough_8x2_unroll2": (passthrough(8, 2), {"unroll": 2}),
    # The fault-matrix conv2d variant: its ring-buffer schedule is the
    # regression surface for same-cycle IU address ordering.
    "conv2d_6x5": (conv2d(6, 5), {}),
}


@pytest.mark.parametrize("name", sorted(GOLDEN_PROGRAMS))
def test_listing_matches_golden(name, update_goldens):
    source, kwargs = GOLDEN_PROGRAMS[name]
    program = compile_w2(source, **kwargs)
    listing = format_cell_code(program.cell_code) + "\n"
    golden_path = GOLDENS_DIR / f"{name}.listing"

    if update_goldens:
        GOLDENS_DIR.mkdir(exist_ok=True)
        golden_path.write_text(listing)
        return

    assert golden_path.exists(), (
        f"missing golden {golden_path.name}; run pytest --update-goldens"
    )
    expected = golden_path.read_text()
    if listing != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected.splitlines(),
                listing.splitlines(),
                fromfile=f"goldens/{name}.listing",
                tofile="current output",
                lineterm="",
            )
        )
        pytest.fail(
            f"listing for {name} changed (run pytest --update-goldens "
            f"if intentional):\n{diff}"
        )


def test_goldens_directory_has_no_strays():
    """Every golden on disk corresponds to a case above (catches
    renamed cases leaving stale files behind)."""
    expected = {f"{name}.listing" for name in GOLDEN_PROGRAMS}
    actual = {path.name for path in GOLDENS_DIR.glob("*.listing")}
    assert actual == expected
