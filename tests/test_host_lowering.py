"""Tests for host transfer-descriptor lowering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_w2
from repro.hostcodegen import (
    BlockTransfer,
    HostValueRef,
    LiteralRun,
    compress_sequence,
    lower_input_program,
    lower_output_program,
    transfer_statistics,
)
from repro.lang import Channel
from repro.programs import TABLE_7_1_PROGRAMS, conv2d, matmul, polynomial


def ref(array=None, index=None, literal=None):
    return HostValueRef(array, index, literal)


def expand_tuples(program):
    return [(r.array, r.flat_index, r.literal) for r in program.expand()]


def tuples(refs):
    return [(r.array, r.flat_index, r.literal) for r in refs]


class TestCompression:
    def test_contiguous_run_is_one_descriptor(self):
        refs = [ref("a", i) for i in range(10)]
        program = compress_sequence(Channel.X, refs)
        assert program.ops == [BlockTransfer("a", 0, 1, 10)]

    def test_strided_run(self):
        refs = [ref("a", i) for i in range(0, 30, 3)]
        program = compress_sequence(Channel.X, refs)
        assert program.ops == [BlockTransfer("a", 0, 3, 10)]

    def test_descending_run(self):
        refs = [ref("a", i) for i in (9, 8, 7, 6)]
        program = compress_sequence(Channel.X, refs)
        assert program.ops == [BlockTransfer("a", 9, -1, 4)]

    def test_literal_run(self):
        refs = [ref(literal=0.0)] * 5
        program = compress_sequence(Channel.Y, refs)
        assert program.ops == [LiteralRun(0.0, 5)]

    def test_mixed_arrays_split(self):
        refs = [ref("a", 0), ref("a", 1), ref("b", 0), ref("b", 1)]
        program = compress_sequence(Channel.X, refs)
        arrays = [op.array for op in program.ops]
        assert arrays == ["a", "b"]

    def test_literal_value_change_splits_runs(self):
        refs = [ref(literal=0.0)] * 3 + [ref(literal=1.0)] * 2
        program = compress_sequence(Channel.X, refs)
        assert program.ops == [LiteralRun(0.0, 3), LiteralRun(1.0, 2)]

    def test_roundtrip_preserves_sequence(self):
        refs = [
            ref("a", 0),
            ref("a", 5),
            ref("a", 10),
            ref(literal=2.0),
            ref("b", 7),
        ]
        program = compress_sequence(Channel.X, refs)
        assert expand_tuples(program) == tuples(refs)


class TestOnCompiledPrograms:
    @pytest.mark.parametrize(
        "source",
        [polynomial(40, 5), matmul(8, 4), conv2d(8, 6)],
        ids=["polynomial", "matmul", "conv2d"],
    )
    def test_input_roundtrip(self, source):
        program = compile_w2(source)
        for channel in (Channel.X, Channel.Y):
            lowered = lower_input_program(program.host_program, channel)
            original = list(program.host_program.input_sequence(channel))
            assert expand_tuples(lowered) == tuples(original)

    def test_output_includes_discards_as_padding(self):
        program = compile_w2(polynomial(12, 4))
        lowered = lower_output_program(program.host_program, Channel.X)
        # Polynomial's X outputs are all discards (forwarded stream).
        assert all(isinstance(op, LiteralRun) for op in lowered.ops)
        assert lowered.total_words == program.host_program.output_count(
            Channel.X
        )

    def test_polynomial_feed_is_two_descriptors(self):
        """Coefficients then data points: two contiguous blocks."""
        program = compile_w2(polynomial(40, 5))
        lowered = lower_input_program(program.host_program, Channel.X)
        blocks = [op for op in lowered.ops if isinstance(op, BlockTransfer)]
        assert len(blocks) == 2
        assert blocks[0].array == "c" and blocks[1].array == "z"

    def test_statistics(self):
        program = compile_w2(polynomial(40, 5))
        lowered = lower_input_program(program.host_program, Channel.X)
        stats = transfer_statistics(lowered)
        assert stats.words == 45
        assert stats.compression > 10


@st.composite
def random_sequences(draw):
    refs = []
    for _ in range(draw(st.integers(0, 30))):
        if draw(st.booleans()):
            refs.append(
                ref(
                    draw(st.sampled_from(["a", "b"])),
                    draw(st.integers(0, 40)),
                )
            )
        else:
            refs.append(ref(literal=float(draw(st.integers(0, 2)))))
    return refs


class TestRoundTripProperty:
    @given(random_sequences())
    @settings(max_examples=200, deadline=None)
    def test_expand_inverts_compress(self, refs):
        program = compress_sequence(Channel.X, refs)
        assert expand_tuples(program) == tuples(refs)
