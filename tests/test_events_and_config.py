"""Tests for stream-event enumeration budgets, configuration objects,
and the error hierarchy."""

import dataclasses

import numpy as np
import pytest

from repro import errors
from repro.compiler import compile_w2
from repro.config import DEFAULT_CONFIG, CellConfig, IUConfig, WarpConfig
from repro.lang import Channel
from repro.programs import polynomial
from repro.timing import (
    TooManyEventsError,
    count_stream_events,
    stream_event_times,
    stream_times_by_statement,
)
from repro.timing.synthetic import block, build_program, loop
from repro.timing.vectors import input_stream, output_stream


class TestEventBudgets:
    def test_budget_enforced(self):
        code = build_program(loop(1000, block(2, ("in", 0))))
        with pytest.raises(TooManyEventsError):
            stream_event_times(code, input_stream(Channel.X), max_events=100)

    def test_budget_none_means_unlimited(self):
        code = build_program(loop(1000, block(2, ("in", 0))))
        times = stream_event_times(code, input_stream(Channel.X), max_events=None)
        assert times.size == 1000

    def test_by_statement_budget(self):
        code = build_program(loop(1000, block(2, ("in", 0))))
        with pytest.raises(TooManyEventsError):
            stream_times_by_statement(
                code, input_stream(Channel.X), max_events=10
            )

    def test_counts_are_cheap_and_exact(self):
        code = build_program(
            loop(7, loop(11, block(3, ("in", 0), ("out", 2)))),
            block(2, ("out", 1)),
        )
        assert count_stream_events(code.items, input_stream(Channel.X)) == 77
        assert count_stream_events(code.items, output_stream(Channel.X)) == 78

    def test_empty_stream(self):
        code = build_program(block(3))
        assert stream_event_times(code, input_stream(Channel.X)).size == 0

    def test_auto_skew_falls_back_to_bound(self):
        """With a tiny enumeration budget, compute_skew switches to the
        closed-form bound and still produces a safe skew."""
        from repro.machine import simulate
        from repro.timing import compute_skew

        program = compile_w2(polynomial(40, 4), skew_method="auto")
        bounded = compute_skew(
            program.cell_code, method="auto", max_events=4, n_cells=4
        )
        assert bounded.skew >= program.skew.skew
        assert any(c.method == "bound" for c in bounded.channels)
        # The (possibly larger) bound skew must still simulate cleanly.
        object.__setattr__(program.skew, "skew", bounded.skew)
        rng = np.random.default_rng(0)
        simulate(
            program,
            {"z": rng.uniform(-1, 1, 40), "c": rng.standard_normal(4)},
        )


class TestConfigs:
    def test_defaults_match_paper(self):
        assert DEFAULT_CONFIG.n_cells == 10
        assert DEFAULT_CONFIG.queue_depth == 128
        assert DEFAULT_CONFIG.cell.memory_words == 4096
        assert DEFAULT_CONFIG.cell.fpu_stages == 5
        assert DEFAULT_CONFIG.iu.n_registers == 16
        assert DEFAULT_CONFIG.iu.table_words == 32768
        assert DEFAULT_CONFIG.iu.loop_test_cycles == 3

    def test_configs_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CONFIG.n_cells = 5  # type: ignore[misc]
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CONFIG.cell.alu_latency = 1  # type: ignore[misc]

    def test_custom_config_flows_through(self):
        config = WarpConfig(cell=CellConfig(alu_latency=2, mpy_latency=2))
        program = compile_w2(polynomial(12, 3), config=config)
        baseline = compile_w2(polynomial(12, 3))
        assert program.cell_code.total_cycles < baseline.cell_code.total_cycles

    def test_machine_config_reexport(self):
        from repro.machine.config import CellConfig as ReExported

        assert ReExported is CellConfig


class TestErrorHierarchy:
    def test_compilation_errors(self):
        for cls in (
            errors.MappingError,
            errors.MemoryOverflowError,
            errors.IUDeadlineError,
            errors.TableOverflowError,
        ):
            assert issubclass(cls, errors.CompilationError)
        assert issubclass(errors.RegisterPressureError, errors.CompilationError)
        assert issubclass(errors.QueueOverflowError, errors.CompilationError)

    def test_simulation_errors(self):
        for cls in (
            errors.QueueUnderflowError,
            errors.QueueCapacityError,
            errors.HostDataError,
        ):
            assert issubclass(cls, errors.SimulationError)

    def test_queue_overflow_message(self):
        error = errors.QueueOverflowError("X", required=200, capacity=128)
        assert "200" in str(error) and "128" in str(error)

    def test_register_pressure_fields(self):
        error = errors.RegisterPressureError(needed=70, available=64)
        assert error.needed == 70 and error.available == 64
