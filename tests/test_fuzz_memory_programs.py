"""Property-based fuzzing of the memory/IU path.

Random W2 programs with cell-local arrays (affine subscripts over one or
two loop levels) are compiled and simulated against the reference
interpreter.  This drives the parts the scalar fuzzer cannot reach:
store-to-load forwarding, dependence-pruned memory ordering, IU address
generation, strength reduction, and the address-queue timing across
skewed cells.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_w2
from repro.iucodegen import lower_iu_program
from repro.lang import analyze, parse_module
from repro.machine import interpret, simulate
from repro.machine.iu_machine import run_iu_program


@st.composite
def memory_programs(draw):
    """A two-phase program: scatter the input into a cell array with a
    random affine pattern, then gather with another pattern."""
    n = draw(st.integers(2, 8))
    n_cells = draw(st.integers(1, 2))
    size = 4 * n  # roomy enough for any pattern below
    scatter_scale = draw(st.integers(1, 3))
    scatter_offset = draw(st.integers(0, 3))
    gather_scale = draw(st.integers(1, 3))
    gather_offset = draw(st.integers(0, 3))
    reverse = draw(st.booleans())
    gather_var = f"{n - 1} - i" if reverse else "i"
    extra_store = draw(st.booleans())
    extra = (
        f"w[{scatter_scale}*i + {scatter_offset + 1}] := t * 0.5;"
        if extra_store and scatter_scale >= 2
        else ""
    )
    source = f"""
module fuzzmem (a in, b out)
float a[{n}];
float b[{n}];
cellprogram (cid : 0 : {n_cells - 1})
begin
    float t, w[{size}];
    int i;
    for i := 0 to {size - 1} do
        w[i] := 0.0;
    for i := 0 to {n - 1} do begin
        receive (L, X, t, a[i]);
        w[{scatter_scale}*i + {scatter_offset}] := t;
        {extra}
        send (R, X, t);
    end;
    for i := 0 to {n - 1} do begin
        receive (L, Y, t, 0.0);
        send (R, Y, t + w[{gather_scale}*({gather_var}) + {gather_offset}], b[i]);
    end;
end
"""
    return source, n


class TestMemoryFuzz:
    @given(memory_programs(), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_simulator_matches_interpreter(self, case, seed):
        source, n = case
        rng = np.random.default_rng(seed)
        inputs = {"a": rng.uniform(-3, 3, n)}
        expected = interpret(analyze(parse_module(source)), inputs)
        program = compile_w2(source)
        result = simulate(program, inputs)
        assert np.allclose(result.outputs["b"], expected["b"]), source

    @given(memory_programs())
    @settings(max_examples=30, deadline=None)
    def test_iu_machine_matches_plan(self, case):
        source, _n = case
        program = compile_w2(source)
        lowered = lower_iu_program(program.iu_program)
        expected = [
            address for _, _, address in program.iu_program.emission_times()
        ]
        assert run_iu_program(lowered) == expected

    @given(memory_programs(), st.sampled_from([2, 4]))
    @settings(max_examples=25, deadline=None)
    def test_unrolled_variant_agrees(self, case, unroll):
        source, n = case
        rng = np.random.default_rng(n)
        inputs = {"a": rng.uniform(-3, 3, n)}
        baseline = simulate(compile_w2(source), inputs)
        unrolled = simulate(compile_w2(source, unroll=unroll), inputs)
        assert np.allclose(unrolled.outputs["b"], baseline.outputs["b"])
