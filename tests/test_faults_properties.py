"""Property tests over random injection plans.

Two properties, both direct consequences of the design:

* **No silent wrong answers.**  For *any* seed-derived
  :class:`~repro.faults.InjectionPlan`, a run either completes with
  outputs bit-identical to the clean run or raises a structured
  :class:`~repro.errors.SimulationError`.  There is no third outcome.
* **The Section 6.2.2 bound is exact.**  For every bundled matrix
  program, shrinking an inner X queue to the compile-time requirement
  never overflows (and changes nothing), while requirement - 1 always
  raises :class:`~repro.errors.QueueCapacityError` — i.e. the static
  analysis is tight in both directions, empirically.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_w2
from repro.errors import QueueCapacityError, SimulationError
from repro.faults import FaultInjector, FaultKind, FaultSpec, InjectionPlan
from repro.lang import Channel
from repro.machine import simulate
from repro.programs import conv1d, passthrough, polynomial

_RNG = np.random.default_rng(20260806)
_PROGRAM = compile_w2(polynomial(12, 4))
_INPUTS = {"z": _RNG.standard_normal(12), "c": _RNG.standard_normal(4)}
_CLEAN = simulate(_PROGRAM, _INPUTS)


class TestRandomPlans:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_recovered_or_detected_never_wrong(self, seed):
        """Any random plan: bit-identical outputs or a SimulationError."""
        plan = InjectionPlan.random(seed, n_cells=_PROGRAM.n_cells)
        injector = FaultInjector(plan)
        try:
            result = simulate(_PROGRAM, _INPUTS, faults=injector)
        except SimulationError:
            return  # detected: the acceptable failure mode
        for name, data in _CLEAN.outputs.items():
            assert np.array_equal(result.outputs[name], data), (
                f"SILENT WRONG ANSWER: seed={seed} "
                f"plan={[s.describe() for s in plan.specs]} "
                f"fired={injector.report()} diverged on {name!r}"
            )

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_plans_are_reproducible(self, seed):
        """The same seed yields the same plan, serialisation
        round-trips, and the fingerprint is stable."""
        plan = InjectionPlan.random(seed, n_cells=_PROGRAM.n_cells)
        again = InjectionPlan.random(seed, n_cells=_PROGRAM.n_cells)
        assert plan == again
        assert InjectionPlan.from_json(plan.to_json()) == plan
        assert plan.fingerprint() == again.fingerprint()


def _x_requirement(program) -> int:
    return next(
        b.required for b in program.buffers if b.channel == Channel.X
    )


_TIGHTNESS_CASES = {
    "polynomial": (
        lambda: polynomial(12, 4),
        lambda rng: {
            "z": rng.standard_normal(12),
            "c": rng.standard_normal(4),
        },
    ),
    "conv1d": (
        lambda: conv1d(12, 3),
        lambda rng: {
            "x": rng.standard_normal(12),
            "w": rng.standard_normal(3),
        },
    ),
    "passthrough": (
        lambda: passthrough(8, 2),
        lambda rng: {"din": rng.standard_normal(8)},
    ),
}


class TestQueueBoundTightness:
    """Section 6.2.2: the computed minimum queue size is exact."""

    @pytest.mark.parametrize("name", sorted(_TIGHTNESS_CASES))
    def test_requirement_is_sufficient_and_necessary(self, name):
        factory, gen = _TIGHTNESS_CASES[name]
        program = compile_w2(factory())
        inputs = gen(np.random.default_rng(20260806))
        clean = simulate(program, inputs)
        required = _x_requirement(program)

        def shrink(capacity: int):
            return InjectionPlan(
                specs=tuple(
                    FaultSpec(
                        kind=FaultKind.SHRINK_QUEUE,
                        cell=link,
                        channel="X",
                        capacity=capacity,
                    )
                    for link in range(1, program.n_cells)
                )
            )

        # Sufficient: every inner X link at exactly the requirement.
        result = simulate(program, inputs, faults=shrink(required))
        for out, data in clean.outputs.items():
            assert np.array_equal(result.outputs[out], data)
        # The runtime peak equals the static requirement (not just <=).
        for link in range(1, program.n_cells):
            assert result.queue_occupancy[f"link{link}.X"] == required

        # Necessary: one word less always overflows.
        with pytest.raises(QueueCapacityError):
            simulate(program, inputs, faults=shrink(required - 1))
