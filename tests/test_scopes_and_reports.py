"""Coverage for symbol scopes and the decomposition/report helpers."""

import pytest

from repro.compiler import compile_w2, decomposition_report
from repro.lang.ast import ScalarType
from repro.lang.errors import SemanticError, SourceLocation
from repro.lang.symbols import Scope, Symbol, SymbolKind
from repro.programs import matmul, polynomial

LOC = SourceLocation(1, 1)


def sym(name, kind=SymbolKind.CELL_VAR, dims=()):
    return Symbol(name, kind, ScalarType.FLOAT, dims, LOC)


class TestScope:
    def test_lookup_through_parents(self):
        outer = Scope()
        outer.define(sym("x"))
        inner = Scope(outer)
        assert inner.lookup("x") is not None

    def test_shadowing(self):
        outer = Scope()
        outer.define(sym("x"))
        inner = Scope(outer)
        inner.define(sym("x", dims=(4,)))
        assert inner.lookup("x").is_array
        assert not outer.lookup("x").is_array

    def test_duplicate_in_same_scope(self):
        scope = Scope()
        scope.define(sym("x"))
        with pytest.raises(SemanticError, match="duplicate"):
            scope.define(sym("x"))

    def test_lookup_or_fail(self):
        scope = Scope()
        with pytest.raises(SemanticError, match="undefined"):
            scope.lookup_or_fail("nope", LOC)

    def test_local_symbols_excludes_parent(self):
        outer = Scope()
        outer.define(sym("a"))
        inner = Scope(outer)
        inner.define(sym("b"))
        assert [s.name for s in inner.local_symbols()] == ["b"]

    def test_element_count(self):
        assert sym("m", dims=(3, 4)).element_count == 12
        assert sym("s").element_count == 1


class TestDecompositionReport:
    def test_host_descriptors_counted(self):
        report = decomposition_report(compile_w2(polynomial(40, 5)))
        # Feed: c block + z block + Y literal run; collection: X
        # discard run + Y results block.  A handful, not hundreds.
        assert 0 < report.host_descriptors <= 8
        assert report.host_inputs == 45 + 40

    def test_matmul_descriptor_compression(self):
        program = compile_w2(matmul(16, 4))
        report = decomposition_report(program)
        # 16 columns-per-group rounds plus row streams compress well
        # below the word count.
        assert report.host_descriptors < report.host_inputs

    def test_literal_vs_queue_addresses(self):
        report = decomposition_report(compile_w2(matmul(8, 4)))
        assert report.iu_supplied_addresses > 0
        assert report.literal_addresses == 0  # all array refs are loop-varying
