"""Tests for the SIMD vs skewed computation models (Section 3)."""

import pytest

from repro.models import (
    StageSpec,
    compare_models,
    compare_parallel_mode,
    figure_3_1_comparison,
    simd_cell_latency,
    skewed_cell_latency,
)


class TestFigure31:
    def test_paper_example_latencies(self):
        """4-step stage, step 4 needs the neighbour's step-4 result:
        'latency through each cell is 4 cycles in the SIMD model, but
        only one cycle in the skewed model'."""
        comparison = figure_3_1_comparison()
        assert comparison.simd_latency_per_cell == 4
        assert comparison.skewed_latency_per_cell == 1
        assert comparison.latency_ratio == 4.0

    def test_totals(self):
        comparison = figure_3_1_comparison(n_cells=3, n_iterations=3)
        # Fill: (cells-1)*latency; then one iteration per 4 cycles.
        assert comparison.skewed_total == 2 * 1 + 4 * 3
        assert comparison.simd_total == 2 * 4 + 4 * 3

    def test_skewed_never_slower(self):
        for n_steps in range(1, 8):
            for produce in range(1, n_steps + 1):
                for consume in range(1, n_steps + 1):
                    spec = StageSpec(n_steps, produce, consume)
                    assert skewed_cell_latency(spec) <= max(
                        simd_cell_latency(spec), 1
                    )


class TestStageSpecEdges:
    def test_early_produce_late_consume(self):
        """Producer finishes before the consumer's step even starts:
        SIMD pays nothing extra, skewed needs only the transfer cycle."""
        spec = StageSpec(n_steps=6, produce_step=1, consume_step=5)
        assert simd_cell_latency(spec) == 0
        assert skewed_cell_latency(spec) == 1

    def test_late_produce_early_consume(self):
        """Worst case: produced at the end, needed at the start."""
        spec = StageSpec(n_steps=6, produce_step=6, consume_step=1)
        assert simd_cell_latency(spec) == 6
        assert skewed_cell_latency(spec) == 6

    def test_invalid_steps_rejected(self):
        with pytest.raises(ValueError):
            StageSpec(n_steps=4, produce_step=5, consume_step=1)
        with pytest.raises(ValueError):
            StageSpec(n_steps=4, produce_step=1, consume_step=0)

    def test_ratio_grows_with_stage_size(self):
        """The paper: 'This difference in latency can be significant when
        a nontrivial amount of computation is involved in each stage.'"""
        ratios = []
        for n_steps in (2, 8, 32):
            comparison = compare_models(
                StageSpec(n_steps, n_steps, n_steps), n_cells=10, n_iterations=1
            )
            ratios.append(comparison.latency_ratio)
        assert ratios == sorted(ratios)
        assert ratios[-1] > ratios[0]


class TestParallelMode:
    def test_skewed_starts_earlier(self):
        comparison = compare_parallel_mode(
            n_cells=10, items_per_cell=100, compute_cycles=500
        )
        assert comparison.skewed_starts[0] < comparison.simd_starts[0]
        assert comparison.skewed_starts[-1] == comparison.simd_starts[-1]

    def test_first_result_speedup(self):
        comparison = compare_parallel_mode(
            n_cells=10, items_per_cell=100, compute_cycles=100
        )
        # SIMD waits for all 1000 loads; skewed cell 0 starts after 100.
        assert comparison.simd_first_result == 1100
        assert comparison.skewed_first_result == 200
        assert comparison.first_result_speedup > 5
