"""Tests for the innermost-loop unrolling optimisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_w2
from repro.ir import build_ir
from repro.ir.tree import Loop
from repro.lang import analyze, parse_module
from repro.machine import simulate
from repro.programs import conv1d, conv2d, matmul, polynomial


class TestUnrollStructure:
    def test_trip_divided(self):
        ir = build_ir(
            analyze(parse_module(polynomial(12, 3))), unroll_factor=4
        )
        loops = list(ir.tree.loops())
        trips = sorted(loop.trip for loop in loops)
        # coefficient loop (2 iterations) and main loop 12/4 = 3.
        assert 3 in trips

    def test_partial_divisor_used(self):
        """trip=10, unroll=4 -> the largest divisor <= 4 is 2."""
        ir = build_ir(
            analyze(parse_module(polynomial(10, 3))), unroll_factor=4
        )
        main_loop = max(ir.tree.loops(), key=lambda l: l.trip * 0 + l.loop_id)
        del main_loop
        trips = [loop.trip for loop in ir.tree.loops()]
        assert 5 in trips  # 10 / 2

    def test_prime_trip_not_unrolled(self):
        ir = build_ir(
            analyze(parse_module(polynomial(13, 3))), unroll_factor=4
        )
        trips = [loop.trip for loop in ir.tree.loops()]
        assert 13 in trips

    def test_outer_loops_not_unrolled(self):
        ir = build_ir(analyze(parse_module(matmul(8, 4))), unroll_factor=4)
        # Outer loops keep their structure; only innermost bodies grow.
        outer = [
            loop
            for loop in ir.tree.loops()
            if any(isinstance(child, Loop) for child in loop.body)
        ]
        assert outer  # matmul still has nested loops

    def test_io_statements_multiply(self):
        base = build_ir(analyze(parse_module(polynomial(12, 3))))
        unrolled = build_ir(
            analyze(parse_module(polynomial(12, 3))), unroll_factor=4
        )
        assert len(unrolled.io_statements) > len(base.io_statements)


class TestUnrollCorrectness:
    @pytest.mark.parametrize("unroll", [2, 3, 4, 8])
    def test_polynomial(self, unroll):
        rng = np.random.default_rng(unroll)
        n, k = 24, 4
        z, c = rng.uniform(-1, 1, n), rng.standard_normal(k)
        program = compile_w2(polynomial(n, k), unroll=unroll)
        result = simulate(program, {"z": z, "c": c})
        assert np.allclose(result.outputs["results"], np.polyval(c, z))

    @pytest.mark.parametrize("unroll", [2, 4])
    def test_conv1d_loop_carried_state(self, unroll):
        """xold carries across unrolled copies — the substitution must
        keep the per-copy dataflow intact."""
        rng = np.random.default_rng(9)
        x, w = rng.standard_normal(32), rng.standard_normal(3)
        program = compile_w2(conv1d(32, 3), unroll=unroll)
        result = simulate(program, {"x": x, "w": w})
        assert np.allclose(result.outputs["y"], np.convolve(x, w)[:32])

    @pytest.mark.parametrize("unroll", [2, 4])
    def test_conv2d_memory_addresses(self, unroll):
        """The unrolled copies must compute distinct rowbuf addresses via
        the affine substitution (scale/offset per copy)."""
        rng = np.random.default_rng(3)
        h, w = 6, 8
        x = rng.standard_normal((h, w))
        k = rng.standard_normal((3, 3))
        program = compile_w2(conv2d(w, h), unroll=unroll)
        result = simulate(program, {"x": x, "k": k})
        baseline = simulate(
            compile_w2(conv2d(w, h)), {"x": x, "k": k}
        )
        assert np.allclose(result.outputs["y"], baseline.outputs["y"])

    def test_unroll_one_is_identity(self):
        a = compile_w2(polynomial(12, 3), unroll=1)
        b = compile_w2(polynomial(12, 3))
        assert a.metrics.cell_ucode == b.metrics.cell_ucode


class TestUnrollPerformance:
    def test_cycles_decrease(self):
        cycles = []
        for unroll in (1, 2, 4):
            program = compile_w2(polynomial(48, 4), unroll=unroll)
            cycles.append(program.cell_code.total_cycles)
        assert cycles == sorted(cycles, reverse=True)

    def test_skew_stays_valid(self):
        """Whatever the unroll factor, the computed skew must satisfy the
        simulator's underflow detector (run end to end)."""
        rng = np.random.default_rng(1)
        z, c = rng.uniform(-1, 1, 24), rng.standard_normal(4)
        for unroll in (1, 2, 4, 8):
            program = compile_w2(polynomial(24, 4), unroll=unroll)
            simulate(program, {"z": z, "c": c})  # raises on violation


@st.composite
def unroll_cases(draw):
    n = draw(st.integers(4, 30))
    unroll = draw(st.integers(1, 6))
    seed = draw(st.integers(0, 2**20))
    return n, unroll, seed


class TestUnrollProperty:
    @given(unroll_cases())
    @settings(max_examples=25, deadline=None)
    def test_any_factor_any_size(self, case):
        n, unroll, seed = case
        rng = np.random.default_rng(seed)
        x, w = rng.standard_normal(n), rng.standard_normal(3)
        program = compile_w2(conv1d(n, 3), unroll=unroll)
        result = simulate(program, {"x": x, "w": w})
        assert np.allclose(result.outputs["y"], np.convolve(x, w)[:n])
