"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestCompileCommand:
    def test_bundled_program(self, capsys):
        assert main(["compile", "polynomial"]) == 0
        out = capsys.readouterr().out
        assert "polynomial" in out
        assert "Cell ucode" in out

    def test_listing_flag(self, capsys):
        assert main(["compile", "passthrough", "--listing"]) == 0
        out = capsys.readouterr().out
        assert "block" in out and "loop" in out

    def test_file_input(self, tmp_path, capsys):
        from repro.programs import passthrough

        path = tmp_path / "prog.w2"
        path.write_text(passthrough(4, 2))
        assert main(["compile", str(path)]) == 0
        assert "passthrough" in capsys.readouterr().out

    def test_unknown_program(self):
        with pytest.raises(SystemExit):
            main(["compile", "no_such_program"])


class TestRunCommand:
    def test_inline_inputs(self, capsys):
        assert main(["run", "passthrough", "--input", "din=1,2,3"]) == 0
        out = capsys.readouterr().out
        assert "dout" in out

    def test_npy_input_and_npz_output(self, tmp_path, capsys):
        data = np.arange(6.0)
        np.save(tmp_path / "din.npy", data)
        out_path = tmp_path / "result.npz"
        assert main(
            [
                "run",
                "passthrough",
                "--input",
                f"din={tmp_path / 'din.npy'}",
                "--output",
                str(out_path),
            ]
        ) == 0
        stored = np.load(out_path)
        assert np.allclose(stored["dout"][:6], data)

    def test_text_input(self, tmp_path, capsys):
        path = tmp_path / "din.txt"
        path.write_text("1.5 2.5\n3.5 4.5\n")
        assert main(["run", "passthrough", "--input", f"din={path}"]) == 0
        assert "dout" in capsys.readouterr().out

    def test_trace_flag(self, capsys):
        assert main(
            ["run", "passthrough", "--input", "din=1,2", "--trace", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "Cell 0" in out

    def test_bad_input_spec(self):
        with pytest.raises(SystemExit):
            main(["run", "passthrough", "--input", "nonsense"])

    def test_unparseable_values(self):
        with pytest.raises(SystemExit):
            main(["run", "passthrough", "--input", "din=a,b,c"])


class TestOtherCommands:
    def test_timing(self, capsys):
        assert main(["timing", "conv1d"]) == 0
        out = capsys.readouterr().out
        assert "skew" in out and "queue" in out

    def test_examples(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "polynomial" in out and "matmul" in out

    def test_emit(self, capsys):
        assert main(["emit", "polynomial"]) == 0
        assert "module polynomial" in capsys.readouterr().out

    def test_emit_unknown(self):
        with pytest.raises(SystemExit):
            main(["emit", "nope"])

    def test_unroll_option(self, capsys):
        assert main(["compile", "polynomial", "--unroll", "4"]) == 0
