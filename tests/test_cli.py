"""Tests for the command-line interface."""

import dataclasses
import json

import numpy as np
import pytest

import repro.exec.cache as cache_module
from repro.cli import main


@pytest.fixture(autouse=True)
def fresh_default_cache():
    """Each CLI test starts with an empty process-wide compile cache, so
    hit/miss expectations don't depend on test order."""
    cache_module._default_cache = None
    yield
    cache_module._default_cache = None


class TestCompileCommand:
    def test_bundled_program(self, capsys):
        assert main(["compile", "polynomial"]) == 0
        out = capsys.readouterr().out
        assert "polynomial" in out
        assert "Cell ucode" in out

    def test_listing_flag(self, capsys):
        assert main(["compile", "passthrough", "--listing"]) == 0
        out = capsys.readouterr().out
        assert "block" in out and "loop" in out

    def test_file_input(self, tmp_path, capsys):
        from repro.programs import passthrough

        path = tmp_path / "prog.w2"
        path.write_text(passthrough(4, 2))
        assert main(["compile", str(path)]) == 0
        assert "passthrough" in capsys.readouterr().out

    def test_unknown_program(self):
        with pytest.raises(SystemExit):
            main(["compile", "no_such_program"])


class TestRunCommand:
    def test_inline_inputs(self, capsys):
        assert main(["run", "passthrough", "--input", "din=1,2,3"]) == 0
        out = capsys.readouterr().out
        assert "dout" in out

    def test_npy_input_and_npz_output(self, tmp_path, capsys):
        data = np.arange(6.0)
        np.save(tmp_path / "din.npy", data)
        out_path = tmp_path / "result.npz"
        assert main(
            [
                "run",
                "passthrough",
                "--input",
                f"din={tmp_path / 'din.npy'}",
                "--output",
                str(out_path),
            ]
        ) == 0
        stored = np.load(out_path)
        assert np.allclose(stored["dout"][:6], data)

    def test_text_input(self, tmp_path, capsys):
        path = tmp_path / "din.txt"
        path.write_text("1.5 2.5\n3.5 4.5\n")
        assert main(["run", "passthrough", "--input", f"din={path}"]) == 0
        assert "dout" in capsys.readouterr().out

    def test_trace_flag(self, capsys):
        assert main(
            ["run", "passthrough", "--input", "din=1,2", "--trace", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "Cell 0" in out

    def test_bad_input_spec(self):
        with pytest.raises(SystemExit):
            main(["run", "passthrough", "--input", "nonsense"])

    def test_unparseable_values(self):
        with pytest.raises(SystemExit):
            main(["run", "passthrough", "--input", "din=a,b,c"])

    def test_oversized_input_is_a_clear_error(self):
        # Bundled passthrough declares din[16]; 17 values must produce a
        # clean message, not a traceback.
        values = ",".join(str(float(v)) for v in range(17))
        with pytest.raises(SystemExit) as info:
            main(["run", "passthrough", "--input", f"din={values}"])
        message = str(info.value)
        assert "17 elements" in message and "din[16]" in message

    def test_unknown_input_name_is_a_clear_error(self):
        with pytest.raises(SystemExit) as info:
            main(["run", "passthrough", "--input", "bogus=1,2"])
        message = str(info.value)
        assert "bogus" in message and "declared" in message

    def test_trace_out_writes_valid_chrome_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(
            [
                "run",
                "polynomial",
                "--input",
                "z=1,2,3",
                "--trace-out",
                str(path),
            ]
        ) == 0
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert events
        lanes = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "cell 0" in lanes and "cell 9" in lanes

    def test_metrics_out_writes_structured_json(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(
            ["run", "conv1d", "--metrics-out", str(path)]
        ) == 0
        document = json.loads(path.read_text())
        assert document["total_cycles"] > 0
        assert document["prediction"]["delta_total_cycles"] == 0
        assert len(document["cells"]) == 9

    def test_trace_cells_pair(self, capsys):
        assert main(
            [
                "run",
                "passthrough",
                "--input",
                "din=1,2",
                "--trace",
                "6",
                "--trace-cells",
                "1",
                "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Cell 1" in out and "Cell 2" in out

    def test_trace_cells_out_of_range_is_a_clear_error(self):
        with pytest.raises(SystemExit) as info:
            main(
                [
                    "run",
                    "passthrough",
                    "--input",
                    "din=1,2",
                    "--trace",
                    "6",
                    "--trace-cells",
                    "7",
                    "8",
                ]
            )
        message = str(info.value)
        assert "out of range" in message and "0..2" in message


class TestProfileCommand:
    def test_prints_phase_and_utilisation_tables(self, capsys):
        assert main(["profile", "polynomial"]) == 0
        out = capsys.readouterr().out
        assert "compile phases" in out
        assert "frontend.parse" in out and "cellcodegen" in out
        assert "machine utilisation" in out
        assert "busy" in out and "stall" in out and "idle" in out
        assert "high-water" in out

    def test_profile_exports(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        assert main(
            [
                "profile",
                "passthrough",
                "--trace-out",
                str(trace),
                "--metrics-out",
                str(metrics),
            ]
        ) == 0
        trace_doc = json.loads(trace.read_text())
        # Compile spans ride along in the exported trace.
        assert any(e["ph"] == "B" for e in trace_doc["traceEvents"])
        metrics_doc = json.loads(metrics.read_text())
        assert "compile" in metrics_doc
        assert metrics_doc["compile"]["counters"]["ir.blocks"] > 0

    def test_profile_does_not_leak_telemetry(self, capsys):
        from repro import obs
        from repro.obs.core import NULL_TELEMETRY

        assert main(["profile", "passthrough"]) == 0
        assert obs.get_telemetry() is NULL_TELEMETRY


class TestCompareCommand:
    def test_predicted_vs_measured_table(self, capsys):
        assert main(["compare", "polynomial"]) == 0
        out = capsys.readouterr().out
        assert "predicted" in out and "measured" in out
        assert "prediction exact" in out


class TestOtherCommands:
    def test_timing(self, capsys):
        assert main(["timing", "conv1d"]) == 0
        out = capsys.readouterr().out
        assert "skew" in out and "queue" in out

    def test_examples(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "polynomial" in out and "matmul" in out

    def test_emit(self, capsys):
        assert main(["emit", "polynomial"]) == 0
        assert "module polynomial" in capsys.readouterr().out

    def test_emit_unknown(self):
        with pytest.raises(SystemExit):
            main(["emit", "nope"])

    def test_unroll_option(self, capsys):
        assert main(["compile", "polynomial", "--unroll", "4"]) == 0


class TestBatchCommand:
    def test_replicated_input(self, capsys):
        assert main(
            ["batch", "passthrough", "--items", "4", "--input", "din=1,2,3"]
        ) == 0
        out = capsys.readouterr().out
        assert "batch: 4 items" in out
        assert "cycles/item" in out and "items/s" in out
        assert "compile cache:" in out

    def test_npz_inputs_and_stacked_output(self, tmp_path, capsys):
        items = np.arange(12.0).reshape(3, 4)  # 3 items of din[4]
        np.savez(tmp_path / "items.npz", din=items)
        out_path = tmp_path / "out.npz"
        assert main(
            [
                "batch",
                "passthrough",
                "--inputs",
                str(tmp_path / "items.npz"),
                "--output",
                str(out_path),
            ]
        ) == 0
        assert "batch: 3 items" in capsys.readouterr().out
        stored = np.load(out_path)
        assert stored["dout"].shape[0] == 3
        for i in range(3):
            assert np.allclose(stored["dout"][i][:4], items[i])

    def test_batch_matches_run_outputs(self, tmp_path, capsys):
        """One batch item produces exactly what `run` produces."""
        run_out = tmp_path / "run.npz"
        batch_out = tmp_path / "batch.npz"
        args = ["passthrough", "--input", "din=5,6,7"]
        assert main(["run", *args, "--output", str(run_out)]) == 0
        assert main(
            ["batch", *args, "--items", "1", "--output", str(batch_out)]
        ) == 0
        one_shot = np.load(run_out)
        batched = np.load(batch_out)
        assert np.array_equal(batched["dout"][0], one_shot["dout"])

    def test_metrics_out_includes_batch_and_cache(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(
            [
                "batch",
                "passthrough",
                "--items",
                "2",
                "--metrics-out",
                str(path),
            ]
        ) == 0
        document = json.loads(path.read_text())
        assert document["batch"]["items"] == 2
        assert document["batch"]["total_cycles"] > 0
        assert document["cache"]["misses"] == 1
        assert document["cache"]["last_event"] == "miss"

    def test_mismatched_item_axes_is_a_clear_error(self, tmp_path):
        np.savez(
            tmp_path / "bad.npz",
            z=np.zeros((3, 5)),
            c=np.zeros((4, 2)),
        )
        with pytest.raises(SystemExit) as info:
            main(["batch", "polynomial", "--inputs", str(tmp_path / "bad.npz")])
        assert "leading item axis" in str(info.value)

    def test_missing_inputs_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["batch", "passthrough", "--inputs", str(tmp_path / "no.npz")])

    def test_bad_items_count(self):
        with pytest.raises(SystemExit):
            main(["batch", "passthrough", "--items", "0"])


class TestVerifyAndCheckCommands:
    def test_verify_bundled_program(self, capsys):
        assert main(["verify", "polynomial"]) == 0
        out = capsys.readouterr().out
        assert "all invariants hold" in out
        assert "0 diagnostic" in out

    def test_verify_quick_level_runs_fewer_checks(self, capsys):
        assert main(["verify", "conv1d", "--level", "quick"]) == 0
        quick = capsys.readouterr().out
        assert main(["verify", "conv1d", "--level", "full"]) == 0
        full = capsys.readouterr().out

        def checks(text):
            return int(text.split("verification: ")[1].split(" checks")[0])

        assert checks(quick) < checks(full)

    def test_verify_auto_unroll(self, capsys):
        assert main(["verify", "passthrough", "--unroll", "auto"]) == 0
        assert "all invariants hold" in capsys.readouterr().out

    def test_verify_mutation_smoke_flags_every_mutant(self, capsys):
        assert main(["verify", "conv1d", "--mutate", "6"]) == 0
        out = capsys.readouterr().out
        assert "mutation smoke: 6/6 mutants flagged" in out
        assert "caught" in out and "ESCAPED" not in out

    def test_check_one_line_verdict(self, capsys):
        assert main(["check", "matmul", "--unroll", "2"]) == 0
        out = capsys.readouterr().out
        assert "compile ok" in out and "verification ok" in out
        assert "skew" in out


class TestStructuredBadInputErrors:
    """Unmappable or overflowing programs exit 2 with one structured
    ``error[Class]:`` line on stderr — never a traceback — on every
    compiling subcommand (the ISSUE 5 satellite)."""

    @pytest.fixture()
    def unmappable(self, tmp_path):
        from repro.programs import bidirectional_cycle

        path = tmp_path / "bidirectional.w2"
        path.write_text(bidirectional_cycle())
        return str(path)

    @pytest.mark.parametrize(
        "argv",
        [
            ["compile"],
            ["timing"],
            ["run"],
            ["profile"],
            ["compare"],
            ["batch"],
            ["verify"],
            ["check"],
        ],
        ids=lambda argv: argv[0],
    )
    def test_unmappable_program_exits_2_on_every_subcommand(
        self, unmappable, argv, capsys
    ):
        assert main([argv[0], unmappable, *argv[1:]]) == 2
        captured = capsys.readouterr()
        assert "error[MappingError]" in captured.err
        assert "Section 5.1.1" in captured.err
        assert "Traceback" not in captured.err + captured.out

    def test_queue_overflow_reports_required_size(self, monkeypatch, capsys):
        """The paper's compiler reports the queue size a program needs;
        so does ours, as a structured diagnostic with exit code 2."""
        import repro.cli as cli

        monkeypatch.setattr(
            cli,
            "DEFAULT_CONFIG",
            dataclasses.replace(cli.DEFAULT_CONFIG, queue_depth=1),
        )
        assert main(["verify", "polynomial", "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert "error[QueueOverflowError]" in err
        assert "needs a queue of" in err and "capacity 1" in err
        assert "Traceback" not in err

    def test_check_reports_overflow_too(self, monkeypatch, capsys):
        import repro.cli as cli

        monkeypatch.setattr(
            cli,
            "DEFAULT_CONFIG",
            dataclasses.replace(cli.DEFAULT_CONFIG, queue_depth=1),
        )
        assert main(["check", "conv1d", "--no-cache"]) == 2
        assert "error[QueueOverflowError]" in capsys.readouterr().err


class TestCacheOptions:
    def test_profile_reports_cache_status(self, capsys):
        assert main(["profile", "passthrough"]) == 0
        first = capsys.readouterr().out
        assert "compile cache: miss" in first
        # Same process, same default cache: second profile hits memory.
        assert main(["profile", "passthrough"]) == 0
        second = capsys.readouterr().out
        assert "compile cache: memory-hit" in second

    def test_no_cache_disables_caching(self, capsys):
        assert main(["profile", "passthrough", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "compile cache: disabled" in out
        # Nothing was warmed: a cached profile still starts cold.
        assert main(["profile", "passthrough"]) == 0
        assert "compile cache: miss" in capsys.readouterr().out

    def test_cache_dir_round_trip(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        args = ["profile", "passthrough", "--cache-dir", str(cache_dir)]
        assert main(args) == 0
        assert "compile cache: miss" in capsys.readouterr().out
        assert list(cache_dir.glob("*.w2c"))
        # A fresh invocation builds a fresh CompileCache: the hit comes
        # from disk, not memory.
        assert main(args) == 0
        assert "compile cache: disk-hit" in capsys.readouterr().out

    def test_run_trace_annotates_cache_status(self, capsys):
        assert main(
            ["run", "passthrough", "--input", "din=1,2", "--trace", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "[compile cache: miss" in out

    def test_compare_no_cache_never_reads_stale_state(
        self, tmp_path, capsys
    ):
        """`compare --no-cache` must reflect the file as it is *now*,
        even after a warm cached compile of an earlier version."""
        from repro.programs import passthrough

        prog = tmp_path / "prog.w2"
        cache_dir = tmp_path / "cache"
        prog.write_text(passthrough(4, 2))
        assert main(
            ["compare", str(prog), "--cache-dir", str(cache_dir)]
        ) == 0
        assert "(2 cells)" in capsys.readouterr().out
        entries_before = sorted(cache_dir.glob("*.w2c"))

        prog.write_text(passthrough(4, 3))  # the program changed on disk
        assert main(["compare", str(prog), "--no-cache"]) == 0
        assert "(3 cells)" in capsys.readouterr().out
        # --no-cache neither read nor wrote any cache state.
        assert sorted(cache_dir.glob("*.w2c")) == entries_before

    def test_compile_and_timing_accept_cache_flags(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["compile", "passthrough", "--cache-dir", cache_dir]) == 0
        assert main(["timing", "passthrough", "--cache-dir", cache_dir]) == 0
        assert main(["compile", "passthrough", "--no-cache"]) == 0
        capsys.readouterr()
