"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import signal

# Every compile in the test suite runs the independent schedule verifier
# at full strength unless a test overrides the level explicitly.
os.environ.setdefault("REPRO_VERIFY", "full")

import numpy as np
import pytest

from repro.compiler import compile_w2
from repro.programs import (
    binop,
    colorseg,
    conv1d,
    conv2d,
    fir_bank,
    mandelbrot,
    matmul,
    passthrough,
    polynomial,
)


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it runs longer than the "
        "given wall time (pytest-timeout when installed, a SIGALRM "
        "fallback otherwise)",
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item: pytest.Item):
    """Honour ``@pytest.mark.timeout`` without pytest-timeout.

    The multiprocessing tests guard against a hung pool with per-test
    timeouts; when the real plugin is absent (it is optional) a SIGALRM
    alarm provides the same safety net on the main thread.  No-op when
    pytest-timeout is installed (it owns the marker then) or off Unix.
    """
    marker = item.get_closest_marker("timeout")
    use_fallback = (
        marker is not None
        and not item.config.pluginmanager.hasplugin("timeout")
        and hasattr(signal, "SIGALRM")
    )
    if not use_fallback:
        yield
        return
    seconds = int(marker.args[0]) if marker.args else 60

    def _expired(_signum, _frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded its {seconds}s timeout (SIGALRM "
            "fallback; install pytest-timeout for richer reporting)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.listing from the current compiler "
        "output instead of comparing against it",
    )


@pytest.fixture
def update_goldens(request: pytest.FixtureRequest) -> bool:
    return bool(request.config.getoption("--update-goldens"))


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(20260705)


#: Small instances of every end-to-end program: (name, source factory,
#: reference function over an input dict, input generator).
def _poly_ref(inputs):
    return {"results": np.polyval(inputs["c"], inputs["z"])}


def _conv_ref(inputs):
    x, w = inputs["x"], inputs["w"]
    return {"y": np.convolve(x, w)[: len(x)]}


def _binop_ref(inputs):
    return {"c": inputs["a"] + inputs["b"]}


def _colorseg_ref(inputs):
    u, v = inputs["u"], inputs["v"]
    labels = np.zeros_like(u)
    for k in range(len(inputs["refu"])):
        dist = (u - inputs["refu"][k]) ** 2 + (v - inputs["refv"][k]) ** 2
        labels = np.where(dist <= inputs["radius"][k], inputs["class"][k], labels)
    return {"labels": labels}


def _mandel_ref(inputs):
    cx, cy = inputs["cx"], inputs["cy"]
    counts = np.zeros_like(cx)
    zr = np.zeros_like(cx)
    zi = np.zeros_like(cy)
    for _ in range(4):
        mag = zr * zr + zi * zi
        new_zr = zr * zr - zi * zi + cx
        zi = 2.0 * zr * zi + cy
        zr = new_zr
        counts += mag <= 4.0
    return {"counts": counts}


def _matmul_ref(inputs):
    n = int(np.sqrt(inputs["a"].size))
    a = inputs["a"].reshape(n, n)
    b = inputs["b"].reshape(n, n)
    return {"c": (a @ b).ravel()}


def small_program_suite(rng: np.random.Generator):
    """(name, source, inputs, reference outputs) for small instances of
    every program."""
    cases = []
    n, k = 24, 4
    cases.append(
        (
            "polynomial",
            polynomial(n, k),
            {"z": rng.standard_normal(n), "c": rng.standard_normal(k)},
            _poly_ref,
        )
    )
    cases.append(
        (
            "conv1d",
            conv1d(20, 3),
            {"x": rng.standard_normal(20), "w": rng.standard_normal(3)},
            _conv_ref,
        )
    )
    w, h, c = 6, 4, 4
    cases.append(
        (
            "binop",
            binop(w, h, c),
            {"a": rng.standard_normal(w * h), "b": rng.standard_normal(w * h)},
            _binop_ref,
        )
    )
    w, h, c = 5, 4, 3
    cases.append(
        (
            "colorseg",
            colorseg(w, h, c),
            {
                "u": rng.uniform(0, 1, w * h),
                "v": rng.uniform(0, 1, w * h),
                "refu": rng.uniform(0, 1, c),
                "refv": rng.uniform(0, 1, c),
                "radius": rng.uniform(0.02, 0.4, c),
                "class": np.arange(1.0, c + 1.0),
            },
            _colorseg_ref,
        )
    )
    cases.append(
        (
            "mandelbrot",
            mandelbrot(5, 4, 4),
            {
                "cx": rng.uniform(-2, 1, 20),
                "cy": rng.uniform(-1.5, 1.5, 20),
            },
            _mandel_ref,
        )
    )
    nn, cc = 6, 3
    cases.append(
        (
            "matmul",
            matmul(nn, cc),
            {
                "a": rng.standard_normal(nn * nn),
                "b": rng.standard_normal(nn * nn),
            },
            _matmul_ref,
        )
    )
    cases.append(
        (
            "passthrough",
            passthrough(10, 3),
            {"din": rng.standard_normal(10)},
            lambda inputs: {"dout": inputs["din"]},
        )
    )
    h2, w2 = 5, 6
    cases.append(
        (
            "conv2d",
            conv2d(w2, h2),
            {
                "x": rng.standard_normal(h2 * w2),
                "k": rng.standard_normal(9),
            },
            lambda inputs: _conv2d_ref(inputs, h2, w2),
        )
    )
    nf, nt, ns = 3, 4, 16
    cases.append(
        (
            "fir_bank",
            fir_bank(ns, nf, nt),
            {
                "x": rng.standard_normal(ns),
                "taps": rng.standard_normal(nf * nt),
            },
            lambda inputs: _fir_bank_ref(inputs, nf, nt, ns),
        )
    )
    return cases


def _fir_bank_ref(inputs, n_filters, n_taps, n_samples):
    x = inputs["x"]
    taps = inputs["taps"].reshape(n_filters, n_taps)
    y = np.stack(
        [np.convolve(x, taps[f])[:n_samples] for f in range(n_filters)]
    )
    return {"y": y.ravel()}


def _conv2d_ref(inputs, h, w):
    """Stream-exact reference of the conv2d program: zero-padded 3x3
    correlation with the sliding window carrying across row boundaries."""
    x = inputs["x"].reshape(h, w)
    k = inputs["k"].reshape(3, 3)
    flat = x.ravel()
    y = np.zeros(h * w)
    # Each cell i delays the stream by i*w items and convolves a 3-wide
    # window over the *flat* stream (window carries across rows).
    for i in range(3):
        delayed = np.concatenate([np.zeros(i * w), flat[: flat.size - i * w]])
        for j in range(3):
            shift = 2 - j
            shifted = np.concatenate(
                [np.zeros(shift), delayed[: delayed.size - shift]]
            )
            y += k[i, j] * shifted
    return {"y": y}


@pytest.fixture(scope="session")
def program_suite(rng):
    return small_program_suite(rng)


@pytest.fixture(scope="session")
def compiled_polynomial():
    return compile_w2(polynomial(16, 4))
