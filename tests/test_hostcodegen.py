"""Tests for host I/O program generation."""

import pytest

from repro.compiler import compile_w2
from repro.errors import HostDataError
from repro.hostcodegen import generate_host_program
from repro.lang import Channel
from repro.programs import binop, polynomial


class TestPolynomialSequences:
    @pytest.fixture(scope="class")
    def program(self):
        return compile_w2(polynomial(6, 3))

    def test_x_input_order(self, program):
        refs = list(program.host_program.input_sequence(Channel.X))
        # First the 3 coefficients, then the 6 z values.
        coeffs = refs[:3]
        assert all(r.array == "c" for r in coeffs)
        assert [r.flat_index for r in coeffs] == [0, 1, 2]
        zs = refs[3:]
        assert all(r.array == "z" for r in zs)
        assert [r.flat_index for r in zs] == list(range(6))

    def test_y_inputs_are_literal_zero(self, program):
        refs = list(program.host_program.input_sequence(Channel.Y))
        assert len(refs) == 6
        assert all(r.is_literal and r.literal == 0.0 for r in refs)

    def test_y_output_bindings(self, program):
        bindings = list(program.host_program.output_bindings(Channel.Y))
        assert [b.flat_index for b in bindings] == list(range(6))
        assert all(b.array == "results" for b in bindings)

    def test_x_outputs_discarded(self, program):
        bindings = list(program.host_program.output_bindings(Channel.X))
        assert bindings
        assert all(b.is_discard for b in bindings)

    def test_counts(self, program):
        host = program.host_program
        assert host.input_count(Channel.X) == 9
        assert host.output_count(Channel.Y) == 6


class TestBinopSequences:
    def test_collection_order_reversed_within_group(self):
        program = compile_w2(binop(4, 2, 4))
        bindings = [
            b
            for b in program.host_program.output_bindings(Channel.X)
            if not b.is_discard
        ]
        # Each group of 4 arrives in descending pixel order.
        first_group = [b.flat_index for b in bindings[:4]]
        assert first_group == [3, 2, 1, 0]


class TestValidation:
    def test_receive_without_external_rejected(self):
        src = """
module m (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 1)
begin
    float t;
    int i;
    for i := 0 to 3 do begin
        receive (L, X, t);
        send (R, X, t, b[i]);
    end;
end
"""
        with pytest.raises(HostDataError, match="no external"):
            compile_w2(src)
