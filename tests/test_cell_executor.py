"""Direct tests of the cell executor's pipeline semantics.

Hand-built micro-programs exercise the exact timing rules the scheduler
relies on: results land ``latency`` cycles after issue, reads before
writeback see the old value, loads observe pre-store memory within a
cycle, and queue transfers respect the one-cycle dequeue latency."""

import pytest

from repro.cellcodegen.emit import CellCode, ScheduledBlock, ScheduledLoop
from repro.cellcodegen.isa import (
    AddressSource,
    AluOp,
    DeqOp,
    EnqOp,
    Lit,
    MemOp,
    MicroInstr,
    MoveOp,
    MpyOp,
    Reg,
)
from repro.cellcodegen.layout import MemoryLayout
from repro.config import CellConfig
from repro.errors import QueueUnderflowError
from repro.ir.dag import OpKind, QueueRef
from repro.lang.ast import Channel, Direction
from repro.machine.cell import CellExecutor
from repro.machine.queue import TimedQueue

IN_X = QueueRef(Direction.LEFT, Channel.X)
OUT_X = QueueRef(Direction.RIGHT, Channel.X)
CFG = CellConfig()


def build_code(instructions, length=None):
    block = ScheduledBlock(
        block_id=0,
        instructions=instructions,
        length=length or len(instructions),
    )
    return CellCode(
        items=[block], layout=MemoryLayout(), pinned={}, config=CFG
    )


def run_cell(code, in_values=()):
    in_x = TimedQueue("in.x")
    for k, value in enumerate(in_values):
        in_x.enqueue(k, value)
    out_x = TimedQueue("out.x")
    executor = CellExecutor(
        code=code,
        config=CFG,
        cell_index=0,
        start_time=0,
        in_queues={Channel.X: in_x, Channel.Y: TimedQueue("in.y")},
        out_queues={Channel.X: out_x, Channel.Y: TimedQueue("out.y")},
        address_queue=TimedQueue("adr"),
    )
    stats = executor.run()
    return out_x, stats, executor


def instr(**fields):
    microinstruction = MicroInstr()
    for name, value in fields.items():
        setattr(microinstruction, name, value)
    return microinstruction


class TestPipelineTiming:
    def test_alu_result_lands_after_latency(self):
        # r0 := 1 + 2 at cycle 0; send r0 at alu_latency (new value) --
        # sending one cycle earlier must still see 0.0.
        instructions = [MicroInstr() for _ in range(CFG.alu_latency + 1)]
        instructions[0].alu = AluOp(OpKind.FADD, Reg(0), (Lit(1.0), Lit(2.0)))
        instructions[CFG.alu_latency].enqs = [EnqOp(OUT_X, Reg(0))]
        out, _, _ = run_cell(build_code(instructions))
        assert out.values == [3.0]

    def test_read_before_writeback_sees_old_value(self):
        instructions = [MicroInstr() for _ in range(CFG.alu_latency + 1)]
        instructions[0].alu = AluOp(OpKind.FADD, Reg(0), (Lit(1.0), Lit(2.0)))
        # One cycle before the writeback: still the initial 0.0.
        instructions[CFG.alu_latency - 1].enqs = [EnqOp(OUT_X, Reg(0))]
        out, _, _ = run_cell(build_code(instructions))
        assert out.values == [0.0]

    def test_mpy_div_latency(self):
        length = CFG.div_latency + 1
        instructions = [MicroInstr() for _ in range(length)]
        instructions[0].mpy = MpyOp(OpKind.FDIV, Reg(1), (Lit(9.0), Lit(2.0)))
        instructions[CFG.div_latency].enqs = [EnqOp(OUT_X, Reg(1))]
        out, _, _ = run_cell(build_code(instructions))
        assert out.values == [4.5]

    def test_move_latency(self):
        instructions = [MicroInstr() for _ in range(3)]
        instructions[0].move = MoveOp(Reg(2), Lit(7.0))
        instructions[1].enqs = [EnqOp(OUT_X, Reg(2))]
        out, _, _ = run_cell(build_code(instructions))
        assert out.values == [7.0]

    def test_deq_latency(self):
        instructions = [MicroInstr() for _ in range(3)]
        instructions[0].deqs = [DeqOp(IN_X, Reg(0))]
        instructions[CFG.queue_latency].enqs = [EnqOp(OUT_X, Reg(0))]
        out, _, _ = run_cell(build_code(instructions), in_values=[5.5])
        assert out.values == [5.5]

    def test_same_cycle_forward_sees_stale_register(self):
        instructions = [MicroInstr() for _ in range(2)]
        instructions[0].deqs = [DeqOp(IN_X, Reg(0))]
        instructions[0].enqs = [EnqOp(OUT_X, Reg(0))]  # same cycle!
        out, _, _ = run_cell(build_code(instructions), in_values=[5.5])
        assert out.values == [0.0]


class TestMemorySemantics:
    def test_load_sees_pre_store_value_same_cycle(self):
        instructions = [MicroInstr() for _ in range(CFG.mem_read_latency + 2)]
        # Cycle 0: store 9.0 to @3 AND load @3 -> the load wins the race
        # (reads pre-store memory), per the scheduler's WAR ordering.
        instructions[0].mem = [
            MemOp(True, AddressSource.LITERAL, 3, Reg(0)),
            MemOp(False, AddressSource.LITERAL, 3, None, Lit(9.0)),
        ]
        instructions[CFG.mem_read_latency].enqs = [EnqOp(OUT_X, Reg(0))]
        out, _, executor = run_cell(build_code(instructions))
        assert out.values == [0.0]
        assert executor._memory[3] == 9.0

    def test_store_then_load_next_cycle(self):
        length = CFG.mem_read_latency + 3
        instructions = [MicroInstr() for _ in range(length)]
        instructions[0].mem = [
            MemOp(False, AddressSource.LITERAL, 5, None, Lit(4.25))
        ]
        instructions[1].mem = [
            MemOp(True, AddressSource.LITERAL, 5, Reg(1))
        ]
        instructions[1 + CFG.mem_read_latency].enqs = [EnqOp(OUT_X, Reg(1))]
        out, _, _ = run_cell(build_code(instructions))
        assert out.values == [4.25]


class TestLoopsAndStats:
    def test_loop_repeats_block(self):
        body = ScheduledBlock(
            block_id=0,
            instructions=[
                instr(deqs=[DeqOp(IN_X, Reg(0))]),
                instr(enqs=[EnqOp(OUT_X, Reg(0))]),
            ],
            length=2,
        )
        loop = ScheduledLoop(
            loop_id=0, var="i", start=0, step=1, trip=3, body=[body]
        )
        code = CellCode(
            items=[loop], layout=MemoryLayout(), pinned={}, config=CFG
        )
        out, stats, _ = run_cell(code, in_values=[1.0, 2.0, 3.0])
        assert out.values == [1.0, 2.0, 3.0]
        assert out.send_times == [1, 3, 5]
        assert stats.receives == 3 and stats.sends == 3
        assert stats.end_time == 6

    def test_underflow_detected(self):
        instructions = [instr(deqs=[DeqOp(IN_X, Reg(0))])]
        with pytest.raises(QueueUnderflowError):
            run_cell(build_code(instructions), in_values=[])

    def test_op_statistics(self):
        instructions = [MicroInstr() for _ in range(CFG.alu_latency + 1)]
        instructions[0].alu = AluOp(OpKind.FADD, Reg(0), (Lit(1.0), Lit(1.0)))
        instructions[0].mpy = MpyOp(OpKind.FMUL, Reg(1), (Lit(2.0), Lit(2.0)))
        _, stats, _ = run_cell(build_code(instructions))
        assert stats.alu_ops == 1 and stats.mpy_ops == 1
        assert 0 < stats.flop_utilization <= 1
