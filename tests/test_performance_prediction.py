"""Tests for static performance prediction and auto-unroll selection.

The central claim: because schedules are fully static, compile-time
predictions of cycles and operation counts must match the simulator
*exactly* — not approximately."""

import numpy as np
import pytest

from repro.compiler import (
    compile_w2,
    format_performance,
    predict_performance,
)
from repro.lang import analyze, parse_module
from repro.machine import interpret, simulate
from repro.programs import conv2d, matmul, polynomial


class TestPredictionExactness:
    def test_every_program(self, program_suite):
        for name, source, inputs, _ in program_suite:
            program = compile_w2(source)
            prediction = predict_performance(program)
            result = simulate(program, inputs)
            assert prediction.total_cycles == result.total_cycles, name
            stats = result.cell_stats[0]
            assert prediction.alu_ops == stats.alu_ops, name
            assert prediction.mpy_ops == stats.mpy_ops, name
            assert prediction.mem_reads == stats.mem_reads, name
            assert prediction.mem_writes == stats.mem_writes, name
            assert prediction.receives == stats.receives, name
            assert prediction.sends == stats.sends, name

    def test_prediction_under_unrolling(self):
        rng = np.random.default_rng(0)
        inputs = {"z": rng.uniform(-1, 1, 48), "c": rng.standard_normal(4)}
        for unroll in (1, 4):
            program = compile_w2(polynomial(48, 4), unroll=unroll)
            prediction = predict_performance(program)
            result = simulate(program, inputs)
            assert prediction.total_cycles == result.total_cycles
            # Dynamic FP work is invariant under unrolling.
            assert prediction.fp_ops_per_cell == 96

    def test_peak_fraction_bounded(self):
        program = compile_w2(matmul(8, 4), unroll=4)
        prediction = predict_performance(program)
        assert 0.0 < prediction.peak_fraction <= 1.0

    def test_formatting(self):
        program = compile_w2(polynomial(12, 3))
        text = format_performance(predict_performance(program))
        assert "FP ops/cycle" in text and "skew" in text


class TestAutoUnroll:
    def test_auto_is_at_least_as_fast_as_baseline(self):
        base = compile_w2(polynomial(48, 4))
        auto = compile_w2(polynomial(48, 4), unroll="auto")
        assert (
            auto.cell_code.total_cycles <= base.cell_code.total_cycles
        )

    def test_auto_correctness(self):
        rng = np.random.default_rng(1)
        h, w = 6, 8
        x = rng.standard_normal((h, w))
        k = rng.standard_normal((3, 3))
        auto = compile_w2(conv2d(w, h), unroll="auto")
        baseline = compile_w2(conv2d(w, h))
        ra = simulate(auto, {"x": x, "k": k})
        rb = simulate(baseline, {"x": x, "k": k})
        assert np.allclose(ra.outputs["y"], rb.outputs["y"])

    def test_auto_on_unrollable_prime_trips(self):
        """Prime trip counts leave factor 1; auto must still compile."""
        program = compile_w2(polynomial(13, 3), unroll="auto")
        rng = np.random.default_rng(2)
        z, c = rng.uniform(-1, 1, 13), rng.standard_normal(3)
        result = simulate(program, {"z": z, "c": c})
        assert np.allclose(result.outputs["results"], np.polyval(c, z))


class TestInterpreterMirroring:
    def test_rl_program_interpreted_directly(self):
        source = """
module rl (din in, dout out)
float din[5];
float dout[5];
cellprogram (cid : 0 : 1)
begin
    float t;
    int i;
    for i := 0 to 4 do begin
        receive (R, X, t, din[i]);
        send (L, X, t * 2.0, dout[i]);
    end;
end
"""
        outputs = interpret(
            analyze(parse_module(source)), {"din": np.arange(5.0)}
        )
        assert list(outputs["dout"]) == [0.0, 4.0, 8.0, 12.0, 16.0]

    def test_rl_interpreter_matches_simulator(self):
        source = """
module rl (din in, dout out)
float din[6];
float dout[6];
cellprogram (cid : 0 : 2)
begin
    float t;
    int i;
    for i := 0 to 5 do begin
        receive (R, X, t, din[i]);
        send (L, X, t + 0.5, dout[i]);
    end;
end
"""
        inputs = {"din": np.linspace(0, 1, 6)}
        expected = interpret(analyze(parse_module(source)), inputs)
        result = simulate(compile_w2(source), inputs)
        assert np.allclose(result.outputs["dout"], expected["dout"])
