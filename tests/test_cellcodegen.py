"""Tests for cell code generation: scheduling, registers, layout, emission."""

import pytest

from repro.cellcodegen import generate_cell_code, layout_memory, schedule_block
from repro.cellcodegen.isa import AddressSource, Lit, Reg
from repro.cellcodegen.listing import format_cell_code
from repro.cellcodegen.regalloc import allocate_registers
from repro.config import CellConfig
from repro.errors import MemoryOverflowError, RegisterPressureError
from repro.ir import build_ir
from repro.ir.dag import Dag, MemRef, OpKind, QueueRef
from repro.lang import analyze, parse_module
from repro.lang.ast import Channel, Direction
from repro.lang.semantic import affine_const, affine_var

CFG = CellConfig()


def in_q():
    return QueueRef(Direction.LEFT, Channel.X)


def out_q():
    return QueueRef(Direction.RIGHT, Channel.X)


class TestBlockScheduler:
    def test_latency_respected(self):
        dag = Dag()
        r = dag.recv(in_q())
        doubled = dag.pure(OpKind.FMUL, r, dag.const(2.0))
        dag.send(out_q(), doubled)
        schedule = schedule_block(dag, CFG)
        cycles = {
            item.node.op: item.cycle
            for item in schedule.items.values()
            if item.node is not None
        }
        assert cycles[OpKind.FMUL] >= cycles[OpKind.RECV] + CFG.queue_latency
        assert cycles[OpKind.SEND] >= cycles[OpKind.FMUL] + CFG.mpy_latency

    def test_alu_and_mpy_issue_in_parallel(self):
        dag = Dag()
        a, b = dag.read("a"), dag.read("b")
        total = dag.pure(OpKind.FADD, a, b)
        product = dag.pure(OpKind.FMUL, a, b)
        dag.write("s", total)
        dag.write("p", product)
        schedule = schedule_block(dag, CFG)
        cycles = sorted(
            item.cycle for item in schedule.items.values() if item.node is not None
        )
        assert cycles == [0, 0]

    def test_single_alu_serialises(self):
        dag = Dag()
        a, b, c = dag.read("a"), dag.read("b"), dag.read("c")
        dag.write("x", dag.pure(OpKind.FADD, a, b))
        dag.write("y", dag.pure(OpKind.FADD, a, c))
        schedule = schedule_block(dag, CFG)
        cycles = sorted(
            item.cycle for item in schedule.items.values() if item.node is not None
        )
        assert cycles == [0, 1]

    def test_queue_order_strict(self):
        dag = Dag()
        first = dag.recv(in_q())
        second = dag.recv(in_q())
        dag.add_order_edge(first, second)
        dag.write("a", first)
        dag.write("b", second)
        schedule = schedule_block(dag, CFG)
        c1 = schedule.items[schedule.node_to_item[first.node_id]].cycle
        c2 = schedule.items[schedule.node_to_item[second.node_id]].cycle
        assert c2 > c1

    def test_war_anti_dependence(self):
        """x := x + 1 folds onto the adder writing the pinned register;
        an unrelated consumer of the old x must not issue after it in a
        way that reads the new value — the anti edge keeps the writer at
        or after every old-value reader."""
        dag = Dag()
        x = dag.read("x")
        new_x = dag.pure(OpKind.FADD, x, dag.const(1.0))
        dag.send(out_q(), x)
        dag.write("x", new_x)
        dag.add_order_edge(x, dag.nodes[dag.effects[-1]])
        schedule = schedule_block(dag, CFG)
        send_cycle = next(
            item.cycle
            for item in schedule.items.values()
            if item.node is not None and item.node.op is OpKind.SEND
        )
        add_cycle = next(
            item.cycle
            for item in schedule.items.values()
            if item.node is not None and item.node.op is OpKind.FADD
        )
        assert add_cycle >= send_cycle

    def test_drain_covers_writebacks(self):
        dag = Dag()
        r = dag.recv(in_q())
        dag.write("x", dag.pure(OpKind.FMUL, r, r))
        schedule = schedule_block(dag, CFG)
        mul_cycle = next(
            i.cycle for i in schedule.items.values()
            if i.node is not None and i.node.op is OpKind.FMUL
        )
        assert schedule.length >= mul_cycle + CFG.mpy_latency

    def test_two_distinct_literals_split_by_move(self):
        dag = Dag()
        r = dag.recv(in_q())
        # select(cond, 2.0, 3.0) needs two distinct literals.
        cond = dag.pure(OpKind.CMP_LT, r, dag.const(1.0))
        sel = dag.pure(OpKind.SELECT, cond, dag.const(2.0), dag.const(3.0))
        dag.send(out_q(), sel)
        schedule = schedule_block(dag, CFG)
        moves = [i for i in schedule.items.values() if i.kind == "move"]
        assert moves  # at least one literal materialised

    def test_mem_port_capacity(self):
        dag = Dag()
        loads = [
            dag.load(MemRef("arr", affine_const(i))) for i in range(4)
        ]
        for i, load in enumerate(loads):
            dag.write(f"v{i}", load)
        schedule = schedule_block(dag, CFG)
        by_cycle = {}
        for item in schedule.items.values():
            if item.kind == "mem":
                by_cycle.setdefault(item.cycle, 0)
                by_cycle[item.cycle] += 1
        assert all(count <= CFG.mem_ports for count in by_cycle.values())


class TestRegisterAllocation:
    def _schedule(self, dag):
        return schedule_block(dag, CFG)

    def test_pinned_register_used(self):
        dag = Dag()
        r = dag.recv(in_q())
        dag.write("x", r)
        schedule = self._schedule(dag)
        pinned = {"x": Reg(0)}
        assignment = allocate_registers(schedule, dag, pinned, list(range(1, 8)))
        deq_item = next(i for i in schedule.items.values() if i.kind == "deq")
        assert assignment.dest(deq_item.item_id) == Reg(0)

    def test_temporaries_reuse_registers(self):
        dag = Dag()
        previous = dag.read("x")
        for i in range(6):
            previous = dag.pure(OpKind.FADD, previous, dag.const(float(i + 1)))
        dag.write("x", previous)
        schedule = self._schedule(dag)
        assignment = allocate_registers(
            schedule, dag, {"x": Reg(0)}, list(range(1, 4))
        )
        used = {reg.index for reg in assignment.dests.values()}
        assert used <= {0, 1, 2, 3}

    def test_pressure_error(self):
        dag = Dag()
        # Many simultaneously-live receives.
        recvs = [dag.recv(in_q()) for _ in range(6)]
        total = recvs[0]
        for r in recvs[1:]:
            total = dag.pure(OpKind.FADD, total, r)
        dag.send(out_q(), total)
        schedule = self._schedule(dag)
        with pytest.raises(RegisterPressureError):
            allocate_registers(schedule, dag, {}, [0, 1])


class TestLayout:
    def test_bases_are_disjoint(self):
        layout = layout_memory({"a": 10, "b": 5}, set(), CFG)
        assert layout.base("a") == 0
        assert layout.base("b") == 10
        assert layout.total_words == 15

    def test_demoted_scalars_get_slots(self):
        layout = layout_memory({"a": 4}, {"s1", "s2"}, CFG)
        assert layout.total_words == 6

    def test_overflow(self):
        with pytest.raises(MemoryOverflowError):
            layout_memory({"big": CFG.memory_words + 1}, set(), CFG)


class TestEmission:
    SRC = """
module m (a in, b out)
float a[8];
float b[8];
cellprogram (cid : 0 : 0)
begin
    float t, w[8];
    int i;
    for i := 0 to 7 do begin
        receive (L, X, t, a[i]);
        w[i] := t;
    end;
    for i := 0 to 7 do
        send (R, X, w[i] + 1.0, b[i]);
end
"""

    def test_queue_addresses_demanded(self):
        ir = build_ir(analyze(parse_module(self.SRC)))
        code = generate_cell_code(ir, CFG)
        demands = [d for b in code.blocks() for d in b.addr_demands]
        assert demands  # w[i] needs IU addresses
        assert all(not d.expression.is_constant for d in demands)

    def test_constant_addresses_are_literal(self):
        src = self.SRC.replace("w[i] := t;", "w[3] := t;").replace(
            "send (R, X, w[i] + 1.0, b[i]);", "send (R, X, w[3] + 1.0, b[i]);"
        )
        ir = build_ir(analyze(parse_module(src)))
        code = generate_cell_code(ir, CFG)
        mems = [m for b in code.blocks() for ins in b.instructions for m in ins.mem]
        assert mems
        assert all(m.address_source is AddressSource.LITERAL for m in mems)

    def test_listing_renders(self):
        ir = build_ir(analyze(parse_module(self.SRC)))
        code = generate_cell_code(ir, CFG)
        text = format_cell_code(code)
        assert "loop" in text and "block" in text

    def test_io_events_ordered(self):
        ir = build_ir(analyze(parse_module(self.SRC)))
        code = generate_cell_code(ir, CFG)
        for block in code.blocks():
            cycles = [e.cycle for e in block.io_events]
            assert cycles == sorted(cycles)

    def test_instruction_count_counts_nops(self):
        ir = build_ir(analyze(parse_module(self.SRC)))
        code = generate_cell_code(ir, CFG)
        total = sum(len(b.instructions) for b in code.blocks())
        assert code.n_instructions == total
