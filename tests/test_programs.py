"""Tests for the bundled W2 program generators."""

import pytest

from repro.lang import analyze, parse_module
from repro.programs import (
    TABLE_7_1_PROGRAMS,
    binop,
    colorseg,
    conv1d,
    conv2d,
    mandelbrot,
    matmul,
    passthrough,
    polynomial,
)


class TestParameterisation:
    def test_polynomial_sizes(self):
        module = parse_module(polynomial(50, 5))
        assert module.cellprogram.n_cells == 5
        assert module.host_decl("z").dimensions == (50,)
        assert module.host_decl("c").dimensions == (5,)

    def test_conv1d_output_size(self):
        module = parse_module(conv1d(100, 7))
        assert module.cellprogram.n_cells == 7
        assert module.host_decl("y").dimensions == (100,)

    def test_binop_pads_to_cell_multiple(self):
        module = parse_module(binop(7, 3, 5))  # 21 pixels, 5 cells
        padded = module.host_decl("a").dimensions[0]
        assert padded == 25  # ceil(21/5)*5
        assert padded % 5 == 0

    def test_binop_operator_validation(self):
        with pytest.raises(ValueError, match="operator"):
            binop(4, 4, 2, op="^")

    @pytest.mark.parametrize("op", ["+", "-", "*"])
    def test_binop_operators_parse(self, op):
        analyze(parse_module(binop(4, 4, 2, op=op)))

    def test_matmul_divisibility(self):
        with pytest.raises(ValueError, match="divisible"):
            matmul(10, 4)

    def test_matmul_local_memory_use(self):
        analyzed = analyze(parse_module(matmul(16, 4)))
        from repro.ir import build_ir

        ir = build_ir(analyzed)
        bcol = next(name for name in ir.arrays if name.endswith("bcol"))
        assert ir.arrays[bcol] == 16 * 4  # columns-per-cell * n

    def test_conv2d_rowbuf_width(self):
        analyzed = analyze(parse_module(conv2d(20, 8)))
        from repro.ir import build_ir

        ir = build_ir(analyzed)
        rowbuf = next(name for name in ir.arrays if name.endswith("rowbuf"))
        assert ir.arrays[rowbuf] == 20

    def test_mandelbrot_single_cell(self):
        module = parse_module(mandelbrot(8, 8, 4))
        assert module.cellprogram.n_cells == 1

    def test_colorseg_parameter_arrays(self):
        module = parse_module(colorseg(16, 16, 6))
        assert module.host_decl("refu").dimensions == (6,)
        assert module.host_decl("class").dimensions == (6,)


class TestPaperDefaults:
    def test_paper_sizes(self):
        assert parse_module(polynomial()).cellprogram.n_cells == 10
        assert parse_module(conv1d()).cellprogram.n_cells == 9
        assert parse_module(binop()).cellprogram.n_cells == 10
        assert parse_module(colorseg()).host_decl("u").dimensions == (512 * 512,)
        assert parse_module(mandelbrot()).host_decl("cx").dimensions == (1024,)

    def test_table_lists_exactly_the_five(self):
        assert sorted(TABLE_7_1_PROGRAMS) == [
            "1d-Conv",
            "Binop",
            "ColorSeg",
            "Mandelbrot",
            "Polynomial",
        ]

    def test_all_paper_programs_analyze(self):
        for factory in TABLE_7_1_PROGRAMS.values():
            analyze(parse_module(factory()))

    def test_passthrough_is_minimal(self):
        module = parse_module(passthrough(4, 2))
        assert len(module.cellprogram.body) == 1  # just the loop
