"""Regression tests for bugs found during development (mostly by the
property-based fuzzers).  Each test documents the failure mode."""

import numpy as np

from repro.compiler import compile_w2
from repro.lang import analyze, parse_module
from repro.machine import interpret, simulate


def check(source, inputs):
    expected = interpret(analyze(parse_module(source)), inputs)
    result = simulate(compile_w2(source), inputs)
    for name in result.outputs:
        assert np.allclose(result.outputs[name], expected[name]), name
    return result


class TestFoldReachabilityCycle:
    def test_shift_chain(self):
        """Found by the end-to-end fuzzer: ``v1 := v2; v2 := v0`` with a
        use of both new values created a cycle between the recv folded
        onto v2's register and the adder consuming v2's old value."""
        source = """
module fuzz (a in, b out)
float a[1];
float b[1];
cellprogram (cid : 0 : 0)
begin
    float v0, v1, v2;
    int i;
    v1 := 0.0;
    v2 := 0.0;
    for i := 0 to 0 do begin
        receive (L, X, v0, a[i]);
        v1 := v2;
        v2 := v0;
        send (R, X, v0 + v1 + v2, b[i]);
    end;
end
"""
        check(source, {"a": np.array([2.0])})


class TestRegisterSwap:
    def test_two_way_swap(self):
        """``a := b; b := a`` through pinned registers forms an
        anti-dependence cycle; the scheduler must break it with a saving
        move (a parallel-copy temporary)."""
        source = """
module swap (din in, dout out)
float din[6];
float dout[6];
cellprogram (cid : 0 : 0)
begin
    float a, b, t, x;
    int i;
    a := 1.0;
    b := 2.0;
    for i := 0 to 5 do begin
        receive (L, X, x, din[i]);
        send (R, X, x + a - b, dout[i]);
        t := a;
        a := b;
        b := t;
    end;
end
"""
        result = check(source, {"din": np.arange(6.0)})
        assert list(result.outputs["dout"]) == [-1.0, 2.0, 1.0, 4.0, 3.0, 6.0]

    def test_three_way_rotation(self):
        source = """
module rot (din in, dout out)
float din[6];
float dout[6];
cellprogram (cid : 0 : 0)
begin
    float a, b, c, t, x;
    int i;
    a := 1.0;
    b := 2.0;
    c := 3.0;
    for i := 0 to 5 do begin
        receive (L, X, x, din[i]);
        send (R, X, x*a + b - c, dout[i]);
        t := a;
        a := b;
        b := c;
        c := t;
    end;
end
"""
        check(source, {"din": np.linspace(-1, 1, 6)})


class TestSharedLoopVariable:
    def test_two_loops_one_index(self):
        """Found by the IU register-machine equivalence test: two loops
        driven by the same declared ``int i`` merged their induction
        updates when keyed by variable name; IR loop variables are now
        unique per loop."""
        source = """
module m (a in, b out)
float a[24];
float b[24];
cellprogram (cid : 0 : 0)
begin
    float t, w[24];
    int i, j;
    for i := 0 to 5 do
        for j := 0 to 3 do begin
            receive (L, X, t, a[4*i + j]);
            w[4*i + j] := t;
        end;
    for i := 0 to 23 do
        send (R, X, w[i], b[i]);
end
"""
        rng = np.random.default_rng(0)
        data = rng.standard_normal(24)
        result = check(source, {"a": data})
        assert np.allclose(result.outputs["b"], data)

        # And the lowered IU machine agrees with the plan.
        from repro.iucodegen import lower_iu_program
        from repro.machine.iu_machine import run_iu_program

        program = compile_w2(source)
        lowered = lower_iu_program(program.iu_program)
        expected = [addr for _, _, addr in program.iu_program.emission_times()]
        assert run_iu_program(lowered) == expected


class TestIfConversionOldValue:
    def test_one_sided_if_on_fresh_block_variable(self):
        """A variable assigned in only one arm, not yet read in the
        block, must keep its register value on the other path (an early
        version selected the new value unconditionally)."""
        source = """
module m (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 0)
begin
    float v, cnt;
    int i;
    cnt := 0.0;
    for i := 0 to 3 do begin
        receive (L, X, v, a[i]);
        if v > 0.0 then
            cnt := cnt + 1.0;
        send (R, X, cnt, b[i]);
    end;
end
"""
        result = check(source, {"a": np.array([1.0, -1.0, 2.0, -2.0])})
        assert list(result.outputs["b"]) == [1.0, 1.0, 2.0, 2.0]


class TestConservationPad:
    def test_unconsumed_pads_are_legal(self):
        """The Figure 4-1 idiom sends one extra item per distribution
        round; the last cell's pads are never consumed and must not trip
        any audit."""
        from repro.programs import polynomial

        rng = np.random.default_rng(1)
        program = compile_w2(polynomial(8, 4))
        result = simulate(
            program,
            {"z": rng.uniform(-1, 1, 8), "c": rng.standard_normal(4)},
        )
        assert result.total_cycles > 0
