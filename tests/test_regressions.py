"""Regression tests for bugs found during development (mostly by the
property-based fuzzers).  Each test documents the failure mode."""

import numpy as np

from repro.compiler import compile_w2
from repro.lang import analyze, parse_module
from repro.machine import interpret, simulate


def check(source, inputs):
    expected = interpret(analyze(parse_module(source)), inputs)
    result = simulate(compile_w2(source), inputs)
    for name in result.outputs:
        assert np.allclose(result.outputs[name], expected[name]), name
    return result


class TestFoldReachabilityCycle:
    def test_shift_chain(self):
        """Found by the end-to-end fuzzer: ``v1 := v2; v2 := v0`` with a
        use of both new values created a cycle between the recv folded
        onto v2's register and the adder consuming v2's old value."""
        source = """
module fuzz (a in, b out)
float a[1];
float b[1];
cellprogram (cid : 0 : 0)
begin
    float v0, v1, v2;
    int i;
    v1 := 0.0;
    v2 := 0.0;
    for i := 0 to 0 do begin
        receive (L, X, v0, a[i]);
        v1 := v2;
        v2 := v0;
        send (R, X, v0 + v1 + v2, b[i]);
    end;
end
"""
        check(source, {"a": np.array([2.0])})


class TestRegisterSwap:
    def test_two_way_swap(self):
        """``a := b; b := a`` through pinned registers forms an
        anti-dependence cycle; the scheduler must break it with a saving
        move (a parallel-copy temporary)."""
        source = """
module swap (din in, dout out)
float din[6];
float dout[6];
cellprogram (cid : 0 : 0)
begin
    float a, b, t, x;
    int i;
    a := 1.0;
    b := 2.0;
    for i := 0 to 5 do begin
        receive (L, X, x, din[i]);
        send (R, X, x + a - b, dout[i]);
        t := a;
        a := b;
        b := t;
    end;
end
"""
        result = check(source, {"din": np.arange(6.0)})
        assert list(result.outputs["dout"]) == [-1.0, 2.0, 1.0, 4.0, 3.0, 6.0]

    def test_three_way_rotation(self):
        source = """
module rot (din in, dout out)
float din[6];
float dout[6];
cellprogram (cid : 0 : 0)
begin
    float a, b, c, t, x;
    int i;
    a := 1.0;
    b := 2.0;
    c := 3.0;
    for i := 0 to 5 do begin
        receive (L, X, x, din[i]);
        send (R, X, x*a + b - c, dout[i]);
        t := a;
        a := b;
        b := c;
        c := t;
    end;
end
"""
        check(source, {"din": np.linspace(-1, 1, 6)})


class TestSharedLoopVariable:
    def test_two_loops_one_index(self):
        """Found by the IU register-machine equivalence test: two loops
        driven by the same declared ``int i`` merged their induction
        updates when keyed by variable name; IR loop variables are now
        unique per loop."""
        source = """
module m (a in, b out)
float a[24];
float b[24];
cellprogram (cid : 0 : 0)
begin
    float t, w[24];
    int i, j;
    for i := 0 to 5 do
        for j := 0 to 3 do begin
            receive (L, X, t, a[4*i + j]);
            w[4*i + j] := t;
        end;
    for i := 0 to 23 do
        send (R, X, w[i], b[i]);
end
"""
        rng = np.random.default_rng(0)
        data = rng.standard_normal(24)
        result = check(source, {"a": data})
        assert np.allclose(result.outputs["b"], data)

        # And the lowered IU machine agrees with the plan.
        from repro.iucodegen import lower_iu_program
        from repro.machine.iu_machine import run_iu_program

        program = compile_w2(source)
        lowered = lower_iu_program(program.iu_program)
        expected = [addr for _, _, addr in program.iu_program.emission_times()]
        assert run_iu_program(lowered) == expected


class TestIfConversionOldValue:
    def test_one_sided_if_on_fresh_block_variable(self):
        """A variable assigned in only one arm, not yet read in the
        block, must keep its register value on the other path (an early
        version selected the new value unconditionally)."""
        source = """
module m (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 0)
begin
    float v, cnt;
    int i;
    cnt := 0.0;
    for i := 0 to 3 do begin
        receive (L, X, v, a[i]);
        if v > 0.0 then
            cnt := cnt + 1.0;
        send (R, X, cnt, b[i]);
    end;
end
"""
        result = check(source, {"a": np.array([1.0, -1.0, 2.0, -2.0])})
        assert list(result.outputs["b"]) == [1.0, 1.0, 2.0, 2.0]


class TestSameCycleMachineOrdering:
    """PR 3 bug-class sweep (ISSUE 5): every same-cycle ordering decision
    in the machine layer, pinned at the executor level so a refactor of
    plan.py/cell.py/array.py cannot silently flip one.

    Audit result: IU-supplied addresses are resolved up front in
    instruction-slot order (not loads-before-stores); all register
    writes are deferred, so intra-cycle read order is immaterial; loads
    observe pre-store memory (the verifier's ``hazard.mem_conflict``
    guarantees no same-cycle same-address ambiguity is ever emitted);
    and a dequeue at the exact send cycle is legal — the same boundary
    the skew/occupancy analyses assume."""

    def test_same_cycle_addresses_consumed_in_slot_order(self):
        from repro.cellcodegen.emit import CellCode, ScheduledBlock
        from repro.cellcodegen.isa import (
            AddressSource,
            EnqOp,
            Lit,
            MemOp,
            MicroInstr,
            Reg,
        )
        from repro.cellcodegen.layout import MemoryLayout
        from repro.config import CellConfig
        from repro.ir.dag import QueueRef
        from repro.lang.ast import Channel, Direction
        from repro.machine.cell import CellExecutor
        from repro.machine.queue import TimedQueue

        config = CellConfig()
        instructions = [MicroInstr() for _ in range(4)]
        # Cycle 0: seed memory[4] with a sentinel via a literal store.
        instructions[0].mem = [
            MemOp(False, AddressSource.LITERAL, 4, None, Lit(42.0))
        ]
        # Cycle 1: store @q in the EARLIER slot, load @q in the later
        # one.  The IU emits same-cycle addresses in slot order, so the
        # store must take the first queued address (3) and the load the
        # second (4).  A loads-first executor hands each the other's.
        instructions[1].mem = [
            MemOp(False, AddressSource.QUEUE, None, None, Lit(9.0)),
            MemOp(True, AddressSource.QUEUE, None, Reg(0)),
        ]
        instructions[1 + config.mem_read_latency].enqs = [
            EnqOp(QueueRef(Direction.RIGHT, Channel.X), Reg(0))
        ]
        block = ScheduledBlock(
            block_id=0, instructions=instructions, length=len(instructions)
        )
        code = CellCode(
            items=[block], layout=MemoryLayout(), pinned={}, config=config
        )
        addresses = TimedQueue("adr")
        addresses.enqueue(0, 3.0)
        addresses.enqueue(0, 4.0)
        out_x = TimedQueue("out.x")
        executor = CellExecutor(
            code=code,
            config=config,
            cell_index=0,
            start_time=0,
            in_queues={c: TimedQueue(f"in.{c}") for c in Channel},
            out_queues={Channel.X: out_x, Channel.Y: TimedQueue("out.y")},
            address_queue=addresses,
        )
        executor.run()
        assert out_x.values == [42.0], (
            "the load consumed the store's address: same-cycle IU "
            "addresses left slot order"
        )
        assert executor._memory[3] == 9.0 and executor._memory[4] == 42.0

    def test_dequeue_at_the_send_cycle_is_legal(self):
        """The boundary every layer shares: an item is available at the
        instant it was sent (occupancy counts it, skew allows it) — one
        cycle earlier underflows."""
        import pytest as _pytest

        from repro.errors import QueueUnderflowError
        from repro.machine.queue import TimedQueue

        queue = TimedQueue("link")
        queue.enqueue(5, 1.25)
        assert queue.dequeue(5) == 1.25
        queue.enqueue(9, 2.5)
        with _pytest.raises(QueueUnderflowError, match="sent at"):
            queue.dequeue(8)

    def test_verifier_rejects_same_cycle_slot_reorder(self):
        """The historical delay-line shape (store @q; load @q in one
        cycle at unroll 3): reordering the slots must be flagged by the
        independent verifier, not only by a lucky differential run."""
        import dataclasses

        from repro.config import DEFAULT_CONFIG
        from repro.verify import mutate, verify_program

        source = """
module delayline (a in, b out)
float a[12];
float b[12];
cellprogram (cid : 0 : 0)
begin
    float xin, old;
    float buf[6];
    int r, c;
    for r := 0 to 1 do
        for c := 0 to 5 do begin
            receive (L, X, xin, a[r*6 + c]);
            old := buf[c];
            buf[c] := xin;
            send (R, X, old, b[r*6 + c]);
        end;
end
"""
        config = dataclasses.replace(DEFAULT_CONFIG, verify="off")
        program = compile_w2(source, config=config, unroll=3)
        mutant = mutate(program, "swap_slots", 0)
        assert mutant is not None
        report = verify_program(mutant.program, level="full")
        assert not report.ok
        assert any(
            check.startswith(("slot_order.", "hazard.", "stream.", "iu."))
            for check in report.failed_checks()
        ), report.format()


class TestSkewEdgeCases:
    """ISSUE 5 satellite: residual accounting and clamping edge cases in
    the timing analyses."""

    def test_exact_skew_clamps_at_zero(self):
        """A channel whose sends all precede their receives imposes no
        constraint: the exact method reports 0 (not a negative skew),
        matching the bound method's clamp."""
        import numpy as np_

        from repro.lang import Channel
        from repro.timing.skew import _exact_from_times

        sends = np_.asarray([0, 1, 2], dtype=np_.int64)
        recvs = np_.asarray([5, 6, 7], dtype=np_.int64)
        entry = _exact_from_times(Channel.X, sends, recvs)
        assert entry.skew == 0 and entry.method == "exact"

    def test_single_cell_skew_reports_true_counts(self):
        """method='none' channels of a single-cell program still carry
        the real static send/receive counts (the verifier's conservation
        checks read them), with the global skew floored at 1."""
        from repro.programs import passthrough

        program = compile_w2(passthrough(8, 1))
        assert program.n_cells == 1
        assert program.skew.skew == 1
        from repro.lang import Channel

        entry = program.skew.channel(Channel.X)
        assert entry.method == "none" and entry.skew == 0
        assert entry.n_sends == 8 and entry.n_receives == 8

    def test_occupancy_counts_unconsumed_residual(self):
        """Sends that are never received stay in the queue: occupancy is
        bounded below by the residual, even at huge skew."""
        import numpy as np_

        from repro.timing.buffers import occupancy_requirement

        sends = np_.asarray([0, 3, 6, 9], dtype=np_.int64)
        recvs = np_.asarray([0, 3], dtype=np_.int64)
        assert occupancy_requirement(sends, recvs, skew=100) >= 2
        assert occupancy_requirement(sends, np_.asarray([], dtype=np_.int64), 0) == 4


class TestConservationPad:
    def test_unconsumed_pads_are_legal(self):
        """The Figure 4-1 idiom sends one extra item per distribution
        round; the last cell's pads are never consumed and must not trip
        any audit."""
        from repro.programs import polynomial

        rng = np.random.default_rng(1)
        program = compile_w2(polynomial(8, 4))
        result = simulate(
            program,
            {"z": rng.uniform(-1, 1, 8), "c": rng.standard_normal(4)},
        )
        assert result.total_cycles > 0
