"""Tests for the independent schedule verifier (``repro.verify``).

The verifier re-derives the paper's invariants from the emitted
artifacts alone; these tests pin (a) zero false positives on every
bundled program and example source at every unroll factor, (b) the
level/environment plumbing, (c) the driver integration (a rejected
schedule raises and never reaches the cache), and (d) that targeted
artifact surgery trips exactly the check it violates.
"""

import dataclasses
import importlib.util
from pathlib import Path

import pytest

from repro.compiler import compile_w2
from repro.config import DEFAULT_CONFIG
from repro.errors import VerificationError
from repro.exec import CompileCache
from repro.programs import polynomial
from repro.timing.skew import SkewResult
from repro.verify import (
    LEVELS,
    mutate,
    resolve_level,
    verify_artifacts,
    verify_program,
)
from repro.verify.report import VerificationReport


def _compile_unverified(source, unroll=1):
    """Compile with the in-driver verifier off, so tests can corrupt the
    artifacts and run the verifier by hand."""
    config = dataclasses.replace(DEFAULT_CONFIG, verify="off")
    return compile_w2(source, config=config, unroll=unroll)


def _example_w2_sources():
    """(name, W2 source) for every source literal under ``examples/``."""
    examples = Path(__file__).resolve().parent.parent / "examples"
    sources = []
    for path in sorted(examples.glob("*.py")):
        if "\nSOURCE = " not in path.read_text():
            continue
        spec = importlib.util.spec_from_file_location(
            f"example_{path.stem}", path
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        sources.append((path.stem, module.SOURCE))
    return sources


class TestCleanMatrix:
    """Zero false positives: every bundled program and every examples/
    source verifies clean at every supported unroll factor."""

    @pytest.mark.parametrize("unroll", [1, 2, 4, "auto"])
    def test_bundled_programs_verify_green(self, program_suite, unroll):
        for name, source, _inputs, _ref in program_suite:
            program = compile_w2(source, unroll=unroll)
            report = verify_program(program, level="full")
            assert report.ok, (
                f"{name} unroll={unroll} false positive:\n{report.format()}"
            )
            assert report.level == "full"
            assert len(report.checks_run) >= 20

    @pytest.mark.parametrize("unroll", [1, 2, 4, "auto"])
    def test_example_sources_verify_green(self, unroll):
        cases = _example_w2_sources()
        assert cases, "examples/ should contribute at least one W2 source"
        for name, source in cases:
            program = compile_w2(source, unroll=unroll)
            report = verify_program(program, level="full")
            assert report.ok, (
                f"{name} unroll={unroll} false positive:\n{report.format()}"
            )


class TestLevels:
    def test_resolve_level_passthrough(self):
        for level in LEVELS:
            assert resolve_level(level) == level

    def test_default_resolves_through_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "quick")
        assert resolve_level("default") == "quick"
        monkeypatch.delenv("REPRO_VERIFY")
        assert resolve_level("default") == "off"
        monkeypatch.setenv("REPRO_VERIFY", "")
        assert resolve_level("default") == "off"

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown verify level"):
            resolve_level("paranoid")

    def test_off_runs_nothing(self, compiled_polynomial):
        program = compiled_polynomial
        report = verify_artifacts(
            program.cell_code,
            program.iu_program,
            program.host_program,
            skew=program.skew,
            buffers=program.buffers,
            config=program.config,
            n_cells=program.n_cells,
            level="off",
        )
        assert report.ok
        assert not report.checks_run and not report.diagnostics

    def test_quick_is_a_strict_subset_of_full(self, compiled_polynomial):
        quick = verify_program(compiled_polynomial, level="quick")
        full = verify_program(compiled_polynomial, level="full")
        assert quick.ok and full.ok
        assert set(quick.checks_run) < set(full.checks_run)
        # Quick stays static: no skew/occupancy/tau re-enumeration.
        for family in ("skew.", "occupancy.", "tau."):
            assert not any(c.startswith(family) for c in quick.checks_run)
            assert any(c.startswith(family) for c in full.checks_run)


class TestDriverIntegration:
    def test_config_off_skips_verification(self, monkeypatch):
        import repro.verify as verify_pkg

        def explode(*_args, **_kwargs):  # pragma: no cover - must not run
            raise AssertionError("verifier ran despite verify='off'")

        monkeypatch.setattr(verify_pkg, "verify_artifacts", explode)
        config = dataclasses.replace(DEFAULT_CONFIG, verify="off")
        program = compile_w2(polynomial(12, 4), config=config)
        assert program.metrics.cell_ucode > 0

    def test_rejected_program_raises_and_is_not_cached(
        self, monkeypatch, tmp_path
    ):
        import repro.verify as verify_pkg

        failing = VerificationReport(level="full")
        failing.add("hazard.mem_ports", "synthetic failure")

        real = verify_pkg.verify_artifacts

        def reject(*args, **kwargs):
            real(*args, **kwargs)  # still exercised, result discarded
            return failing

        monkeypatch.setattr(verify_pkg, "verify_artifacts", reject)
        cache = CompileCache(cache_dir=tmp_path)
        config = dataclasses.replace(DEFAULT_CONFIG, verify="full")
        with pytest.raises(VerificationError, match="1 diagnostic"):
            compile_w2(polynomial(12, 4), config=config, cache=cache)
        assert not list(tmp_path.glob("*.w2c")), (
            "a rejected program must never reach the compile cache"
        )

    def test_verification_error_carries_the_report(self, monkeypatch):
        import repro.verify as verify_pkg

        failing = VerificationReport(level="full")
        failing.add("iu.deadline", "late address")
        monkeypatch.setattr(
            verify_pkg, "verify_artifacts", lambda *a, **k: failing
        )
        config = dataclasses.replace(DEFAULT_CONFIG, verify="full")
        with pytest.raises(VerificationError) as info:
            compile_w2(polynomial(12, 4), config=config)
        assert info.value.report is failing
        assert "iu.deadline" in info.value.report.format()

    def test_cache_key_ignores_verify_level(self):
        from repro.exec.keys import config_fingerprint

        on = dataclasses.replace(DEFAULT_CONFIG, verify="full")
        off = dataclasses.replace(DEFAULT_CONFIG, verify="off")
        assert config_fingerprint(on) == config_fingerprint(off)
        assert "verify" not in config_fingerprint(on)


class TestArtifactSurgery:
    """Each corruption trips exactly the invariant it violates."""

    @pytest.fixture()
    def program(self):
        return _compile_unverified(polynomial(16, 4))

    def test_understated_buffer_requirement(self, program):
        target = next(b for b in program.buffers if b.required >= 1)
        index = program.buffers.index(target)
        program.buffers[index] = dataclasses.replace(
            target, required=target.required - 1
        )
        report = verify_program(program, level="full")
        assert "occupancy.declared" in report.failed_checks()

    def test_skew_below_floor(self, program):
        program.skew = SkewResult(skew=0, channels=program.skew.channels)
        report = verify_program(program, level="full")
        failed = report.failed_checks()
        assert "skew.floor" in failed

    def test_understated_skew_is_infeasible(self, program):
        channels = program.skew.channels
        program.skew = SkewResult(skew=1, channels=channels)
        report = verify_program(program, level="full")
        # polynomial needs skew >= 2: the declared value must be caught
        # by the exact event re-enumeration.
        assert "skew.exact" in report.failed_checks()

    def test_aliased_registers_break_replay(self, program):
        mutant = mutate(program, "alias_temp_registers", 0)
        assert mutant is not None
        report = verify_program(mutant.program, level="full")
        assert not report.ok
        assert any(
            check.startswith("register.") or check.startswith("hazard.")
            for check in report.failed_checks()
        )

    def test_diagnostics_format_readably(self, program):
        program.skew = SkewResult(skew=0, channels=program.skew.channels)
        report = verify_program(program, level="full")
        text = report.format()
        assert "skew.floor" in text
        assert "diagnostic" in text
        summary = report.summary(limit=1)
        assert summary  # one-line form for VerificationError messages


class TestReport:
    def test_clean_report_reads_clean(self, compiled_polynomial):
        report = verify_program(compiled_polynomial, level="full")
        assert "all invariants hold" in report.format()
        assert report.failed_checks() == set()

    def test_ok_is_diagnostic_driven(self):
        report = VerificationReport(level="quick")
        report.ran("hazard.mem_ports")
        assert report.ok
        report.add("hazard.mem_ports", "boom", block_id=3, cycle=7)
        assert not report.ok
        assert report.failed_checks() == {"hazard.mem_ports"}
        rendered = str(report.diagnostics[0])
        assert "block 3" in rendered and "cycle 7" in rendered
