"""The compile cache: key properties (Hypothesis) and disk behaviour.

Properties locked down:

* identical (source, config, flags) always produce the same key —
  lookups hit;
* perturbing any single :class:`WarpConfig` field, any flag, or any one
  source token produces a different key — lookups miss;
* a truncated or garbage on-disk entry is silently recompiled (counted
  in ``disk_errors``), never a crash or a wrong program.
"""

from __future__ import annotations

import dataclasses
import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DEFAULT_CONFIG, CellConfig, IUConfig, WarpConfig
from repro.compiler import compile_w2
from repro.exec import (
    CACHE_KEY_VERSION,
    CompileCache,
    cache_key,
    compile_cached,
    config_fingerprint,
)
from repro.exec.cache import DISK_FORMAT_VERSION
from repro.machine import simulate
from repro.programs import passthrough, polynomial

# Key properties (Hypothesis) ---------------------------------------------

_SOURCES = st.sampled_from(
    [polynomial(8, 3), polynomial(12, 4), passthrough(6, 2), passthrough(8, 3)]
)
_SKEWS = st.sampled_from(["auto", "exact", "uniform"])
_UNROLLS = st.sampled_from([1, 2, 4, 8, "auto"])

#: Every scalar field of the config tree, as (dataclass path, field name).
_INT_FIELDS = (
    [("", f.name) for f in dataclasses.fields(WarpConfig) if f.type == "int"]
    + [("cell", f.name) for f in dataclasses.fields(CellConfig)]
    + [("iu", f.name) for f in dataclasses.fields(IUConfig)]
)


def _perturb(config: WarpConfig, path: str, name: str) -> WarpConfig:
    """``config`` with one scalar field bumped by one."""
    if path == "":
        return dataclasses.replace(config, **{name: getattr(config, name) + 1})
    sub = getattr(config, path)
    replaced = dataclasses.replace(sub, **{name: getattr(sub, name) + 1})
    return dataclasses.replace(config, **{path: replaced})


class TestKeyProperties:
    @given(source=_SOURCES, skew=_SKEWS, unroll=_UNROLLS, local_opt=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_identical_inputs_identical_key(self, source, skew, unroll, local_opt):
        first = cache_key(source, DEFAULT_CONFIG, skew, unroll, local_opt)
        second = cache_key(source, DEFAULT_CONFIG, skew, unroll, local_opt)
        assert first == second
        assert len(first) == 64  # sha256 hexdigest

    @given(field=st.sampled_from(_INT_FIELDS), source=_SOURCES)
    @settings(max_examples=40, deadline=None)
    def test_any_config_field_perturbation_misses(self, field, source):
        path, name = field
        perturbed = _perturb(DEFAULT_CONFIG, path, name)
        assert config_fingerprint(perturbed) != config_fingerprint(DEFAULT_CONFIG)
        assert cache_key(source, perturbed) != cache_key(source, DEFAULT_CONFIG)

    @given(source=_SOURCES, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_one_token_source_edit_misses(self, source, data):
        tokens = source.split(" ")
        index = data.draw(st.integers(0, len(tokens) - 1), label="token")
        edited = tokens.copy()
        edited[index] = edited[index] + "x"
        edited_source = " ".join(edited)
        assert cache_key(edited_source, DEFAULT_CONFIG) != cache_key(
            source, DEFAULT_CONFIG
        )

    @given(source=_SOURCES, skew=_SKEWS, unroll=_UNROLLS)
    @settings(max_examples=40, deadline=None)
    def test_flags_distinguish_keys(self, source, skew, unroll):
        baseline = cache_key(source, DEFAULT_CONFIG, "auto", 1, True)
        variant = cache_key(source, DEFAULT_CONFIG, skew, unroll, False)
        assert variant != baseline  # local_opt always differs

    def test_key_version_participates(self, monkeypatch):
        before = cache_key(polynomial(8, 3), DEFAULT_CONFIG)
        monkeypatch.setattr(
            "repro.exec.keys.CACHE_KEY_VERSION", CACHE_KEY_VERSION + 1
        )
        assert cache_key(polynomial(8, 3), DEFAULT_CONFIG) != before


# Cache behaviour ----------------------------------------------------------


class TestMemoryCache:
    def test_hit_returns_same_object(self):
        cache = CompileCache(capacity=4)
        source = passthrough(6, 2)
        first = compile_cached(source, cache=cache)
        second = compile_cached(source, cache=cache)
        assert second is first
        assert cache.stats.memory_hits == 1
        assert cache.stats.misses == 1
        assert cache.last_event == "memory-hit"

    def test_lru_eviction(self):
        cache = CompileCache(capacity=2)
        sources = [passthrough(6, 2), passthrough(8, 2), passthrough(10, 2)]
        for source in sources:
            compile_cached(source, cache=cache)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The oldest entry was evicted; the newest two still hit.
        compile_cached(sources[0], cache=cache)
        assert cache.stats.misses == 4

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CompileCache(capacity=0)


class TestDiskCache:
    def test_round_trip_across_instances(self, tmp_path):
        source = polynomial(10, 3)
        warm = CompileCache(cache_dir=tmp_path)
        program = compile_cached(source, cache=warm)
        assert warm.stats.stores == 1

        cold = CompileCache(cache_dir=tmp_path)  # fresh memory layer
        reloaded = compile_cached(source, cache=cold)
        assert cold.last_event == "disk-hit"
        assert cold.stats.disk_hits == 1
        assert reloaded is not program  # unpickled copy
        # The reloaded artefact simulates identically.
        inputs = {"z": np.arange(10.0), "c": np.array([1.0, -2.0, 0.5])}
        expected = simulate(program, inputs)
        got = simulate(reloaded, inputs)
        for name in expected.outputs:
            assert np.array_equal(got.outputs[name], expected.outputs[name])
        assert got.total_cycles == expected.total_cycles

    @pytest.mark.parametrize(
        "corruption",
        ["truncate", "garbage", "empty", "wrong_version", "wrong_key"],
    )
    def test_corrupt_entry_silently_recompiles(self, tmp_path, corruption):
        source = polynomial(10, 3)
        warm = CompileCache(cache_dir=tmp_path)
        compile_cached(source, cache=warm)
        entries = list(tmp_path.glob("*.w2c"))
        assert len(entries) == 1
        entry = entries[0]
        if corruption == "truncate":
            entry.write_bytes(entry.read_bytes()[: len(entry.read_bytes()) // 2])
        elif corruption == "garbage":
            entry.write_bytes(b"\x00not a pickle at all\xff" * 7)
        elif corruption == "empty":
            entry.write_bytes(b"")
        elif corruption == "wrong_version":
            envelope = pickle.loads(entry.read_bytes())
            envelope["format"] = DISK_FORMAT_VERSION + 1
            entry.write_bytes(pickle.dumps(envelope))
        else:
            envelope = pickle.loads(entry.read_bytes())
            envelope["key"] = "0" * 64
            entry.write_bytes(pickle.dumps(envelope))

        cold = CompileCache(cache_dir=tmp_path)
        program = compile_cached(source, cache=cold)  # must not raise
        assert program.module_name == "polynomial"
        assert cold.stats.disk_errors == 1
        assert cold.last_event == "miss"
        assert cold.stats.stores == 1  # the bad file was replaced
        # The recompile re-stored a valid entry: next cold cache hits disk.
        again = CompileCache(cache_dir=tmp_path)
        compile_cached(source, cache=again)
        assert again.last_event == "disk-hit"

    def test_unwritable_dir_degrades_to_memory(self, tmp_path):
        blocked = tmp_path / "not-a-dir"
        blocked.write_text("a file where the cache dir should be")
        cache = CompileCache(cache_dir=blocked)
        program = compile_cached(passthrough(6, 2), cache=cache)  # no raise
        assert program.module_name == "passthrough"
        assert cache.stats.disk_errors == 1
        assert compile_cached(passthrough(6, 2), cache=cache) is program

    def test_contains_and_clear(self, tmp_path):
        cache = CompileCache(cache_dir=tmp_path)
        source = passthrough(6, 2)
        key = cache_key(source, DEFAULT_CONFIG)
        assert key not in cache
        compile_cached(source, cache=cache)
        assert key in cache
        cache.clear(memory_only=True)
        assert key in cache  # still on disk
        cache.clear()
        assert key not in cache


class TestTelemetryCounters:
    def test_hit_and_miss_counters(self):
        from repro import obs

        cache = CompileCache(capacity=4)
        source = passthrough(6, 2)
        with obs.collecting() as telemetry:
            compile_cached(source, cache=cache)
            compile_cached(source, cache=cache)
        assert telemetry.counters["cache.miss"] == 1
        assert telemetry.counters["cache.hit"] == 1

    def test_disk_hit_counter(self, tmp_path):
        from repro import obs

        source = passthrough(6, 2)
        compile_cached(source, cache=CompileCache(cache_dir=tmp_path))
        with obs.collecting() as telemetry:
            compile_cached(source, cache=CompileCache(cache_dir=tmp_path))
        assert telemetry.counters["cache.hit"] == 1
        assert telemetry.counters["cache.disk_hit"] == 1
