"""The fault matrix: every fault class x three bundled programs.

The lockdown property is *no silent wrong answers*: every injected
fault is either *recovered* (the run completes with outputs
bit-identical to the clean run) or *detected* (a structured
:class:`~repro.errors.SimulationError` subclass from the expected
family).  A fault that completed with different outputs would fail
these tests immediately — that combination is asserted impossible for
every (kind, program) pair.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import compile_w2
from repro.errors import (
    CellHangError,
    QueueCapacityError,
    QueueUnderflowError,
    SilentCorruptionDetected,
    SimulationError,
)
from repro.exec import BatchRunner, CompileCache
from repro.faults import FaultInjector, FaultKind, FaultSpec, InjectionPlan
from repro.lang import Channel
from repro.machine import simulate
from repro.programs import conv1d, passthrough, polynomial

PROGRAM_FACTORIES = {
    "polynomial": lambda: polynomial(12, 4),
    "conv1d": lambda: conv1d(12, 3),
    "passthrough": lambda: passthrough(8, 2),
}

PROGRAM_NAMES = sorted(PROGRAM_FACTORIES)


def _make_inputs(name: str, rng: np.random.Generator):
    if name == "polynomial":
        return {"z": rng.standard_normal(12), "c": rng.standard_normal(4)}
    if name == "conv1d":
        return {"x": rng.standard_normal(12), "w": rng.standard_normal(3)}
    assert name == "passthrough"
    return {"din": rng.standard_normal(8)}


@pytest.fixture(scope="module")
def fleet():
    """(program, inputs, clean result) for each matrix program."""
    rng = np.random.default_rng(20260806)
    out = {}
    for name, factory in PROGRAM_FACTORIES.items():
        program = compile_w2(factory())
        inputs = _make_inputs(name, rng)
        out[name] = (program, inputs, simulate(program, inputs))
    return out


def _x_requirement(program) -> int:
    """The Section 6.2.2 minimum X-queue size of ``program``."""
    return next(
        b.required for b in program.buffers if b.channel == Channel.X
    )


def _run_injected(program, inputs, specs):
    """One injected run: (injector, result-or-None, error-or-None)."""
    injector = FaultInjector(InjectionPlan(specs=tuple(specs)))
    try:
        result = simulate(program, inputs, faults=injector)
    except SimulationError as error:
        return injector, None, error
    return injector, result, None


def _assert_identical(result, clean) -> None:
    for name, data in clean.outputs.items():
        assert np.array_equal(result.outputs[name], data), name


# The machine-fault matrix: (case id, spec fields, expected outcome).
# ``cell="last"`` resolves to the last cell; ``capacity`` may reference
# the program's static X-queue requirement.  ``expect`` is either the
# tuple of acceptable detection exception types, or ``"recovered"``.
MACHINE_MATRIX = [
    (
        "drop_send",
        dict(kind=FaultKind.DROP_SEND, cell=0, channel="X", index=1),
        (QueueUnderflowError, SilentCorruptionDetected),
    ),
    (
        "dup_send",
        dict(kind=FaultKind.DUP_SEND, cell=0, channel="X", index=1),
        (SilentCorruptionDetected, QueueCapacityError),
    ),
    (
        "flip_bits",
        dict(
            kind=FaultKind.FLIP_BITS,
            cell=0,
            channel="X",
            index=1,
            bitmask=1 << 52,
        ),
        (SilentCorruptionDetected,),
    ),
    (
        "stall_recovered",
        dict(kind=FaultKind.STALL_CELL, cell="last", cycles=2),
        "recovered",
    ),
    (
        "stall_detected",
        dict(kind=FaultKind.STALL_CELL, cell=0, cycles=100_000),
        (CellHangError, QueueUnderflowError),
    ),
    (
        "shrink_at_requirement",
        dict(kind=FaultKind.SHRINK_QUEUE, cell=1, channel="X", capacity="req"),
        "recovered",
    ),
    (
        "shrink_below_requirement",
        dict(
            kind=FaultKind.SHRINK_QUEUE,
            cell=1,
            channel="X",
            capacity="req-1",
        ),
        (QueueCapacityError,),
    ),
]


def _resolve_spec(fields: dict, program) -> FaultSpec:
    fields = dict(fields)
    if fields.get("cell") == "last":
        fields["cell"] = program.n_cells - 1
    if fields.get("capacity") == "req":
        fields["capacity"] = _x_requirement(program)
    elif fields.get("capacity") == "req-1":
        fields["capacity"] = _x_requirement(program) - 1
    return FaultSpec(**fields)


class TestMachineFaultMatrix:
    @pytest.mark.parametrize("program_name", PROGRAM_NAMES)
    @pytest.mark.parametrize(
        "case_id,fields,expect",
        MACHINE_MATRIX,
        ids=[case[0] for case in MACHINE_MATRIX],
    )
    def test_matrix(self, fleet, program_name, case_id, fields, expect):
        program, inputs, clean = fleet[program_name]
        spec = _resolve_spec(fields, program)
        injector, result, error = _run_injected(program, inputs, [spec])
        if expect == "recovered":
            assert error is None, f"expected recovery, got {error!r}"
            _assert_identical(result, clean)
            if spec.kind is not FaultKind.SHRINK_QUEUE:
                # Shrinking to the exact requirement is a no-op by
                # design; every other recovered fault must have fired.
                assert injector.fired, "the fault never fired"
            assert result.fault_report == injector.report()
        else:
            assert error is not None, (
                f"SILENT WRONG ANSWER RISK: {case_id} on {program_name} "
                "completed without detection"
            )
            assert isinstance(error, expect), error
            assert injector.fired, "detected a fault that never fired?"

    @pytest.mark.parametrize("program_name", PROGRAM_NAMES)
    def test_flip_at_collector_detected_at_rest(self, fleet, program_name):
        """A flip on the collector link is only readable, never
        dequeued — the post-run integrity sweep must still catch it."""
        program, inputs, _clean = fleet[program_name]
        spec = FaultSpec(
            kind=FaultKind.FLIP_BITS,
            cell=program.n_cells - 1,
            channel="X",
            index=0,
            bitmask=1 << 51,
        )
        injector, _result, error = _run_injected(program, inputs, [spec])
        assert isinstance(error, SilentCorruptionDetected)
        assert injector.fired

    @pytest.mark.parametrize("program_name", PROGRAM_NAMES)
    def test_empty_plan_is_bit_identical(self, fleet, program_name):
        """Clean-path purity: running under an empty plan (faults
        machinery loaded and threaded) changes nothing."""
        program, inputs, clean = fleet[program_name]
        injector, result, error = _run_injected(program, inputs, [])
        assert error is None
        assert not injector.fired
        assert result.fault_report == []
        _assert_identical(result, clean)


class TestCacheCorruption:
    @pytest.mark.parametrize("program_name", PROGRAM_NAMES)
    def test_corrupt_entry_recompiles_identically(
        self, fleet, program_name, tmp_path
    ):
        program, inputs, clean = fleet[program_name]
        source = PROGRAM_FACTORIES[program_name]()
        seed_cache = CompileCache(cache_dir=tmp_path)
        compile_w2(source, cache=seed_cache)
        assert seed_cache.stats.stores == 1

        plan = InjectionPlan(specs=(FaultSpec(kind=FaultKind.CORRUPT_CACHE),))
        injector = FaultInjector(plan)
        cache = CompileCache(cache_dir=tmp_path, injector=injector)
        recompiled = compile_w2(source, cache=cache)
        assert cache.last_event == "miss"
        assert cache.stats.disk_errors == 1
        assert injector.fired
        # The corrupted entry cost a recompile, never a wrong program.
        _assert_identical(simulate(recompiled, inputs), clean)

    def test_faulty_plan_partitions_the_cache_key(self, tmp_path):
        source = polynomial(12, 4)
        plan = InjectionPlan(specs=(FaultSpec(kind=FaultKind.CORRUPT_CACHE),))
        cache = CompileCache(cache_dir=tmp_path)
        compile_w2(source, cache=cache, faults=plan)
        assert cache.last_event == "miss"
        compile_w2(source, cache=cache)
        # The clean compile must not see the faulty run's artefact.
        assert cache.last_event == "miss"
        compile_w2(source, cache=cache, faults=plan)
        assert cache.last_event == "memory-hit"


@pytest.mark.timeout(120)
class TestWorkerFaults:
    @pytest.mark.parametrize("program_name", PROGRAM_NAMES)
    @pytest.mark.parametrize(
        "kind", [FaultKind.WORKER_KILL, FaultKind.WORKER_HANG]
    )
    def test_pool_worker_fault_recovered(self, fleet, program_name, kind):
        """A killed or hung worker costs a retry, never the batch: the
        final results are bit-identical to clean serial execution."""
        program, inputs, clean = fleet[program_name]
        items = [dict(inputs) for _ in range(3)]
        plan = InjectionPlan(
            specs=(
                FaultSpec(kind=kind, item=1, attempts=1, seconds=30.0),
            )
        )
        runner = BatchRunner(
            program,
            processes=2,
            faults=plan,
            max_retries=2,
            item_timeout=10.0,
            retry_backoff=0.0,
        )
        batch = runner.run(items)
        assert batch.ok, [f.describe() for f in batch.failures]
        assert batch.retries >= 1
        for result in batch.results:
            _assert_identical(result, clean)

    @pytest.mark.parametrize(
        "kind", [FaultKind.WORKER_KILL, FaultKind.WORKER_HANG]
    )
    def test_serial_worker_fault_recovered(self, fleet, kind):
        """Serial mode simulates worker faults in-process so the same
        plan is reproducible without a pool."""
        program, inputs, clean = fleet["polynomial"]
        plan = InjectionPlan(
            specs=(FaultSpec(kind=kind, item=0, attempts=1),)
        )
        batch = BatchRunner(
            program, faults=plan, max_retries=1, retry_backoff=0.0
        ).run([dict(inputs), dict(inputs)])
        assert batch.ok
        assert batch.retries == 1
        for result in batch.results:
            _assert_identical(result, clean)

    def test_exhausted_retries_yield_item_failure(self, fleet):
        """An unrecoverable item degrades to a structured failure
        record; every other item still completes bit-identically."""
        program, inputs, clean = fleet["conv1d"]
        plan = InjectionPlan(
            specs=(
                FaultSpec(
                    kind=FaultKind.DROP_SEND,
                    cell=0,
                    channel="X",
                    index=1,
                    item=1,
                    attempts=99,
                ),
            )
        )
        batch = BatchRunner(
            program, faults=plan, max_retries=1, retry_backoff=0.0
        ).run([dict(inputs) for _ in range(3)])
        assert not batch.ok
        assert [f.index for f in batch.failures] == [1]
        failure = batch.failures[0]
        assert failure.attempts == 2
        assert failure.error_type in (
            "QueueUnderflowError",
            "SilentCorruptionDetected",
        )
        assert batch.results[1] is None
        for index in (0, 2):
            _assert_identical(batch.results[index], clean)
        with pytest.raises(ValueError, match="failed item"):
            batch.outputs(next(iter(clean.outputs)))
