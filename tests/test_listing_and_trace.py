"""Tests for the human-readable outputs: microcode listings, trace
rendering, the synthetic-schedule helpers, and the metric reports."""

import numpy as np
import pytest

from repro.cellcodegen.listing import format_cell_code
from repro.compiler import compile_w2, format_metrics_table
from repro.lang import Channel
from repro.machine import simulate
from repro.machine.cell import TraceEvent
from repro.machine.trace import format_two_cell_trace
from repro.programs import passthrough, polynomial
from repro.timing import count_stream_events, input_stream, output_stream
from repro.timing.synthetic import block, build_program, loop


class TestListing:
    def test_contains_every_block_and_loop(self):
        program = compile_w2(polynomial(8, 3))
        text = format_cell_code(program.cell_code)
        n_blocks = sum(1 for _ in program.cell_code.blocks())
        assert text.count("block b") == n_blocks
        assert "loop L" in text

    def test_summary_line(self):
        program = compile_w2(passthrough(4, 2))
        text = format_cell_code(program.cell_code)
        first = text.splitlines()[0]
        assert "micro-instructions" in first
        assert str(program.cell_code.n_instructions) in first

    def test_instruction_rendering(self):
        program = compile_w2(polynomial(8, 3))
        text = format_cell_code(program.cell_code)
        assert "deq" in text and "enq" in text
        assert "mpy.fmul" in text and "alu.fadd" in text


class TestTraceRendering:
    def test_columns(self):
        events = [
            TraceEvent(0, 0, "receive", "L.X", 1.0),
            TraceEvent(0, 1, "send", "R.X", 1.0),
            TraceEvent(1, 4, "receive", "L.X", 1.0),
        ]
        text = format_two_cell_trace(events)
        lines = text.splitlines()
        assert lines[0].startswith("Cell 0")
        assert "receive" in lines[1]
        # Cell 1's row is indented into the second column.
        assert lines[3].startswith(" " * 30)

    def test_row_limit_indicates_truncation(self):
        events = [
            TraceEvent(0, t, "send", "R.X", float(t)) for t in range(50)
        ]
        text = format_two_cell_trace(events, max_rows=5)
        lines = text.splitlines()
        assert len(lines) == 7  # header + 5 rows + truncation note
        assert lines[-1] == "... 45 more events not shown"

    def test_no_truncation_note_when_everything_fits(self):
        events = [
            TraceEvent(0, t, "send", "R.X", float(t)) for t in range(3)
        ]
        text = format_two_cell_trace(events, max_rows=5)
        assert len(text.splitlines()) == 4
        assert "more events" not in text

    def test_arbitrary_cell_pair(self):
        events = [
            TraceEvent(2, 0, "send", "R.X", 1.0),
            TraceEvent(3, 4, "receive", "L.X", 1.0),
            TraceEvent(0, 1, "send", "R.X", 9.0),
        ]
        text = format_two_cell_trace(events, cells=(2, 3))
        lines = text.splitlines()
        assert lines[0].startswith("Cell 2")
        assert "Cell 3" in lines[0]
        # Cell 0's event is excluded; cell 2's send gets the arrow.
        assert "9.0" not in text
        assert "->" in lines[1]
        assert lines[2].startswith(" " * 30)

    def test_trace_limit_is_per_cell(self):
        program = compile_w2(polynomial(12, 4))
        rng = np.random.default_rng(0)
        result = simulate(
            program,
            {"z": rng.uniform(-1, 1, 12), "c": rng.standard_normal(4)},
            trace_limit=10,
        )
        cells = {event.cell for event in result.trace}
        assert {0, 1, 2, 3} <= cells


class TestSyntheticBuilders:
    def test_block_events(self):
        code = build_program(block(4, ("in", 1), ("out", 3)))
        assert count_stream_events(code.items, input_stream(Channel.X)) == 1
        assert count_stream_events(code.items, output_stream(Channel.X)) == 1

    def test_loop_multiplies_events(self):
        code = build_program(loop(5, block(2, ("in", 0))))
        assert count_stream_events(code.items, input_stream(Channel.X)) == 5

    def test_nested_loops(self):
        code = build_program(loop(3, loop(4, block(1, ("out", 0)))))
        assert count_stream_events(code.items, output_stream(Channel.X)) == 12

    def test_channel_selection(self):
        code = build_program(block(2, ("in", 0, Channel.Y)))
        assert count_stream_events(code.items, input_stream(Channel.Y)) == 1
        assert count_stream_events(code.items, input_stream(Channel.X)) == 0

    def test_total_cycles(self):
        code = build_program(block(3), loop(4, block(5)), block(2))
        assert code.total_cycles == 3 + 20 + 2


class TestMetricsTable:
    def test_columns_align(self):
        rows = [compile_w2(passthrough(4, 2)).metrics]
        table = format_metrics_table(rows)
        header, rule, row = table.splitlines()
        assert set(rule) == {"-"}
        assert "passthrough" in row

    def test_multiple_rows(self):
        rows = [
            compile_w2(passthrough(4, 2)).metrics,
            compile_w2(polynomial(8, 4)).metrics,
        ]
        table = format_metrics_table(rows)
        assert len(table.splitlines()) == 4
