"""Tests for the array dependence tests (GCD + bounds), including a
property-based comparison against brute-force enumeration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dependence import (
    IndexRange,
    bounds_test_independent,
    difference,
    gcd_test_independent,
    may_alias_any_iteration,
    may_alias_same_iteration,
    value_range,
)
from repro.lang.semantic import AffineIndex


def form(constant, **coeffs):
    return AffineIndex(constant, tuple(sorted(coeffs.items())))


class TestGCD:
    def test_constant_difference(self):
        assert gcd_test_independent(form(1))
        assert not gcd_test_independent(form(0))

    def test_divisible(self):
        # 2i - 2j + 1 = 0 has no integer solution (gcd 2, constant 1).
        assert gcd_test_independent(form(1, i=2, j=-2))

    def test_not_divisible_means_maybe(self):
        # 2i + 3j + 1 = 0 has solutions (gcd 1 divides everything).
        assert not gcd_test_independent(form(1, i=2, j=3))


class TestBounds:
    RANGES = {"i": IndexRange(0, 9), "j": IndexRange(0, 4)}

    def test_positive_range(self):
        # i + 1 over i in [0,9]: range [1, 10], excludes 0.
        assert bounds_test_independent(form(1, i=1), self.RANGES)

    def test_straddles_zero(self):
        assert not bounds_test_independent(form(-3, i=1), self.RANGES)

    def test_negative_coefficient(self):
        # -i - 1 over i in [0,9]: [-10, -1], excludes 0.
        assert bounds_test_independent(form(-1, i=-1), self.RANGES)

    def test_unknown_variable_is_conservative(self):
        assert not bounds_test_independent(form(5, q=1), self.RANGES)

    def test_value_range(self):
        assert value_range(form(2, i=1, j=-2), self.RANGES) == (2 - 8, 2 + 9)


class TestSameIteration:
    RANGES = {"i": IndexRange(0, 9)}

    def test_same_form_aliases(self):
        assert may_alias_same_iteration(form(0, i=1), form(0, i=1), self.RANGES)

    def test_shifted_by_constant_is_independent(self):
        """w[i] vs w[i+1] never collide in the same iteration — the key
        disambiguation for sliding-window code like conv2d."""
        assert not may_alias_same_iteration(
            form(0, i=1), form(1, i=1), self.RANGES
        )

    def test_different_strides_may_alias(self):
        # w[2i] vs w[i+3]: equal when i = 3.
        assert may_alias_same_iteration(form(0, i=2), form(3, i=1), self.RANGES)

    def test_bounds_save_the_day(self):
        # w[2i] vs w[i+30]: equal only at i = 30, outside [0, 9].
        assert not may_alias_same_iteration(
            form(0, i=2), form(30, i=1), self.RANGES
        )

    def test_without_ranges_falls_back_to_gcd(self):
        assert may_alias_same_iteration(form(0, i=2), form(30, i=1), None)
        assert not may_alias_same_iteration(form(0, i=2), form(31, i=2), None)


class TestAnyIteration:
    RANGES = {"i": IndexRange(0, 9)}

    def test_cross_iteration_alias(self):
        """w[i] vs w[i+1] DO collide across iterations (i=4 vs i'=3)."""
        assert may_alias_any_iteration(form(0, i=1), form(1, i=1), self.RANGES)

    def test_disjoint_regions(self):
        # w[i] (0..9) vs w[i+20] (20..29) never overlap.
        assert not may_alias_any_iteration(
            form(0, i=1), form(20, i=1), self.RANGES
        )

    def test_parity(self):
        # w[2i] (even) vs w[2i+1] (odd) never overlap.
        assert not may_alias_any_iteration(
            form(0, i=2), form(1, i=2), self.RANGES
        )


@st.composite
def alias_cases(draw):
    c1 = draw(st.integers(-6, 6))
    c2 = draw(st.integers(-6, 6))
    a1 = draw(st.integers(-3, 3))
    a2 = draw(st.integers(-3, 3))
    b1 = draw(st.integers(-3, 3))
    b2 = draw(st.integers(-3, 3))
    hi_i = draw(st.integers(0, 6))
    hi_j = draw(st.integers(0, 6))
    return (
        form(c1, i=a1, j=b1),
        form(c2, i=a2, j=b2),
        {"i": IndexRange(0, hi_i), "j": IndexRange(0, hi_j)},
    )


class TestSoundnessProperty:
    @given(alias_cases())
    @settings(max_examples=300, deadline=None)
    def test_same_iteration_never_misses_a_real_alias(self, case):
        """Brute force: if some (i, j) makes the two forms equal, the
        test must report possible aliasing."""
        a, b, ranges = case
        truly_aliases = any(
            a.evaluate({"i": i, "j": j}) == b.evaluate({"i": i, "j": j})
            for i in range(ranges["i"].low, ranges["i"].high + 1)
            for j in range(ranges["j"].low, ranges["j"].high + 1)
        )
        if truly_aliases:
            assert may_alias_same_iteration(a, b, ranges)

    @given(alias_cases())
    @settings(max_examples=200, deadline=None)
    def test_any_iteration_never_misses_a_real_alias(self, case):
        a, b, ranges = case
        space = [
            (i, j)
            for i in range(ranges["i"].low, ranges["i"].high + 1)
            for j in range(ranges["j"].low, ranges["j"].high + 1)
        ]
        truly_aliases = any(
            a.evaluate({"i": i1, "j": j1}) == b.evaluate({"i": i2, "j": j2})
            for (i1, j1) in space
            for (i2, j2) in space
        )
        if truly_aliases:
            assert may_alias_any_iteration(a, b, ranges)


class TestSchedulerIntegration:
    def test_disjoint_references_schedule_in_parallel(self):
        """w[2*i] and w[2*i + 1] are provably disjoint, so the two
        stores may share a cycle (two memory ports)."""
        from repro.compiler import compile_w2
        from repro.machine import simulate

        src = """
module m (a in, b out)
float a[8];
float b[8];
cellprogram (cid : 0 : 0)
begin
    float t, w[8];
    int i;
    for i := 0 to 3 do begin
        receive (L, X, t, a[i]);
        w[2*i] := t;
        w[2*i + 1] := t;
    end;
    for i := 0 to 7 do
        send (R, X, w[i], b[i]);
end
"""
        program = compile_w2(src)
        data = np.arange(4.0)
        result = simulate(program, {"a": data})
        expected = np.repeat(data, 2)
        assert np.allclose(result.outputs["b"], expected)
        # The two stores share a cycle in at least one block.
        store_block = list(program.cell_code.blocks())[0]
        cycles = [
            (cycle, len(ins.mem))
            for cycle, ins in enumerate(store_block.instructions)
            if ins.mem
        ]
        assert any(count == 2 for _, count in cycles)
