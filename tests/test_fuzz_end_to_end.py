"""Property-based end-to-end fuzzing.

Random (but well-formed, conservation-respecting) W2 pipeline programs
are compiled, run on the cycle-level simulator, and checked against the
independent AST interpreter.  Any disagreement exposes a bug in one of:
if-conversion, scheduling, register allocation, skew analysis, IU/host
code generation or the simulator itself.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_w2
from repro.exec import BatchRunner
from repro.lang import analyze, parse_module
from repro.machine import interpret, simulate

VARS = ["v0", "v1", "v2", "v3"]


@st.composite
def expressions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return draw(st.sampled_from(VARS))
        if choice == 1:
            return repr(float(draw(st.integers(-3, 3))))
        return "v0"
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    return f"({left} {op} {right})"


@st.composite
def statements(draw, depth=0):
    kind = draw(st.integers(0, 3 if depth == 0 else 2))
    target = draw(st.sampled_from(VARS[1:]))  # keep v0 = the input
    if kind in (0, 1, 2):
        return f"{target} := {draw(expressions())};"
    condition = (
        f"{draw(st.sampled_from(VARS))} "
        f"{draw(st.sampled_from(['<', '<=', '>', '>=']))} "
        f"{repr(float(draw(st.integers(-2, 2))))}"
    )
    then_stmt = f"{target} := {draw(expressions())};"
    if draw(st.booleans()):
        other = draw(st.sampled_from(VARS[1:]))
        return (
            f"if {condition} then {then_stmt} "
            f"else {other} := {draw(expressions())};"
        )
    return f"if {condition} then {then_stmt}"


@st.composite
def pipeline_programs(draw):
    n_cells = draw(st.integers(1, 3))
    n_points = draw(st.integers(1, 6))
    body = [draw(statements()) for _ in range(draw(st.integers(1, 5)))]
    use_y = draw(st.booleans())
    y_lines = (
        ["        receive (L, Y, v1, 0.0);", "        send (R, Y, v1 + v2);"]
        if use_y
        else []
    )
    body_text = "\n".join(f"        {line}" for line in body)
    source = f"""
module fuzz (a in, b out)
float a[{n_points}];
float b[{n_points}];
cellprogram (cid : 0 : {n_cells - 1})
begin
    float v0, v1, v2, v3;
    int i;
    v1 := 0.0;
    v2 := 0.0;
    v3 := 0.0;
    for i := 0 to {n_points - 1} do begin
        receive (L, X, v0, a[i]);
{chr(10).join(y_lines)}
{body_text}
        send (R, X, v0 + v1 + v2 + v3, b[i]);
    end;
end
"""
    return source, n_points


class TestFuzzedPipelines:
    @given(pipeline_programs(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_simulator_matches_interpreter(self, case, seed):
        source, n_points = case
        rng = np.random.default_rng(seed)
        inputs = {"a": rng.uniform(-2, 2, n_points)}
        analyzed = analyze(parse_module(source))
        expected = interpret(analyzed, inputs)
        program = compile_w2(source)
        result = simulate(program, inputs)
        assert np.allclose(
            result.outputs["b"], expected["b"], rtol=1e-9, atol=1e-9
        ), source

    @given(pipeline_programs())
    @settings(max_examples=30, deadline=None)
    def test_skew_and_buffers_are_consistent(self, case):
        source, n_points = case
        program = compile_w2(source)
        inputs = {"a": np.linspace(-1, 1, n_points)}
        result = simulate(program, inputs)
        for requirement in program.buffers:
            suffix = f".{requirement.channel.value}"
            observed = max(
                (
                    v
                    for k, v in result.queue_occupancy.items()
                    if k.endswith(suffix)
                ),
                default=0,
            )
            assert observed <= requirement.required

    @pytest.mark.timeout(300)
    @given(pipeline_programs(), st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_batch_pool_matches_one_shot(self, case, seed):
        """Generated programs through the batch engine: serial and
        2-process pool results are bit-identical, item for item, to
        one-shot simulation."""
        source, n_points = case
        rng = np.random.default_rng(seed)
        items = [
            {"a": rng.uniform(-2, 2, n_points)} for _ in range(3)
        ]
        program = compile_w2(source)
        one_shot = [simulate(program, inputs) for inputs in items]
        serial = BatchRunner(program).run(items)
        pooled = BatchRunner(program, processes=2).run(items)
        assert serial.ok and pooled.ok
        for expected, from_serial, from_pool in zip(
            one_shot, serial.results, pooled.results
        ):
            assert np.array_equal(
                from_serial.outputs["b"], expected.outputs["b"]
            ), source
            assert np.array_equal(
                from_pool.outputs["b"], expected.outputs["b"]
            ), source
