"""Unit tests for the W2 parser."""

import pytest

from repro.lang import (
    ArrayRef,
    Assign,
    BinaryExpr,
    BinaryOp,
    Call,
    Channel,
    Compound,
    Direction,
    For,
    If,
    IntLiteral,
    ParamDirection,
    ParseError,
    Receive,
    ScalarType,
    Send,
    UnaryExpr,
    UnaryOp,
    VarRef,
    parse_expression,
    parse_module,
)

MINIMAL = """
module tiny (din in, dout out)
float din[4];
float dout[4];
cellprogram (cid : 0 : 1)
begin
    float t;
    int i;
    for i := 0 to 3 do begin
        receive (L, X, t, din[i]);
        send (R, X, t, dout[i]);
    end;
end
"""


class TestModuleStructure:
    def test_minimal_module(self):
        module = parse_module(MINIMAL)
        assert module.name == "tiny"
        assert [p.direction for p in module.params] == [
            ParamDirection.IN,
            ParamDirection.OUT,
        ]
        assert module.cellprogram.n_cells == 2

    def test_host_decl_shapes(self):
        module = parse_module(MINIMAL)
        assert module.host_decl("din").dimensions == (4,)
        assert module.host_decl("din").scalar_type is ScalarType.FLOAT

    def test_multidim_decl(self):
        src = MINIMAL.replace("float din[4];", "float din[4, 3];")
        module = parse_module(src)
        assert module.host_decl("din").dimensions == (4, 3)
        assert module.host_decl("din").element_count == 12

    def test_functions_and_call(self):
        src = """
module f (a in, b out)
float a[2]; float b[2];
cellprogram (c : 0 : 0)
begin
    function work
    begin
        float t;
        receive (L, X, t, a[0]);
        send (R, X, t, b[0]);
    end
    call work;
end
"""
        module = parse_module(src)
        assert len(module.cellprogram.functions) == 1
        assert isinstance(module.cellprogram.body[0], Call)

    def test_empty_cell_range_rejected(self):
        src = MINIMAL.replace("(cid : 0 : 1)", "(cid : 3 : 1)")
        with pytest.raises(ParseError):
            parse_module(src)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_module(MINIMAL + "\nextra")


class TestStatements:
    def test_receive_fields(self):
        module = parse_module(MINIMAL)
        loop = module.cellprogram.body[0]
        assert isinstance(loop, For)
        body = loop.body
        assert isinstance(body, Compound)
        recv = body.statements[0]
        assert isinstance(recv, Receive)
        assert recv.direction is Direction.LEFT
        assert recv.channel is Channel.X
        assert isinstance(recv.external, ArrayRef)

    def test_send_without_external(self):
        src = MINIMAL.replace("send (R, X, t, dout[i]);", "send (R, X, t);")
        module = parse_module(src)
        loop = module.cellprogram.body[0]
        send = loop.body.statements[1]
        assert isinstance(send, Send)
        assert send.external is None

    def test_if_else(self):
        expr = """
module m (a in, b out)
float a[1]; float b[1];
cellprogram (c : 0 : 0)
begin
    float x, y;
    receive (L, X, x, a[0]);
    if x < 1.0 then
        y := 1.0;
    else
        y := 2.0;
    send (R, X, y, b[0]);
end
"""
        module = parse_module(expr)
        stmt = module.cellprogram.body[1]
        assert isinstance(stmt, If)
        assert stmt.else_body is not None

    def test_downto_loop(self):
        src = MINIMAL.replace("for i := 0 to 3", "for i := 3 downto 0")
        module = parse_module(src)
        loop = module.cellprogram.body[0]
        assert loop.downto

    def test_bad_direction_rejected(self):
        src = MINIMAL.replace("receive (L, X", "receive (Q, X")
        with pytest.raises(ParseError):
            parse_module(src)

    def test_bad_channel_rejected(self):
        src = MINIMAL.replace("receive (L, X", "receive (L, Z")
        with pytest.raises(ParseError):
            parse_module(src)

    def test_missing_semicolon_rejected(self):
        src = MINIMAL.replace("send (R, X, t, dout[i]);", "send (R, X, t, dout[i])")
        with pytest.raises(ParseError):
            parse_module(src)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("a + b * c")
        assert isinstance(expr, BinaryExpr)
        assert expr.op is BinaryOp.ADD
        assert isinstance(expr.right, BinaryExpr)
        assert expr.right.op is BinaryOp.MUL

    def test_parentheses_override(self):
        expr = parse_expression("(a + b) * c")
        assert expr.op is BinaryOp.MUL

    def test_left_associativity(self):
        expr = parse_expression("a - b - c")
        assert expr.op is BinaryOp.SUB
        assert isinstance(expr.left, BinaryExpr)
        assert isinstance(expr.right, VarRef)

    def test_unary_minus(self):
        expr = parse_expression("-a * b")
        assert expr.op is BinaryOp.MUL
        assert isinstance(expr.left, UnaryExpr)
        assert expr.left.op is UnaryOp.NEG

    def test_comparison_binds_looser_than_arithmetic(self):
        expr = parse_expression("a + b <= c * d")
        assert expr.op is BinaryOp.LE

    def test_boolean_precedence(self):
        expr = parse_expression("a < b and c < d or e < f")
        assert expr.op is BinaryOp.OR
        assert expr.left.op is BinaryOp.AND

    def test_not(self):
        expr = parse_expression("not a < b")
        assert isinstance(expr, UnaryExpr)
        assert expr.op is UnaryOp.NOT

    def test_multidim_subscript(self):
        expr = parse_expression("a[i, j + 1]")
        assert isinstance(expr, ArrayRef)
        assert len(expr.indices) == 2
        assert isinstance(expr.indices[1], BinaryExpr)

    def test_int_literal(self):
        expr = parse_expression("42")
        assert isinstance(expr, IntLiteral)
        assert expr.value == 42

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("(a + b")
