"""Unit tests for the DAG value numbering and ordering machinery."""

from repro.ir.dag import Dag, MemRef, OpKind, QueueRef
from repro.lang.ast import Channel, Direction
from repro.lang.semantic import affine_const, affine_var, AffineIndex


def queue():
    return QueueRef(Direction.LEFT, Channel.X)


class TestValueNumbering:
    def test_constants_are_hash_consed(self):
        dag = Dag()
        assert dag.const(1.5) is dag.const(1.5)

    def test_distinct_constants_distinct_nodes(self):
        dag = Dag()
        assert dag.const(1.0) is not dag.const(2.0)

    def test_pure_cse(self):
        dag = Dag()
        a, b = dag.read("a"), dag.read("b")
        first = dag.pure(OpKind.FADD, a, b)
        second = dag.pure(OpKind.FADD, a, b)
        assert first is second

    def test_commutative_normalisation(self):
        dag = Dag()
        a, b = dag.read("a"), dag.read("b")
        assert dag.pure(OpKind.FADD, a, b) is dag.pure(OpKind.FADD, b, a)
        assert dag.pure(OpKind.FMUL, a, b) is dag.pure(OpKind.FMUL, b, a)

    def test_noncommutative_not_normalised(self):
        dag = Dag()
        a, b = dag.read("a"), dag.read("b")
        assert dag.pure(OpKind.FSUB, a, b) is not dag.pure(OpKind.FSUB, b, a)

    def test_reads_are_shared(self):
        dag = Dag()
        assert dag.read("x") is dag.read("x")


class TestMemoryEpochs:
    def test_loads_merge_within_epoch(self):
        dag = Dag()
        ref = MemRef("arr", affine_const(3))
        assert dag.load(ref) is dag.load(ref)

    def test_store_starts_new_epoch(self):
        dag = Dag()
        ref = MemRef("arr", affine_const(3))
        before = dag.load(ref)
        dag.store(ref, dag.const(1.0))
        after = dag.load(ref)
        assert before is not after

    def test_store_to_other_array_preserves_epoch(self):
        dag = Dag()
        ref = MemRef("arr", affine_var("i"))
        before = dag.load(ref)
        dag.store(MemRef("other", affine_const(0)), dag.const(1.0))
        assert dag.load(ref) is before


class TestEffects:
    def test_recv_never_merged(self):
        dag = Dag()
        first = dag.recv(queue())
        second = dag.recv(queue())
        assert first is not second

    def test_effect_order_recorded(self):
        dag = Dag()
        r = dag.recv(queue())
        s = dag.send(QueueRef(Direction.RIGHT, Channel.X), r)
        w = dag.write("x", r)
        assert dag.effects == [r.node_id, s.node_id, w.node_id]

    def test_io_nodes_in_order(self):
        dag = Dag()
        r = dag.recv(queue())
        dag.write("x", r)
        s = dag.send(QueueRef(Direction.RIGHT, Channel.X), r)
        assert [n.node_id for n in dag.io_nodes()] == [r.node_id, s.node_id]


class TestLiveness:
    def test_dead_pure_nodes_excluded(self):
        dag = Dag()
        a = dag.read("a")
        dag.pure(OpKind.FADD, a, dag.const(1.0))  # dead
        used = dag.pure(OpKind.FMUL, a, a)
        dag.write("out", used)
        live_ids = {n.node_id for n in dag.live_nodes()}
        assert used.node_id in live_ids
        assert all(
            dag.nodes[i].op is not OpKind.FADD for i in live_ids
        )

    def test_operands_of_live_nodes_are_live(self):
        dag = Dag()
        a = dag.read("a")
        b = dag.const(2.0)
        product = dag.pure(OpKind.FMUL, a, b)
        dag.send(QueueRef(Direction.RIGHT, Channel.Y), product)
        live_ids = {n.node_id for n in dag.live_nodes()}
        assert {a.node_id, b.node_id, product.node_id} <= live_ids
