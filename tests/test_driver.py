"""Tests for the compiler driver: phase wiring, errors, metrics, reports."""

import numpy as np
import pytest

from repro.compiler import (
    compile_w2,
    decomposition_report,
    format_metrics_table,
)
from repro.config import CellConfig, IUConfig, WarpConfig
from repro.errors import MappingError, QueueOverflowError
from repro.machine import simulate
from repro.programs import (
    TABLE_7_1_PROGRAMS,
    bidirectional_cycle,
    bidirectional_exchange,
    matmul,
    passthrough,
    polynomial,
)


class TestMappability:
    def test_bidirectional_cycle_rejected(self):
        with pytest.raises(MappingError, match="both left and right"):
            compile_w2(bidirectional_cycle())

    def test_bidirectional_acyclic_rejected_as_bidirectional(self):
        with pytest.raises(MappingError, match="unidirectional"):
            compile_w2(bidirectional_exchange())

    def test_too_many_cells_rejected(self):
        config = WarpConfig(n_cells=2)
        with pytest.raises(MappingError, match="cells"):
            compile_w2(polynomial(10, 5), config=config)

    def test_single_cell_can_receive_from_host_only(self):
        from repro.programs import mandelbrot

        program = compile_w2(mandelbrot(4, 4, 2))
        assert program.n_cells == 1
        assert program.skew.skew == 1


class TestMetrics:
    @pytest.mark.parametrize("name", list(TABLE_7_1_PROGRAMS))
    def test_metrics_populated(self, name):
        program = compile_w2(TABLE_7_1_PROGRAMS[name]())
        metrics = program.metrics
        assert metrics.w2_lines > 0
        assert metrics.cell_ucode > 0
        assert metrics.iu_ucode >= 0
        assert metrics.compile_seconds > 0
        assert metrics.skew >= 1

    def test_metrics_table_renders(self):
        rows = [compile_w2(passthrough()).metrics]
        table = format_metrics_table(rows)
        assert "W2 Lines" in table and "passthrough" in table

    def test_colorseg_is_largest_cell_program(self):
        """Table 7-1's ordering: ColorSeg has the most cell microcode."""
        sizes = {
            name: compile_w2(factory()).metrics.cell_ucode
            for name, factory in TABLE_7_1_PROGRAMS.items()
        }
        assert max(sizes, key=sizes.get) == "ColorSeg"


class TestDecompositionReport:
    def test_matmul_moves_addresses_to_iu(self):
        program = compile_w2(matmul(8, 4))
        report = decomposition_report(program)
        assert report.iu_supplied_addresses > 0
        assert report.host_inputs > 0
        assert report.host_outputs == 64

    def test_streaming_program_needs_no_iu_addresses(self):
        program = compile_w2(polynomial(8, 4))
        report = decomposition_report(program)
        assert report.iu_supplied_addresses == 0
        assert report.host_outputs == 8


class TestRegisterDemotion:
    def test_many_scalars_demoted_and_correct(self):
        """A program with more scalars than registers compiles via
        memory demotion and still computes correctly."""
        n_vars = 70  # more than the 64 registers
        decls = ", ".join(f"s{i}" for i in range(n_vars))
        assigns = "\n        ".join(
            f"s{i} := t + {float(i)};" for i in range(n_vars)
        )
        total = " + ".join(f"s{i}" for i in range(n_vars))
        src = f"""
module wide (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 0)
begin
    float t, {decls};
    int i;
    for i := 0 to 3 do begin
        receive (L, X, t, a[i]);
        {assigns}
        send (R, X, {total}, b[i]);
    end;
end
"""
        program = compile_w2(src)
        assert "s0" in program.ir.arrays or len(program.ir.scalars) <= 64
        data = np.array([1.0, 2.0, 3.0, 4.0])
        result = simulate(program, {"a": data})
        expected = n_vars * data + sum(range(n_vars))
        assert np.allclose(result.outputs["b"], expected)


class TestQueueOverflowPolicy:
    def test_tiny_queues_reported(self):
        """With much smaller queues than the skew requires, compilation
        reports the overflow (Section 6.2.2: detected and reported)."""
        config = WarpConfig(queue_depth=1)
        with pytest.raises(QueueOverflowError) as excinfo:
            compile_w2(polynomial(30, 10), config=config)
        assert excinfo.value.required > 1

    def test_enlarged_queues_accept(self):
        config = WarpConfig(queue_depth=4096)
        program = compile_w2(polynomial(30, 10), config=config)
        assert program.buffers
