"""Tests for the observability layer: the span/counter API, disabled
mode, metrics dataclasses, and the Chrome trace_event exporter."""

import json

import numpy as np
import pytest

from repro import obs
from repro.obs.core import NULL_TELEMETRY, Telemetry
from repro.obs.metrics import (
    MachineRecorder,
    cell_metrics_from_counts,
    queue_metrics_from_times,
)


class TestSpans:
    def test_spans_nest(self):
        telemetry = Telemetry()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
            with telemetry.span("sibling"):
                pass
        outer, inner, sibling = telemetry.spans
        assert outer.depth == 0 and outer.parent == -1
        assert inner.depth == 1 and inner.parent == 0
        assert sibling.depth == 1 and sibling.parent == 0
        assert inner.start >= outer.start
        assert sibling.start >= inner.end
        assert outer.end >= sibling.end

    def test_span_closed_on_exception(self):
        telemetry = Telemetry()
        with pytest.raises(ValueError):
            with telemetry.span("failing"):
                raise ValueError("boom")
        (span,) = telemetry.spans
        assert span.end >= span.start
        # The open-span stack unwound: new spans are roots again.
        with telemetry.span("after"):
            pass
        assert telemetry.spans[-1].depth == 0

    def test_total_seconds_sums_roots_only(self):
        clock = iter([0.0, 1.0, 2.0, 3.0, 10.0, 14.0]).__next__
        telemetry = Telemetry(clock=clock)
        with telemetry.span("a"):      # 0 .. 3
            with telemetry.span("b"):  # 1 .. 2 (nested, not re-counted)
                pass
        with telemetry.span("c"):      # 10 .. 14
            pass
        assert telemetry.total_seconds == pytest.approx(3.0 + 4.0)

    def test_find(self):
        telemetry = Telemetry()
        with telemetry.span("parse"):
            pass
        with telemetry.span("parse"):
            pass
        assert len(telemetry.find("parse")) == 2
        assert telemetry.find("nope") == []


class TestCounters:
    def test_counters_accumulate(self):
        telemetry = Telemetry()
        telemetry.counter("hits")
        telemetry.counter("hits", 4)
        telemetry.counter("misses", 2)
        assert telemetry.counters == {"hits": 5, "misses": 2}

    def test_counters_attributed_to_open_span(self):
        telemetry = Telemetry()
        with telemetry.span("phase"):
            telemetry.counter("nodes", 7)
            telemetry.counter("nodes", 3)
        telemetry.counter("nodes", 100)  # outside any span
        (span,) = telemetry.spans
        assert span.counters == {"nodes": 10}
        assert telemetry.counters["nodes"] == 110


class TestDisabledMode:
    def test_null_telemetry_is_a_noop(self):
        with NULL_TELEMETRY.span("anything"):
            NULL_TELEMETRY.counter("anything", 5)
        assert NULL_TELEMETRY.spans == []
        assert NULL_TELEMETRY.counters == {}
        assert not NULL_TELEMETRY.enabled

    def test_default_active_telemetry_is_null(self):
        assert obs.get_telemetry() is NULL_TELEMETRY

    def test_collecting_restores_previous(self):
        before = obs.get_telemetry()
        with obs.collecting() as telemetry:
            assert obs.get_telemetry() is telemetry
            assert telemetry.enabled
        assert obs.get_telemetry() is before

    def test_enable_disable(self):
        telemetry = obs.enable()
        try:
            assert obs.get_telemetry() is telemetry
        finally:
            obs.disable()
        assert obs.get_telemetry() is NULL_TELEMETRY

    def test_compile_records_nothing_when_disabled(self):
        from repro.compiler import compile_w2
        from repro.programs import passthrough

        assert obs.get_telemetry() is NULL_TELEMETRY
        compile_w2(passthrough(4, 2))
        assert NULL_TELEMETRY.spans == []
        assert NULL_TELEMETRY.counters == {}


class TestMetricsDataclasses:
    def test_cell_breakdown_partitions_run(self):
        cell = cell_metrics_from_counts(
            cell=1,
            start_cycle=10,
            end_cycle=110,
            total_cycles=150,
            issue_cycles=60,
            alu_ops=30,
            mpy_ops=20,
            mem_reads=0,
            mem_writes=0,
            receives=5,
            sends=5,
        )
        assert cell.busy_cycles == 60
        assert cell.stall_cycles == 40
        assert cell.idle_cycles == 50
        assert cell.busy_cycles + cell.stall_cycles + cell.idle_cycles == 150
        assert cell.utilization == pytest.approx(60 / 150)
        assert cell.fp_ops == 50

    def test_queue_metrics_residency(self):
        queue = queue_metrics_from_times(
            name="q",
            capacity=8,
            high_water=2,
            send_times=[0, 1, 2, 3],
            recv_times=[2, 3, 4],
        )
        assert queue.items_sent == 4
        assert queue.items_received == 3
        assert queue.total_wait_cycles == (2 - 0) + (3 - 1) + (4 - 2)
        assert queue.mean_residency == pytest.approx(2.0)

    def test_occupancy_series_and_histogram(self):
        queue = queue_metrics_from_times(
            name="q",
            capacity=None,
            high_water=2,
            send_times=[0, 1],
            recv_times=[1, 4],
        )
        times, occupancy = queue.occupancy_series()
        # t=0: 1 in flight; t=1: second send + first receive -> 2, then
        # drops to 1 at t=2; empties after t=4.
        series = dict(zip(times.tolist(), occupancy.tolist()))
        assert series[0] == 1
        assert series[2] == 1
        assert series[5] == 0
        assert max(occupancy.tolist()) == 2
        histogram = queue.occupancy_histogram()
        assert sum(histogram.values()) == times.max() - times.min() + 1

    def test_recorder_truncates_at_limit(self):
        recorder = MachineRecorder(limit=2)
        for k in range(5):
            recorder.block(0, k, k * 10, 10, 3)
        assert len(recorder.blocks) == 2
        assert recorder.truncated


def _spans_fixture() -> Telemetry:
    clock = iter([0.0, 0.1, 0.2, 0.3, 0.4, 0.5]).__next__
    telemetry = Telemetry(clock=clock)
    with telemetry.span("compile"):
        with telemetry.span("parse"):
            telemetry.counter("tokens", 42)
        with telemetry.span("codegen"):
            pass
    return telemetry


class TestChromeTraceExport:
    def test_compile_events_validate(self):
        events = obs.compile_trace_events(_spans_fixture())
        payload = [e for e in events if e["ph"] != "M"]
        assert {e["ph"] for e in payload} == {"B", "E"}
        # Timestamps are monotonic along the stream and B/E balance.
        timestamps = [e["ts"] for e in payload]
        assert timestamps == sorted(timestamps)
        stack = []
        for event in payload:
            if event["ph"] == "B":
                stack.append(event["name"])
            else:
                assert stack.pop() == event["name"]
        assert stack == []

    def test_compile_counters_on_begin_event(self):
        events = obs.compile_trace_events(_spans_fixture())
        parse = [
            e for e in events if e["ph"] == "B" and e["name"] == "parse"
        ]
        assert parse[0]["args"] == {"tokens": 42}

    def test_machine_events_validate(self, rng):
        from repro.compiler import compile_w2
        from repro.machine import simulate
        from repro.programs import polynomial

        program = compile_w2(polynomial(12, 3))
        result = simulate(
            program,
            {"z": rng.uniform(-1, 1, 12), "c": rng.standard_normal(3)},
            record=True,
        )
        events = obs.machine_trace_events(
            result.machine_metrics, result.record
        )
        for event in events:
            assert event["ph"] in {"X", "B", "E", "C", "M"}
            assert "pid" in event and "name" in event
            if event["ph"] == "X":
                assert event["ts"] >= 0
                assert event["dur"] >= 1
        # One lane (thread_name metadata) per cell.
        lanes = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        for cell in range(program.n_cells):
            assert f"cell {cell}" in lanes
        assert "IU address path" in lanes and "host" in lanes
        # Cell lanes carry the per-block execution spans.
        assert any(
            e["ph"] == "X" and e["name"].startswith("block b")
            for e in events
        )

    def test_trace_document_roundtrips(self, rng, tmp_path):
        from repro.compiler import compile_w2
        from repro.machine import simulate
        from repro.programs import passthrough

        program = compile_w2(passthrough(6, 2))
        result = simulate(program, {"din": rng.standard_normal(6)})
        events = obs.simulation_trace_events(result)
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(path, events)
        document = json.loads(path.read_text())
        assert document["traceEvents"]
        assert isinstance(document["traceEvents"], list)

    def test_fallback_without_record(self, rng):
        """Without record=True the cell lanes carry one execute span."""
        from repro.compiler import compile_w2
        from repro.machine import simulate
        from repro.programs import passthrough

        program = compile_w2(passthrough(6, 2))
        result = simulate(program, {"din": rng.standard_normal(6)})
        events = obs.machine_trace_events(result.machine_metrics, None)
        executes = [e for e in events if e.get("name") == "execute"]
        assert len(executes) == program.n_cells


class TestReportFormatting:
    def test_phase_table(self):
        text = obs.format_phase_table(_spans_fixture())
        assert "compile" in text and "  parse" in text
        assert "100.0%" in text
        assert "tokens=42" in text

    def test_counters_table(self):
        telemetry = _spans_fixture()
        assert "tokens" in obs.format_counters(telemetry)
        assert obs.format_counters(Telemetry()) == "(no counters)"

    def test_telemetry_json(self):
        document = obs.telemetry_to_json(_spans_fixture())
        assert len(document["spans"]) == 3
        assert document["counters"] == {"tokens": 42}
        json.dumps(document)  # serialisable
