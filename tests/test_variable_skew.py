"""Tests for the variable-skew (delay-insertion) analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_w2
from repro.lang import Channel
from repro.programs import colorseg, polynomial
from repro.timing import plan_variable_skew, receive_delays
from repro.timing.synthetic import SynthBlock, SynthLoop, build_program
from repro.timing.events import stream_event_times
from repro.timing.vectors import input_stream, output_stream


class TestReceiveDelays:
    def test_no_delay_needed(self):
        sends = np.array([0, 1, 2])
        recvs = np.array([5, 6, 7])
        assert list(receive_delays(sends, recvs)) == [0, 0, 0]

    def test_single_bottleneck_propagates(self):
        sends = np.array([0, 10, 11])
        recvs = np.array([1, 2, 12])
        # receive 1 must wait 8 cycles; receive 2's requirement is
        # already met but the delay is cumulative (non-decreasing).
        assert list(receive_delays(sends, recvs)) == [0, 8, 8]

    def test_empty(self):
        assert receive_delays(np.array([1, 2]), np.array([])).size == 0

    def test_constraint_satisfied(self):
        sends = np.array([3, 4, 9, 20])
        recvs = np.array([0, 5, 6, 7])
        delays = receive_delays(sends, recvs)
        assert ((recvs + delays) >= sends[: recvs.size]).all()
        assert (np.diff(delays) >= 0).all()


class TestPlan:
    def test_colorseg_buffer_saving(self):
        """The paper's remark: delay insertion 'may lower the demand on
        the size of the buffers' — dramatic for ColorSeg."""
        program = compile_w2(colorseg(16, 8, 10))
        plan = plan_variable_skew(
            program.cell_code, Channel.X, program.skew.skew
        )
        assert plan.buffer_required < plan.buffer_constant
        assert plan.buffer_required <= 2

    def test_final_delay_bounded_by_skew(self):
        """And 'the latency of the computation remains the same': the
        accumulated delay never exceeds the constant minimum skew."""
        for source in (polynomial(24, 4), colorseg(12, 6, 5)):
            program = compile_w2(source)
            plan = plan_variable_skew(
                program.cell_code, Channel.X, program.skew.skew
            )
            assert plan.final_delay <= program.skew.skew

    def test_saving_reported(self):
        program = compile_w2(colorseg(12, 6, 5))
        plan = plan_variable_skew(
            program.cell_code, Channel.X, program.skew.skew
        )
        assert plan.buffer_saving == plan.buffer_constant - plan.buffer_required


@st.composite
def synth_with_balanced_io(draw):
    n = draw(st.integers(1, 5))
    items = []
    for _ in range(n):
        length = draw(st.integers(2, 5))
        first = draw(st.sampled_from(["in", "out"]))
        second = "out" if first == "in" else "in"
        items.append(
            SynthBlock(length=length, events=[(first, 0), (second, 1)])
        )
        if draw(st.booleans()):
            items[-1] = SynthLoop(trip=draw(st.integers(1, 4)), body=[items[-1]])
    return build_program(*items)


class TestProperties:
    @given(synth_with_balanced_io())
    @settings(max_examples=100, deadline=None)
    def test_variable_never_needs_more_buffer(self, code):
        from repro.timing import minimum_skew_exact

        sends = stream_event_times(code, output_stream(Channel.X))
        recvs = stream_event_times(code, input_stream(Channel.X))
        if recvs.size == 0 or recvs.size > sends.size:
            return
        skew = minimum_skew_exact(code, Channel.X).skew
        plan = plan_variable_skew(code, Channel.X, skew)
        assert plan.buffer_required <= plan.buffer_constant
        assert plan.final_delay <= max(skew, 0)
