"""Unit tests for the AST-level reference interpreter, plus the
differential sweep: every bundled program and every ``examples/`` W2
source through both the cycle simulator and the interpreter, with
bit-identical outputs (and the batched path bit-identical to one-shot,
item for item)."""

import importlib.util
from pathlib import Path

import numpy as np
import pytest

from repro.compiler import compile_w2
from repro.errors import HostDataError
from repro.exec import BatchRunner
from repro.lang import analyze, parse_module
from repro.machine import interpret, simulate
from repro.programs import conv2d


def run(source, inputs):
    return interpret(analyze(parse_module(source)), inputs)


class TestBasics:
    def test_single_cell_passthrough(self):
        src = """
module m (a in, b out)
float a[3];
float b[3];
cellprogram (cid : 0 : 0)
begin
    float t;
    int i;
    for i := 0 to 2 do begin
        receive (L, X, t, a[i]);
        send (R, X, t, b[i]);
    end;
end
"""
        outputs = run(src, {"a": np.array([1.0, 2.0, 3.0])})
        assert list(outputs["b"]) == [1.0, 2.0, 3.0]

    def test_arithmetic_and_literals(self):
        src = """
module m (a in, b out)
float a[2];
float b[2];
cellprogram (cid : 0 : 0)
begin
    float t;
    int i;
    for i := 0 to 1 do begin
        receive (L, X, t, a[i]);
        send (R, X, (t + 1.0) * 2.0 - 0.5, b[i]);
    end;
end
"""
        outputs = run(src, {"a": np.array([1.0, -2.0])})
        assert list(outputs["b"]) == [3.5, -2.5]

    def test_division(self):
        src = """
module m (a in, b out)
float a[1];
float b[1];
cellprogram (cid : 0 : 0)
begin
    float t;
    receive (L, X, t, a[0]);
    send (R, X, t / 4.0, b[0]);
end
"""
        outputs = run(src, {"a": np.array([10.0])})
        assert outputs["b"][0] == 2.5

    def test_true_branching_semantics(self):
        """The interpreter branches (doesn't if-convert): both arms'
        side effects are exclusive."""
        src = """
module m (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 0)
begin
    float t, u;
    int i;
    for i := 0 to 3 do begin
        receive (L, X, t, a[i]);
        if t >= 0.0 then u := 1.0; else u := 0.0 - 1.0;
        send (R, X, u, b[i]);
    end;
end
"""
        outputs = run(src, {"a": np.array([1.0, -2.0, 0.0, -0.1])})
        assert list(outputs["b"]) == [1.0, -1.0, 1.0, -1.0]

    def test_cell_local_arrays(self):
        src = """
module m (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 0)
begin
    float t, buf[4];
    int i;
    for i := 0 to 3 do begin
        receive (L, X, t, a[i]);
        buf[3 - i] := t;
    end;
    for i := 0 to 3 do
        send (R, X, buf[i], b[i]);
end
"""
        outputs = run(src, {"a": np.array([1.0, 2.0, 3.0, 4.0])})
        assert list(outputs["b"]) == [4.0, 3.0, 2.0, 1.0]

    def test_downto(self):
        src = """
module m (a in, b out)
float a[3];
float b[3];
cellprogram (cid : 0 : 0)
begin
    float t;
    int i;
    for i := 2 downto 0 do begin
        receive (L, X, t, a[i]);
        send (R, X, t, b[2 - i]);
    end;
end
"""
        outputs = run(src, {"a": np.array([1.0, 2.0, 3.0])})
        assert list(outputs["b"]) == [3.0, 2.0, 1.0]


class TestMultiCell:
    def test_streams_connect_cells(self):
        src = """
module m (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 2)
begin
    float t;
    int i;
    for i := 0 to 3 do begin
        receive (L, X, t, a[i]);
        send (R, X, t + 1.0, b[i]);
    end;
end
"""
        outputs = run(src, {"a": np.zeros(4)})
        assert list(outputs["b"]) == [3.0] * 4  # +1 per cell, 3 cells

    def test_unbalanced_streams_detected(self):
        src = """
module m (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 1)
begin
    float t;
    int i;
    for i := 0 to 3 do
        receive (L, X, t, a[i]);
    for i := 0 to 1 do
        send (R, X, t, b[i]);
end
"""
        with pytest.raises(HostDataError, match="empty stream"):
            run(src, {"a": np.zeros(4)})

    def test_receive_without_external_on_first_cell(self):
        src = """
module m (a in, b out)
float a[2];
float b[2];
cellprogram (cid : 0 : 0)
begin
    float t;
    receive (L, X, t);
    send (R, X, t, b[0]);
end
"""
        with pytest.raises(HostDataError, match="no external"):
            run(src, {"a": np.zeros(2)})


class TestFunctionsAndBooleans:
    def test_function_called_twice(self):
        src = """
module m (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 0)
begin
    function half
    begin
        float t;
        int i;
        for i := 0 to 1 do begin
            receive (L, X, t, a[i]);
            send (R, X, t * 0.5, b[i]);
        end;
    end
    call half;
    call half;
end
"""
        # NOTE: both calls execute the same externals (a[0..1] -> b[0..1]);
        # the second call overwrites the first with identical values.
        outputs = run(src, {"a": np.array([2.0, 4.0, 0.0, 0.0])})
        assert list(outputs["b"][:2]) == [1.0, 2.0]

    def test_boolean_operators(self):
        src = """
module m (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 0)
begin
    float t, u;
    int i;
    for i := 0 to 3 do begin
        receive (L, X, t, a[i]);
        u := 0.0;
        if t > 0.0 and t < 2.0 or not (t <= 10.0) then
            u := 1.0;
        send (R, X, u, b[i]);
    end;
end
"""
        outputs = run(src, {"a": np.array([1.0, 5.0, 11.0, -1.0])})
        assert list(outputs["b"]) == [1.0, 0.0, 1.0, 0.0]


# Differential sweep: simulator vs reference interpreter ------------------

#: Programs whose compiled arithmetic is *reassociated* (height
#: reduction rebalances the conv2d row sum), so the simulator rounds
#: differently from the source-order interpreter.  Everything else must
#: match bit for bit.
REASSOCIATED = {"conv2d"}

#: With unrolling, height reduction also rebalances the per-iteration
#: accumulation chains of these programs (`acc := acc + w*x` unrolled
#: N times becomes a balanced tree), so the unrolled sweep compares
#: them with tolerance too.
REASSOCIATED_UNROLLED = REASSOCIATED | {"matmul", "fir_bank"}


def _example_w2_sources() -> list[tuple[str, str]]:
    """(name, W2 source) for every source literal under ``examples/``."""
    examples = Path(__file__).resolve().parent.parent / "examples"
    sources = []
    for path in sorted(examples.glob("*.py")):
        text = path.read_text()
        if "\nSOURCE = " not in text:
            continue
        spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        sources.append((path.stem, module.SOURCE))
    return sources


def _assert_outputs_equal(name, simulated, reference, reassociated=REASSOCIATED):
    """Simulator outputs vs interpreter outputs, bit-identical unless
    the program's arithmetic is reassociated by the optimiser."""
    assert set(simulated) == set(reference)
    for out_name in sorted(reference):
        got, expected = simulated[out_name], reference[out_name]
        if name in reassociated:
            np.testing.assert_allclose(
                got, expected, rtol=1e-9, atol=1e-12,
                err_msg=f"{name}:{out_name}",
            )
        else:
            assert np.array_equal(got, expected), (
                f"{name}:{out_name} differs between simulator and "
                f"reference interpreter"
            )


class TestDifferentialSweep:
    """The cycle simulator and the AST interpreter agree on every
    program, bit for bit (modulo documented reassociation)."""

    def test_bundled_programs(self, program_suite):
        for name, source, inputs, _ref in program_suite:
            program = compile_w2(source)
            result = simulate(program, inputs)
            reference = interpret(analyze(parse_module(source)), inputs)
            _assert_outputs_equal(name, result.outputs, reference)

    @pytest.mark.parametrize("unroll", [2, 4, "auto"])
    def test_bundled_programs_unrolled(self, program_suite, unroll):
        """Unrolling changes schedules, never results."""
        for name, source, inputs, _ref in program_suite:
            program = compile_w2(source, unroll=unroll)
            result = simulate(program, inputs)
            reference = interpret(analyze(parse_module(source)), inputs)
            _assert_outputs_equal(
                name, result.outputs, reference, REASSOCIATED_UNROLLED
            )

    def test_example_sources(self, rng):
        cases = _example_w2_sources()
        assert cases, "examples/ should contribute at least one W2 source"
        for name, source in cases:
            program = compile_w2(source)
            inputs = {
                array: rng.standard_normal(
                    int(np.prod(dims)) if dims else 1
                )
                for array, dims in program.ir.host_arrays.items()
            }
            result = simulate(program, inputs)
            reference = interpret(analyze(parse_module(source)), inputs)
            _assert_outputs_equal(name, result.outputs, reference)


class TestSameCycleAddressOrder:
    """Regression: IU-supplied addresses are consumed in instruction-slot
    order, not loads-before-stores.

    The scheduler may pack a queue-addressed *store* into the same cycle
    as a queue-addressed *load* with the store in an earlier slot
    (conv2d's ring buffer at unroll factor 3 does exactly this).  The IU
    emits same-cycle addresses in slot order; a simulator that dequeued
    them loads-first handed each op the other's address and silently
    corrupted cell memory.
    """

    #: One cell, a ring-buffer delay line: b[r, c] = a[r-1, c].  Unroll
    #: factor 3 historically scheduled "store @q; load @q" in one cycle.
    DELAYLINE = """
module delayline (a in, b out)
float a[12];
float b[12];
cellprogram (cid : 0 : 0)
begin
    float xin, old;
    float buf[6];
    int r, c;
    for r := 0 to 1 do
        for c := 0 to 5 do begin
            receive (L, X, xin, a[r*6 + c]);
            old := buf[c];
            buf[c] := xin;
            send (R, X, old, b[r*6 + c]);
        end;
end
"""

    @pytest.mark.parametrize("unroll", [1, 2, 3, 4, 6])
    def test_ring_buffer_delay_is_exact(self, unroll):
        inputs = {"a": np.arange(1.0, 13.0)}
        expected = interpret(
            analyze(parse_module(self.DELAYLINE)), inputs
        )["b"]
        program = compile_w2(self.DELAYLINE, unroll=unroll)
        result = simulate(program, inputs)
        assert np.array_equal(result.outputs["b"], expected), (
            f"unroll={unroll}: the delay line must be bit-exact — a "
            "divergence here means same-cycle IU addresses were "
            "consumed out of slot order"
        )

    @pytest.mark.parametrize("unroll", [3, 4])
    def test_conv2d_unroll_divergence_is_reassociation_only(self, unroll):
        """conv2d at unroll 3/4 (trip 6 resolves 4 -> factor 3) stays
        within reassociation rounding of the reference — the historical
        multiple-ULP divergence is pinned out."""
        source = conv2d(6, 5)
        rng = np.random.default_rng(20260806)
        inputs = {
            "x": rng.standard_normal(30),
            "k": rng.standard_normal(9),
        }
        expected = interpret(analyze(parse_module(source)), inputs)["y"]
        result = simulate(compile_w2(source, unroll=unroll), inputs)
        np.testing.assert_allclose(
            result.outputs["y"], expected, rtol=1e-12, atol=1e-12
        )


class TestBatchedMatchesOneShot:
    """The batched path is bit-identical to one-shot simulation, item
    for item, for every bundled program (no tolerance here: batching
    must never change what the machine computes)."""

    def test_bundled_programs_item_for_item(self, program_suite, rng):
        for name, source, inputs, _ref in program_suite:
            program = compile_w2(source)
            items = [inputs] + [
                {
                    array: rng.standard_normal(values.shape)
                    for array, values in inputs.items()
                }
                for _ in range(2)
            ]
            batched = BatchRunner(program).run(items)
            assert batched.n_items == len(items)
            for item, result in zip(items, batched.results):
                one_shot = simulate(program, item)
                assert set(result.outputs) == set(one_shot.outputs)
                for out_name, expected in one_shot.outputs.items():
                    assert np.array_equal(
                        result.outputs[out_name], expected
                    ), f"{name}:{out_name} batched != one-shot"
                assert result.total_cycles == one_shot.total_cycles
