"""Unit tests for the AST-level reference interpreter."""

import numpy as np
import pytest

from repro.errors import HostDataError
from repro.lang import analyze, parse_module
from repro.machine import interpret


def run(source, inputs):
    return interpret(analyze(parse_module(source)), inputs)


class TestBasics:
    def test_single_cell_passthrough(self):
        src = """
module m (a in, b out)
float a[3];
float b[3];
cellprogram (cid : 0 : 0)
begin
    float t;
    int i;
    for i := 0 to 2 do begin
        receive (L, X, t, a[i]);
        send (R, X, t, b[i]);
    end;
end
"""
        outputs = run(src, {"a": np.array([1.0, 2.0, 3.0])})
        assert list(outputs["b"]) == [1.0, 2.0, 3.0]

    def test_arithmetic_and_literals(self):
        src = """
module m (a in, b out)
float a[2];
float b[2];
cellprogram (cid : 0 : 0)
begin
    float t;
    int i;
    for i := 0 to 1 do begin
        receive (L, X, t, a[i]);
        send (R, X, (t + 1.0) * 2.0 - 0.5, b[i]);
    end;
end
"""
        outputs = run(src, {"a": np.array([1.0, -2.0])})
        assert list(outputs["b"]) == [3.5, -2.5]

    def test_division(self):
        src = """
module m (a in, b out)
float a[1];
float b[1];
cellprogram (cid : 0 : 0)
begin
    float t;
    receive (L, X, t, a[0]);
    send (R, X, t / 4.0, b[0]);
end
"""
        outputs = run(src, {"a": np.array([10.0])})
        assert outputs["b"][0] == 2.5

    def test_true_branching_semantics(self):
        """The interpreter branches (doesn't if-convert): both arms'
        side effects are exclusive."""
        src = """
module m (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 0)
begin
    float t, u;
    int i;
    for i := 0 to 3 do begin
        receive (L, X, t, a[i]);
        if t >= 0.0 then u := 1.0; else u := 0.0 - 1.0;
        send (R, X, u, b[i]);
    end;
end
"""
        outputs = run(src, {"a": np.array([1.0, -2.0, 0.0, -0.1])})
        assert list(outputs["b"]) == [1.0, -1.0, 1.0, -1.0]

    def test_cell_local_arrays(self):
        src = """
module m (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 0)
begin
    float t, buf[4];
    int i;
    for i := 0 to 3 do begin
        receive (L, X, t, a[i]);
        buf[3 - i] := t;
    end;
    for i := 0 to 3 do
        send (R, X, buf[i], b[i]);
end
"""
        outputs = run(src, {"a": np.array([1.0, 2.0, 3.0, 4.0])})
        assert list(outputs["b"]) == [4.0, 3.0, 2.0, 1.0]

    def test_downto(self):
        src = """
module m (a in, b out)
float a[3];
float b[3];
cellprogram (cid : 0 : 0)
begin
    float t;
    int i;
    for i := 2 downto 0 do begin
        receive (L, X, t, a[i]);
        send (R, X, t, b[2 - i]);
    end;
end
"""
        outputs = run(src, {"a": np.array([1.0, 2.0, 3.0])})
        assert list(outputs["b"]) == [3.0, 2.0, 1.0]


class TestMultiCell:
    def test_streams_connect_cells(self):
        src = """
module m (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 2)
begin
    float t;
    int i;
    for i := 0 to 3 do begin
        receive (L, X, t, a[i]);
        send (R, X, t + 1.0, b[i]);
    end;
end
"""
        outputs = run(src, {"a": np.zeros(4)})
        assert list(outputs["b"]) == [3.0] * 4  # +1 per cell, 3 cells

    def test_unbalanced_streams_detected(self):
        src = """
module m (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 1)
begin
    float t;
    int i;
    for i := 0 to 3 do
        receive (L, X, t, a[i]);
    for i := 0 to 1 do
        send (R, X, t, b[i]);
end
"""
        with pytest.raises(HostDataError, match="empty stream"):
            run(src, {"a": np.zeros(4)})

    def test_receive_without_external_on_first_cell(self):
        src = """
module m (a in, b out)
float a[2];
float b[2];
cellprogram (cid : 0 : 0)
begin
    float t;
    receive (L, X, t);
    send (R, X, t, b[0]);
end
"""
        with pytest.raises(HostDataError, match="no external"):
            run(src, {"a": np.zeros(2)})


class TestFunctionsAndBooleans:
    def test_function_called_twice(self):
        src = """
module m (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 0)
begin
    function half
    begin
        float t;
        int i;
        for i := 0 to 1 do begin
            receive (L, X, t, a[i]);
            send (R, X, t * 0.5, b[i]);
        end;
    end
    call half;
    call half;
end
"""
        # NOTE: both calls execute the same externals (a[0..1] -> b[0..1]);
        # the second call overwrites the first with identical values.
        outputs = run(src, {"a": np.array([2.0, 4.0, 0.0, 0.0])})
        assert list(outputs["b"][:2]) == [1.0, 2.0]

    def test_boolean_operators(self):
        src = """
module m (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 0)
begin
    float t, u;
    int i;
    for i := 0 to 3 do begin
        receive (L, X, t, a[i]);
        u := 0.0;
        if t > 0.0 and t < 2.0 or not (t <= 10.0) then
            u := 1.0;
        send (R, X, u, b[i]);
    end;
end
"""
        outputs = run(src, {"a": np.array([1.0, 5.0, 11.0, -1.0])})
        assert list(outputs["b"]) == [1.0, 0.0, 1.0, 0.0]
