"""Tests for AST -> IR lowering: inlining, if-conversion, value maps."""

import pytest

from repro.ir import build_ir
from repro.ir.dag import OpKind
from repro.ir.tree import Loop
from repro.lang import UnsupportedProgramError, analyze, parse_module


def lower(body, decls="float t, u;\n    int i, j;", host="float a[16];\nfloat b[16];"):
    src = f"""
module m (a in, b out)
{host}
cellprogram (cid : 0 : 1)
begin
    {decls}
{body}
end
"""
    return build_ir(analyze(parse_module(src)))


def ops_in(ir, op):
    return [
        node
        for block in ir.tree.blocks()
        for node in block.dag.live_nodes()
        if node.op is op
    ]


class TestBlockStructure:
    def test_loop_splits_blocks(self):
        ir = lower(
            """
    t := 1.0;
    for i := 0 to 3 do
        receive (L, X, t, a[i]);
    send (R, X, t);
"""
        )
        kinds = [type(item).__name__ for item in ir.tree.items]
        assert kinds == ["BasicBlock", "Loop", "BasicBlock"]

    def test_nested_loops(self):
        ir = lower(
            """
    for i := 0 to 1 do
        for j := 0 to 2 do
            receive (L, X, t, a[3*i + j]);
"""
        )
        outer = ir.tree.items[0]
        assert isinstance(outer, Loop)
        assert outer.trip == 2
        inner = outer.body[0]
        assert isinstance(inner, Loop)
        assert inner.trip == 3

    def test_effect_free_loop_dropped(self):
        ir = lower(
            """
    receive (L, X, t, a[0]);
    for i := 0 to 3 do begin end;
    send (R, X, t);
"""
        )
        assert all(not isinstance(item, Loop) for item in ir.tree.items)

    def test_downto_step(self):
        ir = lower("    for i := 5 downto 2 do receive (L, X, t, a[i]);")
        loop = ir.tree.items[0]
        assert (loop.start, loop.step, loop.trip) == (5, -1, 4)


class TestValueMap:
    def test_copy_propagation(self):
        ir = lower(
            """
    receive (L, X, t, a[0]);
    u := t;
    send (R, X, u);
"""
        )
        # The send's operand is the recv itself, not a copy.
        sends = ops_in(ir, OpKind.SEND)
        recvs = ops_in(ir, OpKind.RECV)
        assert sends[0].operands == (recvs[0].node_id,)

    def test_redundant_write_skipped(self):
        ir = lower(
            """
    receive (L, X, t, a[0]);
    for i := 0 to 1 do begin
        u := t;
        send (R, X, u);
    end;
"""
        )
        # u := t inside the loop writes u each iteration; t itself is
        # only read, so no WRITE for t appears in the loop block.
        loop_block = list(ir.tree.blocks())[1]
        writes = [
            n for n in loop_block.dag.live_nodes() if n.op is OpKind.WRITE
        ]
        assert all(n.attr != "t" for n in writes)

    def test_cse_across_statements(self):
        ir = lower(
            """
    receive (L, X, t, a[0]);
    receive (L, X, u, a[1]);
    send (R, X, t*u + t*u);
"""
        )
        muls = ops_in(ir, OpKind.FMUL)
        assert len(muls) == 1


class TestIfConversion:
    def test_select_generated(self):
        ir = lower(
            """
    receive (L, X, t, a[0]);
    if t < 0.5 then u := 1.0; else u := 2.0;
    send (R, X, u);
"""
        )
        selects = ops_in(ir, OpKind.SELECT)
        assert len(selects) == 1

    def test_one_sided_if_reads_old_value(self):
        ir = lower(
            """
    receive (L, X, u, a[0]);
    for i := 0 to 1 do begin
        receive (L, X, t, a[i]);
        if t < 0.5 then u := u + 1.0;
        send (R, X, u);
    end;
"""
        )
        loop_block = list(ir.tree.blocks())[1]
        selects = [
            n for n in loop_block.dag.live_nodes() if n.op is OpKind.SELECT
        ]
        assert len(selects) == 1
        # The else-value must be the block-entry READ of u.
        else_operand = loop_block.dag.nodes[selects[0].operands[2]]
        assert else_operand.op is OpKind.READ
        assert else_operand.attr == "u"

    def test_nested_if(self):
        ir = lower(
            """
    receive (L, X, t, a[0]);
    u := 0.0;
    if t < 0.5 then begin
        if t < 0.25 then u := 1.0; else u := 2.0;
    end;
    send (R, X, u);
"""
        )
        selects = ops_in(ir, OpKind.SELECT)
        assert len(selects) == 2

    def test_branch_both_same_value_folds(self):
        ir = lower(
            """
    receive (L, X, t, a[0]);
    if t < 0.5 then u := 1.0; else u := 1.0;
    send (R, X, u);
"""
        )
        assert not ops_in(ir, OpKind.SELECT)

    def test_io_inside_if_rejected(self):
        with pytest.raises(UnsupportedProgramError, match="send/receive"):
            lower(
                """
    receive (L, X, t, a[0]);
    if t < 0.5 then send (R, X, t);
"""
            )

    def test_loop_inside_if_rejected(self):
        with pytest.raises(UnsupportedProgramError, match="loop"):
            lower(
                """
    receive (L, X, t, a[0]);
    if t < 0.5 then for i := 0 to 3 do u := 1.0;
"""
            )

    def test_array_store_inside_if_rejected(self):
        with pytest.raises(UnsupportedProgramError, match="array stores"):
            lower(
                """
    receive (L, X, t, a[0]);
    if t < 0.5 then w[0] := t;
""",
                decls="float t, w[4];\n    int i;",
            )


class TestInlining:
    SRC = """
module m (a in, b out)
float a[8];
float b[8];
cellprogram (cid : 0 : 0)
begin
    function body
    begin
        float t;
        int i;
        for i := 0 to 3 do begin
            receive (L, X, t, a[i]);
            send (R, X, t, b[i]);
        end;
    end
    call body;
    call body;
end
"""

    def test_two_instantiations(self):
        ir = build_ir(analyze(parse_module(self.SRC)))
        loops = list(ir.tree.loops())
        assert len(loops) == 2
        # Each instantiation gets its own renamed loop variable.
        assert loops[0].var != loops[1].var

    def test_io_statement_count(self):
        ir = build_ir(analyze(parse_module(self.SRC)))
        assert len(ir.io_statements) == 4  # 2 per instantiation


class TestMemoryScalars:
    def test_demoted_scalar_becomes_array(self):
        src = """
module m (a in, b out)
float a[4];
float b[4];
cellprogram (cid : 0 : 0)
begin
    float t;
    int i;
    for i := 0 to 3 do begin
        receive (L, X, t, a[i]);
        send (R, X, t, b[i]);
    end;
end
"""
        ir = build_ir(analyze(parse_module(src)), memory_scalars=frozenset({"t"}))
        assert "t" in ir.arrays
        assert "t" not in ir.scalars
        loop_block = next(ir.tree.blocks())
        stores = [n for n in loop_block.dag.live_nodes() if n.op is OpKind.STORE]
        loads = [n for n in loop_block.dag.live_nodes() if n.op is OpKind.LOAD]
        assert stores and not loads  # forwarded load within the block


class TestHostIndexFlattening:
    def test_2d_external_flattened_row_major(self):
        ir = lower(
            """
    for i := 0 to 1 do
        for j := 0 to 2 do
            receive (L, X, t, a[i, j]);
""",
            host="float a[2, 8];\nfloat b[16];",
        )
        stmt = ir.io_statements[0]
        # Loop variables get unique IR names ("i#<loop_id>").
        coeffs = dict(stmt.external_index.coefficients)
        i_var = next(v for v in coeffs if v.startswith("i#"))
        j_var = next(v for v in coeffs if v.startswith("j#"))
        assert coeffs[i_var] == 8
        assert coeffs[j_var] == 1
