"""Tests for IU code generation: allocation strategies (Table 6-5),
strength reduction, deadlines, table memory, and loop signals."""

import pytest

from repro.compiler import compile_w2
from repro.config import IUConfig, WarpConfig, CellConfig
from repro.iucodegen import (
    IULoop,
    Strategy,
    enumerate_allocation_options,
    generate_iu_code,
    plan_allocation,
)
from repro.iucodegen.allocation import LoopInfo
from repro.ir import build_ir
from repro.lang import analyze, parse_module
from repro.lang.semantic import AffineIndex
from repro.cellcodegen import generate_cell_code
from repro.analysis import eliminate_dead_writes


def table_6_5_expressions():
    """a[i, j+1] and b[i+j, j] for N x N arrays, base addresses 0 and
    N*N, as in Section 6.3.2's example (N symbolic -> use N = 32)."""
    n = 32
    a = AffineIndex(1, (("i", n), ("j", 1)))          # a + i*N + j + 1
    b = AffineIndex(n * n, (("i", n), ("j", n + 1)))  # b + (i+j)*N + j
    loops = [LoopInfo("i", 0, 1, n), LoopInfo("j", 0, 1, n)]
    return [a, b], loops


class TestAllocationStrategies:
    def test_full_address_plan(self):
        exprs, loops = table_6_5_expressions()
        plan = plan_allocation(exprs, loops, Strategy.FULL_ADDRESS)
        assert plan.n_registers == 2
        assert plan.total_emission_adds == 0
        # Both expressions vary in j: two updates in the inner loop.
        assert plan.updates_per_innermost_iteration == 2

    def test_shared_signature_plan(self):
        exprs, loops = table_6_5_expressions()
        # Add a third expression sharing a's coefficients: a[i, j+4].
        n = 32
        exprs = exprs + [AffineIndex(4, (("i", n), ("j", 1)))]
        plan = plan_allocation(exprs, loops, Strategy.SHARED_SIGNATURE)
        assert len(plan.registers) == 2  # a-shape shared, b separate
        assert plan.emission_adds[0] == 0  # representative
        assert plan.emission_adds[2] == 1  # +3 at emission

    def test_per_product_plan(self):
        exprs, loops = table_6_5_expressions()
        plan = plan_allocation(exprs, loops, Strategy.PER_PRODUCT)
        # Products: i*32 (shared), j*1, j*33 -> 3 registers + scratch.
        assert len(plan.registers) == 3
        assert plan.scratch_registers == 1
        # a = i*32 + j + 1: two adds; b = i*32 + j*33 + 1024: two adds.
        assert plan.emission_adds[0] == 2
        assert plan.emission_adds[1] == 2

    def test_trade_off_table_shape(self):
        """Reproduce Table 6-5's trade-off: register count falls as
        per-emission arithmetic rises."""
        exprs, loops = table_6_5_expressions()
        plans = enumerate_allocation_options(exprs, loops)
        registers = [p.n_registers for p in plans]
        arithmetic = [p.total_emission_adds for p in plans]
        assert registers[0] >= registers[-1] - 2  # full-address is register-hungry
        assert arithmetic[0] == 0
        assert arithmetic[-1] > arithmetic[0]

    def test_updates_and_exit_wraps_cancel(self):
        """Over a loop's full trip, the iteration updates plus the exit
        wrap leave a register unchanged (so outer iterations restart
        correctly)."""
        exprs, loops = table_6_5_expressions()
        plan = plan_allocation(exprs, loops, Strategy.FULL_ADDRESS)
        for loop_info in loops:
            for (reg, delta), (reg2, wrap) in zip(
                plan.updates.get(loop_info.var, []),
                plan.exit_updates.get(loop_info.var, []),
            ):
                assert reg == reg2
                assert delta * loop_info.trip + wrap == 0


SRC_ARRAY = """
module m (a in, b out)
float a[12];
float b[12];
cellprogram (cid : 0 : 0)
begin
    float t, w[12];
    int i;
    for i := 0 to 11 do begin
        receive (L, X, t, a[i]);
        w[i] := t;
    end;
    for i := 0 to 11 do
        send (R, X, w[i] + 1.0, b[i]);
end
"""


def iu_for(src, iu_config=None):
    ir = build_ir(analyze(parse_module(src)))
    eliminate_dead_writes(ir.tree)
    code = generate_cell_code(ir, CellConfig())
    return code, generate_iu_code(code, iu_config or IUConfig())


class TestIUCodegen:
    def test_emissions_meet_deadlines(self):
        _, iu = iu_for(SRC_ARRAY)
        for emit, deadline, _addr in iu.emission_times():
            assert emit <= deadline

    def test_emissions_fifo_ordered(self):
        _, iu = iu_for(SRC_ARRAY)
        times = [emit for emit, _, _ in iu.emission_times()]
        assert times == sorted(times)

    def test_addresses_match_affine_values(self):
        code, iu = iu_for(SRC_ARRAY)
        addresses = [addr for _, _, addr in iu.emission_times()]
        # w occupies [0, 12); first loop stores w[0..11], second loads.
        assert addresses == list(range(12)) * 2

    def test_register_machine_equivalence(self):
        """Executing the induction-register plan literally produces the
        same address sequence as direct affine evaluation."""
        code, iu = iu_for(SRC_ARRAY)
        plan = iu.plan
        # Initialise registers at loop-var start values.
        env = {}
        regs = {
            name: sub.evaluate({v: _start_of(iu, v) for v in sub.variables})
            for name, sub in plan.registers.items()
        }
        produced = []

        def walk(items):
            for item in items:
                if isinstance(item, IULoop):
                    for i in range(item.trip):
                        env[item.var] = item.start + i * item.step
                        walk(item.body)
                        for reg, delta in item.boundary_updates:
                            regs[reg] += delta
                    for reg, wrap in item.exit_updates:
                        regs[reg] += wrap
                else:
                    for emission in item.emissions:
                        names, const = plan.compositions[emission.expr_index]
                        produced.append(sum(regs[n] for n in names) + const)

        walk(iu.items)
        expected = [addr for _, _, addr in iu.emission_times()]
        assert produced == expected

    def test_loop_unrolling_for_short_bodies(self):
        src = """
module m (a in, b out)
float a[8];
float b[8];
cellprogram (cid : 0 : 1)
begin
    float t;
    int i;
    for i := 0 to 7 do begin
        receive (L, X, t, a[i]);
        send (R, X, t, b[i]);
    end;
end
"""
        code, iu = iu_for(src)
        loops = [item for item in iu.items if isinstance(item, IULoop)]
        assert loops
        body_len = code.total_cycles // loops[0].trip
        if body_len < IUConfig().loop_test_cycles:
            assert loops[0].unrolled_tail >= 1

    def test_register_overflow_falls_back_to_table(self):
        """With a tiny IU register file, some expressions move to table
        memory (counted per dynamic access)."""
        tiny = IUConfig(n_registers=1)
        src = SRC_ARRAY.replace(
            "send (R, X, w[i] + 1.0, b[i]);",
            "send (R, X, w[i] + w[11 - i], b[i]);",
        )
        _, iu = iu_for(src, tiny)
        assert iu.table_expressions
        assert iu.table_entries > 0

    def test_iu_ucode_metric_positive(self):
        _, iu = iu_for(SRC_ARRAY)
        assert iu.n_instructions > 0


def _start_of(iu, var):
    """Find the start value of loop ``var`` in the IU tree."""
    result = {}

    def walk(items):
        for item in items:
            if isinstance(item, IULoop):
                result[item.var] = item.start
                walk(item.body)

    walk(iu.items)
    return result[var]


class TestDrivenByCompiler:
    def test_matmul_exercises_iu(self):
        from repro.programs import matmul

        program = compile_w2(matmul(8, 4))
        emissions = list(program.iu_program.emission_times())
        assert emissions
        assert all(emit <= deadline for emit, deadline, _ in emissions)

    def test_streaming_programs_need_no_addresses(self):
        from repro.programs import polynomial

        program = compile_w2(polynomial(10, 5))
        assert not list(program.iu_program.emission_times())
