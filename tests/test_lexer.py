"""Unit tests for the W2 lexer."""

import pytest

from repro.lang import LexError, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def texts(source):
    return [t.text for t in tokenize(source)][:-1]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        assert kinds("hello") == [TokenKind.IDENT]

    def test_identifier_with_underscore_and_digits(self):
        assert texts("a_b2 _x") == ["a_b2", "_x"]

    def test_keywords_are_reserved(self):
        assert kinds("module begin end if then else") == [
            TokenKind.MODULE,
            TokenKind.BEGIN,
            TokenKind.END,
            TokenKind.IF,
            TokenKind.THEN,
            TokenKind.ELSE,
        ]

    def test_keyword_prefix_is_identifier(self):
        assert kinds("iff formod") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_int_literal(self):
        assert kinds("42") == [TokenKind.INT_LITERAL]

    def test_float_literal(self):
        assert kinds("4.25") == [TokenKind.FLOAT_LITERAL]

    def test_float_exponent(self):
        assert kinds("1e5 2.5E-3 7e+2") == [TokenKind.FLOAT_LITERAL] * 3

    def test_leading_dot_float(self):
        assert kinds(".5") == [TokenKind.FLOAT_LITERAL]

    def test_integer_followed_by_e_identifier(self):
        # '12e' without digits is an int then an identifier.
        assert kinds("12e") == [TokenKind.INT_LITERAL, TokenKind.IDENT]


class TestOperators:
    def test_assign_vs_colon(self):
        assert kinds(": :=") == [TokenKind.COLON, TokenKind.ASSIGN]

    def test_comparisons(self):
        assert kinds("< <= > >= = <>") == [
            TokenKind.LT,
            TokenKind.LE,
            TokenKind.GT,
            TokenKind.GE,
            TokenKind.EQ,
            TokenKind.NE,
        ]

    def test_arithmetic(self):
        assert kinds("+ - * /") == [
            TokenKind.PLUS,
            TokenKind.MINUS,
            TokenKind.STAR,
            TokenKind.SLASH,
        ]

    def test_punctuation(self):
        assert kinds("( ) [ ] , ;") == [
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.LBRACKET,
            TokenKind.RBRACKET,
            TokenKind.COMMA,
            TokenKind.SEMICOLON,
        ]


class TestComments:
    def test_comment_is_skipped(self):
        assert kinds("a /* comment */ b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_multiline_comment(self):
        assert kinds("a /* line1\nline2 */ b") == [
            TokenKind.IDENT,
            TokenKind.IDENT,
        ]

    def test_comment_containing_stars(self):
        assert kinds("/* ** * **/x") == [TokenKind.IDENT]

    def test_unterminated_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_slash_alone_is_divide(self):
        assert kinds("a / b") == [
            TokenKind.IDENT,
            TokenKind.SLASH,
            TokenKind.IDENT,
        ]


class TestLocations:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[0].location.column == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_location_after_comment(self):
        tokens = tokenize("/* x\ny */ z")
        assert tokens[0].location.line == 2


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a # b")

    def test_lone_dot(self):
        with pytest.raises(LexError):
            tokenize("a . b")
