"""BatchRunner: batched execution vs one-shot simulation.

The contract under test: batching changes *where static state lives*
(one reused machine, optionally worker processes), never *what the
machine computes* — outputs and cycle counts are bit-identical to
independent ``simulate`` calls, item for item, in item order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import compile_w2, simulate
from repro.exec import BatchRunner, run_batch
from repro.machine import ExecutionPlan
from repro.programs import passthrough, polynomial


@pytest.fixture(scope="module")
def program():
    return compile_w2(polynomial(12, 4))


def _items(rng, n):
    return [
        {"z": rng.standard_normal(12), "c": rng.standard_normal(4)}
        for _ in range(n)
    ]


class TestSerialBatch:
    def test_bit_identical_to_one_shot(self, program, rng):
        items = _items(rng, 6)
        batched = run_batch(program, items)
        assert batched.n_items == 6
        assert batched.processes == 1
        for item, result in zip(items, batched.results):
            expected = simulate(program, item)
            assert np.array_equal(
                result.outputs["results"], expected.outputs["results"]
            )
            assert result.total_cycles == expected.total_cycles
            assert result.skew == expected.skew

    def test_results_in_item_order(self, program):
        items = [
            {"z": np.full(12, float(i)), "c": np.array([0.0, 0.0, 0.0, 1.0 + i])}
            for i in range(4)
        ]
        batched = run_batch(program, items)
        for i, result in enumerate(batched.results):
            # P(z) = 1 + i for the all-constant coefficient vector.
            assert np.allclose(result.outputs["results"], 1.0 + i)

    def test_machine_reuse(self, program, rng):
        runner = BatchRunner(program)
        plan_before = runner.machine.plan
        runner.run(_items(rng, 3))
        runner.run(_items(rng, 2))
        assert runner.machine.plan is plan_before  # static state reused

    def test_run_one_matches_simulate(self, program, rng):
        runner = BatchRunner(program)
        item = _items(rng, 1)[0]
        result = runner.run_one(item)
        expected = simulate(program, item)
        assert np.array_equal(
            result.outputs["results"], expected.outputs["results"]
        )

    def test_empty_batch(self, program):
        batched = run_batch(program, [])
        assert batched.n_items == 0
        assert batched.total_cycles == 0
        assert batched.cycles_per_item == 0
        assert batched.stacked_outputs() == {}


@pytest.mark.timeout(120)
class TestMultiprocessBatch:
    def test_pool_bit_identical_and_ordered(self, program, rng):
        items = _items(rng, 8)
        serial = run_batch(program, items)
        pooled = run_batch(program, items, processes=2)
        assert pooled.processes == 2
        assert pooled.n_items == serial.n_items
        for mine, theirs in zip(pooled.results, serial.results):
            assert np.array_equal(
                mine.outputs["results"], theirs.outputs["results"]
            )
            assert mine.total_cycles == theirs.total_cycles

    def test_single_item_stays_in_process(self, program, rng):
        batched = run_batch(program, _items(rng, 1), processes=4)
        assert batched.processes == 1  # pool not worth spawning

    def test_negative_processes_rejected(self, program):
        with pytest.raises(ValueError):
            BatchRunner(program, processes=-1)


class TestBatchResult:
    def test_aggregates(self, program, rng):
        items = _items(rng, 5)
        batched = run_batch(program, items)
        per_item = [r.total_cycles for r in batched.results]
        assert batched.total_cycles == sum(per_item)
        assert batched.cycles_per_item == sum(per_item) / 5
        assert batched.wall_seconds > 0
        assert batched.items_per_second > 0

    def test_stacked_outputs(self, program, rng):
        items = _items(rng, 3)
        batched = run_batch(program, items)
        stacked = batched.outputs("results")
        assert stacked.shape == (3, 12)
        for i, result in enumerate(batched.results):
            assert np.array_equal(stacked[i], result.outputs["results"])
        assert set(batched.stacked_outputs()) == set(batched.results[0].outputs)

    def test_telemetry_counters(self, program, rng):
        from repro import obs

        with obs.collecting() as telemetry:
            batched = run_batch(program, _items(rng, 3))
        assert telemetry.counters["exec.batch.items"] == 3
        assert telemetry.counters["exec.batch.cycles"] == batched.total_cycles


class TestExecutionPlan:
    def test_skip_idle_skips_only_nops(self, program):
        plan = ExecutionPlan(program)
        assert plan.skipped_slots > 0  # schedules always carry bubbles
        for block in program.cell_code.blocks():
            block_plan = plan.blocks[block.block_id]
            assert block_plan.length == block.length
            issued = sum(
                1 for instr in block.instructions if not instr.is_nop()
            )
            assert block_plan.issued == issued
            assert len(block_plan.active) == issued

    def test_plan_is_optional(self):
        """A cell executor without shared plans builds its own lazily
        and still computes the same result."""
        program = compile_w2(passthrough(8, 2))
        inputs = {"din": np.arange(8.0)}
        expected = simulate(program, inputs)
        again = simulate(program, inputs)
        assert np.array_equal(
            again.outputs["dout"], expected.outputs["dout"]
        )
