"""Pretty-printer round trips, including property-based expression tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import (
    count_w2_lines,
    format_expr,
    format_module,
    parse_expression,
    parse_module,
)
from repro.programs import (
    TABLE_7_1_PROGRAMS,
    bidirectional_cycle,
    matmul,
    passthrough,
)

ALL_SOURCES = [factory() for factory in TABLE_7_1_PROGRAMS.values()] + [
    matmul(8, 4),
    passthrough(),
    bidirectional_cycle(),
]


class TestModuleRoundTrip:
    @pytest.mark.parametrize("source", ALL_SOURCES, ids=lambda s: s.split()[1])
    def test_format_parse_fixpoint(self, source):
        """format(parse(format(parse(src)))) == format(parse(src))."""
        once = format_module(parse_module(source))
        twice = format_module(parse_module(once))
        assert once == twice

    def test_formatted_output_has_no_comments(self):
        formatted = format_module(parse_module(ALL_SOURCES[0]))
        assert "/*" not in formatted


# --- Property-based expression round trip ---------------------------------

_identifiers = st.sampled_from(["a", "b", "xval", "tmp1", "z9"])


def _exprs():
    leaves = st.one_of(
        st.integers(min_value=0, max_value=999).map(str),
        st.floats(
            min_value=0.001, max_value=1e6, allow_nan=False, allow_infinity=False
        ).map(lambda v: repr(float(v))),
        _identifiers,
        st.tuples(_identifiers, st.integers(0, 9)).map(
            lambda t: f"{t[0]}[{t[1]}]"
        ),
    )

    def extend(children):
        binary = st.tuples(
            children,
            st.sampled_from(["+", "-", "*", "/"]),
            children,
        ).map(lambda t: f"({t[0]} {t[1]} {t[2]})")
        unary = children.map(lambda e: f"(-{e})")
        return st.one_of(binary, unary)

    return st.recursive(leaves, extend, max_leaves=12)


class TestExpressionProperties:
    @given(_exprs())
    @settings(max_examples=200, deadline=None)
    def test_expression_roundtrip(self, source):
        """Formatting a parsed expression and reparsing gives an equal AST
        modulo locations, verified by comparing formatted forms."""
        first = parse_expression(source)
        formatted = format_expr(first)
        second = parse_expression(formatted)
        assert format_expr(second) == formatted

    @given(_exprs())
    @settings(max_examples=100, deadline=None)
    def test_minimal_parentheses_preserve_structure(self, source):
        """The printer drops parentheses only where precedence already
        enforces the same grouping."""
        expr = parse_expression(source)
        fully = parse_expression(format_expr(expr))
        assert format_expr(fully) == format_expr(expr)


class TestLineCounting:
    def test_blank_and_comment_lines_ignored(self):
        source = "a := 1;\n\n/* only a comment */\nb := 2;\n"
        assert count_w2_lines(source) == 2

    def test_multiline_comment_spanning(self):
        source = "x /* spans\nseveral\nlines */ y\n"
        assert count_w2_lines(source) == 2  # the x line and the y line

    def test_code_and_comment_same_line_counts(self):
        assert count_w2_lines("a := 1; /* note */\n") == 1

    def test_paper_program_counts_are_stable(self):
        counts = {
            name: count_w2_lines(factory())
            for name, factory in TABLE_7_1_PROGRAMS.items()
        }
        # ColorSeg is the biggest program, as in Table 7-1.
        assert max(counts, key=counts.get) == "ColorSeg"
