"""Edge detection with the 3x3 systolic convolution (the paper's
headline application: "two-dimensional convolution ... at a peak rate of
100 million floating-point operations per second").

Three cells, one kernel row each; every cell delays the pixel stream by
one image row through a ring buffer in its local memory — so the whole
IU address path (two memory references per pixel, strength-reduced to
add-only induction registers) is exercised on every cycle.

Run:  python examples/edge_detection.py
"""

import numpy as np

from repro import compile_w2, simulate
from repro.compiler import decomposition_report
from repro.programs import conv2d

WIDTH, HEIGHT = 40, 20


def synthetic_scene() -> np.ndarray:
    """A dark scene with a bright rectangle and a diagonal bar."""
    image = np.zeros((HEIGHT, WIDTH))
    image[5:15, 6:18] = 1.0
    for d in range(12):
        r, c = 4 + d, 24 + d
        if r < HEIGHT and c < WIDTH:
            image[r, c - 1 : c + 2] = 1.0
    return image


def show(label: str, data: np.ndarray) -> None:
    glyphs = " .:-=+*#%@"
    print(f"\n{label}:")
    lo, hi = data.min(), data.max()
    scaled = (data - lo) / max(hi - lo, 1e-9) * (len(glyphs) - 1)
    for row in scaled.astype(int):
        print("    " + "".join(glyphs[v] for v in row))


def main() -> None:
    image = synthetic_scene()
    laplacian = np.array(
        [[0.0, -1.0, 0.0], [-1.0, 4.0, -1.0], [0.0, -1.0, 0.0]]
    )

    program = compile_w2(conv2d(WIDTH, HEIGHT), unroll=2)
    report = decomposition_report(program)
    print(f"compiled conv2d: 3 cells, "
          f"{program.metrics.cell_ucode} cell instructions, "
          f"skew {program.skew.skew}")
    dynamic = sum(1 for _ in program.iu_program.emission_times())
    print(f"IU address path: {report.iu_supplied_addresses} addressed "
          f"memory references in the microcode, {dynamic} addresses "
          f"streamed per run ({program.iu_program.n_registers_used} "
          "induction registers)")

    result = simulate(program, {"x": image, "k": laplacian})
    response = result.output("y", (HEIGHT, WIDTH))

    show("input scene", image)
    # The systolic output is shifted by the pipeline's (1 row, 2 col)
    # latency; crop to the aligned interior for display.
    edges = np.abs(response[1:, 2:])
    show("edge response (|Laplacian|)", edges)

    pixels = WIDTH * HEIGHT
    flops = sum(s.alu_ops + s.mpy_ops for s in result.cell_stats)
    print(f"\n{result.total_cycles} cycles for {pixels} pixels "
          f"({result.total_cycles / pixels:.1f} cycles/pixel, "
          f"{flops / result.total_cycles:.2f} FP ops/cycle on 3 cells)")


if __name__ == "__main__":
    main()
