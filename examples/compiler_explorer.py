"""Compiler explorer: every artefact of the compilation pipeline for a
small program, phase by phase — the Figure 6-1 structure made visible.

Run:  python examples/compiler_explorer.py
"""

import numpy as np

from repro import compile_w2, simulate
from repro.analysis import analyze_communication
from repro.cellcodegen.listing import format_cell_code
from repro.compiler import decomposition_report
from repro.iucodegen.codegen import IUBlock, IULoop
from repro.lang import Channel, analyze, parse_module
from repro.machine.trace import format_two_cell_trace
from repro.timing import characterize_stream, input_stream, output_stream

SOURCE = """
/* Weighted running difference: each cell scales the stream by its own
   weight and adds the neighbour's partial result. */
module rundiff (x in, w in, y out)
float x[12], w[3];
float y[12];
cellprogram (cid : 0 : 2)
begin
    float weight, temp, xin, xold, yin;
    int i;
    receive (L, X, weight, w[0]);
    for i := 1 to 2 do begin
        receive (L, X, temp, w[i]);
        send (R, X, temp);
    end;
    send (R, X, 0.0);
    xold := 0.0;
    for i := 0 to 11 do begin
        receive (L, X, xin, x[i]);
        receive (L, Y, yin, 0.0);
        send (R, X, xold);
        send (R, Y, yin + weight*(xin - xold), y[i]);
        xold := xin;
    end;
end
"""


def main() -> None:
    print("=" * 72)
    print("PHASE 1: front end (parse + semantic analysis)")
    print("=" * 72)
    module = parse_module(SOURCE)
    analyzed = analyze(module)
    cp = module.cellprogram
    print(f"module {module.name!r}: {len(module.params)} parameters, "
          f"{cp.n_cells} cells, {len(cp.locals)} cell locals")

    print()
    print("=" * 72)
    print("PHASE 2: flow analysis + communication classification")
    print("=" * 72)
    program = compile_w2(SOURCE)
    comm = program.comm
    print(f"right cycles: {comm.has_right_cycles}   "
          f"left cycles: {comm.has_left_cycles}   "
          f"unidirectional L->R: {comm.is_unidirectional_lr}")

    print()
    print("=" * 72)
    print("PHASE 3: cell code generation (list scheduling)")
    print("=" * 72)
    print(format_cell_code(program.cell_code))

    print()
    print("=" * 72)
    print("PHASE 4: compile-time synchronisation")
    print("=" * 72)
    print(f"minimum skew: {program.skew.skew} cycles")
    for entry in program.skew.channels:
        print(f"    channel {entry.channel}: {entry.n_sends} sends, "
              f"{entry.n_receives} receives, skew {entry.skew} "
              f"({entry.method})")
    for requirement in program.buffers:
        print(f"    queue {requirement.channel}: {requirement.required} "
              "words needed")
    print("\nfive-vector characterisation of the X streams:")
    for label, stream in (
        ("recv", input_stream(Channel.X)),
        ("send", output_stream(Channel.X)),
    ):
        for char in characterize_stream(program.cell_code, stream):
            print(f"    {label}#{char.io_index}: R={list(char.R)} "
                  f"N={list(char.N)} S={list(char.S)} "
                  f"L={list(char.L)} T={list(char.T)}")

    print()
    print("=" * 72)
    print("PHASE 5: IU and host code generation")
    print("=" * 72)
    report = decomposition_report(program)
    print(f"IU instructions: {report.iu_instructions}; "
          f"IU-supplied addresses: {report.iu_supplied_addresses}")
    _print_iu(program.iu_program.items, indent="    ")
    x_inputs = list(program.host_program.input_sequence(Channel.X))
    print(f"host X feed ({len(x_inputs)} items): "
          + ", ".join(_fmt_ref(r) for r in x_inputs[:6]) + ", ...")
    y_outputs = [
        b for b in program.host_program.output_bindings(Channel.Y)
        if not b.is_discard
    ]
    print(f"host Y collection ({len(y_outputs)} items): "
          + ", ".join(f"{b.array}[{b.flat_index}]" for b in y_outputs[:6])
          + ", ...")

    print()
    print("=" * 72)
    print("PHASE 6: simulation (Figure 4-2 style trace)")
    print("=" * 72)
    rng = np.random.default_rng(2)
    x = rng.standard_normal(12)
    w = np.array([0.25, 0.5, 0.25])
    result = simulate(program, {"x": x, "w": w}, trace_limit=30)
    print(format_two_cell_trace(result.trace, max_rows=14))
    print(f"\ntotal: {result.total_cycles} cycles; outputs verified:",
          np.allclose(result.outputs["y"], _reference(x, w)))


def _reference(x, w):
    y = np.zeros_like(x)
    shifted = x
    for k in range(len(w)):
        delayed = np.concatenate([np.zeros(k), x[: len(x) - k]])
        prev = np.concatenate([np.zeros(k + 1), x[: len(x) - k - 1]])
        y = y + w[k] * (delayed - prev)
    return y


def _fmt_ref(ref) -> str:
    if ref.is_literal:
        return repr(ref.literal)
    return f"{ref.array}[{ref.flat_index}]"


def _print_iu(items, indent: str) -> None:
    for item in items:
        if isinstance(item, IULoop):
            updates = ", ".join(f"{r}+={d}" for r, d in item.boundary_updates)
            tail = f", unrolled tail {item.unrolled_tail}" if item.unrolled_tail else ""
            print(f"{indent}IU loop {item.var} x{item.trip} "
                  f"[{updates or 'no updates'}{tail}]")
            _print_iu(item.body, indent + "    ")
        else:
            assert isinstance(item, IUBlock)
            if item.emissions:
                print(f"{indent}IU block b{item.block_id}: "
                      f"{len(item.emissions)} address emissions")


if __name__ == "__main__":
    main()
