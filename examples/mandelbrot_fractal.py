"""The Table 7-1 Mandelbrot workload: a 32x32 image, 4 fixed iterations,
on a single Warp cell.

Data-dependent control flow (the escape test) is if-converted into
select operations so the cell stays in lock step with the IU — the
compilation strategy this reproduction documents in DESIGN.md.  With
more iterations the escape-count image renders the familiar set.

Run:  python examples/mandelbrot_fractal.py
"""

import numpy as np

from repro import compile_w2, simulate
from repro.programs import mandelbrot


def main() -> None:
    width, height, iters = 48, 24, 8
    xs = np.linspace(-2.2, 0.8, width)
    ys = np.linspace(-1.2, 1.2, height)
    cx, cy = np.meshgrid(xs, ys)

    program = compile_w2(mandelbrot(width, height, iters), unroll=1)
    print(f"compiled mandelbrot: 1 cell, "
          f"{program.metrics.cell_ucode} cell instructions, "
          f"{iters} iterations per point")

    result = simulate(program, {"cx": cx.ravel(), "cy": cy.ravel()})
    counts = result.output("counts", (height, width))

    glyphs = " .:-=+*#%@"
    for row in counts:
        line = "".join(
            glyphs[min(int(v * (len(glyphs) - 1) / iters), len(glyphs) - 1)]
            for v in row
        )
        print("    " + line)

    # Verify against a vectorised reference.
    zr = np.zeros_like(cx)
    zi = np.zeros_like(cy)
    expected = np.zeros_like(cx)
    for _ in range(iters):
        mag = zr * zr + zi * zi
        new_zr = zr * zr - zi * zi + cx
        zi = 2.0 * zr * zi + cy
        zr = new_zr
        expected += mag <= 4.0
    assert np.allclose(counts, expected)
    print(f"\n{result.total_cycles} cycles for {width * height} points "
          f"({result.total_cycles / (width * height):.1f} cycles/point); "
          "results match the numpy reference")


if __name__ == "__main__":
    main()
