"""A bank of FIR filters in parallel mode (Section 3's second usage
pattern): every cell owns one filter, the signal is broadcast down the
array, and each sample's outputs are collected through the Y channel.

A small analysis filter bank (low-pass to high-pass) decomposes a chirp;
the per-band energies show the chirp sweeping across the bands.

Run:  python examples/filter_bank.py
"""

import numpy as np

from repro import compile_w2, simulate
from repro.programs import fir_bank


def design_bank(n_filters: int, n_taps: int) -> np.ndarray:
    """Cosine-modulated prototype: band f centred at (f+0.5)/(2F) cycles."""
    taps = np.zeros((n_filters, n_taps))
    window = np.hanning(n_taps)
    k = np.arange(n_taps)
    for f in range(n_filters):
        centre = (f + 0.5) / (2.0 * n_filters)
        taps[f] = window * np.cos(2 * np.pi * centre * k)
        taps[f] /= np.abs(taps[f]).sum()
    return taps


def main() -> None:
    n_samples, n_filters, n_taps = 240, 6, 12
    t = np.arange(n_samples)
    # A chirp sweeping from DC to a quarter of the sample rate.
    phase = 2 * np.pi * (0.002 * t + 0.25 * t**2 / (2 * n_samples))
    signal = np.sin(phase)
    taps = design_bank(n_filters, n_taps)

    program = compile_w2(fir_bank(n_samples, n_filters, n_taps), unroll=2)
    print(f"compiled firbank: {n_filters} cells (one filter each), "
          f"{program.metrics.cell_ucode} cell instructions, "
          f"skew {program.skew.skew}")
    dynamic = sum(1 for _ in program.iu_program.emission_times())
    print(f"IU streams {dynamic} addresses "
          f"({program.iu_program.n_registers_used} induction registers)")

    result = simulate(program, {"x": signal, "taps": taps})
    bank = result.output("y", (n_filters, n_samples))

    expected = np.stack(
        [np.convolve(signal, taps[f])[:n_samples] for f in range(n_filters)]
    )
    assert np.allclose(bank, expected)

    # Energy per band over four time windows: the chirp should climb.
    quarters = np.array_split(np.arange(n_samples), 4)
    print("\nband energy by time quarter (rows = band, low to high):")
    header = "    band " + "".join(f"   Q{q+1:<6}" for q in range(4))
    print(header)
    for f in range(n_filters):
        cells = "".join(
            f"{np.sum(bank[f, idx] ** 2):>9.3f} " for idx in quarters
        )
        print(f"    {f:>4} {cells}")

    dominant = [int(np.argmax([np.sum(bank[f, idx] ** 2)
                               for f in range(n_filters)]))
                for idx in quarters]
    print(f"\ndominant band per quarter: {dominant} "
          "(sweeping upward with the chirp)")
    print(f"{result.total_cycles} cycles "
          f"({result.total_cycles / n_samples:.1f} cycles/sample across "
          f"{n_filters} filters)")


if __name__ == "__main__":
    main()
