"""Image processing on the Warp array: the paper's target domain.

Two of the Table 7-1 workloads chained as a host-side pipeline:

1. ``binop`` — elementwise addition of two images (parallel mode:
   pixels dealt round-robin to the ten cells);
2. ``colorseg`` — colour segmentation: a cascade of ten reference-colour
   classifiers, one per cell (pipeline mode), labelling every pixel.

Run:  python examples/image_pipeline.py
"""

import numpy as np

from repro import compile_w2, simulate
from repro.programs import binop, colorseg

WIDTH, HEIGHT = 24, 12
GLYPHS = " .:-=+*#%@"


def synthetic_image(rng):
    """Two colour planes (u = hue-ish, v = saturation-ish) with blobs."""
    y, x = np.mgrid[0:HEIGHT, 0:WIDTH]
    u = 0.5 + 0.5 * np.sin(x / 4.0) * np.cos(y / 3.0)
    v = 0.5 + 0.5 * np.cos(x / 5.0 + y / 2.0)
    u += rng.normal(0, 0.02, u.shape)
    v += rng.normal(0, 0.02, v.shape)
    return u.ravel(), v.ravel()


def show(label, data):
    print(f"\n{label}:")
    levels = np.clip(data, 0, None)
    levels = (levels / max(levels.max(), 1e-9) * (len(GLYPHS) - 1)).astype(int)
    for row in levels.reshape(HEIGHT, WIDTH):
        print("    " + "".join(GLYPHS[v] for v in row))


def main() -> None:
    rng = np.random.default_rng(7)
    u, v = synthetic_image(rng)

    # --- Stage 1: brighten by adding the two planes (binop) -------------
    program = compile_w2(binop(WIDTH, HEIGHT, n_cells=10, op="+"))
    print(f"binop: {program.metrics.cell_ucode} cell instructions, "
          f"skew {program.skew.skew}")
    result = simulate(program, {"a": u, "b": v})
    combined = result.outputs["c"][: WIDTH * HEIGHT]
    assert np.allclose(combined, u + v)
    show("combined intensity (u + v)", combined)

    # --- Stage 2: segment by nearest reference colour (colorseg) --------
    n_classes = 10
    refu = rng.uniform(0, 1, n_classes)
    refv = rng.uniform(0, 1, n_classes)
    radius = np.full(n_classes, 0.08)
    classes = np.arange(1.0, n_classes + 1.0)
    program = compile_w2(colorseg(WIDTH, HEIGHT, n_classes))
    print(f"\ncolorseg: {program.metrics.cell_ucode} cell instructions, "
          f"skew {program.skew.skew}")
    result = simulate(
        program,
        {
            "u": u,
            "v": v,
            "refu": refu,
            "refv": refv,
            "radius": radius,
            "class": classes,
        },
    )
    labels = result.outputs["labels"]

    expected = np.zeros_like(u)
    for k in range(n_classes):
        dist = (u - refu[k]) ** 2 + (v - refv[k]) ** 2
        expected = np.where(dist <= radius[k], classes[k], expected)
    assert np.allclose(labels, expected)
    show("segmentation labels", labels)

    coverage = float((labels > 0).mean())
    print(f"\n{coverage:.0%} of pixels classified; "
          f"{result.total_cycles} cycles on 10 cells "
          f"({result.total_cycles / (WIDTH * HEIGHT):.1f} cycles/pixel)")


if __name__ == "__main__":
    main()
