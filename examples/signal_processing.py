"""Signal processing: systolic 1-D convolution (Table 7-1's "1d-Conv").

One kernel element per cell, after Kung's design: partial sums flow at
full speed while the signal is delayed one position per cell.  The
example smooths a noisy waveform with a 9-tap kernel and shows the
compile-time synchronisation facts (skew, buffer sizes) next to the
run-time observations.

Run:  python examples/signal_processing.py
"""

import numpy as np

from repro import compile_w2, simulate
from repro.programs import conv1d


def main() -> None:
    n, taps = 200, 9
    rng = np.random.default_rng(5)
    t = np.linspace(0, 6 * np.pi, n)
    clean = np.sin(t) + 0.4 * np.sin(3.1 * t)
    noisy = clean + rng.normal(0, 0.35, n)
    kernel = np.hanning(taps)
    kernel /= kernel.sum()

    program = compile_w2(conv1d(n, taps), unroll=4)
    print(f"compiled conv1d: {taps} cells, "
          f"{program.metrics.cell_ucode} cell instructions")
    print(f"minimum skew: {program.skew.skew} cycles")
    for requirement in program.buffers:
        print(f"    channel {requirement.channel}: needs "
              f"{requirement.required} of 128 queue words")

    result = simulate(program, {"x": noisy, "w": kernel})
    smoothed = result.outputs["y"]
    expected = np.convolve(noisy, kernel)[:n]
    assert np.allclose(smoothed, expected)

    # Steady-state error vs the clean signal (skip the filter ramp-up).
    lag = taps // 2
    aligned = smoothed[taps - 1:]
    reference = clean[taps - 1 - lag: n - lag]
    rms_before = float(np.sqrt(np.mean((noisy - clean) ** 2)))
    rms_after = float(np.sqrt(np.mean((aligned - reference) ** 2)))
    print(f"\nRMS error vs clean signal: {rms_before:.3f} noisy -> "
          f"{rms_after:.3f} smoothed")

    print(f"throughput: {result.total_cycles / n:.2f} cycles per sample "
          f"(paper's fully-pipelined compiler: 1.0)")

    # ASCII strip chart of a window.
    lo, hi = 60, 140
    print("\n    noisy:    " + strip(noisy[lo:hi]))
    print("    smoothed: " + strip(smoothed[lo + lag:hi + lag]))


def strip(values: np.ndarray) -> str:
    glyphs = " .:-=+*#%@"
    lo, hi = values.min(), values.max()
    scaled = (values - lo) / max(hi - lo, 1e-9) * (len(glyphs) - 1)
    return "".join(glyphs[int(v)] for v in scaled)


if __name__ == "__main__":
    main()
