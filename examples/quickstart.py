"""Quickstart: compile and run the paper's Figure 4-1 program.

Polynomial evaluation by Horner's rule on a 10-cell Warp array: each
cell keeps one coefficient and multiplies-accumulates as the data
streams through.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import compile_w2, simulate
from repro.programs import polynomial


def main() -> None:
    # 1. Get W2 source (Figure 4-1: 10 coefficients, 100 points).
    source = polynomial(n_points=100, n_cells=10)
    print("W2 source (first lines):")
    for line in source.strip().splitlines()[:8]:
        print("   ", line)
    print("    ...")

    # 2. Compile for the Warp machine.
    program = compile_w2(source)
    m = program.metrics
    print(f"\ncompiled {m.module_name!r}:")
    print(f"    cells             : {m.n_cells}")
    print(f"    cell microcode    : {m.cell_ucode} instructions")
    print(f"    IU microcode      : {m.iu_ucode} instructions")
    print(f"    inter-cell skew   : {m.skew} cycles")
    print(f"    compile time      : {m.compile_seconds * 1000:.1f} ms")

    # 3. Run on the cycle-level simulator.
    rng = np.random.default_rng(0)
    z = rng.uniform(-1.0, 1.0, 100)
    c = rng.standard_normal(10)
    result = simulate(program, {"z": z, "c": c})

    # 4. Check against numpy's Horner evaluation.
    expected = np.polyval(c, z)
    assert np.allclose(result.outputs["results"], expected)
    print(f"\nsimulated {result.total_cycles} cycles "
          f"({result.total_cycles / 100:.1f} cycles per result)")
    print("results match numpy.polyval:", np.allclose(
        result.outputs["results"], expected))

    # 5. The same program compiled with unrolling runs faster.
    fast = compile_w2(source, unroll=8)
    fast_result = simulate(fast, {"z": z, "c": c})
    assert np.allclose(fast_result.outputs["results"], expected)
    print(f"with unroll=8: {fast_result.total_cycles} cycles "
          f"({fast_result.total_cycles / 100:.1f} cycles per result)")


if __name__ == "__main__":
    main()
