"""Exact enumeration of stream event times.

The ground truth against which the five-vector timing functions are
validated, and the input to the exact skew/buffer computations.  Loops
are expanded with numpy tiling, so enumeration is cheap up to millions
of events; callers bound the cost with ``max_events`` and fall back to
the analytic method beyond it.
"""

from __future__ import annotations

import numpy as np

from ..cellcodegen.emit import CellCode, ScheduledBlock, ScheduledItem
from .vectors import Stream, _item_cycles


class TooManyEventsError(Exception):
    """Enumeration would exceed the caller's budget."""


def count_stream_events(items: list[ScheduledItem], stream: Stream) -> int:
    total = 0
    for item in items:
        if isinstance(item, ScheduledBlock):
            total += sum(1 for e in item.io_events if stream.matches(e))
        else:
            total += item.trip * count_stream_events(item.body, stream)
    return total


def stream_event_times(
    code: CellCode, stream: Stream, max_events: int | None = 2_000_000
) -> np.ndarray:
    """Absolute cycle of every dynamic event of ``stream``, in order."""
    total = count_stream_events(code.items, stream)
    if max_events is not None and total > max_events:
        raise TooManyEventsError(
            f"stream {stream} has {total} events (budget {max_events})"
        )
    times = _times(code.items, stream)
    return times


def _times(items: list[ScheduledItem], stream: Stream) -> np.ndarray:
    chunks: list[np.ndarray] = []
    offset = 0
    for item in items:
        if isinstance(item, ScheduledBlock):
            cycles = [
                e.cycle for e in item.io_events if stream.matches(e)
            ]
            if cycles:
                chunks.append(np.asarray(cycles, dtype=np.int64) + offset)
            offset += item.length
        else:
            body = _times(item.body, stream)
            iter_len = sum(_item_cycles(child) for child in item.body)
            if body.size:
                starts = offset + iter_len * np.arange(item.trip, dtype=np.int64)
                chunks.append((body[None, :] + starts[:, None]).ravel())
            offset += item.trip * iter_len
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chunks)


def stream_times_by_statement(
    code: CellCode, stream: Stream, max_events: int | None = 2_000_000
) -> dict[int, np.ndarray]:
    """Per-static-statement event times, keyed by io_index.

    Used by tests to validate each statement's tau function against the
    schedule it summarises.
    """
    result: dict[int, list[np.ndarray]] = {}

    def walk(items: list[ScheduledItem], offset: int) -> int:
        for item in items:
            if isinstance(item, ScheduledBlock):
                for event in item.io_events:
                    if stream.matches(event):
                        result.setdefault(event.io_index, []).append(
                            np.asarray([offset + event.cycle], dtype=np.int64)
                        )
                offset += item.length
            else:
                iter_len = sum(_item_cycles(child) for child in item.body)
                for i in range(item.trip):
                    walk(item.body, offset + i * iter_len)
                offset += item.trip * iter_len
        return offset

    total = count_stream_events(code.items, stream)
    if max_events is not None and total > max_events:
        raise TooManyEventsError(
            f"stream {stream} has {total} events (budget {max_events})"
        )
    walk(code.items, 0)
    return {
        io_index: np.concatenate(chunks) for io_index, chunks in result.items()
    }
