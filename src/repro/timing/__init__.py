"""Compile-time synchronisation: the timing theory of Section 6.2.

Five-vector characterisation of I/O statements, closed-form timing
functions, minimum-skew computation (exact and the paper's bound), and
queue-overflow (minimum buffer size) analysis.
"""

from .buffers import (
    BufferRequirement,
    check_buffers,
    minimum_buffer_sizes,
    occupancy_requirement,
)
from .events import (
    TooManyEventsError,
    count_stream_events,
    stream_event_times,
    stream_times_by_statement,
)
from .skew import (
    ChannelSkew,
    SkewResult,
    compute_skew,
    minimum_skew_bound,
    minimum_skew_exact,
)
from .tau import LinearForm, LinearTerm, TimingFunction, max_time_difference_bound
from .variable_skew import (
    VariableSkewPlan,
    plan_variable_skew,
    receive_delays,
)
from .vectors import (
    IOCharacterization,
    Stream,
    characterize_stream,
    input_stream,
    output_stream,
)

__all__ = [
    "BufferRequirement",
    "ChannelSkew",
    "IOCharacterization",
    "LinearForm",
    "LinearTerm",
    "SkewResult",
    "Stream",
    "TimingFunction",
    "TooManyEventsError",
    "VariableSkewPlan",
    "characterize_stream",
    "check_buffers",
    "compute_skew",
    "count_stream_events",
    "input_stream",
    "max_time_difference_bound",
    "minimum_buffer_sizes",
    "minimum_skew_bound",
    "minimum_skew_exact",
    "occupancy_requirement",
    "output_stream",
    "plan_variable_skew",
    "receive_delays",
    "stream_event_times",
    "stream_times_by_statement",
]
