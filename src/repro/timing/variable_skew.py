"""Variable skew: per-receive delay insertion (Section 6.2.1).

"It is possible to vary the skew in the course of the computation.  This
alternative of inserting the necessary delays before each input
operation may lower the demand on the size of the buffers.  However, it
does not lead to higher utilization of the machine; the latency of the
computation remains the same, since it is limited by the same minimum
skew between cells."

This module computes the minimal non-decreasing per-receive delays and
the buffer savings, quantifying the paper's remark; the compiler itself
keeps the constant-skew scheme (delays in the middle of highly optimised
horizontal microcode are exactly what Section 6.2.1 warns about).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cellcodegen.emit import CellCode
from ..lang.ast import Channel
from .buffers import occupancy_requirement
from .events import stream_event_times
from .vectors import input_stream, output_stream


@dataclass(frozen=True)
class VariableSkewPlan:
    """Per-receive delays for one channel."""

    channel: Channel
    #: Delay (cycles) added before each receive, non-decreasing.
    delays: np.ndarray
    #: Buffer words needed under the variable scheme.
    buffer_required: int
    #: Buffer words needed under the constant-skew scheme.
    buffer_constant: int
    #: The constant skew (also the final delay's upper bound).
    constant_skew: int

    @property
    def final_delay(self) -> int:
        return int(self.delays[-1]) if self.delays.size else 0

    @property
    def buffer_saving(self) -> int:
        return self.buffer_constant - self.buffer_required


def receive_delays(sends: np.ndarray, recvs: np.ndarray) -> np.ndarray:
    """Minimal non-decreasing delays making every receive follow its
    send.

    Delays model stalls inserted *before* input operations: stalling
    before receive ``n`` also postpones everything after it, so the
    delay sequence is the running maximum of the per-pair requirements.
    """
    if recvs.size == 0:
        return np.zeros(0, dtype=np.int64)
    required = sends[: recvs.size] - recvs
    return np.maximum.accumulate(np.maximum(required, 0)).astype(np.int64)


def plan_variable_skew(
    code: CellCode, channel: Channel, constant_skew: int
) -> VariableSkewPlan:
    """Compare buffer demand under variable vs constant skew for one
    channel of a compiled program."""
    sends = stream_event_times(code, output_stream(channel))
    recvs = stream_event_times(code, input_stream(channel))
    delays = receive_delays(sends, recvs)
    if recvs.size:
        shifted = recvs + delays
        buffer_required = occupancy_requirement(sends, shifted, skew=0)
    else:
        buffer_required = int(sends.size)
    buffer_constant = occupancy_requirement(sends, recvs, skew=constant_skew)
    return VariableSkewPlan(
        channel=channel,
        delays=delays,
        buffer_required=buffer_required,
        buffer_constant=buffer_constant,
        constant_skew=constant_skew,
    )
