"""Five-vector characterisation of I/O statements (Section 6.2.1).

Every static send/receive statement is described by five vectors of
``k`` elements, one per enclosing loop (outermost first), where the
statement itself counts as an innermost single-iteration loop:

* ``R`` — number of iterations;
* ``N`` — number of I/Os *of the statement's stream* in one iteration;
* ``S`` — ordinal of the first stream I/O in the loop with respect to
  the enclosing loop;
* ``L`` — time of execution of one iteration;
* ``T`` — time the first iteration starts, relative to the enclosing
  loop.

A *stream* is one matching domain: e.g. all sends to the right on
channel X form the output stream that the right neighbour's
receives-from-left on X consume, ordinal by ordinal.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cellcodegen.emit import (
    CellCode,
    IOEvent,
    ScheduledBlock,
    ScheduledItem,
    ScheduledLoop,
)
from ..ir.dag import OpKind, QueueRef
from ..lang.ast import Channel, Direction


@dataclass(frozen=True)
class Stream:
    """A matching domain of I/O operations."""

    kind: OpKind  # RECV or SEND
    queue: QueueRef

    def matches(self, event: IOEvent) -> bool:
        return event.kind is self.kind and event.queue == self.queue

    def __str__(self) -> str:
        return f"{self.kind.value}({self.queue})"


def output_stream(channel: Channel) -> Stream:
    """Sends to the right neighbour on ``channel``."""
    return Stream(OpKind.SEND, QueueRef(Direction.RIGHT, channel))


def input_stream(channel: Channel) -> Stream:
    """Receives from the left neighbour on ``channel``."""
    return Stream(OpKind.RECV, QueueRef(Direction.LEFT, channel))


@dataclass(frozen=True)
class IOCharacterization:
    """The (R, N, S, L, T) vectors for one static I/O statement."""

    io_index: int
    stream: Stream
    R: tuple[int, ...]
    N: tuple[int, ...]
    S: tuple[int, ...]
    L: tuple[int, ...]
    T: tuple[int, ...]

    @property
    def depth(self) -> int:
        return len(self.R)

    @property
    def total_executions(self) -> int:
        total = 1
        for r in self.R:
            total *= r
        return total


def _item_cycles(item: ScheduledItem) -> int:
    if isinstance(item, ScheduledBlock):
        return item.length
    return item.trip * sum(_item_cycles(child) for child in item.body)


def _stream_count(item: ScheduledItem, stream: Stream) -> int:
    """Stream events per single execution of ``item`` (per iteration for
    loops it is ``trip *`` the body count; this counts the whole item)."""
    if isinstance(item, ScheduledBlock):
        return sum(1 for event in item.io_events if stream.matches(event))
    return item.trip * sum(_stream_count(child, stream) for child in item.body)


def characterize_stream(
    code: CellCode, stream: Stream
) -> list[IOCharacterization]:
    """Compute the five vectors of every static statement in ``stream``,
    in program order."""
    results: list[IOCharacterization] = []
    # Each stack entry describes one enclosing loop:
    # (trip, stream-events per iteration, S, iteration length, T).
    loop_stack: list[tuple[int, int, int, int, int]] = []

    def walk(items: list[ScheduledItem]) -> None:
        """Process one context (the program, or one loop-body iteration).
        ``count``/``offset`` track stream events seen and cycles elapsed
        within this context."""
        count = 0
        offset = 0
        for item in items:
            if isinstance(item, ScheduledBlock):
                for event in item.io_events:
                    if not stream.matches(event):
                        continue
                    results.append(
                        IOCharacterization(
                            io_index=event.io_index,
                            stream=stream,
                            R=tuple(e[0] for e in loop_stack) + (1,),
                            N=tuple(e[1] for e in loop_stack) + (1,),
                            S=tuple(e[2] for e in loop_stack) + (count,),
                            L=tuple(e[3] for e in loop_stack) + (1,),
                            T=tuple(e[4] for e in loop_stack)
                            + (offset + event.cycle,),
                        )
                    )
                    count += 1
                offset += item.length
            else:
                per_iter = sum(_stream_count(child, stream) for child in item.body)
                iter_len = sum(_item_cycles(child) for child in item.body)
                loop_stack.append((item.trip, per_iter, count, iter_len, offset))
                walk(item.body)
                loop_stack.pop()
                count += item.trip * per_iter
                offset += item.trip * iter_len

    walk(code.items)
    return results
