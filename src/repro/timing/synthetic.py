"""Synthetic schedules for the paper's worked timing examples.

The analyses in :mod:`repro.timing` consume scheduled cell code; the
paper's Section 6.2.1 examples (Figure 6-2/Table 6-1 and
Figure 6-4/Tables 6-2..6-4) are given directly as cycle-annotated I/O
programs.  These helpers construct equivalent
:class:`~repro.cellcodegen.emit.CellCode` trees so the examples (and
property tests over random shapes) can drive the real implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cellcodegen.emit import CellCode, IOEvent, ScheduledBlock, ScheduledLoop
from ..cellcodegen.isa import MicroInstr
from ..cellcodegen.layout import MemoryLayout
from ..config import CellConfig
from ..ir.dag import OpKind, QueueRef
from ..lang.ast import Channel, Direction


@dataclass
class SynthBlock:
    """A straight-line segment: ``length`` cycles with I/O events given
    as ``(kind, cycle)`` where kind is ``'in'`` (receive-from-left) or
    ``'out'`` (send-to-right), optionally ``(kind, cycle, channel)``."""

    length: int
    events: list[tuple] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.events is None:
            self.events = []


@dataclass
class SynthLoop:
    trip: int
    body: list["SynthItem"]


SynthItem = object  # SynthBlock | SynthLoop


def block(length: int, *events: tuple) -> SynthBlock:
    return SynthBlock(length=length, events=list(events))


def loop(trip: int, *body: SynthItem) -> SynthLoop:
    return SynthLoop(trip=trip, body=list(body))


def build_program(*items: SynthItem) -> CellCode:
    """Materialise a synthetic schedule as CellCode."""
    counter = {"io": 0, "block": 0, "loop": 0}
    built = _build_items(list(items), counter)
    return CellCode(
        items=built,
        layout=MemoryLayout(),
        pinned={},
        config=CellConfig(),
    )


def _build_items(items: list[SynthItem], counter: dict[str, int]) -> list:
    result = []
    for item in items:
        if isinstance(item, SynthBlock):
            io_events = []
            for event in item.events:
                kind_name, cycle = event[0], event[1]
                channel = event[2] if len(event) > 2 else Channel.X
                if kind_name == "in":
                    kind = OpKind.RECV
                    queue = QueueRef(Direction.LEFT, channel)
                else:
                    kind = OpKind.SEND
                    queue = QueueRef(Direction.RIGHT, channel)
                io_events.append(
                    IOEvent(
                        cycle=cycle,
                        io_index=counter["io"],
                        kind=kind,
                        queue=queue,
                    )
                )
                counter["io"] += 1
            io_events.sort(key=lambda e: (e.cycle, e.io_index))
            result.append(
                ScheduledBlock(
                    block_id=counter["block"],
                    instructions=[MicroInstr() for _ in range(item.length)],
                    length=item.length,
                    io_events=io_events,
                )
            )
            counter["block"] += 1
        else:
            assert isinstance(item, SynthLoop)
            body = _build_items(item.body, counter)
            result.append(
                ScheduledLoop(
                    loop_id=counter["loop"],
                    var=f"v{counter['loop']}",
                    start=0,
                    step=1,
                    trip=item.trip,
                    body=body,
                )
            )
            counter["loop"] += 1
    return result


def figure_6_2_program() -> CellCode:
    """The straight-line example of Figure 6-2 / Table 6-1: an output at
    cycle 0, inputs at cycles 1 and 2, and a second output at cycle 5.
    Its minimum skew is 3."""
    return build_program(
        block(6, ("out", 0), ("in", 1), ("in", 2), ("out", 5))
    )


def figure_6_4_program() -> CellCode:
    """The loop example of Figure 6-4 / Tables 6-2, 6-3 and 6-4.

    One leading nop; a 5-iteration loop with two inputs per 3-cycle
    iteration; two nops; a 2-iteration loop with two outputs per 2-cycle
    iteration; two nops; a 2-iteration loop with three outputs per
    5-cycle iteration.  Its minimum skew is 18.
    """
    return build_program(
        block(1),
        loop(5, block(3, ("in", 0), ("in", 1))),
        block(2),
        loop(2, block(2, ("out", 0), ("out", 1))),
        block(2),
        loop(2, block(5, ("out", 0), ("out", 1), ("out", 2))),
    )
