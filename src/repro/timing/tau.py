"""The timing functions ``tau(n)`` of Section 6.2.1.

For each static I/O statement ``m``, ``tau_m(n)`` maps the ordinal
number of a stream operation to the clock cycle it executes, relative to
the program start; it is defined only for ordinals that this statement
actually executes (the statement's *domain*).

Evaluation follows the paper's nested decomposition

    g(1) = n,   g(j+1) = (g(j) - s_j) mod n_j
    tau(n) = sum_j ( t_j + floor((g(j) - s_j) / n_j) * l_j )

and the domain is the set of ``n`` for which every level's iteration
number lies within the loop's trip count.

For the bound computation, ``tau`` is also exposed as an exact linear
form over ``n`` and the ``g(j)`` remainders (with rational coefficients,
as in the paper's ``52/3 + 5/3 n - 2/3 (n-4) mod 3`` example), each
``g(j)`` ranging over a known interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from .vectors import IOCharacterization


@dataclass(frozen=True)
class LinearTerm:
    """``coefficient * variable`` where the variable ranges over
    ``[lower, upper]`` (inclusive)."""

    coefficient: Fraction
    lower: int
    upper: int

    def maximum(self) -> Fraction:
        bound = self.upper if self.coefficient >= 0 else self.lower
        return self.coefficient * bound

    def minimum(self) -> Fraction:
        bound = self.lower if self.coefficient >= 0 else self.upper
        return self.coefficient * bound


@dataclass(frozen=True)
class LinearForm:
    """``constant + coeff_n * n + sum(terms over g(j) remainders)``."""

    constant: Fraction
    n_coefficient: Fraction
    #: Terms over the g(j) variables, j >= 2.
    g_terms: tuple[LinearTerm, ...]
    #: Domain of n.
    n_lower: int
    n_upper: int


class TimingFunction:
    """``tau(n)`` for one characterised statement."""

    def __init__(self, char: IOCharacterization):
        self.char = char
        self._k = char.depth

    # Exact evaluation -----------------------------------------------------

    def in_domain(self, n: int) -> bool:
        g = n
        for j in range(self._k):
            adjusted = g - self.char.S[j]
            if adjusted < 0:
                return False
            iteration, g = divmod(adjusted, self.char.N[j])
            if iteration >= self.char.R[j]:
                return False
        return g == 0

    def __call__(self, n: int) -> int:
        """Evaluate tau(n); raises ValueError outside the domain."""
        g = n
        total = 0
        for j in range(self._k):
            adjusted = g - self.char.S[j]
            if adjusted < 0:
                raise ValueError(f"n={n} not in domain of {self.char}")
            iteration, g = divmod(adjusted, self.char.N[j])
            if iteration >= self.char.R[j]:
                raise ValueError(f"n={n} not in domain of {self.char}")
            total += self.char.T[j] + iteration * self.char.L[j]
        if g != 0:
            raise ValueError(f"n={n} not in domain of {self.char}")
        return total

    def domain(self) -> list[int]:
        """All valid ordinals (enumerated; use with small programs)."""
        return [n for n in range(self.n_min(), self.n_max() + 1) if self.in_domain(n)]

    # Domain extremes ------------------------------------------------------

    def n_min(self) -> int:
        """Smallest valid ordinal: first iteration at every level."""
        return sum(self.char.S)

    def n_max(self) -> int:
        """Largest valid ordinal: last iteration at every level."""
        n = 0
        # Build from the innermost level outwards: at level j the ordinal
        # within the loop is s_j + (r_j - 1) * n_j + (inner ordinal).
        for j in reversed(range(self._k)):
            n = self.char.S[j] + (self.char.R[j] - 1) * self.char.N[j] + n
        return n

    # Linear form for the bounding method ------------------------------------

    def linear_form(self) -> LinearForm:
        """The paper's closed form.

        tau(n) = sum_j t_j - sum_j (l_j/n_j) s_j + (l_1/n_1) g(1)
                 + sum_{j>=2} (l_j/n_j - l_{j-1}/n_{j-1}) g(j)
                 - (l_k/n_k) g(k+1)

        with g(1) = n and each g(j), j >= 2, bounded by both its mod
        range ``[0, n_{j-1} - 1]`` and the domain constraint
        ``sum_{m>=j} s_m <= g(j) <= (r_j - 1) n_j + sum_{m>=j} s_m``.
        g(k+1) is always 0 for single-operation statements (n_k = 1), so
        its term vanishes.
        """
        char = self.char
        k = self._k
        ratio = [Fraction(char.L[j], char.N[j]) for j in range(k)]
        constant = Fraction(sum(char.T))
        for j in range(k):
            constant -= ratio[j] * char.S[j]
        suffix_s = [0] * (k + 1)
        for j in reversed(range(k)):
            suffix_s[j] = suffix_s[j + 1] + char.S[j]
        terms: list[LinearTerm] = []
        for j in range(1, k):  # g(j+1) in paper indexing (1-based j>=2)
            coefficient = ratio[j] - ratio[j - 1]
            lower = suffix_s[j]
            upper = min(
                (char.R[j] - 1) * char.N[j] + suffix_s[j],
                char.N[j - 1] - 1,
            )
            if coefficient != 0 and upper >= lower:
                terms.append(LinearTerm(coefficient, lower, upper))
        # g(k+1) term: N[k] == 1 for statements, so (g - s) mod 1 == 0.
        return LinearForm(
            constant=constant,
            n_coefficient=ratio[0],
            g_terms=tuple(terms),
            n_lower=self.n_min(),
            n_upper=self.n_max(),
        )


def max_time_difference_bound(
    output: TimingFunction, input_: TimingFunction
) -> Fraction | None:
    """Upper bound on ``max(tau_O(n) - tau_I(n))`` over the (relaxed)
    intersection of both domains — the paper's cheap bound.

    Returns None when the ordinal ranges are disjoint (no data produced
    by the output statement is ever read by the input statement).
    """
    out_form = output.linear_form()
    in_form = input_.linear_form()
    n_lower = max(out_form.n_lower, in_form.n_lower)
    n_upper = min(out_form.n_upper, in_form.n_upper)
    if n_lower > n_upper:
        return None
    n_coeff = out_form.n_coefficient - in_form.n_coefficient
    best = out_form.constant - in_form.constant
    best += n_coeff * (n_upper if n_coeff >= 0 else n_lower)
    for term in out_form.g_terms:
        best += term.maximum()
    for term in in_form.g_terms:
        best -= term.minimum()
    return best
