"""Queue-overflow analysis: minimum buffer sizes (Section 6.2.2).

"The problem of determining the minimum buffer size for the queues is
similar to determining the minimum skew" — instead of mapping ordinals
to times, we compare, over time, the number of items the sender has
enqueued against the number the (skewed) receiver has dequeued.  The
maximum difference is the buffer the channel needs.

Following the paper, overflow is *detected and reported*: compilation
raises :class:`QueueOverflowError` naming the required size, which the
user can satisfy by re-blocking the program or (in our simulator) by
enlarging the queues in :class:`~repro.machine.config.WarpConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cellcodegen.emit import CellCode
from ..errors import QueueOverflowError
from ..lang.ast import Channel
from .events import stream_event_times
from .vectors import input_stream, output_stream


@dataclass(frozen=True)
class BufferRequirement:
    """Minimum queue size of one channel at a given skew."""

    channel: Channel
    skew: int
    required: int


def occupancy_requirement(
    send_times: np.ndarray, recv_times: np.ndarray, skew: int
) -> int:
    """Maximum queue occupancy when the receiver runs ``skew`` cycles
    behind the sender.

    Items enter at their send cycle and leave at ``skew + recv cycle``;
    an item is counted as occupying the buffer at the instant of its
    receive (the word is still in the queue when the dequeue starts).
    """
    if send_times.size == 0:
        return 0
    if recv_times.size == 0:
        return int(send_times.size)
    shifted = recv_times.astype(np.int64) + skew
    n = min(send_times.size, recv_times.size)
    # Occupancy observed at receive k: sends no later than the receive
    # instant, minus the k items already consumed.
    arrived = np.searchsorted(send_times, shifted[:n], side="right")
    per_receive = int((arrived - np.arange(n)).max())
    # Items never received stay behind at the end.
    residual = int(send_times.size - recv_times.size)
    return max(per_receive, residual)


def minimum_buffer_sizes(
    code: CellCode, skew: int, max_events: int | None = 2_000_000
) -> list[BufferRequirement]:
    """Per-channel minimum queue sizes for the given skew."""
    requirements = []
    for channel in (Channel.X, Channel.Y):
        sends = stream_event_times(code, output_stream(channel), max_events)
        recvs = stream_event_times(code, input_stream(channel), max_events)
        requirements.append(
            BufferRequirement(
                channel=channel,
                skew=skew,
                required=occupancy_requirement(sends, recvs, skew),
            )
        )
    return requirements


def check_buffers(
    code: CellCode,
    skew: int,
    queue_depth: int,
    max_events: int | None = 2_000_000,
) -> list[BufferRequirement]:
    """Verify every channel fits its queue; raise QueueOverflowError if
    not (reporting the required size, as the paper's compiler does)."""
    requirements = minimum_buffer_sizes(code, skew, max_events)
    for requirement in requirements:
        if requirement.required > queue_depth:
            raise QueueOverflowError(
                channel=str(requirement.channel),
                required=requirement.required,
                capacity=queue_depth,
            )
    return requirements
