"""Minimum-skew computation (Section 6.2.1).

"To ensure that no underflow occurs, the initiation of the execution of
a cell is simply delayed with respect to the preceding cell until no
receive operations executed precede the corresponding send operations.
[...] the minimum skew is the maximum time difference between all
matching pairs of inputs and outputs":

    skew = max( tau_O(n) - tau_I(n) ),  0 <= n < number of inputs

Two implementations, cross-validated by property tests:

* the *exact* method enumerates both event streams (cheap with numpy up
  to millions of events);
* the *bound* method is the paper's: a closed-form upper bound per pair
  of (output statement, input statement) timing functions, maximising
  each term over its interval instead of solving the exact domain
  intersection.

The per-channel skews combine by max; a floor of 1 keeps the address
path (one-cycle hop per cell) ahead of every consumer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cellcodegen.emit import CellCode
from ..errors import MappingError
from ..lang.ast import Channel
from .events import TooManyEventsError, count_stream_events, stream_event_times
from .tau import TimingFunction, max_time_difference_bound
from .vectors import characterize_stream, input_stream, output_stream


@dataclass(frozen=True)
class ChannelSkew:
    """Skew requirement of one channel."""

    channel: Channel
    n_sends: int
    n_receives: int
    skew: int  # 0 when the channel imposes no constraint
    method: str  # 'exact' | 'bound' | 'none'


@dataclass(frozen=True)
class SkewResult:
    """The array's inter-cell skew and its per-channel breakdown."""

    skew: int
    channels: tuple[ChannelSkew, ...]

    def channel(self, channel: Channel) -> ChannelSkew:
        for entry in self.channels:
            if entry.channel is channel:
                return entry
        raise KeyError(channel)


def minimum_skew_exact(code: CellCode, channel: Channel) -> ChannelSkew:
    """Exact per-channel skew by full event enumeration."""
    sends = stream_event_times(code, output_stream(channel), max_events=None)
    recvs = stream_event_times(code, input_stream(channel), max_events=None)
    return _exact_from_times(channel, sends, recvs)


def _exact_from_times(channel, sends, recvs) -> ChannelSkew:
    if recvs.size > sends.size:
        raise MappingError(
            f"channel {channel}: a cell receives {recvs.size} items from "
            f"its left neighbour but the neighbour only sends {sends.size}"
        )
    if recvs.size == 0:
        return ChannelSkew(channel, int(sends.size), 0, 0, "none")
    # Clamp at zero: when every receive already trails its send the
    # channel imposes no constraint.  The bound method clamps the same
    # way, keeping "bound >= exact" meaningful on such channels.
    skew = max(0, int((sends[: recvs.size] - recvs).max()))
    return ChannelSkew(
        channel, int(sends.size), int(recvs.size), skew, "exact"
    )


def minimum_skew_bound(code: CellCode, channel: Channel) -> ChannelSkew:
    """The paper's closed-form upper bound on the per-channel skew.

    Considers every (output statement, input statement) pair; statements
    inside the same loops share most of the computation through the
    five-vector characterisation.
    """
    outputs = [
        TimingFunction(c) for c in characterize_stream(code, output_stream(channel))
    ]
    inputs = [
        TimingFunction(c) for c in characterize_stream(code, input_stream(channel))
    ]
    n_sends = sum(o.char.total_executions for o in outputs)
    n_recvs = sum(i.char.total_executions for i in inputs)
    if n_recvs > n_sends:
        raise MappingError(
            f"channel {channel}: a cell receives {n_recvs} items from its "
            f"left neighbour but the neighbour only sends {n_sends}"
        )
    if not inputs or not outputs:
        return ChannelSkew(channel, n_sends, n_recvs, 0, "none")
    best: float | None = None
    for output in outputs:
        for input_ in inputs:
            bound = max_time_difference_bound(output, input_)
            if bound is None:
                continue
            value = float(bound)
            if best is None or value > best:
                best = value
    skew = 0 if best is None else max(0, math.ceil(best))
    return ChannelSkew(channel, n_sends, n_recvs, skew, "bound")


def compute_skew(
    code: CellCode,
    method: str = "auto",
    max_events: int = 2_000_000,
    n_cells: int = 2,
) -> SkewResult:
    """Compute the array's inter-cell skew.

    ``method``: ``'exact'``, ``'bound'``, or ``'auto'`` (exact while the
    event count fits ``max_events``, the paper's bound beyond that).
    ``n_cells``: with a single cell there are no inter-cell links — both
    neighbours are the host — so no skew or conservation constraint
    applies.
    """
    if n_cells == 1:
        # No inter-cell links, so no constraint — but report the true
        # static send/receive counts so downstream conservation checks
        # can still cross-check them.
        return SkewResult(
            skew=1,
            channels=tuple(
                ChannelSkew(
                    channel,
                    count_stream_events(code.items, output_stream(channel)),
                    count_stream_events(code.items, input_stream(channel)),
                    0,
                    "none",
                )
                for channel in (Channel.X, Channel.Y)
            ),
        )
    channels: list[ChannelSkew] = []
    for channel in (Channel.X, Channel.Y):
        if method == "bound":
            channels.append(minimum_skew_bound(code, channel))
            continue
        if method == "exact":
            channels.append(minimum_skew_exact(code, channel))
            continue
        try:
            sends = stream_event_times(
                code, output_stream(channel), max_events=max_events
            )
            recvs = stream_event_times(
                code, input_stream(channel), max_events=max_events
            )
        except TooManyEventsError:
            channels.append(minimum_skew_bound(code, channel))
        else:
            channels.append(_exact_from_times(channel, sends, recvs))
    skew = max([1] + [c.skew for c in channels])
    return SkewResult(skew=skew, channels=tuple(channels))
