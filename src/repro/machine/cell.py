"""Cycle-accurate execution of one Warp cell's microcode.

The executor walks the scheduled program tree instruction by instruction,
with an absolute cycle counter (the cell's start is offset by its skew).
Pipelining is modelled exactly: an operation issued at cycle ``t`` with
latency ``L`` writes its destination register at ``t + L``; reads at or
after that cycle see the new value, earlier reads see the old one —
precisely the semantics the scheduler's latency edges assume, so any
scheduler bug surfaces as a wrong result against the reference
interpreter.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from ..cellcodegen.emit import CellCode, ScheduledBlock, ScheduledLoop
from ..cellcodegen.isa import AddressSource, Lit, MicroInstr, Operand, Reg
from ..analysis.local_opt import evaluate_pure
from ..ir.dag import OpKind, QueueRef
from ..lang.ast import Channel, Direction
from ..config import CellConfig
from ..obs.metrics import MachineRecorder
from .queue import TimedQueue


@dataclass(frozen=True)
class TraceEvent:
    """One observable I/O action, for execution traces (Figure 4-2)."""

    cell: int
    time: int
    kind: str  # 'send' | 'receive'
    queue: str
    value: float


@dataclass
class CellStats:
    cell: int
    start_time: int
    end_time: int = 0
    alu_ops: int = 0
    mpy_ops: int = 0
    mem_reads: int = 0
    mem_writes: int = 0
    receives: int = 0
    sends: int = 0
    #: Cycles that issued at least one operation (non-nop instruction).
    issue_cycles: int = 0

    @property
    def busy_cycles(self) -> int:
        return self.end_time - self.start_time

    @property
    def stall_cycles(self) -> int:
        """Schedule bubbles (latency/drain nops) inside the execution
        window."""
        return max(self.busy_cycles - self.issue_cycles, 0)

    @property
    def flop_utilization(self) -> float:
        """Floating-point issues per FPU issue slot (2 per cycle)."""
        cycles = max(self.busy_cycles, 1)
        return (self.alu_ops + self.mpy_ops) / (2 * cycles)


class CellExecutor:
    """Execute one cell's program against its queues."""

    def __init__(
        self,
        code: CellCode,
        config: CellConfig,
        cell_index: int,
        start_time: int,
        in_queues: dict[Channel, TimedQueue],
        out_queues: dict[Channel, TimedQueue],
        address_queue: TimedQueue,
        trace: Callable[[TraceEvent], None] | None = None,
        recorder: MachineRecorder | None = None,
    ):
        self._code = code
        self._config = config
        self._cell = cell_index
        self._start = start_time
        self._in = in_queues
        self._out = out_queues
        self._addr = address_queue
        self._trace = trace
        self._recorder = recorder
        #: Issued-op count per block (static per schedule, cached).
        self._issue_counts: dict[int, int] = {}
        self._registers = [0.0] * config.n_registers
        self._pending: list[tuple[int, int, int, float]] = []  # (time, seq, reg, value)
        self._seq = 0
        self._memory = [0.0] * config.memory_words
        self.stats = CellStats(cell=cell_index, start_time=start_time)

    # Register file with delayed writeback --------------------------------

    def _apply_writebacks(self, time: int) -> None:
        while self._pending and self._pending[0][0] <= time:
            _, _, reg, value = heapq.heappop(self._pending)
            self._registers[reg] = value

    def _write_later(self, time: int, reg: Reg, value: float) -> None:
        self._seq += 1
        heapq.heappush(self._pending, (time, self._seq, reg.index, value))

    def _read(self, operand: Operand) -> float:
        if isinstance(operand, Lit):
            return operand.value
        return self._registers[operand.index]

    # Execution ---------------------------------------------------------------

    def run(self) -> CellStats:
        end = self._run_items(self._code.items, self._start)
        # Flush outstanding writebacks (architecturally they land during
        # the drain cycles already counted in the block lengths).
        self._apply_writebacks(end)
        self.stats.end_time = end
        return self.stats

    def _run_items(self, items, time: int) -> int:
        for item in items:
            if isinstance(item, ScheduledBlock):
                time = self._run_block(item, time)
            else:
                assert isinstance(item, ScheduledLoop)
                for _ in range(item.trip):
                    time = self._run_items(item.body, time)
        return time

    def _run_block(self, block: ScheduledBlock, time: int) -> int:
        issued = self._issue_counts.get(block.block_id)
        if issued is None:
            issued = sum(
                1 for instr in block.instructions if not instr.is_nop()
            )
            self._issue_counts[block.block_id] = issued
        self.stats.issue_cycles += issued
        if self._recorder is not None:
            self._recorder.block(
                self._cell, block.block_id, time, block.length, issued
            )
        for cycle, instr in enumerate(block.instructions):
            if not instr.is_nop():
                self._execute(instr, time + cycle)
        return time + block.length

    def _execute(self, instr: MicroInstr, now: int) -> None:
        self._apply_writebacks(now)
        config = self._config
        for deq in instr.deqs:
            queue = self._queue_for(deq.queue, incoming=True)
            value = queue.dequeue(now)
            self._write_later(now + config.queue_latency, deq.dest, value)
            self.stats.receives += 1
            if self._trace:
                self._trace(
                    TraceEvent(self._cell, now, "receive", str(deq.queue), value)
                )
        # Memory: loads observe the pre-store contents of this cycle.
        loads = [m for m in instr.mem if m.is_load]
        stores = [m for m in instr.mem if not m.is_load]
        for mem in loads:
            address = self._address(mem, now)
            value = self._memory[address]
            assert mem.reg is not None
            self._write_later(now + config.mem_read_latency, mem.reg, value)
            self.stats.mem_reads += 1
        for mem in stores:
            address = self._address(mem, now)
            assert mem.store_value is not None
            self._memory[address] = self._read(mem.store_value)
            self.stats.mem_writes += 1
        if instr.alu:
            values = [self._read(s) for s in instr.alu.sources]
            result = evaluate_pure(instr.alu.op, values)
            self._write_later(now + config.alu_latency, instr.alu.dest, result)
            self.stats.alu_ops += 1
        if instr.mpy:
            values = [self._read(s) for s in instr.mpy.sources]
            result = evaluate_pure(instr.mpy.op, values)
            latency = (
                config.div_latency
                if instr.mpy.op is OpKind.FDIV
                else config.mpy_latency
            )
            self._write_later(now + latency, instr.mpy.dest, result)
            self.stats.mpy_ops += 1
        if instr.move:
            value = self._read(instr.move.source)
            self._write_later(now + config.move_latency, instr.move.dest, value)
        for enq in instr.enqs:
            queue = self._queue_for(enq.queue, incoming=False)
            value = self._read(enq.source)
            queue.enqueue(now, value)
            self.stats.sends += 1
            if self._trace:
                self._trace(
                    TraceEvent(self._cell, now, "send", str(enq.queue), value)
                )

    def _address(self, mem, now: int) -> int:
        if mem.address_source is AddressSource.LITERAL:
            return mem.address
        return int(self._addr.dequeue(now))

    def _queue_for(self, ref: QueueRef, incoming: bool) -> TimedQueue:
        if incoming:
            assert ref.direction is Direction.LEFT, (
                "compilable programs only receive from the left"
            )
            return self._in[ref.channel]
        assert ref.direction is Direction.RIGHT, (
            "compilable programs only send to the right"
        )
        return self._out[ref.channel]
