"""Cycle-accurate execution of one Warp cell's microcode.

The executor walks the scheduled program tree instruction by instruction,
with an absolute cycle counter (the cell's start is offset by its skew).
Pipelining is modelled exactly: an operation issued at cycle ``t`` with
latency ``L`` writes its destination register at ``t + L``; reads at or
after that cycle see the new value, earlier reads see the old one —
precisely the semantics the scheduler's latency edges assume, so any
scheduler bug surfaces as a wrong result against the reference
interpreter.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from ..cellcodegen.emit import CellCode, ScheduledBlock, ScheduledLoop
from ..cellcodegen.isa import AddressSource, Lit, Operand, Reg
from ..errors import CellHangError
from ..ir.dag import QueueRef
from ..lang.ast import Channel, Direction
from ..config import CellConfig
from ..obs import get_telemetry
from ..obs.metrics import MachineRecorder
from .plan import BlockPlan, DecodedInstr
from .queue import TimedQueue


@dataclass(frozen=True)
class TraceEvent:
    """One observable I/O action, for execution traces (Figure 4-2)."""

    cell: int
    time: int
    kind: str  # 'send' | 'receive'
    queue: str
    value: float


@dataclass
class CellStats:
    cell: int
    start_time: int
    end_time: int = 0
    alu_ops: int = 0
    mpy_ops: int = 0
    mem_reads: int = 0
    mem_writes: int = 0
    receives: int = 0
    sends: int = 0
    #: Cycles that issued at least one operation (non-nop instruction).
    issue_cycles: int = 0

    @property
    def busy_cycles(self) -> int:
        return self.end_time - self.start_time

    @property
    def stall_cycles(self) -> int:
        """Schedule bubbles (latency/drain nops) inside the execution
        window."""
        return max(self.busy_cycles - self.issue_cycles, 0)

    @property
    def flop_utilization(self) -> float:
        """Floating-point issues per FPU issue slot (2 per cycle)."""
        cycles = max(self.busy_cycles, 1)
        return (self.alu_ops + self.mpy_ops) / (2 * cycles)


class CellExecutor:
    """Execute one cell's program against its queues."""

    def __init__(
        self,
        code: CellCode,
        config: CellConfig,
        cell_index: int,
        start_time: int,
        in_queues: dict[Channel, TimedQueue],
        out_queues: dict[Channel, TimedQueue],
        address_queue: TimedQueue,
        trace: Callable[[TraceEvent], None] | None = None,
        recorder: MachineRecorder | None = None,
        block_plans: dict[int, BlockPlan] | None = None,
        deadline: int | None = None,
    ):
        self._code = code
        self._config = config
        self._cell = cell_index
        self._start = start_time
        self._in = in_queues
        self._out = out_queues
        self._addr = address_queue
        self._trace = trace
        self._recorder = recorder
        #: Watchdog: absolute cycle by which the cell must have
        #: finished.  Healthy cells finish exactly on their statically
        #: predicted cycle, so the deadline (predicted end + slack) can
        #: only be crossed by a stalled or hung cell.
        self._deadline = deadline
        #: Skip-idle plans per block: shared across cells/runs when the
        #: caller supplies them, otherwise built lazily for this cell.
        self._block_plans = block_plans if block_plans is not None else {}
        self._registers = [0.0] * config.n_registers
        self._pending: list[tuple[int, int, int, float]] = []  # (time, seq, reg, value)
        self._seq = 0
        self._memory = [0.0] * config.memory_words
        self.stats = CellStats(cell=cell_index, start_time=start_time)
        #: Queue resolution memo keyed by the (shared, immutable)
        #: QueueRef object identity — direction asserts run once per
        #: static reference instead of once per dynamic I/O.
        self._queue_memo: dict[int, TimedQueue] = {}

    # Register file with delayed writeback --------------------------------

    def _apply_writebacks(self, time: int) -> None:
        while self._pending and self._pending[0][0] <= time:
            _, _, reg, value = heapq.heappop(self._pending)
            self._registers[reg] = value

    def _write_later(self, time: int, reg: Reg, value: float) -> None:
        self._seq += 1
        heapq.heappush(self._pending, (time, self._seq, reg.index, value))

    def _read(self, operand: Operand) -> float:
        if isinstance(operand, Lit):
            return operand.value
        return self._registers[operand.index]

    # Execution ---------------------------------------------------------------

    def run(self) -> CellStats:
        end = self._run_items(self._code.items, self._start)
        # Flush outstanding writebacks (architecturally they land during
        # the drain cycles already counted in the block lengths).
        self._apply_writebacks(end)
        self.stats.end_time = end
        return self.stats

    def _run_items(self, items, time: int) -> int:
        for item in items:
            if isinstance(item, ScheduledBlock):
                time = self._run_block(item, time)
                if self._deadline is not None and time > self._deadline:
                    self._watchdog_expired(time)
            else:
                assert isinstance(item, ScheduledLoop)
                for _ in range(item.trip):
                    time = self._run_items(item.body, time)
        return time

    def _watchdog_expired(self, time: int) -> None:
        get_telemetry().counter("fault.detected")
        raise CellHangError(
            f"cell {self._cell}: watchdog expired — still executing at "
            f"cycle {time}, deadline was cycle {self._deadline} "
            f"(started at cycle {self._start}); the cell is stalled or hung"
        )

    def _run_block(self, block: ScheduledBlock, time: int) -> int:
        plan = self._block_plans.get(block.block_id)
        if plan is None:
            plan = BlockPlan.of(block)
            self._block_plans[block.block_id] = plan
        self.stats.issue_cycles += plan.issued
        if self._recorder is not None:
            self._recorder.block(
                self._cell, block.block_id, time, block.length, plan.issued
            )
        # Skip-idle fast path: visit only the issuing cycles; nop ranges
        # (latency bubbles, drain tails) advance the clock for free via
        # the block length.
        for decoded in plan.active:
            self._execute(decoded, time + decoded.cycle)
        return time + block.length

    def _execute(self, decoded: DecodedInstr, now: int) -> None:
        # Hot path: one call per *issuing* cycle per cell per run.  The
        # instruction arrives pre-decoded (load/store split, pure-op
        # evaluators resolved); locals and the identity-keyed queue memo
        # keep the per-issue constant factor low.  Behaviour is
        # identical to the attribute-walking form this replaces.
        pending = self._pending
        if pending and pending[0][0] <= now:
            self._apply_writebacks(now)
        config = self._config
        stats = self.stats
        queue_memo = self._queue_memo
        read = self._read
        for deq in decoded.deqs:
            queue = queue_memo.get(id(deq.queue))
            if queue is None:
                queue = self._queue_for(deq.queue, incoming=True)
                queue_memo[id(deq.queue)] = queue
            value = queue.dequeue(now)
            self._write_later(now + config.queue_latency, deq.dest, value)
            stats.receives += 1
            if self._trace:
                self._trace(
                    TraceEvent(self._cell, now, "receive", str(deq.queue), value)
                )
        # IU-supplied addresses are consumed in instruction-slot order
        # (the order the IU emitted them), which is not necessarily
        # loads-before-stores — resolve them all up front.
        addresses: dict[int, int] | None = None
        if decoded.addressed:
            addresses = {
                id(mem): int(self._addr.dequeue(now))
                for mem in decoded.addressed
            }
        # Memory: loads observe the pre-store contents of this cycle.
        for mem in decoded.loads:
            address = self._address(mem, addresses)
            value = self._memory[address]
            assert mem.reg is not None
            self._write_later(now + config.mem_read_latency, mem.reg, value)
            stats.mem_reads += 1
        for mem in decoded.stores:
            address = self._address(mem, addresses)
            assert mem.store_value is not None
            self._memory[address] = read(mem.store_value)
            stats.mem_writes += 1
        if decoded.alu is not None:
            fn, sources, dest = decoded.alu
            result = fn(*[read(s) for s in sources])
            self._write_later(now + config.alu_latency, dest, result)
            stats.alu_ops += 1
        if decoded.mpy is not None:
            fn, sources, dest, is_div = decoded.mpy
            result = fn(*[read(s) for s in sources])
            latency = config.div_latency if is_div else config.mpy_latency
            self._write_later(now + latency, dest, result)
            stats.mpy_ops += 1
        move = decoded.move
        if move is not None:
            self._write_later(
                now + config.move_latency, move.dest, read(move.source)
            )
        for enq in decoded.enqs:
            queue = queue_memo.get(id(enq.queue))
            if queue is None:
                queue = self._queue_for(enq.queue, incoming=False)
                queue_memo[id(enq.queue)] = queue
            value = read(enq.source)
            queue.enqueue(now, value)
            stats.sends += 1
            if self._trace:
                self._trace(
                    TraceEvent(self._cell, now, "send", str(enq.queue), value)
                )

    def _address(self, mem, addresses: dict[int, int] | None) -> int:
        if mem.address_source is AddressSource.LITERAL:
            return mem.address
        assert addresses is not None
        return addresses[id(mem)]

    def _queue_for(self, ref: QueueRef, incoming: bool) -> TimedQueue:
        if incoming:
            assert ref.direction is Direction.LEFT, (
                "compilable programs only receive from the left"
            )
            return self._in[ref.channel]
        assert ref.direction is Direction.RIGHT, (
            "compilable programs only send to the right"
        )
        return self._out[ref.channel]
