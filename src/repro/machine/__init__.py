"""The Warp machine simulator: cells, queues, IU address path, host
feeder/collector, plus the AST-level reference interpreter."""

from ..obs.metrics import CellMetrics, IUMetrics, MachineMetrics, QueueMetrics
from .array import SimulationResult, WarpMachine, simulate
from .cell import CellExecutor, CellStats, TraceEvent
from .config import DEFAULT_CONFIG, CellConfig, IUConfig, WarpConfig
from .host import HostMemory, collect_outputs, feed_input_queues
from .iu_machine import IUMachine, run_iu_program
from .plan import BlockPlan, DecodedInstr, ExecutionPlan
from .queue import TimedQueue
from .reference import interpret

__all__ = [
    "BlockPlan",
    "CellConfig",
    "CellExecutor",
    "CellMetrics",
    "CellStats",
    "DEFAULT_CONFIG",
    "DecodedInstr",
    "ExecutionPlan",
    "HostMemory",
    "IUConfig",
    "IUMachine",
    "IUMetrics",
    "MachineMetrics",
    "QueueMetrics",
    "SimulationResult",
    "TimedQueue",
    "TraceEvent",
    "WarpConfig",
    "WarpMachine",
    "collect_outputs",
    "feed_input_queues",
    "interpret",
    "run_iu_program",
    "simulate",
]
