"""Timestamped FIFO queues between neighbouring cells.

Because data flows strictly left-to-right in compilable programs, the
simulator runs the cells sequentially (cell 0 to completion, then cell 1,
…) while preserving exact cycle semantics: every enqueue records the
cycle it happened, and a dequeue at cycle ``t`` must find its item
already sent at some cycle ``<= t`` — otherwise the compiler's skew
guarantee failed and :class:`QueueUnderflowError` is raised.

Capacity is audited after both endpoints have run, using the same
occupancy definition as the compile-time analysis
(:func:`repro.timing.buffers.occupancy_requirement`)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import QueueCapacityError, QueueUnderflowError
from ..obs import get_telemetry
from ..obs.metrics import QueueMetrics, queue_metrics_from_times
from ..timing.buffers import occupancy_requirement


@dataclass
class TimedQueue:
    """A FIFO whose items carry the cycle they were enqueued."""

    name: str
    capacity: int | None = None  # None = flow-controlled (host boundary)
    send_times: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    recv_times: list[int] = field(default_factory=list)
    _cursor: int = 0

    def enqueue(self, time: int, value: float) -> None:
        if self.send_times and time < self.send_times[-1]:
            raise ValueError(f"{self.name}: enqueue times must not decrease")
        self.send_times.append(time)
        self.values.append(value)

    def dequeue(self, time: int) -> float:
        if self._cursor >= len(self.values):
            get_telemetry().counter("fault.detected")
            raise QueueUnderflowError(
                f"{self.name}: dequeue at cycle {time} but only "
                f"{len(self.values)} items were ever sent"
            )
        sent = self.send_times[self._cursor]
        if sent > time:
            get_telemetry().counter("fault.detected")
            raise QueueUnderflowError(
                f"{self.name}: dequeue at cycle {time} of an item sent at "
                f"cycle {sent} — the skew guarantee failed"
            )
        value = self.values[self._cursor]
        self.recv_times.append(time)
        self._cursor += 1
        return value

    @property
    def items_sent(self) -> int:
        return len(self.values)

    @property
    def items_received(self) -> int:
        return self._cursor

    def max_occupancy(self) -> int:
        """Peak occupancy over the whole run (post-hoc audit)."""
        return occupancy_requirement(
            np.asarray(self.send_times, dtype=np.int64),
            np.asarray(self.recv_times, dtype=np.int64),
            skew=0,  # times here are already absolute
        )

    def audit_capacity(self) -> int:
        occupancy = self.max_occupancy()
        if self.capacity is not None and occupancy > self.capacity:
            get_telemetry().counter("fault.detected")
            raise QueueCapacityError(
                f"{self.name}: peak occupancy {occupancy} exceeds the "
                f"{self.capacity}-word queue"
            )
        return occupancy

    def total_wait_cycles(self) -> int:
        """Cycles consumed items spent in the queue (receive - send)."""
        consumed = len(self.recv_times)
        return sum(self.recv_times) - sum(self.send_times[:consumed])

    def to_metrics(self, high_water: int | None = None) -> QueueMetrics:
        """Snapshot this queue's occupancy/residency statistics."""
        return queue_metrics_from_times(
            name=self.name,
            capacity=self.capacity,
            high_water=self.max_occupancy() if high_water is None else high_water,
            send_times=self.send_times,
            recv_times=self.recv_times,
        )
