"""Reference interpreter for W2 programs.

Executes the *AST* directly under the programmer's model of Section 4:
asynchronous send/receive with unbounded buffers, true branching for
conditionals, no timing.  Because compilable programs flow left to
right, cells can be interpreted sequentially, each consuming the streams
its left neighbour produced.

This is a second, independent implementation of W2 semantics: end-to-end
tests require the compiled-and-simulated machine to reproduce the
interpreter's outputs bit-for-modulo-reassociation (the compiler's
height reduction may reassociate float arithmetic, so comparisons use
tolerances).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import HostDataError
from ..lang import ast
from ..lang.semantic import AnalyzedModule
from .host import HostMemory


def _flows_right_to_left(module: ast.Module) -> bool:
    """True when every receive comes from the right (and none from the
    left): the mirror image of a canonical program."""
    directions: list[ast.Direction] = []

    def scan(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Compound):
            for inner in stmt.statements:
                scan(inner)
        elif isinstance(stmt, ast.Receive):
            directions.append(stmt.direction)
        elif isinstance(stmt, ast.If):
            scan(stmt.then_body)
            if stmt.else_body is not None:
                scan(stmt.else_body)
        elif isinstance(stmt, ast.For):
            scan(stmt.body)

    for function in module.cellprogram.functions:
        scan(function.body)
    for stmt in module.cellprogram.body:
        scan(stmt)
    return bool(directions) and all(
        d is ast.Direction.RIGHT for d in directions
    )


@dataclass
class _CellEnv:
    """One cell's state: scalar values and local arrays."""

    scalars: dict[str, float] = field(default_factory=dict)
    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    loop_vars: dict[str, int] = field(default_factory=dict)


class _CellInterpreter:
    def __init__(
        self,
        analyzed: AnalyzedModule,
        cell_index: int,
        memory: HostMemory,
        in_streams: dict[ast.Channel, list[float]],
    ):
        self._analyzed = analyzed
        self._module = analyzed.module
        self._cp = self._module.cellprogram
        self._cell = cell_index
        self._is_first = cell_index == 0
        self._is_last = cell_index == self._cp.n_cells - 1
        self._memory = memory
        self._in = {ch: iter(stream) for ch, stream in in_streams.items()}
        self.out_streams: dict[ast.Channel, list[float]] = {
            ast.Channel.X: [],
            ast.Channel.Y: [],
        }
        self._env = _CellEnv()
        self._declare(self._cp.locals)
        self._scope_stack: list[tuple[set[str], set[str]]] = []

    # Declarations -----------------------------------------------------------

    def _declare(self, decls: tuple[ast.VarDecl, ...]) -> None:
        for decl in decls:
            if decl.scalar_type is ast.ScalarType.INT:
                self._env.loop_vars.setdefault(decl.name, 0)
            elif decl.is_array:
                self._env.arrays[decl.name] = np.zeros(decl.element_count)
            else:
                self._env.scalars[decl.name] = 0.0

    # Statements ---------------------------------------------------------------

    def run(self) -> None:
        for stmt in self._cp.body:
            self._exec(stmt)

    def _exec(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Compound):
            for inner in stmt.statements:
                self._exec(inner)
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.If):
            if self._eval(stmt.condition) != 0.0:
                self._exec(stmt.then_body)
            elif stmt.else_body is not None:
                self._exec(stmt.else_body)
        elif isinstance(stmt, ast.For):
            start, _stop, trip = self._analyzed.bounds_for(stmt)
            step = -1 if stmt.downto else 1
            for i in range(trip):
                self._env.loop_vars[stmt.var] = start + i * step
                self._exec(stmt.body)
        elif isinstance(stmt, ast.Call):
            function = self._analyzed.functions[stmt.name]
            self._declare(function.locals)
            self._exec(function.body)
        elif isinstance(stmt, ast.Receive):
            self._receive(stmt)
        elif isinstance(stmt, ast.Send):
            self._send(stmt)
        else:  # pragma: no cover
            raise TypeError(stmt)

    def _receive(self, stmt: ast.Receive) -> None:
        if self._is_first:
            value = self._eval_external_in(stmt)
        else:
            try:
                value = next(self._in[stmt.channel])
            except StopIteration:
                raise HostDataError(
                    f"cell {self._cell}: receive on {stmt.channel} finds "
                    "an empty stream (send/receive counts do not match)"
                ) from None
        self._assign(stmt.target, value)

    def _send(self, stmt: ast.Send) -> None:
        value = self._eval(stmt.value)
        self.out_streams[stmt.channel].append(value)
        if self._is_last and stmt.external is not None:
            self._store_external(stmt.external, value)

    def _eval_external_in(self, stmt: ast.Receive) -> float:
        external = stmt.external
        if external is None:
            raise HostDataError(
                "first cell executes a receive with no external source"
            )
        if isinstance(external, (ast.FloatLiteral, ast.IntLiteral)):
            return float(external.value)
        assert isinstance(external, (ast.VarRef, ast.ArrayRef))
        name = external.name
        data = self._memory.arrays[name]
        index = self._flat_host_index(external)
        if not 0 <= index < data.size:
            raise HostDataError(f"{name}[{index}] out of bounds")
        return float(data[index])

    def _store_external(self, external: ast.Expr, value: float) -> None:
        assert isinstance(external, (ast.VarRef, ast.ArrayRef))
        data = self._memory.arrays[external.name]
        index = self._flat_host_index(external)
        if not 0 <= index < data.size:
            raise HostDataError(f"{external.name}[{index}] out of bounds")
        data[index] = value

    def _flat_host_index(self, ref: ast.Expr) -> int:
        if isinstance(ref, ast.VarRef):
            return 0
        assert isinstance(ref, ast.ArrayRef)
        dims = self._module.host_decl(ref.name).dimensions
        flat = 0
        for index_expr, dim in zip(ref.indices, dims):
            flat = flat * dim + self._eval_int(index_expr)
        return flat

    # Expressions ----------------------------------------------------------------

    def _assign(self, target: ast.Expr, value: float) -> None:
        if isinstance(target, ast.VarRef):
            self._env.scalars[target.name] = value
            return
        assert isinstance(target, ast.ArrayRef)
        data = self._env.arrays[target.name]
        data[self._flat_cell_index(target)] = value

    def _flat_cell_index(self, ref: ast.ArrayRef) -> int:
        symbol = self._analyzed.cell_scope.lookup(ref.name)
        if symbol is not None and symbol.is_array:
            dims = symbol.dimensions
        else:
            dims = self._function_array_dims(ref.name)
        flat = 0
        for index_expr, dim in zip(ref.indices, dims):
            flat = flat * dim + self._eval_int(index_expr)
        return flat

    def _function_array_dims(self, name: str) -> tuple[int, ...]:
        for function in self._analyzed.functions.values():
            for decl in function.locals:
                if decl.name == name:
                    return decl.dimensions
        raise KeyError(name)

    def _eval_int(self, expr: ast.Expr) -> int:
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.VarRef):
            return self._env.loop_vars[expr.name]
        if isinstance(expr, ast.UnaryExpr) and expr.op is ast.UnaryOp.NEG:
            return -self._eval_int(expr.operand)
        if isinstance(expr, ast.BinaryExpr):
            left = self._eval_int(expr.left)
            right = self._eval_int(expr.right)
            if expr.op is ast.BinaryOp.ADD:
                return left + right
            if expr.op is ast.BinaryOp.SUB:
                return left - right
            if expr.op is ast.BinaryOp.MUL:
                return left * right
            if expr.op is ast.BinaryOp.DIV:
                return left // right
        raise TypeError(f"not an index expression: {expr!r}")

    def _eval(self, expr: ast.Expr) -> float:
        if isinstance(expr, (ast.IntLiteral, ast.FloatLiteral)):
            return float(expr.value)
        if isinstance(expr, ast.VarRef):
            return self._env.scalars[expr.name]
        if isinstance(expr, ast.ArrayRef):
            return float(self._env.arrays[expr.name][self._flat_cell_index(expr)])
        if isinstance(expr, ast.UnaryExpr):
            value = self._eval(expr.operand)
            if expr.op is ast.UnaryOp.NEG:
                return -value
            return 1.0 if value == 0.0 else 0.0
        assert isinstance(expr, ast.BinaryExpr)
        op = expr.op
        if op is ast.BinaryOp.AND:
            return (
                1.0
                if self._eval(expr.left) != 0.0 and self._eval(expr.right) != 0.0
                else 0.0
            )
        if op is ast.BinaryOp.OR:
            return (
                1.0
                if self._eval(expr.left) != 0.0 or self._eval(expr.right) != 0.0
                else 0.0
            )
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        if op is ast.BinaryOp.ADD:
            return left + right
        if op is ast.BinaryOp.SUB:
            return left - right
        if op is ast.BinaryOp.MUL:
            return left * right
        if op is ast.BinaryOp.DIV:
            return left / right
        comparisons = {
            ast.BinaryOp.EQ: left == right,
            ast.BinaryOp.NE: left != right,
            ast.BinaryOp.LT: left < right,
            ast.BinaryOp.LE: left <= right,
            ast.BinaryOp.GT: left > right,
            ast.BinaryOp.GE: left >= right,
        }
        return 1.0 if comparisons[op] else 0.0


def interpret(
    analyzed: AnalyzedModule, inputs: dict[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Run a W2 module under the programmer's model; returns host arrays
    (inputs included) after execution.

    Right-to-left modules (receives from R, sends to L) are mirrored
    first, exactly as the compiler does — the array is symmetric.
    """
    if _flows_right_to_left(analyzed.module):
        from ..compiler.mirror import mirror_module
        from ..lang.semantic import analyze as _analyze

        analyzed = _analyze(mirror_module(analyzed.module))
    module = analyzed.module
    shapes = {
        param.name: module.host_decl(param.name).dimensions
        for param in module.params
    }
    memory = HostMemory.from_inputs(shapes, inputs)
    streams: dict[ast.Channel, list[float]] = {
        ast.Channel.X: [],
        ast.Channel.Y: [],
    }
    for cell in range(module.cellprogram.n_cells):
        interp = _CellInterpreter(analyzed, cell, memory, streams)
        interp.run()
        streams = interp.out_streams
    return {name: data.copy() for name, data in memory.arrays.items()}
