"""Re-export of the machine configuration (see :mod:`repro.config`).

The dataclasses live at the package top level so that code-generation
modules can import them without triggering the simulator package's
imports."""

from ..config import DEFAULT_CONFIG, CellConfig, IUConfig, WarpConfig

__all__ = ["DEFAULT_CONFIG", "CellConfig", "IUConfig", "WarpConfig"]
