"""Static, reusable simulation state derived from one compiled program.

Everything here is a pure function of the :class:`CompiledProgram` —
independent of the cell index, the input data and the run — so one
:class:`ExecutionPlan` is shared by all cells of a run and by every run
of a batch:

* **Skip-idle block plans.**  Scheduled blocks are dominated by nop
  cycles (latency bubbles and drain ranges; 30–50% of instruction slots
  on the Table 7-1 programs).  A :class:`BlockPlan` keeps only the
  issuing cycles, so the executor jumps from one active cycle to the
  next instead of ticking through provably idle ranges — the cycle
  arithmetic is unchanged because each active instruction carries its
  offset and the block's total length still advances the clock.
* **The IU address schedule** (``emissions``), identical for every cell
  up to the per-hop delay, rather than re-walked per run.
* **The host I/O sequences** (input references and output bindings per
  channel), rather than re-derived from the host program per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

from ..analysis.local_opt import pure_evaluator
from ..cellcodegen.emit import CellCode, ScheduledBlock
from ..cellcodegen.isa import (
    AddressSource,
    DeqOp,
    EnqOp,
    MemOp,
    MicroInstr,
    MoveOp,
    Operand,
    Reg,
)
from ..ir.dag import OpKind
from ..lang.ast import Channel

if TYPE_CHECKING:  # pragma: no cover - circular import at run time
    from ..compiler.driver import CompiledProgram
    from ..hostcodegen.io_program import HostBinding, HostValueRef


@dataclass(slots=True)
class DecodedInstr:
    """One issuing micro-instruction, pre-decoded for execution.

    Decoding resolves everything that is the same on every dynamic
    issue — the load/store split, the pure-op evaluation functions, the
    operand tuples — so the executor's hot loop does no dispatch, only
    state updates.  ``instr`` stays attached for tracing and listings.
    """

    cycle: int
    instr: MicroInstr
    deqs: tuple[DeqOp, ...]
    loads: tuple[MemOp, ...]
    stores: tuple[MemOp, ...]
    #: Queue-addressed memory ops in *slot order* — the order the IU
    #: emits their addresses (``addr_demands`` is stably sorted by
    #: cycle, so same-cycle addresses arrive in instruction-slot
    #: order).  The executor must dequeue addresses in this order even
    #: though it applies loads before stores.
    addressed: tuple[MemOp, ...]
    #: ``(evaluator, sources, dest)`` or ``None``.
    alu: tuple[Callable[..., float], tuple[Operand, ...], Reg] | None
    #: ``(evaluator, sources, dest, is_divide)`` or ``None``.
    mpy: tuple[Callable[..., float], tuple[Operand, ...], Reg, bool] | None
    move: MoveOp | None
    enqs: tuple[EnqOp, ...]

    @classmethod
    def of(cls, cycle: int, instr: MicroInstr) -> "DecodedInstr":
        alu = mpy = None
        if instr.alu is not None:
            fn = pure_evaluator(instr.alu.op)
            assert fn is not None, instr.alu.op
            alu = (fn, tuple(instr.alu.sources), instr.alu.dest)
        if instr.mpy is not None:
            fn = pure_evaluator(instr.mpy.op)
            assert fn is not None, instr.mpy.op
            mpy = (
                fn,
                tuple(instr.mpy.sources),
                instr.mpy.dest,
                instr.mpy.op is OpKind.FDIV,
            )
        return cls(
            cycle=cycle,
            instr=instr,
            deqs=tuple(instr.deqs),
            loads=tuple(m for m in instr.mem if m.is_load),
            stores=tuple(m for m in instr.mem if not m.is_load),
            addressed=tuple(
                m
                for m in instr.mem
                if m.address_source is not AddressSource.LITERAL
            ),
            alu=alu,
            mpy=mpy,
            move=instr.move,
            enqs=tuple(instr.enqs),
        )


@dataclass(frozen=True)
class BlockPlan:
    """One scheduled block, reduced to its issuing cycles."""

    length: int
    #: Number of non-nop instructions (the block's issue count).
    issued: int
    #: The non-nop instructions, pre-decoded, in cycle order.
    active: tuple[DecodedInstr, ...]

    @classmethod
    def of(cls, block: ScheduledBlock) -> "BlockPlan":
        active = tuple(
            DecodedInstr.of(cycle, instr)
            for cycle, instr in enumerate(block.instructions)
            if not instr.is_nop()
        )
        return cls(length=block.length, issued=len(active), active=active)


def block_plans(code: CellCode) -> dict[int, BlockPlan]:
    """A :class:`BlockPlan` per static block of ``code``."""
    return {block.block_id: BlockPlan.of(block) for block in code.blocks()}


def static_io_counts(items) -> tuple[dict[Channel, int], dict[Channel, int]]:
    """Exact per-channel (sends, receives) of one cell's full run.

    Schedules are data-independent, so these counts are a static
    property of the code tree: every cell enqueues exactly
    ``sends[channel]`` words per run.  The stream-accounting guard in
    :meth:`~repro.machine.array.WarpMachine.run` compares each
    inter-cell link against them — a dropped or duplicated send shows up
    as a count divergence even when it would not underflow anything.
    """
    sends = {Channel.X: 0, Channel.Y: 0}
    receives = {Channel.X: 0, Channel.Y: 0}
    for item in items:
        if isinstance(item, ScheduledBlock):
            for instr in item.instructions:
                for enq in instr.enqs:
                    sends[enq.queue.channel] += 1
                for deq in instr.deqs:
                    receives[deq.queue.channel] += 1
        else:
            inner_sends, inner_receives = static_io_counts(item.body)
            for channel in (Channel.X, Channel.Y):
                sends[channel] += inner_sends[channel] * item.trip
                receives[channel] += inner_receives[channel] * item.trip
    return sends, receives


class ExecutionPlan:
    """All static per-program simulation state, computed once."""

    def __init__(self, program: "CompiledProgram"):
        self.blocks: dict[int, BlockPlan] = block_plans(program.cell_code)
        #: ``(emit_time, deadline, address)`` per dynamic IU emission.
        self.emissions: list[tuple[int, int, int]] = list(
            program.iu_program.emission_times()
        )
        #: The emission schedule split into parallel time/value lists so
        #: a cell's address queue is a couple of list copies, not a
        #: per-item enqueue loop.
        self.emission_times: list[int] = [t for t, _d, _a in self.emissions]
        self.emission_values: list[float] = [
            float(a) for _t, _d, a in self.emissions
        ]
        self.input_refs: dict[Channel, list["HostValueRef"]] = {
            channel: list(program.host_program.input_sequence(channel))
            for channel in (Channel.X, Channel.Y)
        }
        self.output_bindings: dict[Channel, list["HostBinding"]] = {
            channel: list(program.host_program.output_bindings(channel))
            for channel in (Channel.X, Channel.Y)
        }
        #: Static per-channel I/O counts of one cell run, used by the
        #: stream-accounting guard (every inter-cell link must carry
        #: exactly ``sends_per_run[channel]`` words).
        self.sends_per_run, self.receives_per_run = static_io_counts(
            program.cell_code.items
        )

    @property
    def skipped_slots(self) -> int:
        """Instruction slots the fast path never visits (nop cycles)."""
        return sum(
            plan.length - plan.issued for plan in self.blocks.values()
        )
