"""Static, reusable simulation state derived from one compiled program.

Everything here is a pure function of the :class:`CompiledProgram` —
independent of the cell index, the input data and the run — so one
:class:`ExecutionPlan` is shared by all cells of a run and by every run
of a batch:

* **Skip-idle block plans.**  Scheduled blocks are dominated by nop
  cycles (latency bubbles and drain ranges; 30–50% of instruction slots
  on the Table 7-1 programs).  A :class:`BlockPlan` keeps only the
  issuing cycles, so the executor jumps from one active cycle to the
  next instead of ticking through provably idle ranges — the cycle
  arithmetic is unchanged because each active instruction carries its
  offset and the block's total length still advances the clock.
* **The IU address schedule** (``emissions``), identical for every cell
  up to the per-hop delay, rather than re-walked per run.
* **The host I/O sequences** (input references and output bindings per
  channel), rather than re-derived from the host program per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

from ..analysis.local_opt import pure_evaluator
from ..cellcodegen.emit import CellCode, ScheduledBlock
from ..cellcodegen.isa import (
    DeqOp,
    EnqOp,
    MemOp,
    MicroInstr,
    MoveOp,
    Operand,
    Reg,
)
from ..ir.dag import OpKind
from ..lang.ast import Channel

if TYPE_CHECKING:  # pragma: no cover - circular import at run time
    from ..compiler.driver import CompiledProgram
    from ..hostcodegen.io_program import HostBinding, HostValueRef


@dataclass(slots=True)
class DecodedInstr:
    """One issuing micro-instruction, pre-decoded for execution.

    Decoding resolves everything that is the same on every dynamic
    issue — the load/store split, the pure-op evaluation functions, the
    operand tuples — so the executor's hot loop does no dispatch, only
    state updates.  ``instr`` stays attached for tracing and listings.
    """

    cycle: int
    instr: MicroInstr
    deqs: tuple[DeqOp, ...]
    loads: tuple[MemOp, ...]
    stores: tuple[MemOp, ...]
    #: ``(evaluator, sources, dest)`` or ``None``.
    alu: tuple[Callable[..., float], tuple[Operand, ...], Reg] | None
    #: ``(evaluator, sources, dest, is_divide)`` or ``None``.
    mpy: tuple[Callable[..., float], tuple[Operand, ...], Reg, bool] | None
    move: MoveOp | None
    enqs: tuple[EnqOp, ...]

    @classmethod
    def of(cls, cycle: int, instr: MicroInstr) -> "DecodedInstr":
        alu = mpy = None
        if instr.alu is not None:
            fn = pure_evaluator(instr.alu.op)
            assert fn is not None, instr.alu.op
            alu = (fn, tuple(instr.alu.sources), instr.alu.dest)
        if instr.mpy is not None:
            fn = pure_evaluator(instr.mpy.op)
            assert fn is not None, instr.mpy.op
            mpy = (
                fn,
                tuple(instr.mpy.sources),
                instr.mpy.dest,
                instr.mpy.op is OpKind.FDIV,
            )
        return cls(
            cycle=cycle,
            instr=instr,
            deqs=tuple(instr.deqs),
            loads=tuple(m for m in instr.mem if m.is_load),
            stores=tuple(m for m in instr.mem if not m.is_load),
            alu=alu,
            mpy=mpy,
            move=instr.move,
            enqs=tuple(instr.enqs),
        )


@dataclass(frozen=True)
class BlockPlan:
    """One scheduled block, reduced to its issuing cycles."""

    length: int
    #: Number of non-nop instructions (the block's issue count).
    issued: int
    #: The non-nop instructions, pre-decoded, in cycle order.
    active: tuple[DecodedInstr, ...]

    @classmethod
    def of(cls, block: ScheduledBlock) -> "BlockPlan":
        active = tuple(
            DecodedInstr.of(cycle, instr)
            for cycle, instr in enumerate(block.instructions)
            if not instr.is_nop()
        )
        return cls(length=block.length, issued=len(active), active=active)


def block_plans(code: CellCode) -> dict[int, BlockPlan]:
    """A :class:`BlockPlan` per static block of ``code``."""
    return {block.block_id: BlockPlan.of(block) for block in code.blocks()}


class ExecutionPlan:
    """All static per-program simulation state, computed once."""

    def __init__(self, program: "CompiledProgram"):
        self.blocks: dict[int, BlockPlan] = block_plans(program.cell_code)
        #: ``(emit_time, deadline, address)`` per dynamic IU emission.
        self.emissions: list[tuple[int, int, int]] = list(
            program.iu_program.emission_times()
        )
        #: The emission schedule split into parallel time/value lists so
        #: a cell's address queue is a couple of list copies, not a
        #: per-item enqueue loop.
        self.emission_times: list[int] = [t for t, _d, _a in self.emissions]
        self.emission_values: list[float] = [
            float(a) for _t, _d, a in self.emissions
        ]
        self.input_refs: dict[Channel, list["HostValueRef"]] = {
            channel: list(program.host_program.input_sequence(channel))
            for channel in (Channel.X, Channel.Y)
        }
        self.output_bindings: dict[Channel, list["HostBinding"]] = {
            channel: list(program.host_program.output_bindings(channel))
            for channel in (Channel.X, Channel.Y)
        }

    @property
    def skipped_slots(self) -> int:
        """Instruction slots the fast path never visits (nop cycles)."""
        return sum(
            plan.length - plan.issued for plan in self.blocks.values()
        )
