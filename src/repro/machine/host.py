"""The host's I/O processors: feeder and collector.

"The host ... provides an adequate data bandwidth to sustain the array at
full speed" (Section 2.1): each channel delivers one word per cycle into
cell 0's queues, starting at cycle 0, in exactly the order the host
program prescribes.  The host-to-array boundary is flow-controlled (the
IU and host communicate asynchronously over a bus), so the host-side
queue has no hard capacity; a cell trying to consume *faster* than one
word per cycle per channel still underflows, which models the bandwidth
limit faithfully.

The collector drains the last cell's queues and scatters the values into
host memory according to the output bindings."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import HostDataError
from ..hostcodegen import HostProgram
from ..lang.ast import Channel
from .queue import TimedQueue


@dataclass
class HostMemory:
    """Host arrays by name (flattened float64 storage)."""

    arrays: dict[str, np.ndarray]

    @classmethod
    def from_inputs(
        cls,
        host_shapes: dict[str, tuple[int, ...]],
        inputs: dict[str, "np.ndarray"],
    ) -> "HostMemory":
        arrays: dict[str, np.ndarray] = {}
        for name, dims in host_shapes.items():
            size = int(np.prod(dims)) if dims else 1
            if name in inputs:
                data = np.asarray(inputs[name], dtype=np.float64).ravel()
                if data.size > size:
                    raise HostDataError(
                        f"input {name!r} has {data.size} elements; the "
                        f"module declares {size}"
                    )
                padded = np.zeros(size, dtype=np.float64)
                padded[: data.size] = data
                arrays[name] = padded
            else:
                arrays[name] = np.zeros(size, dtype=np.float64)
        return cls(arrays)


def feed_input_queues(
    host_program: HostProgram,
    memory: HostMemory,
    queues: dict[Channel, TimedQueue],
    sequences: dict[Channel, list] | None = None,
) -> None:
    """Load cell 0's input queues: item ``k`` arrives at cycle ``k``
    (one word per cycle per channel).

    ``sequences`` optionally supplies the per-channel input references
    precomputed by an :class:`~repro.machine.plan.ExecutionPlan`, so
    batched runs do not re-derive them from the host program.
    """
    for channel, queue in queues.items():
        refs = (
            sequences[channel]
            if sequences is not None
            else host_program.input_sequence(channel)
        )
        for k, ref in enumerate(refs):
            if ref.is_literal:
                value = float(ref.literal)  # type: ignore[arg-type]
            else:
                assert ref.array is not None and ref.flat_index is not None
                data = memory.arrays.get(ref.array)
                if data is None or not (0 <= ref.flat_index < data.size):
                    raise HostDataError(
                        f"input reference {ref.array}[{ref.flat_index}] is "
                        "out of bounds"
                    )
                value = float(data[ref.flat_index])
            queue.enqueue(k, value)


def collect_outputs(
    host_program: HostProgram,
    memory: HostMemory,
    queues: dict[Channel, TimedQueue],
    bindings: dict[Channel, list] | None = None,
) -> None:
    """Scatter the last cell's output streams into host memory.

    ``bindings`` optionally supplies precomputed per-channel output
    bindings (see :func:`feed_input_queues`)."""
    for channel, queue in queues.items():
        channel_bindings = (
            bindings[channel]
            if bindings is not None
            else list(host_program.output_bindings(channel))
        )
        if len(channel_bindings) != queue.items_sent:
            raise HostDataError(
                f"channel {channel}: the last cell sent {queue.items_sent} "
                f"items but the host program expects {len(channel_bindings)}"
            )
        for binding, value in zip(channel_bindings, queue.values):
            if binding.is_discard:
                continue
            assert binding.array is not None and binding.flat_index is not None
            data = memory.arrays[binding.array]
            if not (0 <= binding.flat_index < data.size):
                raise HostDataError(
                    f"output binding {binding.array}[{binding.flat_index}] "
                    "is out of bounds"
                )
            data[binding.flat_index] = value
