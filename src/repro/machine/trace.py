"""Execution-trace formatting (Figure 4-2).

Figure 4-2 shows the logical sequence of sends and receives on the first
two cells of the polynomial program, with arrows from each send to the
receive that consumes it.  :func:`format_two_cell_trace` renders the
same picture from a simulation trace, for any pair of cells."""

from __future__ import annotations

from .cell import TraceEvent


def format_two_cell_trace(
    trace: list[TraceEvent],
    max_rows: int = 24,
    cells: tuple[int, int] = (0, 1),
    annotation: str | None = None,
) -> str:
    """Two-column rendering of a cell pair's I/O events in time order.

    ``cells`` selects the pair (default the paper's cells 0 and 1); when
    the pair is adjacent, sends of the left cell on the rightward
    channels line up with the receives of the right cell that consume
    them.  If ``max_rows`` cuts events off, a final line reports how
    many were omitted.  ``annotation`` adds a provenance line above the
    header (e.g. the compile-cache status of the traced run, so a trace
    from a cached artefact is distinguishable from a fresh compile)."""
    left, right = cells
    rows: list[str] = []
    if annotation:
        rows.append(f"[{annotation}]")
    rows.append(f"{f'Cell {left}':<36}{f'Cell {right}'}")
    events = sorted(
        (e for e in trace if e.cell in (left, right)),
        key=lambda e: (e.time, e.cell, e.kind == "send"),
    )
    for event in events[:max_rows]:
        arrow = "->" if (event.cell == left and event.kind == "send") else "  "
        text = f"t={event.time:<4} {event.kind:<8} {event.queue} {event.value:<8.4g} {arrow}"
        if event.cell == left:
            rows.append(f"{text:<36}")
        else:
            rows.append(f"{'':<36}{text}")
    if len(events) > max_rows:
        rows.append(f"... {len(events) - max_rows} more events not shown")
    return "\n".join(rows)
