"""Execution-trace formatting (Figure 4-2).

Figure 4-2 shows the logical sequence of sends and receives on the first
two cells of the polynomial program, with arrows from each send to the
receive that consumes it.  :func:`format_two_cell_trace` renders the
same picture from a simulation trace."""

from __future__ import annotations

from .cell import TraceEvent


def format_two_cell_trace(
    trace: list[TraceEvent], max_rows: int = 24
) -> str:
    """Two-column rendering of cell 0 and cell 1 I/O events in time
    order; sends of cell 0 on the rightward channels line up with the
    receives of cell 1 that consume them."""
    rows: list[str] = [f"{'Cell 0':<36}{'Cell 1'}"]
    events = sorted(
        (e for e in trace if e.cell in (0, 1)),
        key=lambda e: (e.time, e.cell, e.kind == "send"),
    )
    for event in events[:max_rows]:
        arrow = "->" if (event.cell == 0 and event.kind == "send") else "  "
        text = f"t={event.time:<4} {event.kind:<8} {event.queue} {event.value:<8.4g} {arrow}"
        if event.cell == 0:
            rows.append(f"{text:<36}")
        else:
            rows.append(f"{'':<36}{text}")
    return "\n".join(rows)
