"""Executor for lowered IU programs.

Runs the interface unit as the register machine it is: 16 registers,
add/subtract-only ALU, a table memory readable strictly in sequential
order (the hardware restriction of Section 6.3.2 — skipping or rewinding
raises), and loop counters.  The produced address stream is the ground
truth the planner's direct affine evaluation must match; the test suite
asserts the two are identical for every compiled program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from ..iucodegen.isa import IUOp, IUOpKind
from ..iucodegen.lower import LoweredBlock, LoweredIUProgram, LoweredLoop
from ..obs import get_telemetry


class TableOrderError(SimulationError):
    """The table memory was read out of sequential order."""


@dataclass
class IUMachineState:
    registers: dict[int, int] = field(default_factory=dict)
    table_cursor: int = 0
    emitted: list[int] = field(default_factory=list)
    ops_executed: int = 0
    loop_tests: int = 0
    #: Dynamic instruction mix, op-kind name -> executions.
    ops_by_kind: dict[str, int] = field(default_factory=dict)
    #: Addresses served from the sequential table memory.
    table_reads: int = 0


class IUMachine:
    """Execute a lowered IU program and collect its address stream."""

    def __init__(self, program: LoweredIUProgram, n_registers: int = 16):
        self._program = program
        self._n_registers = n_registers
        self.state = IUMachineState()

    def run(self) -> list[int]:
        for op in self._program.prologue:
            self._execute(op)
        self._run_items(self._program.items)
        if self.state.table_cursor not in (0, len(self._program.table)):
            raise TableOrderError(
                f"table memory not fully consumed: cursor "
                f"{self.state.table_cursor} of {len(self._program.table)}"
            )
        obs = get_telemetry()
        if obs.enabled:
            obs.counter("iu.ops_executed", self.state.ops_executed)
            obs.counter("iu.addresses_emitted", len(self.state.emitted))
            obs.counter("iu.table_reads", self.state.table_reads)
        return list(self.state.emitted)

    # Execution ---------------------------------------------------------------

    def _run_items(self, items) -> None:
        for item in items:
            if isinstance(item, LoweredBlock):
                for op in item.ops:
                    self._execute(op)
            else:
                assert isinstance(item, LoweredLoop)
                for _ in range(item.trip):
                    self._run_items(item.body)
                    for op in item.boundary_ops:
                        self._execute(op)
                for op in item.exit_ops:
                    self._execute(op)

    def _reg(self, reg) -> int:
        if reg.index >= self._n_registers:
            raise SimulationError(
                f"register {reg} out of range (IU has {self._n_registers})"
            )
        return self.state.registers.get(reg.index, 0)

    def _execute(self, op: IUOp) -> None:
        state = self.state
        state.ops_executed += 1
        kind = op.kind.name
        state.ops_by_kind[kind] = state.ops_by_kind.get(kind, 0) + 1
        if op.kind is IUOpKind.SETI:
            state.registers[op.dest.index] = int(op.immediate)
        elif op.kind is IUOpKind.ADDI:
            state.registers[op.dest.index] = self._reg(op.src1) + int(
                op.immediate
            )
        elif op.kind is IUOpKind.ADD:
            state.registers[op.dest.index] = self._reg(op.src1) + self._reg(
                op.src2
            )
        elif op.kind is IUOpKind.SUB:
            state.registers[op.dest.index] = self._reg(op.src1) - self._reg(
                op.src2
            )
        elif op.kind is IUOpKind.EMIT:
            state.emitted.append(self._reg(op.src1))
        elif op.kind is IUOpKind.EMIT_TABLE:
            if state.table_cursor >= len(self._program.table):
                raise TableOrderError("table memory exhausted")
            state.emitted.append(self._program.table[state.table_cursor])
            state.table_cursor += 1
            state.table_reads += 1
        elif op.kind is IUOpKind.LOOP_TEST:
            state.loop_tests += 1
        elif op.kind is IUOpKind.LOOP_INIT:
            pass
        else:  # pragma: no cover
            raise SimulationError(f"unknown IU op {op.kind}")


def run_iu_program(program: LoweredIUProgram) -> list[int]:
    """Execute a lowered IU program, returning its address stream."""
    return IUMachine(program).run()
