"""The Warp machine: array + IU + host, orchestrated.

Cells run under the skewed computation model: cell ``i`` starts at cycle
``i * skew``.  Because compilable programs communicate strictly left to
right, the simulator executes the cells in order — each to completion —
which is *exactly* equivalent to lock-step execution (a cell's behaviour
depends only on its own deterministic schedule and the timestamps of the
items in its input queues) and lets queue underflow, bandwidth and
capacity violations be detected precisely.

The IU's address emissions propagate down the address path with a
one-cycle hop per cell; every cell sees the same address stream, delayed
by its position, and dequeues it in lock step with its own schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..errors import SilentCorruptionDetected, SimulationError
from ..lang.ast import Channel
from ..obs import get_telemetry
from ..obs.metrics import (
    IUMetrics,
    MachineMetrics,
    MachineRecorder,
    QueueMetrics,
    cell_metrics_from_counts,
)

if TYPE_CHECKING:  # pragma: no cover - avoid circular import at run time
    from ..compiler.driver import CompiledProgram
    from ..faults.injector import FaultInjector
    from ..faults.plan import InjectionPlan
from .cell import CellExecutor, CellStats, TraceEvent
from .host import HostMemory, collect_outputs, feed_input_queues
from .plan import ExecutionPlan
from .queue import TimedQueue


@dataclass
class SimulationResult:
    """Outputs and statistics of one run."""

    outputs: dict[str, np.ndarray]
    cell_stats: list[CellStats]
    total_cycles: int
    skew: int
    #: Peak occupancy per inter-cell queue, name -> words.
    queue_occupancy: dict[str, int]
    trace: list[TraceEvent] = field(default_factory=list)
    #: Cycle-level metrics: per-cell busy/stall/idle breakdown, per-queue
    #: high-water marks and residency, IU address-path statistics.
    machine_metrics: MachineMetrics | None = None
    #: Per-block execution spans (only when ``simulate(..., record=True)``;
    #: feeds the Chrome-trace exporter).
    record: MachineRecorder | None = None
    #: Descriptions of every fault injected into this run (empty for
    #: clean runs; filled from the active
    #: :class:`~repro.faults.FaultInjector`).
    fault_report: list[str] = field(default_factory=list)

    @property
    def throughput_denominator(self) -> int:
        return self.total_cycles

    def output(self, name: str, shape: tuple[int, ...] | None = None) -> np.ndarray:
        data = self.outputs[name]
        if shape:
            return data.reshape(shape)
        return data


class WarpMachine:
    """A configured Warp machine ready to run compiled programs.

    All state derived purely from the program (skip-idle block plans,
    the IU address schedule, the host I/O sequences) is computed once
    on first use and reused by every subsequent :meth:`run` — keep one
    machine around when streaming many input sets through the same
    program (see :class:`repro.exec.BatchRunner`).
    """

    def __init__(self, program: "CompiledProgram"):
        self._program = program
        self._config = program.config
        self._plan: ExecutionPlan | None = None

    @property
    def plan(self) -> ExecutionPlan:
        """The reusable static simulation state (built lazily)."""
        if self._plan is None:
            self._plan = ExecutionPlan(self._program)
        return self._plan

    def run(
        self,
        inputs: dict[str, np.ndarray],
        trace_limit: int = 0,
        record: bool = False,
        faults: "InjectionPlan | FaultInjector | None" = None,
    ) -> SimulationResult:
        program = self._program
        plan = self.plan
        n_cells = program.n_cells
        skew = program.skew.skew
        injector = _injector_of(faults)
        memory = HostMemory.from_inputs(program.ir.host_arrays, inputs)

        # Inter-cell data queues; index i connects cell i-1 -> cell i
        # (index 0 is the host boundary, index n_cells the collector).
        # Clean runs build plain TimedQueues; an active injector swaps
        # in integrity-checked FaultyQueues (and may shrink capacities).
        links: list[dict[Channel, TimedQueue]] = []
        for i in range(n_cells + 1):
            link: dict[Channel, TimedQueue] = {}
            for channel in (Channel.X, Channel.Y):
                capacity = None if i == 0 else self._config.queue_depth
                if injector is not None:
                    capacity = injector.link_capacity(
                        i, channel.value, capacity
                    )
                    from ..faults.injector import FaultyQueue

                    link[channel] = FaultyQueue(
                        injector=injector if i >= 1 else None,
                        name=f"link{i}.{channel.value}",
                        capacity=capacity,
                    )
                else:
                    link[channel] = TimedQueue(
                        name=f"link{i}.{channel.value}", capacity=capacity
                    )
            links.append(link)
        feed_input_queues(
            program.host_program, memory, links[0], sequences=plan.input_refs
        )

        # Address path: the same IU stream per cell, delayed by the hop
        # latency; emitted FIFO order is preserved.
        emissions = plan.emissions
        hop = self._config.address_hop_latency

        trace: list[TraceEvent] = []
        traced_per_cell: dict[int, int] = {}

        def tracer(event: TraceEvent) -> None:
            # Cells execute sequentially, so cap the budget per cell to
            # keep early events of *every* cell (Figure 4-2 needs the
            # first events of cells 0 and 1 side by side).
            count = traced_per_cell.get(event.cell, 0)
            if count < trace_limit:
                traced_per_cell[event.cell] = count + 1
                trace.append(event)

        stats: list[CellStats] = []
        occupancy: dict[str, int] = {}
        recorder = MachineRecorder() if record else None
        address_queues: list[TimedQueue] = []
        cell_cycles = program.cell_code.total_cycles
        watchdog_slack = getattr(self._config, "watchdog_slack", 64)
        end_time = 0
        for cell_index in range(n_cells):
            nominal_start = cell_index * skew
            start = nominal_start
            if injector is not None:
                start += injector.stall_cycles(cell_index)
            # Pre-materialised from the plan: the same IU stream for
            # every cell, shifted by the hop delay (emission times are
            # already non-decreasing, so no per-item enqueue checks).
            offset = cell_index * hop
            address_queue = TimedQueue(
                name=f"adr{cell_index}",
                capacity=self._config.address_queue_depth,
                send_times=[t + offset for t in plan.emission_times],
                values=list(plan.emission_values),
            )
            executor = CellExecutor(
                code=program.cell_code,
                config=self._config.cell,
                cell_index=cell_index,
                start_time=start,
                in_queues=links[cell_index],
                out_queues=links[cell_index + 1],
                address_queue=address_queue,
                trace=tracer if trace_limit else None,
                recorder=recorder,
                block_plans=plan.blocks,
                deadline=nominal_start + cell_cycles + watchdog_slack,
            )
            cell_stats = executor.run()
            stats.append(cell_stats)
            end_time = max(end_time, cell_stats.end_time)
            occupancy[address_queue.name] = address_queue.audit_capacity()
            address_queues.append(address_queue)

        # Stream accounting: schedules are data-independent, so every
        # inter-cell link must carry *exactly* the static per-run send
        # count — a dropped or duplicated send diverges here even when
        # it would never underflow (unconsumed pads are otherwise
        # legal).  The collector link is checked by collect_outputs
        # against the host program's binding count.
        for i in range(1, n_cells):
            for channel, queue in links[i].items():
                occupancy[queue.name] = queue.audit_capacity()
                expected = plan.sends_per_run[channel]
                if queue.items_sent != expected:
                    get_telemetry().counter("fault.detected")
                    raise SilentCorruptionDetected(
                        f"{queue.name}: stream accounting failed — cell "
                        f"{i - 1} sent {queue.items_sent} words but the "
                        f"static schedule sends exactly {expected} per run"
                    )
        if injector is not None:
            # Words the program never dequeued still get their parity
            # swept (the collector reads link n_cells values directly).
            from ..faults.injector import FaultyQueue

            for link in links[1:]:
                for queue in link.values():
                    if isinstance(queue, FaultyQueue):
                        queue.verify_integrity()

        collect_outputs(
            program.host_program,
            memory,
            links[n_cells],
            bindings=plan.output_bindings,
        )

        outputs = {
            name: memory.arrays[name].copy()
            for name in program.ir.host_arrays
        }
        metrics = self._build_metrics(
            stats, links, address_queues, occupancy, emissions, end_time, skew
        )
        return SimulationResult(
            outputs=outputs,
            cell_stats=stats,
            total_cycles=end_time,
            skew=skew,
            queue_occupancy=occupancy,
            trace=trace,
            machine_metrics=metrics,
            record=recorder,
            fault_report=injector.report() if injector is not None else [],
        )

    def _build_metrics(
        self,
        stats: list[CellStats],
        links: list[dict[Channel, TimedQueue]],
        address_queues: list[TimedQueue],
        occupancy: dict[str, int],
        emissions: list[tuple[int, int, int]],
        end_time: int,
        skew: int,
    ) -> MachineMetrics:
        """Assemble the cycle-level metrics of one finished run.

        Queues covered: the host boundary (``link0``), every audited
        inter-cell link, and the per-cell address queues.  The collector
        link is omitted — the host drains it outside cell time, so its
        occupancy is not a machine property.
        """
        n_cells = len(stats)
        queues: dict[str, QueueMetrics] = {}
        for i in range(n_cells):
            for queue in links[i].values():
                queues[queue.name] = queue.to_metrics(
                    high_water=occupancy.get(queue.name)
                )
        for queue in address_queues:
            queues[queue.name] = queue.to_metrics(
                high_water=occupancy.get(queue.name)
            )
        cells = []
        for cell_stats in stats:
            wait = sum(
                queue.total_wait_cycles()
                for queue in links[cell_stats.cell].values()
            )
            cells.append(
                cell_metrics_from_counts(
                    cell=cell_stats.cell,
                    start_cycle=cell_stats.start_time,
                    end_cycle=cell_stats.end_time,
                    total_cycles=end_time,
                    issue_cycles=cell_stats.issue_cycles,
                    alu_ops=cell_stats.alu_ops,
                    mpy_ops=cell_stats.mpy_ops,
                    mem_reads=cell_stats.mem_reads,
                    mem_writes=cell_stats.mem_writes,
                    receives=cell_stats.receives,
                    sends=cell_stats.sends,
                    receive_wait_cycles=wait,
                )
            )
        emit_times = [t for t, _deadline, _addr in emissions]
        iu = IUMetrics(
            addresses_emitted=len(emit_times),
            first_emit_cycle=min(emit_times) if emit_times else 0,
            last_emit_cycle=max(emit_times) if emit_times else 0,
        )
        return MachineMetrics(
            total_cycles=end_time,
            skew=skew,
            cells=cells,
            queues=queues,
            iu=iu,
        )


def _injector_of(faults) -> "FaultInjector | None":
    """Normalise ``faults=`` (plan, injector or None) lazily, keeping
    the clean path free of any faults-package import."""
    if faults is None:
        return None
    from ..faults.injector import FaultInjector

    return FaultInjector.of(faults)


def simulate(
    program: "CompiledProgram",
    inputs: dict[str, np.ndarray],
    trace_limit: int = 0,
    record: bool = False,
    faults: "InjectionPlan | FaultInjector | None" = None,
) -> SimulationResult:
    """Run a compiled program on the simulated Warp machine.

    ``record=True`` additionally collects per-block execution spans on
    every cell (``result.record``), which the Chrome-trace exporter
    turns into per-cell lanes.

    ``faults`` injects a deterministic :class:`~repro.faults.InjectionPlan`
    into the run (see ``docs/robustness.md``); every injected fault is
    either absorbed bit-identically or surfaces as a structured
    :class:`~repro.errors.SimulationError` — never a silent wrong
    answer."""
    return WarpMachine(program).run(
        inputs, trace_limit=trace_limit, record=record, faults=faults
    )
