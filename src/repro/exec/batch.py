"""Batched execution: one compiled program, many input sets.

The skewed computation model amortises a cell program's load/compile
cost over repeated invocations (Section 3); :class:`BatchRunner` is the
software analogue.  It keeps one :class:`~repro.machine.array.WarpMachine`
alive so the static simulation state — skip-idle block plans, the IU
address schedule, the host I/O sequences — is computed once and reused
for every item, and can optionally fan items out over a
``multiprocessing`` pool (each worker unpickles the program once and
then streams its share of the items).

Batched results are **bit-identical** to one-shot ``simulate`` calls,
item for item: the runner changes where static state lives, never what
the machine computes.  The differential tests lock this down.

Batches also *degrade gracefully*: an item that raises a
:class:`~repro.errors.SimulationError` (or whose worker crashes or
hangs) is retried up to ``max_retries`` times with exponential backoff,
and an item that still fails yields a structured :class:`ItemFailure`
record in ``BatchResult.failures`` — never a crashed batch, and never a
silently wrong answer.  ``item_timeout`` bounds each pool item's wall
time (a hung worker surfaces as
:class:`~repro.errors.ItemTimeoutError`).  ``faults`` threads a
deterministic :class:`~repro.faults.InjectionPlan` through every item
and worker — see ``docs/robustness.md``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import (
    FatalFault,
    ItemTimeoutError,
    SimulationError,
    TransientFault,
    WorkerCrashError,
)
from ..machine.array import SimulationResult, WarpMachine
from ..obs import get_telemetry

if TYPE_CHECKING:  # pragma: no cover - circular import at run time
    from ..compiler.driver import CompiledProgram
    from ..faults.plan import InjectionPlan

InputSet = dict[str, np.ndarray]

#: Backoff ceiling between retries, seconds.
_MAX_BACKOFF = 1.0


@dataclass(frozen=True)
class ItemFailure:
    """One batch item that could not be recovered.

    ``error_type`` is the exception class name (taxonomy:
    ``docs/robustness.md``); ``attempts`` counts every try including
    retries; ``fault_report`` lists the faults injected into the final
    attempt, when known.
    """

    index: int
    error_type: str
    message: str
    attempts: int
    fault_report: tuple[str, ...] = ()

    def describe(self) -> str:
        plural = "s" if self.attempts != 1 else ""
        return (
            f"item {self.index} failed after {self.attempts} attempt"
            f"{plural}: {self.error_type}: {self.message}"
        )


@dataclass
class BatchResult:
    """All per-item results of one batched run, plus aggregate stats.

    ``results`` is aligned with the input items; an unrecoverable item
    leaves ``None`` at its position and a matching :class:`ItemFailure`
    in ``failures`` (partial results are first-class: the other items
    are complete and bit-identical to one-shot runs).
    """

    results: list[SimulationResult | None]
    wall_seconds: float
    processes: int = 1
    #: True when the compile that produced the program was a cache hit
    #: (filled in by callers that know; purely informational).
    cache_event: str | None = None
    #: Structured records for items that failed every attempt.
    failures: list[ItemFailure] = field(default_factory=list)
    #: Total retries performed across the batch.
    retries: int = 0

    @property
    def n_items(self) -> int:
        return len(self.results)

    @property
    def n_failures(self) -> int:
        return len(self.failures)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def total_cycles(self) -> int:
        """Machine cycles summed over items (items run back to back)."""
        return sum(r.total_cycles for r in self.results if r is not None)

    @property
    def cycles_per_item(self) -> float:
        completed = sum(1 for r in self.results if r is not None)
        return self.total_cycles / max(completed, 1)

    @property
    def items_per_second(self) -> float:
        return self.n_items / max(self.wall_seconds, 1e-12)

    def _complete_results(self) -> list[SimulationResult]:
        if self.failures:
            raise ValueError(
                f"batch has {self.n_failures} failed item(s) "
                f"({', '.join(str(f.index) for f in self.failures)}); "
                "read BatchResult.failures / per-item results instead of "
                "the stacked outputs"
            )
        return [r for r in self.results if r is not None]

    def outputs(self, name: str) -> np.ndarray:
        """One output array across the batch, stacked on a leading
        item axis.  Raises if any item failed."""
        return np.stack(
            [result.outputs[name] for result in self._complete_results()]
        )

    def stacked_outputs(self) -> dict[str, np.ndarray]:
        results = self._complete_results()
        if not results:
            return {}
        return {name: self.outputs(name) for name in results[0].outputs}


# Worker-process state: each pool worker holds its own machine, built
# once from the pickled program shipped by the initializer, plus the
# (optional) injection plan shipped as JSON.
_worker_machine: WarpMachine | None = None
_worker_plan: "InjectionPlan | None" = None


def _init_worker(program_blob: bytes, plan_doc: dict | None = None) -> None:
    global _worker_machine, _worker_plan
    _worker_machine = WarpMachine(pickle.loads(program_blob))
    if plan_doc is not None:
        from ..faults.plan import InjectionPlan

        _worker_plan = InjectionPlan.from_json(plan_doc)
    else:
        _worker_plan = None


def _run_worker_item(task: tuple[int, int, InputSet]) -> SimulationResult:
    index, attempt, inputs = task
    assert _worker_machine is not None
    injector = None
    if _worker_plan is not None:
        from ..faults.injector import FaultInjector

        injector = FaultInjector(_worker_plan, item=index, attempt=attempt)
        spec = injector.worker_action()
        if spec is not None:
            from ..faults.plan import FaultKind

            if spec.kind is FaultKind.WORKER_KILL:
                os._exit(13)  # die without cleanup, like a real crash
            time.sleep(spec.seconds)  # hang; the driver's timeout reaps us
    return _worker_machine.run(inputs, faults=injector)


def _is_retryable(error: BaseException) -> bool:
    """Transient faults and generic simulation errors are worth a
    retry (an injected fault may be attempt-scoped, a worker may have
    died); fatal faults are not."""
    if isinstance(error, FatalFault):
        return False
    return isinstance(
        error, (TransientFault, SimulationError, multiprocessing.TimeoutError)
    )


class BatchRunner:
    """Stream many input sets through one compiled program.

    ``processes=0`` (the default) runs items sequentially on one reused
    machine.  ``processes=N`` with N > 1 fans items out over a pool of
    N workers; results still come back in item order.

    ``max_retries`` retries a failed item (transient faults, crashed or
    hung workers) with exponential backoff starting at
    ``retry_backoff`` seconds; ``item_timeout`` bounds each item's wall
    time in pool mode (in-process runs cannot be preempted, so the
    timeout applies to simulated hangs only).  Items that exhaust their
    retries become :class:`ItemFailure` records, never exceptions.
    """

    def __init__(
        self,
        program: "CompiledProgram",
        processes: int = 0,
        faults: "InjectionPlan | None" = None,
        max_retries: int = 0,
        item_timeout: float | None = None,
        retry_backoff: float = 0.05,
    ):
        if processes < 0:
            raise ValueError("processes must be >= 0")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if item_timeout is not None and item_timeout <= 0:
            raise ValueError("item_timeout must be positive")
        self._program = program
        self._machine = WarpMachine(program)
        self.processes = processes
        self.faults = faults
        self.max_retries = max_retries
        self.item_timeout = item_timeout
        self.retry_backoff = retry_backoff

    @property
    def program(self) -> "CompiledProgram":
        return self._program

    @property
    def machine(self) -> WarpMachine:
        return self._machine

    def run(self, input_sets: Sequence[InputSet]) -> BatchResult:
        """Run every input set; results are in input order."""
        started = time.perf_counter()
        retries = 0
        if self.processes > 1 and len(input_sets) > 1:
            results, failures, retries = self._run_pool(input_sets)
            used = self.processes
        else:
            results, failures, retries = self._run_serial(input_sets)
            used = 1
        wall = time.perf_counter() - started
        obs = get_telemetry()
        obs.counter("exec.batch.items", len(results))
        obs.counter(
            "exec.batch.cycles",
            sum(r.total_cycles for r in results if r is not None),
        )
        if failures:
            obs.counter("exec.batch.failures", len(failures))
        return BatchResult(
            results=results,
            wall_seconds=wall,
            processes=used,
            failures=failures,
            retries=retries,
        )

    def run_one(self, inputs: InputSet) -> SimulationResult:
        """One item on the reused machine (the batch fast path without
        the batch bookkeeping)."""
        return self._machine.run(inputs)

    # Serial path ---------------------------------------------------------

    def _make_injector(self, index: int, attempt: int):
        if self.faults is None:
            return None
        from ..faults.injector import FaultInjector

        return FaultInjector(self.faults, item=index, attempt=attempt)

    def _backoff(self, attempt: int) -> None:
        if self.retry_backoff > 0:
            time.sleep(min(self.retry_backoff * (2**attempt), _MAX_BACKOFF))

    def _run_serial(
        self, input_sets: Sequence[InputSet]
    ) -> tuple[list[SimulationResult | None], list[ItemFailure], int]:
        results: list[SimulationResult | None] = []
        failures: list[ItemFailure] = []
        retries = 0
        obs = get_telemetry()
        for index, inputs in enumerate(input_sets):
            attempt = 0
            while True:
                injector = self._make_injector(index, attempt)
                try:
                    if injector is not None:
                        self._simulate_worker_fault(injector)
                    results.append(
                        self._machine.run(inputs, faults=injector)
                    )
                    break
                except Exception as error:
                    if not isinstance(
                        error, (SimulationError, multiprocessing.TimeoutError)
                    ):
                        raise  # programming errors keep their traceback
                    if attempt < self.max_retries and _is_retryable(error):
                        attempt += 1
                        retries += 1
                        obs.counter("retry.count")
                        self._backoff(attempt)
                        continue
                    results.append(None)
                    failures.append(
                        ItemFailure(
                            index=index,
                            error_type=type(error).__name__,
                            message=str(error),
                            attempts=attempt + 1,
                            fault_report=tuple(
                                injector.report() if injector else ()
                            ),
                        )
                    )
                    break
        return results, failures, retries

    def _simulate_worker_fault(self, injector) -> None:
        """In-process stand-ins for worker kill/hang faults, so serial
        runs exercise the same plans deterministically."""
        from ..faults.plan import FaultKind

        spec = injector.worker_action()
        if spec is None:
            return
        if spec.kind is FaultKind.WORKER_KILL:
            raise WorkerCrashError(
                "worker process died running this item (simulated "
                "in-process: serial mode has no worker to kill)"
            )
        raise ItemTimeoutError(
            f"item exceeded its timeout (simulated in-process: the "
            f"injected hang of {spec.seconds}s is not slept serially)"
        )

    # Pool path -----------------------------------------------------------

    def _run_pool(
        self, input_sets: Sequence[InputSet]
    ) -> tuple[list[SimulationResult | None], list[ItemFailure], int]:
        blob = pickle.dumps(self._program, protocol=pickle.HIGHEST_PROTOCOL)
        plan_doc = self.faults.to_json() if self.faults is not None else None
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        results: list[SimulationResult | None] = [None] * len(input_sets)
        failures: list[ItemFailure] = []
        retries = 0
        obs = get_telemetry()
        with context.Pool(
            processes=self.processes,
            initializer=_init_worker,
            initargs=(blob, plan_doc),
        ) as pool:
            pending = {
                index: pool.apply_async(
                    _run_worker_item, ((index, 0, inputs),)
                )
                for index, inputs in enumerate(input_sets)
            }
            attempts = dict.fromkeys(pending, 0)
            for index, inputs in enumerate(input_sets):
                while True:
                    try:
                        results[index] = pending[index].get(
                            timeout=self.item_timeout
                        )
                        break
                    except Exception as raw:
                        error = self._classify_pool_error(raw)
                        if not isinstance(
                            error,
                            (SimulationError, multiprocessing.TimeoutError),
                        ):
                            raise
                        if attempts[index] < self.max_retries and _is_retryable(
                            error
                        ):
                            attempts[index] += 1
                            retries += 1
                            obs.counter("retry.count")
                            self._backoff(attempts[index])
                            pending[index] = pool.apply_async(
                                _run_worker_item,
                                ((index, attempts[index], inputs),),
                            )
                            continue
                        failures.append(
                            ItemFailure(
                                index=index,
                                error_type=type(error).__name__,
                                message=str(error),
                                attempts=attempts[index] + 1,
                            )
                        )
                        break
        return results, failures, retries

    def _classify_pool_error(self, raw: BaseException) -> BaseException:
        """Map raw pool failures onto the fault taxonomy."""
        if isinstance(raw, multiprocessing.TimeoutError):
            timeout = self.item_timeout
            return ItemTimeoutError(
                f"no result within the {timeout:.3g}s item timeout — the "
                "worker is hung, or was killed and its task lost"
            )
        return raw


def run_batch(
    program: "CompiledProgram",
    input_sets: Sequence[InputSet],
    processes: int = 0,
    **kwargs,
) -> BatchResult:
    """Convenience wrapper: one-off batched run of ``input_sets``
    (keyword arguments forward to :class:`BatchRunner`)."""
    return BatchRunner(program, processes=processes, **kwargs).run(input_sets)
