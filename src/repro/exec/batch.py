"""Batched execution: one compiled program, many input sets.

The skewed computation model amortises a cell program's load/compile
cost over repeated invocations (Section 3); :class:`BatchRunner` is the
software analogue.  It keeps one :class:`~repro.machine.array.WarpMachine`
alive so the static simulation state — skip-idle block plans, the IU
address schedule, the host I/O sequences — is computed once and reused
for every item, and can optionally fan items out over a
``multiprocessing`` pool (each worker unpickles the program once and
then streams its share of the items).

Batched results are **bit-identical** to one-shot ``simulate`` calls,
item for item: the runner changes where static state lives, never what
the machine computes.  The differential tests lock this down.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..machine.array import SimulationResult, WarpMachine
from ..obs import get_telemetry

if TYPE_CHECKING:  # pragma: no cover - circular import at run time
    from ..compiler.driver import CompiledProgram

InputSet = dict[str, np.ndarray]


@dataclass
class BatchResult:
    """All per-item results of one batched run, plus aggregate stats."""

    results: list[SimulationResult]
    wall_seconds: float
    processes: int = 1
    #: True when the compile that produced the program was a cache hit
    #: (filled in by callers that know; purely informational).
    cache_event: str | None = None

    @property
    def n_items(self) -> int:
        return len(self.results)

    @property
    def total_cycles(self) -> int:
        """Machine cycles summed over items (items run back to back)."""
        return sum(result.total_cycles for result in self.results)

    @property
    def cycles_per_item(self) -> float:
        return self.total_cycles / max(self.n_items, 1)

    @property
    def items_per_second(self) -> float:
        return self.n_items / max(self.wall_seconds, 1e-12)

    def outputs(self, name: str) -> np.ndarray:
        """One output array across the batch, stacked on a leading
        item axis."""
        return np.stack([result.outputs[name] for result in self.results])

    def stacked_outputs(self) -> dict[str, np.ndarray]:
        if not self.results:
            return {}
        return {name: self.outputs(name) for name in self.results[0].outputs}


# Worker-process state: each pool worker holds its own machine, built
# once from the pickled program shipped by the initializer.
_worker_machine: WarpMachine | None = None


def _init_worker(program_blob: bytes) -> None:
    global _worker_machine
    _worker_machine = WarpMachine(pickle.loads(program_blob))


def _run_worker_item(inputs: InputSet) -> SimulationResult:
    assert _worker_machine is not None
    return _worker_machine.run(inputs)


class BatchRunner:
    """Stream many input sets through one compiled program.

    ``processes=0`` (the default) runs items sequentially on one reused
    machine.  ``processes=N`` with N > 1 fans items out over a pool of
    N workers; results still come back in item order.
    """

    def __init__(self, program: "CompiledProgram", processes: int = 0):
        if processes < 0:
            raise ValueError("processes must be >= 0")
        self._program = program
        self._machine = WarpMachine(program)
        self.processes = processes

    @property
    def program(self) -> "CompiledProgram":
        return self._program

    @property
    def machine(self) -> WarpMachine:
        return self._machine

    def run(self, input_sets: Sequence[InputSet]) -> BatchResult:
        """Run every input set; results are in input order."""
        started = time.perf_counter()
        if self.processes > 1 and len(input_sets) > 1:
            results = self._run_pool(input_sets)
            used = self.processes
        else:
            results = [self._machine.run(inputs) for inputs in input_sets]
            used = 1
        wall = time.perf_counter() - started
        obs = get_telemetry()
        obs.counter("exec.batch.items", len(results))
        obs.counter(
            "exec.batch.cycles", sum(r.total_cycles for r in results)
        )
        return BatchResult(
            results=results, wall_seconds=wall, processes=used
        )

    def run_one(self, inputs: InputSet) -> SimulationResult:
        """One item on the reused machine (the batch fast path without
        the batch bookkeeping)."""
        return self._machine.run(inputs)

    def _run_pool(
        self, input_sets: Sequence[InputSet]
    ) -> list[SimulationResult]:
        blob = pickle.dumps(self._program, protocol=pickle.HIGHEST_PROTOCOL)
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        chunksize = max(1, len(input_sets) // (self.processes * 4))
        with context.Pool(
            processes=self.processes,
            initializer=_init_worker,
            initargs=(blob,),
        ) as pool:
            return pool.map(_run_worker_item, input_sets, chunksize=chunksize)


def run_batch(
    program: "CompiledProgram",
    input_sets: Sequence[InputSet],
    processes: int = 0,
) -> BatchResult:
    """Convenience wrapper: one-off batched run of ``input_sets``."""
    return BatchRunner(program, processes=processes).run(input_sets)
