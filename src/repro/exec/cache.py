"""The compile cache: in-memory LRU over an optional on-disk layer.

Lookup order is memory, then disk, then a real compile.  Disk entries
are versioned pickles written atomically (temp file + ``os.replace``);
*any* failure to read one — truncation, garbage bytes, a format-version
bump, a key mismatch from a hash-renamed file — counts as a miss and the
offending file is removed best-effort.  A corrupt cache can cost a
recompile, never a crash or a wrong program.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from ..config import DEFAULT_CONFIG, WarpConfig
from .keys import CACHE_KEY_VERSION, cache_key

if TYPE_CHECKING:  # pragma: no cover - import cycle at run time only
    from ..compiler.driver import CompiledProgram

#: Version of the on-disk pickle envelope (independent of the key
#: version: bumping it invalidates files without changing keys).
DISK_FORMAT_VERSION = 1

_ENTRY_SUFFIX = ".w2c"


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`CompileCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: Unreadable/invalid disk entries encountered (each one is a miss).
    disk_errors: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def to_json(self) -> dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "disk_errors": self.disk_errors,
        }


class CompileCache:
    """Content-addressed store of :class:`CompiledProgram` artefacts.

    ``capacity`` bounds the in-memory layer (LRU eviction); evicted
    entries survive on disk when ``cache_dir`` is set.  Instances are
    not thread-safe; per-process use is the intended shape (the batch
    runner's worker processes each compile at most once per program).
    """

    def __init__(
        self,
        capacity: int = 128,
        cache_dir: str | os.PathLike | None = None,
        injector=None,
    ):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self._capacity = capacity
        self._memory: OrderedDict[str, "CompiledProgram"] = OrderedDict()
        self._dir = Path(cache_dir) if cache_dir is not None else None
        #: Optional :class:`~repro.faults.FaultInjector` whose
        #: ``corrupt_blob`` hook flips bytes of disk reads (fault
        #: injection only; ``None`` in normal operation).
        self._injector = injector
        self.stats = CacheStats()
        #: How the most recent :meth:`get` resolved:
        #: ``"memory-hit" | "disk-hit" | "miss"`` (``None`` before any).
        self.last_event: str | None = None

    @property
    def cache_dir(self) -> Path | None:
        return self._dir

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        return key in self._memory or (
            self._dir is not None and self._path(key).exists()
        )

    # Lookup ------------------------------------------------------------------

    def get(self, key: str) -> "CompiledProgram | None":
        program = self._memory.get(key)
        if program is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            self.last_event = "memory-hit"
            return program
        program = self._load_disk(key)
        if program is not None:
            self._remember(key, program)
            self.stats.disk_hits += 1
            self.last_event = "disk-hit"
            return program
        self.stats.misses += 1
        self.last_event = "miss"
        return None

    def put(self, key: str, program: "CompiledProgram") -> None:
        self._remember(key, program)
        self.stats.stores += 1
        if self._dir is not None:
            self._store_disk(key, program)

    def clear(self, memory_only: bool = False) -> None:
        self._memory.clear()
        if memory_only or self._dir is None:
            return
        for path in self._dir.glob(f"*{_ENTRY_SUFFIX}"):
            try:
                path.unlink()
            except OSError:
                pass

    # Internals ---------------------------------------------------------------

    def _remember(self, key: str, program: "CompiledProgram") -> None:
        self._memory[key] = program
        self._memory.move_to_end(key)
        while len(self._memory) > self._capacity:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _path(self, key: str) -> Path:
        assert self._dir is not None
        return self._dir / f"{key}{_ENTRY_SUFFIX}"

    def _load_disk(self, key: str) -> "CompiledProgram | None":
        if self._dir is None:
            return None
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None  # plain absence: not an error
        if self._injector is not None:
            blob = self._injector.corrupt_blob(blob)
        try:
            envelope = pickle.loads(blob)
            if (
                not isinstance(envelope, dict)
                or envelope.get("format") != DISK_FORMAT_VERSION
                or envelope.get("key") != key
            ):
                raise ValueError("cache envelope mismatch")
            program = envelope["program"]
        except Exception:
            # Truncated, garbage, wrong version, unpicklable class, …:
            # silently recompile (and drop the bad file so it cannot
            # keep costing a read on every lookup).
            from ..obs import get_telemetry

            get_telemetry().counter("fault.detected")
            self.stats.disk_errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return program

    def _store_disk(self, key: str, program: "CompiledProgram") -> None:
        assert self._dir is not None
        try:
            self._dir.mkdir(parents=True, exist_ok=True)
            envelope = {
                "format": DISK_FORMAT_VERSION,
                "key": key,
                "program": program,
            }
            fd, tmp_name = tempfile.mkstemp(
                dir=self._dir, prefix=".tmp-", suffix=_ENTRY_SUFFIX
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            # A read-only or full cache directory degrades to
            # memory-only caching; it must never fail the compile.
            self.stats.disk_errors += 1


_default_cache: CompileCache | None = None


def default_cache() -> CompileCache:
    """The process-wide in-memory cache used when no explicit cache is
    passed (lazily created; memory-only)."""
    global _default_cache
    if _default_cache is None:
        _default_cache = CompileCache(capacity=64)
    return _default_cache


def compile_cached(
    source: str,
    config: WarpConfig = DEFAULT_CONFIG,
    skew_method: str = "auto",
    unroll: int | str = 1,
    local_opt: bool = True,
    cache: CompileCache | None = None,
) -> "CompiledProgram":
    """:func:`~repro.compiler.driver.compile_w2` through a cache
    (the process-wide default when ``cache`` is ``None``)."""
    from ..compiler.driver import compile_w2

    return compile_w2(
        source,
        config=config,
        skew_method=skew_method,
        unroll=unroll,
        local_opt=local_opt,
        cache=cache if cache is not None else default_cache(),
    )


__all__ = [
    "CacheStats",
    "CompileCache",
    "DISK_FORMAT_VERSION",
    "cache_key",
    "CACHE_KEY_VERSION",
    "compile_cached",
    "default_cache",
]
