"""Stable, content-addressed cache keys for compiled programs.

A key is the SHA-256 of a canonical JSON document covering everything
that determines the output of :func:`~repro.compiler.driver.compile_w2`:
the exact W2 source text, every field of the
:class:`~repro.config.WarpConfig` (recursively, so a one-field
perturbation of the cell or IU sub-config changes the key), the
optimisation flags, and a format version bumped whenever the
:class:`~repro.compiler.driver.CompiledProgram` layout changes
incompatibly.

The compiler is deterministic, so equal keys imply equal artefacts;
unequal inputs produce unequal keys up to SHA-256 collisions.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

from ..config import WarpConfig

#: Bump when CompiledProgram's pickled layout or compile semantics
#: change so stale disk entries from older builds are never reused.
CACHE_KEY_VERSION = 1


def config_fingerprint(config: WarpConfig) -> dict[str, Any]:
    """The machine configuration as a plain, JSON-able dict (recursive
    over the cell and IU sub-configs).

    The ``verify`` level is excluded: verification is a read-only pass
    over the finished artefacts, so it cannot change the compile output
    — and keeping it out leaves every pre-existing key byte-identical.
    """
    fingerprint = dataclasses.asdict(config)
    fingerprint.pop("verify", None)
    return fingerprint


def cache_key(
    source: str,
    config: WarpConfig,
    skew_method: str = "auto",
    unroll: int | str = 1,
    local_opt: bool = True,
    faults: Any = None,
) -> str:
    """The content hash identifying one compile of ``source``.

    ``faults`` (an :class:`~repro.faults.InjectionPlan`, or anything
    with a ``fingerprint()``) partitions the key space: artefacts
    produced under fault injection can never be served to — or poison —
    clean runs.  ``None`` (the clean case) leaves the payload, and
    therefore every pre-existing key, byte-identical.
    """
    document: dict[str, Any] = {
        "version": CACHE_KEY_VERSION,
        "source": source,
        "config": config_fingerprint(config),
        "skew_method": skew_method,
        "unroll": unroll,
        "local_opt": bool(local_opt),
    }
    if faults is not None:
        document["faults"] = faults.fingerprint()
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
