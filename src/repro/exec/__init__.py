"""``repro.exec`` — the compile-once / run-many execution engine.

The paper's performance model (Section 3) amortises the cost of loading
a cell program over many data sets streamed through the array; the
compiler is run once per program, the machine many times.  This package
gives the reproduction the same shape:

* :mod:`repro.exec.keys` — stable content-addressed cache keys over
  (W2 source, :class:`~repro.config.WarpConfig`, optimisation flags);
* :mod:`repro.exec.cache` — :class:`CompileCache`, an in-memory LRU with
  an optional versioned on-disk layer (a corrupt or truncated entry is
  a miss, never a crash), plus :func:`compile_cached`;
* :mod:`repro.exec.batch` — :class:`BatchRunner`, which streams many
  input sets through one :class:`~repro.compiler.driver.CompiledProgram`
  on a reused :class:`~repro.machine.array.WarpMachine` (preallocated
  execution plan, shared address schedule), optionally fanning items
  out over a ``multiprocessing`` pool — with retry-with-backoff,
  per-item timeouts and structured :class:`ItemFailure` records so a
  failing item degrades the batch instead of crashing it.
"""

from .batch import BatchResult, BatchRunner, ItemFailure, run_batch
from .cache import CacheStats, CompileCache, compile_cached, default_cache
from .keys import CACHE_KEY_VERSION, cache_key, config_fingerprint

__all__ = [
    "BatchResult",
    "BatchRunner",
    "ItemFailure",
    "CACHE_KEY_VERSION",
    "CacheStats",
    "CompileCache",
    "cache_key",
    "compile_cached",
    "config_fingerprint",
    "default_cache",
    "run_batch",
]
