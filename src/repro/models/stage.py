"""Abstract stage model for comparing computation models (Section 3).

Figure 3-1 compares the SIMD and skewed computation models on an
abstract pipeline: every cell repeats a *stage* of ``n_steps`` steps,
and step ``dependency_step`` of a stage needs the result that the
previous cell's stage produced in its own step ``dependency_step``.

In the SIMD model all cells execute step ``s`` of iteration ``k``
simultaneously, so a cell can only consume its neighbour's iteration-k
result in iteration ``k+1``: the pipeline latency per cell is the whole
stage time.  In the skewed model the delay between neighbours is just
enough for the producing step to finish before the consuming step starts
— one cycle for the paper's example of a 4-step stage whose step 4 needs
the neighbour's step-4 result.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage executed repeatedly by every cell.

    ``produce_step``: the step (1-based) whose result is passed to the
    right neighbour.  ``consume_step``: the step that needs the left
    neighbour's produced value of the *same* iteration.  Figure 3-1 uses
    ``n_steps = 4`` and ``produce_step = consume_step = 4``.
    """

    n_steps: int
    produce_step: int
    consume_step: int

    def __post_init__(self) -> None:
        if not (1 <= self.produce_step <= self.n_steps):
            raise ValueError("produce_step out of range")
        if not (1 <= self.consume_step <= self.n_steps):
            raise ValueError("consume_step out of range")


def skewed_cell_latency(spec: StageSpec) -> int:
    """Latency added per cell in the skewed computation model.

    Cell ``i+1`` must be delayed so that its ``consume_step`` of
    iteration ``k`` starts after cell ``i``'s ``produce_step`` of
    iteration ``k`` finishes:

        skew >= produce_step - consume_step + 1

    and at least the data-transfer cycle when the producer is not ahead.
    """
    return max(1, spec.produce_step - spec.consume_step + 1)


def simd_cell_latency(spec: StageSpec) -> int:
    """Latency added per cell in the SIMD model.

    All cells run the same step in the same cycle, so iteration-``k``
    results of the left neighbour are only consumable in iteration
    ``k+1``: each cell adds a full stage time when the consuming step
    does not strictly follow the producing one.
    """
    if spec.consume_step > spec.produce_step:
        return 0  # consumable within the same iteration, no added latency
    return spec.n_steps


@dataclass(frozen=True)
class ModelComparison:
    """Latency of an ``n_cells``-deep pipeline under both models."""

    spec: StageSpec
    n_cells: int
    n_iterations: int
    simd_latency_per_cell: int
    skewed_latency_per_cell: int
    simd_total: int
    skewed_total: int

    @property
    def latency_ratio(self) -> float:
        return self.simd_latency_per_cell / self.skewed_latency_per_cell


def compare_models(
    spec: StageSpec, n_cells: int, n_iterations: int
) -> ModelComparison:
    """Total time until the last cell finishes iteration ``n_iterations``
    under each model (both models retire one iteration per stage time
    once full; only the fill latency differs)."""
    stage = spec.n_steps
    simd_per_cell = simd_cell_latency(spec)
    skewed_per_cell = skewed_cell_latency(spec)
    simd_total = simd_per_cell * (n_cells - 1) + stage * n_iterations
    skewed_total = skewed_per_cell * (n_cells - 1) + stage * n_iterations
    return ModelComparison(
        spec=spec,
        n_cells=n_cells,
        n_iterations=n_iterations,
        simd_latency_per_cell=simd_per_cell,
        skewed_latency_per_cell=skewed_per_cell,
        simd_total=simd_total,
        skewed_total=skewed_total,
    )


def figure_3_1_comparison(n_cells: int = 3, n_iterations: int = 3) -> ModelComparison:
    """The paper's example: 4-step stages, step 4 feeding step 4.

    "The latency through each cell is 4 cycles in the SIMD model, but
    only one cycle in the skewed model."
    """
    return compare_models(
        StageSpec(n_steps=4, produce_step=4, consume_step=4),
        n_cells=n_cells,
        n_iterations=n_iterations,
    )
