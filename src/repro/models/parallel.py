"""Parallel-mode comparison of the SIMD and skewed models (Section 3).

"In the SIMD model computation cannot start until all the data are ready
for all the cells.  In the skewed model, we can initiate the computation
in each cell as soon as its input demand is satisfied, thus reducing the
latency of the computation."

Data is loaded through the array (one word per cycle at the boundary),
so cell ``i``'s partition of ``items_per_cell`` words is complete at
time ``(i + 1) * items_per_cell``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ParallelModeComparison:
    n_cells: int
    items_per_cell: int
    compute_cycles: int
    #: Cycle at which each cell starts computing, per model.
    simd_starts: tuple[int, ...]
    skewed_starts: tuple[int, ...]

    @property
    def simd_first_result(self) -> int:
        return self.simd_starts[0] + self.compute_cycles

    @property
    def skewed_first_result(self) -> int:
        return self.skewed_starts[0] + self.compute_cycles

    @property
    def first_result_speedup(self) -> float:
        return self.simd_first_result / self.skewed_first_result


def compare_parallel_mode(
    n_cells: int, items_per_cell: int, compute_cycles: int
) -> ParallelModeComparison:
    """Start/first-result times when partitioned data streams through the
    array to its owning cell."""
    load_done = [(i + 1) * items_per_cell for i in range(n_cells)]
    simd_start = max(load_done)
    return ParallelModeComparison(
        n_cells=n_cells,
        items_per_cell=items_per_cell,
        compute_cycles=compute_cycles,
        simd_starts=tuple(simd_start for _ in range(n_cells)),
        skewed_starts=tuple(load_done),
    )
