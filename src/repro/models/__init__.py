"""Abstract computation models for systolic arrays (Section 3)."""

from .parallel import ParallelModeComparison, compare_parallel_mode
from .stage import (
    ModelComparison,
    StageSpec,
    compare_models,
    figure_3_1_comparison,
    simd_cell_latency,
    skewed_cell_latency,
)

__all__ = [
    "ModelComparison",
    "ParallelModeComparison",
    "StageSpec",
    "compare_models",
    "compare_parallel_mode",
    "figure_3_1_comparison",
    "simd_cell_latency",
    "skewed_cell_latency",
]
