"""The W2 sample programs evaluated in the paper (Table 7-1), plus extras.

Each function returns W2 source text, parameterised where the paper's
sizes would make cycle-level simulation slow (e.g. image dimensions); the
defaults are the paper's sizes.  The five Table 7-1 programs:

* :func:`polynomial` — Figure 4-1: Horner's-rule polynomial evaluation,
  one coefficient per cell;
* :func:`conv1d` — 1-dimensional convolution, one kernel element per cell;
* :func:`binop` — an elementwise binary operator over an image;
* :func:`colorseg` — colour segmentation by per-pixel classification;
* :func:`mandelbrot` — fixed-iteration Mandelbrot on one cell.

Extras used by examples and tests: :func:`matmul`, :func:`passthrough`,
and the bidirectional programs of Figure 5-1.
"""

from .sources import (
    binop,
    bidirectional_cycle,
    bidirectional_exchange,
    colorseg,
    conv1d,
    conv2d,
    fir_bank,
    mandelbrot,
    matmul,
    passthrough,
    polynomial,
    TABLE_7_1_PROGRAMS,
)

__all__ = [
    "TABLE_7_1_PROGRAMS",
    "bidirectional_cycle",
    "bidirectional_exchange",
    "binop",
    "colorseg",
    "conv1d",
    "conv2d",
    "fir_bank",
    "mandelbrot",
    "matmul",
    "passthrough",
    "polynomial",
]
