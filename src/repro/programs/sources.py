"""W2 source generators for the paper's evaluation programs.

The five programs of Table 7-1 are reconstructed from their one-line
descriptions in Section 7 plus the systolic-algorithm conventions the
paper cites (Kung, "Systolic Algorithms for the CMU Warp Processor").
All of them are *homogeneous* (every cell runs the same code) and use the
send/receive conservation idiom demonstrated in Figure 4-1: every cell
consumes and produces the same number of items per phase, padding with an
extra item at the end where necessary.

Sizes are parameters with the paper's values as defaults; cycle-level
simulation tests use smaller instances.
"""

from __future__ import annotations


def polynomial(n_points: int = 100, n_cells: int = 10) -> str:
    """Figure 4-1: Horner's-rule evaluation of a polynomial.

    One coefficient per cell; ``n_cells`` is also the number of
    coefficients.  Evaluates ``P(z) = c[0]*z^(K-1) + ... + c[K-1]`` for
    ``n_points`` input values.
    """
    k = n_cells
    return f"""
/* Polynomial evaluation (Figure 4-1 of the paper).             */
/* A polynomial with {k} coefficients is evaluated for          */
/* {n_points} data points on {k} cells.                         */
module polynomial (z in, c in, results out)
float z[{n_points}], c[{k}];
float results[{n_points}];
cellprogram (cid : 0 : {k - 1})
begin
    function poly
    begin
        float coeff,        /* local copy of c[cid] */
              temp,
              xin, yin, ans;  /* temporaries */
        int i;

        /* Every cell saves the first coefficient that reaches it,
           consumes the data and passes the remaining coefficients.
           Every cell generates an additional item at the end to
           conserve the number of receives and sends. */
        receive (L, X, coeff, c[0]);
        for i := 1 to {k - 1} do begin
            receive (L, X, temp, c[i]);
            send (R, X, temp);
        end;
        send (R, X, 0.0);

        /* Implementing Horner's rule, each cell multiplies the
           accumulated result yin with incoming data xin and adds the
           next coefficient. */
        for i := 0 to {n_points - 1} do begin
            receive (L, X, xin, z[i]);
            receive (L, Y, yin, 0.0);
            send (R, X, xin);
            ans := coeff + yin*xin;
            send (R, Y, ans, results[i]);
        end;
    end
    call poly;
end
"""


def conv1d(n_points: int = 512, kernel_size: int = 9) -> str:
    """Table 7-1 "1d-Conv": 1-dimensional convolution, one kernel element
    per cell (after Kung's systolic design, the paper's reference [5]).

    The x stream is delayed by one position per cell (the ``xold``
    register) while partial sums flow undelayed, so cell ``k`` adds
    ``w[k] * x[i-k]`` and the last cell emits the full convolution
    ``y[i] = sum_j w[j] * x[i-j]`` (valid from ``i = kernel_size - 1``;
    the leading ``kernel_size - 1`` outputs are the zero-padded ramp-up).
    Every cell receives and sends exactly one item per channel per
    iteration, so the counts conserve without padding tricks.
    """
    k = kernel_size
    return f"""
/* Simple 1-dimensional convolution for a kernel of size {k},    */
/* one kernel element per cell.                                  */
module conv1d (x in, w in, y out)
float x[{n_points}], w[{k}];
float y[{n_points}];
cellprogram (cid : 0 : {k - 1})
begin
    function conv
    begin
        float weight, temp, xin, xold, yin, ans;
        int i;

        /* Distribute one kernel element to each cell. */
        receive (L, X, weight, w[0]);
        for i := 1 to {k - 1} do begin
            receive (L, X, temp, w[i]);
            send (R, X, temp);
        end;
        send (R, X, 0.0);

        /* Partial sums move one cell per item; x moves at half speed
           (one item of delay per cell via the xold register). */
        xold := 0.0;
        for i := 0 to {n_points - 1} do begin
            receive (L, X, xin, x[i]);
            receive (L, Y, yin, 0.0);
            ans := yin + weight*xin;
            send (R, X, xold);
            send (R, Y, ans, y[i]);
            xold := xin;
        end;
    end
    call conv;
end
"""


def binop(
    width: int = 512, height: int = 512, n_cells: int = 10, op: str = "+"
) -> str:
    """Table 7-1 "Binop": an elementwise binary operator over an image.

    Parallel mode: pixels are dealt round-robin to the cells in groups of
    ``n_cells``; each cell computes one result per group and the results
    are collected through the array.  Host arrays are padded up to a
    multiple of the array size (the feeder pads with zeros).
    """
    if op not in ("+", "-", "*"):
        raise ValueError(f"unsupported binop operator: {op!r}")
    total = width * height
    groups = -(-total // n_cells)  # ceil division
    padded = groups * n_cells
    c = n_cells
    return f"""
/* Binary operator on an image with {width}x{height} elements,   */
/* dealt round-robin to {c} cells ({groups} groups; host arrays  */
/* are padded to {padded} elements).                              */
module binop (a in, b in, c out)
float a[{padded}], b[{padded}];
float c[{padded}];
cellprogram (cid : 0 : {c - 1})
begin
    function apply
    begin
        float av, bv, t1, t2, r;
        int g, j;

        for g := 0 to {groups - 1} do begin
            /* Deal one operand pair to every cell: keep the first pair,
               forward the rest, and pad to conserve send/receive counts. */
            receive (L, X, av, a[{c}*g]);
            receive (L, Y, bv, b[{c}*g]);
            for j := 1 to {c - 1} do begin
                receive (L, X, t1, a[{c}*g + j]);
                receive (L, Y, t2, b[{c}*g + j]);
                send (R, X, t1);
                send (R, Y, t2);
            end;
            send (R, X, 0.0);
            send (R, Y, 0.0);

            r := av {op} bv;

            /* Collect: emit own result, then forward the results of the
               cells to the left; the last cell emits the group in
               descending pixel order. */
            send (R, X, r, c[{c}*g + {c - 1}]);
            for j := 1 to {c - 1} do begin
                receive (L, X, t1, 0.0);
                send (R, X, t1, c[{c}*g + {c - 1} - j]);
            end;
            receive (L, X, t1, 0.0);
        end;
    end
    call apply;
end
"""


def colorseg(width: int = 512, height: int = 512, n_cells: int = 10) -> str:
    """Table 7-1 "ColorSeg": colour separation based on colour values.

    Pipeline mode: each cell holds one reference colour (a point in a 2-D
    colour plane plus a squared-distance threshold and a class label) and
    classifies every pixel that streams by, overriding the running label
    when the pixel is within its threshold.  Later cells take precedence.
    """
    c = n_cells
    pixels = width * height
    return f"""
/* Colour separation in a {width}x{height} image based on colour  */
/* values: a cascade of {c} reference-colour classifiers.          */
module colorseg (u in, v in, refu in, refv in, radius in, class in,
                 labels out)
float u[{pixels}], v[{pixels}];
float refu[{c}], refv[{c}], radius[{c}], class[{c}];
float labels[{pixels}];
cellprogram (cid : 0 : {c - 1})
begin
    function segment
    begin
        float cu, cv, r2, cls, temp;
        float pu, pv, lab, du, dv, dist, newlab;
        int i, p;

        /* Distribute the per-cell classifier parameters. */
        receive (L, X, cu, refu[0]);
        for i := 1 to {c - 1} do begin
            receive (L, X, temp, refu[i]);
            send (R, X, temp);
        end;
        send (R, X, 0.0);

        receive (L, X, cv, refv[0]);
        for i := 1 to {c - 1} do begin
            receive (L, X, temp, refv[i]);
            send (R, X, temp);
        end;
        send (R, X, 0.0);

        receive (L, X, r2, radius[0]);
        for i := 1 to {c - 1} do begin
            receive (L, X, temp, radius[i]);
            send (R, X, temp);
        end;
        send (R, X, 0.0);

        receive (L, X, cls, class[0]);
        for i := 1 to {c - 1} do begin
            receive (L, X, temp, class[i]);
            send (R, X, temp);
        end;
        send (R, X, 0.0);

        /* Classify every pixel against this cell's reference colour. */
        for p := 0 to {pixels - 1} do begin
            receive (L, X, pu, u[p]);
            receive (L, Y, pv, v[p]);
            receive (L, X, lab, 0.0);
            du := pu - cu;
            dv := pv - cv;
            dist := du*du + dv*dv;
            if dist <= r2 then
                newlab := cls;
            else
                newlab := lab;
            send (R, X, pu);
            send (R, Y, pv);
            send (R, X, newlab, labels[p]);
        end;
    end
    call segment;
end
"""


def mandelbrot(width: int = 32, height: int = 32, n_iters: int = 4) -> str:
    """Table 7-1 "Mandelbrot": fixed-iteration Mandelbrot on one cell.

    For every point c = (cx, cy) the cell iterates ``z := z^2 + c`` a
    fixed ``n_iters`` times and outputs the number of iterations for
    which ``|z|^2`` stayed within 4.0 (a float in ``0 .. n_iters``).
    """
    pixels = width * height
    return f"""
/* Mandelbrot for a {width}x{height} image and {n_iters} iterations */
/* on one cell.                                                      */
module mandelbrot (cx in, cy in, counts out)
float cx[{pixels}], cy[{pixels}];
float counts[{pixels}];
cellprogram (cid : 0 : 0)
begin
    function mandel
    begin
        float ax, ay, zr, zi, zr2, zi2, mag, cnt, nzr;
        int p, it;

        for p := 0 to {pixels - 1} do begin
            receive (L, X, ax, cx[p]);
            receive (L, Y, ay, cy[p]);
            zr := 0.0;
            zi := 0.0;
            cnt := 0.0;
            for it := 1 to {n_iters} do begin
                zr2 := zr*zr;
                zi2 := zi*zi;
                mag := zr2 + zi2;
                nzr := zr2 - zi2 + ax;
                zi := 2.0*zr*zi + ay;
                zr := nzr;
                if mag <= 4.0 then
                    cnt := cnt + 1.0;
            end;
            send (R, X, cnt, counts[p]);
        end;
    end
    call mandel;
end
"""


def matmul(n: int = 64, n_cells: int = 8) -> str:
    """Matrix multiplication ``C = A * B`` (Section 2.2's motivating
    mapping: each cell computes some columns of the result, holding the
    corresponding columns of B in its local memory).

    ``n`` must be divisible by ``n_cells``.
    """
    if n % n_cells != 0:
        raise ValueError("matrix size must be divisible by the cell count")
    c = n_cells
    cpc = n // n_cells  # columns per cell
    return f"""
/* Matrix multiplication C = A*B for {n}x{n} matrices on {c}     */
/* cells; each cell owns {cpc} columns of B and of C.            */
module matmul (a in, b in, c out)
float a[{n}, {n}], b[{n}, {n}];
float c[{n}, {n}];
cellprogram (cid : 0 : {c - 1})
begin
    function mm
    begin
        float bcol[{cpc * n}], arow[{n}], acc, t;
        int i, j, g, kk;

        /* Load phase: deal the columns of B round-robin; this cell
           keeps columns g*{c} + cid for every group g. */
        for g := 0 to {cpc - 1} do
            for i := 0 to {n - 1} do begin
                receive (L, X, t, b[i, {c}*g]);
                bcol[{n}*g + i] := t;
                for j := 1 to {c - 1} do begin
                    receive (L, X, t, b[i, {c}*g + j]);
                    send (R, X, t);
                end;
                send (R, X, 0.0);
            end;

        /* Compute phase: each row of A streams through every cell;
           each cell forms the dot products with its resident columns
           and the results are collected through the Y channel. */
        for i := 0 to {n - 1} do begin
            for kk := 0 to {n - 1} do begin
                receive (L, X, t, a[i, kk]);
                arow[kk] := t;
                send (R, X, t);
            end;
            for g := 0 to {cpc - 1} do begin
                acc := 0.0;
                for kk := 0 to {n - 1} do
                    acc := acc + arow[kk] * bcol[{n}*g + kk];
                send (R, Y, acc, c[i, {c}*g + {c - 1}]);
                for j := 1 to {c - 1} do begin
                    receive (L, Y, t, 0.0);
                    send (R, Y, t, c[i, {c}*g + {c - 1} - j]);
                end;
                receive (L, Y, t, 0.0);
            end;
        end;
    end
    call mm;
end
"""


def conv2d(width: int = 512, height: int = 512) -> str:
    """Two-dimensional 3x3 convolution — the application the paper's
    introduction headlines ("two-dimensional convolution ... at a peak
    rate of 100 million floating-point operations per second").

    One kernel *row* per cell (3 cells).  Each cell delays the pixel
    stream by exactly one image row through a ring buffer in its 4K-word
    local memory (the ``rowbuf`` accesses are the IU's address stream at
    two references per pixel), slides a 3-pixel window over its row, and
    accumulates into the partial-sum stream:

        y[r, c] = sum_{i,j} k[i, j] * x[r-i, c-2+j]

    with zero padding above/left (ring buffers and window registers
    start at zero).  The window registers carry across row boundaries,
    so the two left-most columns of each row mix in the previous row's
    tail — callers compare the ``c >= 2`` interior (see the tests).
    """
    w = width
    return f"""
/* 3x3 convolution of a {width}x{height} image, one kernel row per    */
/* cell; each cell delays the stream one row via a ring buffer.       */
module conv2d (x in, k in, y out)
float x[{height}, {width}], k[3, 3];
float y[{height}, {width}];
cellprogram (cid : 0 : 2)
begin
    function conv
    begin
        float w0, w1, w2, temp, xin, x1, x2, yin, acc, old;
        float rowbuf[{w}];
        int i, r, c;

        /* Distribute one kernel row (three weights) to each cell. */
        receive (L, X, w0, k[0, 0]);
        for i := 1 to 2 do begin
            receive (L, X, temp, k[i, 0]);
            send (R, X, temp);
        end;
        send (R, X, 0.0);
        receive (L, X, w1, k[0, 1]);
        for i := 1 to 2 do begin
            receive (L, X, temp, k[i, 1]);
            send (R, X, temp);
        end;
        send (R, X, 0.0);
        receive (L, X, w2, k[0, 2]);
        for i := 1 to 2 do begin
            receive (L, X, temp, k[i, 2]);
            send (R, X, temp);
        end;
        send (R, X, 0.0);

        x1 := 0.0;
        x2 := 0.0;
        for r := 0 to {height - 1} do
            for c := 0 to {w - 1} do begin
                receive (L, X, xin, x[r, c]);
                receive (L, Y, yin, 0.0);
                acc := yin + w0*x2 + w1*x1 + w2*xin;
                old := rowbuf[c];
                rowbuf[c] := xin;
                send (R, X, old);
                send (R, Y, acc, y[r, c]);
                x2 := x1;
                x1 := xin;
            end;
    end
    call conv;
end
"""


def fir_bank(
    n_points: int = 256, n_filters: int = 10, n_taps: int = 8
) -> str:
    """A bank of FIR filters in *parallel mode* (Section 3): every cell
    owns one filter, the signal is broadcast through the array, and each
    sample's bank of outputs is collected through the Y channel.

    ``y[f, i] = sum_k taps[f, k] * x[i - k]`` (zero history).  Each cell
    keeps its taps and a sliding window in local memory, so both the tap
    distribution and the per-sample dot product run on IU-generated
    addresses.
    """
    c, t = n_filters, n_taps
    forward_taps = (
        f"""
            for j := 1 to {c - 1} do begin
                receive (L, X, t1, taps[j, k]);
                send (R, X, t1);
            end;"""
        if c > 1
        else ""
    )
    shift_window = (
        f"""
            for k := {t - 1} downto 1 do
                xbuf[k] := xbuf[k - 1];"""
        if t > 1
        else ""
    )
    forward_results = (
        f"""
            for j := 1 to {c - 1} do begin
                receive (L, Y, t1, 0.0);
                send (R, Y, t1, y[{c - 1} - j, i]);
            end;"""
        if c > 1
        else ""
    )
    return f"""
/* A bank of {c} FIR filters ({t} taps each) over a {n_points}-sample  */
/* signal; one filter per cell (parallel mode).                        */
module firbank (x in, taps in, y out)
float x[{n_points}], taps[{c}, {t}];
float y[{c}, {n_points}];
cellprogram (cid : 0 : {c - 1})
begin
    function bank
    begin
        float w[{t}], xbuf[{t}], t1, acc, xin;
        int i, j, k;

        /* Distribute tap k of every filter; this cell keeps its own. */
        for k := 0 to {t - 1} do begin
            receive (L, X, t1, taps[0, k]);
            w[k] := t1;{forward_taps}
            send (R, X, 0.0);
        end;

        for k := 0 to {t - 1} do
            xbuf[k] := 0.0;

        for i := 0 to {n_points - 1} do begin
            receive (L, X, xin, x[i]);
            send (R, X, xin);

            /* Slide the window and take the dot product. */{shift_window}
            xbuf[0] := xin;
            acc := 0.0;
            for k := 0 to {t - 1} do
                acc := acc + w[k]*xbuf[k];

            /* Collect this sample's bank of results. */
            send (R, Y, acc, y[{c - 1}, i]);{forward_results}
            receive (L, Y, t1, 0.0);
        end;
    end
    call bank;
end
"""


def passthrough(n_points: int = 16, n_cells: int = 3) -> str:
    """A minimal pipeline that forwards a stream unchanged.

    Useful as the smallest end-to-end test of compilation, skew analysis
    and simulation.
    """
    return f"""
module passthrough (din in, dout out)
float din[{n_points}];
float dout[{n_points}];
cellprogram (cid : 0 : {n_cells - 1})
begin
    float t;
    int i;
    for i := 0 to {n_points - 1} do begin
        receive (L, X, t, din[i]);
        send (R, X, t, dout[i]);
    end;
end
"""


def bidirectional_exchange(n_points: int = 8, n_cells: int = 4) -> str:
    """Figure 5-1 program A: bidirectional traffic with *unrelated* data,
    hence no communication cycle in either direction.

    Each cell forwards a constant to the left and an (unrelated)
    constant to the right.  The program is homogeneous and cycle-free,
    but still bidirectional, so the paper's compiler (and ours) rejects
    it; the communication-graph analysis classifies it as acyclic.
    """
    return f"""
module exchange (din in, dout out)
float din[{n_points}];
float dout[{n_points}];
cellprogram (cid : 0 : {n_cells - 1})
begin
    float t, u;
    int i;
    for i := 0 to {n_points - 1} do begin
        receive (L, X, t, din[i]);
        receive (R, Y, u, 0.0);
        send (R, X, 1.0, dout[i]);
        send (L, Y, 2.0);
    end;
end
"""


def bidirectional_cycle(n_points: int = 8, n_cells: int = 4) -> str:
    """Figure 5-1 program B: each cell sends on the data it receives, in
    both directions, creating both a right and a left communication
    cycle — unmappable onto the skewed computation model (Section 5.1.1).
    """
    return f"""
module bounce (din in, dout out)
float din[{n_points}];
float dout[{n_points}];
cellprogram (cid : 0 : {n_cells - 1})
begin
    float t, u;
    int i;
    for i := 0 to {n_points - 1} do begin
        receive (L, X, t, din[i]);
        send (R, X, t, dout[i]);
        receive (R, Y, u, 0.0);
        send (L, Y, u);
    end;
end
"""


#: The Table 7-1 evaluation set: name -> zero-argument source factory with
#: the paper's problem sizes.
TABLE_7_1_PROGRAMS = {
    "1d-Conv": conv1d,
    "Binop": binop,
    "ColorSeg": colorseg,
    "Mandelbrot": mandelbrot,
    "Polynomial": polynomial,
}
