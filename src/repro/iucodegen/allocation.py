"""Operand/register allocation strategies for IU address generation.

This is the trade-off of Table 6-5: which sub-expressions of the address
computations live in registers determines how many registers are needed,
how many additions must run per emitted address, and how many update
operations run per loop iteration.

Three canonical strategies, escalating in register economy:

* ``FULL_ADDRESS`` — one induction register per distinct address
  expression: zero arithmetic per emission, one update per varying loop
  variable (Table 6-5's last row generalised);
* ``SHARED_SIGNATURE`` — expressions that differ only in their constant
  term share one register; emission needs one add when the constant
  differs from the representative's (the ``a[i], b[i], j, j*N`` row);
* ``PER_PRODUCT`` — one register per distinct ``coefficient * variable``
  product; every emission sums its products and constant (the minimum-
  register ``i*N, j*N, j`` row).

The compiler (:mod:`repro.iucodegen.codegen`) walks this list until the
plan fits the IU's 16 registers, falling back to table memory when none
does (the paper's step 3a escape)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..lang.semantic import AffineIndex


class Strategy(enum.Enum):
    FULL_ADDRESS = "full-address"
    SHARED_SIGNATURE = "shared-signature"
    PER_PRODUCT = "per-product"


@dataclass(frozen=True)
class LoopInfo:
    """Static facts about one loop the expressions range over."""

    var: str
    start: int
    step: int
    trip: int


@dataclass
class AllocationPlan:
    """The outcome of one strategy over a set of address expressions."""

    strategy: Strategy
    #: Expressions in first-seen order.
    expressions: list[AffineIndex]
    #: Register slots: name -> the affine sub-expression the register holds.
    registers: dict[str, AffineIndex]
    #: Per expression: the register names and constant to add at emission
    #: (expression index -> (register names, extra constant)).
    compositions: dict[int, tuple[tuple[str, ...], int]]
    #: Adds needed when emitting each expression (index -> count).
    emission_adds: dict[int, int]
    #: Updates per iteration of each loop var: var -> list of
    #: (register name, delta) applied at the end of each iteration.
    updates: dict[str, list[tuple[str, int]]]
    #: Wrap adjustments applied when a loop *exits* (register, delta);
    #: folded into the enclosing boundary by the code generator.
    exit_updates: dict[str, list[tuple[str, int]]]
    #: Scratch registers needed to compose addresses at emission time.
    scratch_registers: int

    @property
    def n_registers(self) -> int:
        return len(self.registers) + self.scratch_registers

    @property
    def total_emission_adds(self) -> int:
        return sum(self.emission_adds.values())

    @property
    def updates_per_innermost_iteration(self) -> int:
        """Update operations in the innermost loop (the Table 6-5
        "update operations" column, for a 2-deep ``i``/``j`` nest this is
        the ``j`` updates)."""
        if not self.updates:
            return 0
        # The innermost loop is the one declared last.
        last_var = list(self.updates)[-1]
        return len(self.updates[last_var])


def _register_sub_expression(
    expr: AffineIndex, keep_vars: tuple[str, ...]
) -> AffineIndex:
    coeffs = tuple(
        (var, coeff) for var, coeff in expr.coefficients if var in keep_vars
    )
    return AffineIndex(expr.constant, coeffs)


def _build_updates(
    registers: dict[str, AffineIndex], loops: list[LoopInfo]
) -> tuple[dict[str, list[tuple[str, int]]], dict[str, list[tuple[str, int]]]]:
    updates: dict[str, list[tuple[str, int]]] = {}
    exit_updates: dict[str, list[tuple[str, int]]] = {}
    for loop in loops:
        iter_list: list[tuple[str, int]] = []
        exit_list: list[tuple[str, int]] = []
        for name, sub in registers.items():
            coeff = sub.coefficient(loop.var)
            if coeff:
                iter_list.append((name, coeff * loop.step))
                exit_list.append((name, -coeff * loop.step * loop.trip))
        if iter_list:
            updates[loop.var] = iter_list
            exit_updates[loop.var] = exit_list
    return updates, exit_updates


def plan_allocation(
    expressions: list[AffineIndex],
    loops: list[LoopInfo],
    strategy: Strategy,
) -> AllocationPlan:
    """Build the register/update/emission plan for ``strategy``."""
    if strategy is Strategy.FULL_ADDRESS:
        registers = {f"e{i}": expr for i, expr in enumerate(expressions)}
        compositions = {
            i: ((f"e{i}",), 0) for i in range(len(expressions))
        }
        emission_adds = {i: 0 for i in range(len(expressions))}
        scratch = 0
    elif strategy is Strategy.SHARED_SIGNATURE:
        groups: dict[tuple, tuple[str, AffineIndex]] = {}
        registers = {}
        compositions = {}
        emission_adds = {}
        for i, expr in enumerate(expressions):
            signature = expr.coefficients
            if signature not in groups:
                name = f"g{len(groups)}"
                groups[signature] = (name, expr)
                registers[name] = expr
            name, representative = groups[signature]
            delta = expr.constant - representative.constant
            compositions[i] = ((name,), delta)
            emission_adds[i] = 1 if delta else 0
        scratch = 1 if any(emission_adds.values()) else 0
    elif strategy is Strategy.PER_PRODUCT:
        products: dict[tuple[str, int], str] = {}
        registers = {}
        compositions = {}
        emission_adds = {}
        for i, expr in enumerate(expressions):
            names = []
            for var, coeff in expr.coefficients:
                key = (var, coeff)
                if key not in products:
                    name = f"p{len(products)}"
                    products[key] = name
                    registers[name] = AffineIndex(0, ((var, coeff),))
                names.append(products[key])
            compositions[i] = (tuple(names), expr.constant)
            # Summing k registers takes k-1 adds, plus one more to fold a
            # non-zero constant (zero-register sums are pure constants —
            # those never reach the IU).
            adds = max(0, len(names) - 1)
            if expr.constant:
                adds += 1
            emission_adds[i] = adds
        scratch = 1 if any(emission_adds.values()) else 0
    else:  # pragma: no cover
        raise ValueError(strategy)
    updates, exit_updates = _build_updates(registers, loops)
    return AllocationPlan(
        strategy=strategy,
        expressions=list(expressions),
        registers=registers,
        compositions=compositions,
        emission_adds=emission_adds,
        updates=updates,
        exit_updates=exit_updates,
        scratch_registers=scratch,
    )


def enumerate_allocation_options(
    expressions: list[AffineIndex], loops: list[LoopInfo]
) -> list[AllocationPlan]:
    """All strategies, cheapest-arithmetic first — the rows of a
    Table 6-5-style trade-off table for the given address expressions."""
    return [
        plan_allocation(expressions, loops, strategy)
        for strategy in (
            Strategy.FULL_ADDRESS,
            Strategy.SHARED_SIGNATURE,
            Strategy.PER_PRODUCT,
        )
    ]
