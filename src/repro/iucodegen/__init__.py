"""Interface-unit code generation: strength-reduced address generation,
deadline scheduling, table-memory fallback and loop signals (Section 6.3)."""

from .allocation import (
    AllocationPlan,
    LoopInfo,
    Strategy,
    enumerate_allocation_options,
    plan_allocation,
)
from .codegen import (
    IUBlock,
    IUEmission,
    IULoop,
    IUProgram,
    generate_iu_code,
)
from .isa import IUOp, IUOpKind, IUReg
from .lower import (
    LoweredBlock,
    LoweredIUProgram,
    LoweredLoop,
    lower_iu_program,
)

__all__ = [
    "AllocationPlan",
    "IUBlock",
    "IUEmission",
    "IULoop",
    "IUOp",
    "IUOpKind",
    "IUProgram",
    "IUReg",
    "LoweredBlock",
    "LoweredIUProgram",
    "LoweredLoop",
    "LoopInfo",
    "Strategy",
    "enumerate_allocation_options",
    "generate_iu_code",
    "lower_iu_program",
    "plan_allocation",
]
