"""Lowering the IU plan to concrete register-machine instructions.

:mod:`repro.iucodegen.codegen` plans *what* the IU computes (induction
registers, updates, emission cycles, table residency); this module makes
that plan executable on the IU's actual instruction set
(:mod:`repro.iucodegen.isa`): 16 physical registers, add/subtract only,
a sequential table memory, and loop counters.

The lowered program is what :class:`repro.machine.iu_machine.IUMachine`
executes; a test asserts its address stream is identical to the plan's
direct affine evaluation, closing the loop on strength reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..errors import IUDeadlineError
from .codegen import IUBlock, IULoop, IUProgram
from .isa import IUOp, IUOpKind, IUReg


@dataclass
class LoweredBlock:
    """Straight-line IU code aligned with one cell block window."""

    block_id: int
    length: int
    ops: list[IUOp] = field(default_factory=list)


@dataclass
class LoweredLoop:
    loop_id: int
    trip: int
    #: Ops executed at the end of every iteration (register updates and
    #: the counter test).
    boundary_ops: list[IUOp] = field(default_factory=list)
    #: Ops executed once when the loop exits (wrap adjustments).
    exit_ops: list[IUOp] = field(default_factory=list)
    body: list["LoweredItem"] = field(default_factory=list)
    unrolled_tail: int = 0


LoweredItem = Union[LoweredBlock, LoweredLoop]


@dataclass
class LoweredIUProgram:
    """Executable IU code: a prologue plus the block/loop tree."""

    prologue: list[IUOp]
    items: list[LoweredItem]
    #: Pre-computed table memory contents, in the sequential order the
    #: EMIT_TABLE instructions consume them.
    table: list[int]
    register_names: dict[str, IUReg]
    scratch: list[IUReg]

    @property
    def n_static_ops(self) -> int:
        total = len(self.prologue)

        def count(items: list[LoweredItem]) -> int:
            subtotal = 0
            for item in items:
                if isinstance(item, LoweredBlock):
                    subtotal += len(item.ops)
                else:
                    body = count(item.body)
                    subtotal += (
                        body
                        + len(item.boundary_ops)
                        + len(item.exit_ops)
                        + item.unrolled_tail * body
                    )
            return subtotal

        return total + count(self.items)


class IULowerer:
    def __init__(self, program: IUProgram, n_registers: int = 16):
        self._program = program
        self._plan = program.plan
        self._n_registers = n_registers
        self._registers: dict[str, IUReg] = {}
        self._scratch: list[IUReg] = []

    def lower(self) -> LoweredIUProgram:
        self._assign_registers()
        prologue = self._build_prologue()
        items = [self._lower_item(item) for item in self._program.items]
        table = self._build_table()
        return LoweredIUProgram(
            prologue=prologue,
            items=items,
            table=table,
            register_names=dict(self._registers),
            scratch=list(self._scratch),
        )

    # Registers ------------------------------------------------------------

    def _assign_registers(self) -> None:
        next_index = 0
        live_names = set(self._plan.registers)
        # Table-resident expressions need no register; exclude registers
        # used only by them.
        needed: set[str] = set()
        for index, _expr in enumerate(self._plan.expressions):
            if index in self._program.table_expressions:
                continue
            names, _const = self._plan.compositions[index]
            needed.update(names)
        for name in self._plan.registers:
            if name not in needed and name in live_names:
                continue
            self._registers[name] = IUReg(next_index)
            next_index += 1
        # Scratch is only needed when a non-table emission composes its
        # address from several registers or adds a constant.
        scratch_needed = any(
            len(self._plan.compositions[i][0]) > 1
            or self._plan.compositions[i][1] != 0
            for i in range(len(self._plan.expressions))
            if i not in self._program.table_expressions
        )
        if scratch_needed:
            self._scratch.append(IUReg(next_index))
            next_index += 1
        if next_index > self._n_registers:
            raise IUDeadlineError(
                f"lowered IU program needs {next_index} registers, "
                f"hardware has {self._n_registers}"
            )

    def _loop_start_values(self) -> dict[str, int]:
        starts: dict[str, int] = {}

        def walk(items) -> None:
            for item in items:
                if isinstance(item, IULoop):
                    starts[item.var] = item.start
                    walk(item.body)

        walk(self._program.items)
        return starts

    def _build_prologue(self) -> list[IUOp]:
        starts = self._loop_start_values()
        ops: list[IUOp] = []
        for name, reg in self._registers.items():
            sub_expression = self._plan.registers[name]
            value = sub_expression.evaluate(
                {var: starts.get(var, 0) for var in sub_expression.variables}
            )
            ops.append(IUOp(IUOpKind.SETI, dest=reg, immediate=value))
        return ops

    # Tree ------------------------------------------------------------------

    def _lower_item(self, item) -> LoweredItem:
        if isinstance(item, IUBlock):
            return self._lower_block(item)
        assert isinstance(item, IULoop)
        boundary = [
            IUOp(
                IUOpKind.ADDI,
                dest=self._registers[name],
                src1=self._registers[name],
                immediate=delta,
            )
            for name, delta in item.boundary_updates
            if name in self._registers
        ]
        boundary.append(IUOp(IUOpKind.LOOP_TEST))
        exit_ops = [
            IUOp(
                IUOpKind.ADDI,
                dest=self._registers[name],
                src1=self._registers[name],
                immediate=delta,
            )
            for name, delta in item.exit_updates
            if name in self._registers
        ]
        return LoweredLoop(
            loop_id=item.loop_id,
            trip=item.trip,
            boundary_ops=boundary,
            exit_ops=exit_ops,
            body=[self._lower_item(child) for child in item.body],
            unrolled_tail=item.unrolled_tail,
        )

    def _lower_block(self, block: IUBlock) -> LoweredBlock:
        ops: list[IUOp] = []
        for emission in block.emissions:
            if emission.from_table:
                ops.append(IUOp(IUOpKind.EMIT_TABLE, cycle=emission.cycle))
                continue
            names, constant = self._plan.compositions[emission.expr_index]
            regs = [self._registers[name] for name in names]
            if len(regs) == 1 and constant == 0:
                ops.append(
                    IUOp(IUOpKind.EMIT, src1=regs[0], cycle=emission.cycle)
                )
                continue
            # Compose into a scratch register: accumulate sums, then the
            # constant, then emit.
            scratch = self._scratch[0]
            cycle = emission.cycle - len(regs)  # adds complete before emit
            first = True
            for reg in regs:
                if first:
                    ops.append(
                        IUOp(
                            IUOpKind.ADDI,
                            dest=scratch,
                            src1=reg,
                            immediate=0,
                            cycle=cycle,
                        )
                    )
                    first = False
                else:
                    ops.append(
                        IUOp(
                            IUOpKind.ADD,
                            dest=scratch,
                            src1=scratch,
                            src2=reg,
                            cycle=cycle,
                        )
                    )
                cycle += 1
            if constant:
                ops.append(
                    IUOp(
                        IUOpKind.ADDI,
                        dest=scratch,
                        src1=scratch,
                        immediate=constant,
                        cycle=cycle,
                    )
                )
            ops.append(IUOp(IUOpKind.EMIT, src1=scratch, cycle=emission.cycle))
        return LoweredBlock(block_id=block.block_id, length=block.length, ops=ops)

    # Table ------------------------------------------------------------------

    def _build_table(self) -> list[int]:
        """Table contents in consumption order: for every dynamic
        emission of a table-resident expression, its address."""
        if not self._program.table_expressions:
            return []
        table: list[int] = []
        env: dict[str, int] = {}

        def walk(items) -> None:
            for item in items:
                if isinstance(item, IUBlock):
                    for emission in item.emissions:
                        if emission.expr_index in self._program.table_expressions:
                            expr = self._plan.expressions[emission.expr_index]
                            table.append(expr.evaluate(env))
                else:
                    for i in range(item.trip):
                        env[item.var] = item.start + i * item.step
                        walk(item.body)
                    env.pop(item.var, None)

        walk(self._program.items)
        return table


def lower_iu_program(
    program: IUProgram, n_registers: int = 16
) -> LoweredIUProgram:
    """Lower a planned IU program to executable register-machine code."""
    return IULowerer(program, n_registers).lower()
