"""IU code generation (Section 6.3).

Input: the scheduled cell code, whose memory references carry *deadlines*
— the cycle (within their block) at which the cells dequeue each address
from the address path.  Output: an :class:`IUProgram` that

* holds every address expression in induction registers chosen by the
  escalation of :mod:`repro.iucodegen.allocation` (strength reduction —
  the IU has no multiplier);
* updates those registers at loop-iteration boundaries (with wrap
  adjustments when inner loops exit);
* emits each address as late as possible, never later than its deadline
  ("The IU could get ahead of the cells ... but the compiler utilizes
  this freedom only inside a basic block");
* demotes expressions to the 32K sequential table memory when registers
  run out, preferring low-traffic expressions (addresses inside deep
  loops "can overflow the table memory easily", Section 6.3.2);
* plans the loop-control signals, unrolling the last ``k`` iterations of
  loops whose cell body is shorter than the IU's 3-cycle counter test
  (Section 6.3.1).

The IU runs one hop ahead of cell 0, so an address emitted in IU-cycle
``t`` is in cell 0's address queue by cell-cycle ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from ..cellcodegen.emit import CellCode, ScheduledBlock, ScheduledItem, ScheduledLoop
from ..errors import IUDeadlineError, TableOverflowError
from ..lang.semantic import AffineIndex
from ..config import IUConfig
from .allocation import AllocationPlan, LoopInfo, Strategy, plan_allocation

#: How far (cycles) an emission may slip before its block's window; the
#: slack is borrowed from earlier windows (see DESIGN.md).
MAX_LOOKBEHIND = 64


@dataclass
class IUEmission:
    """One static address emission in a block."""

    deadline: int          # local cell cycle of the dequeue
    cycle: int             # local IU emission cycle (may be negative)
    expr_index: int        # index into the allocation plan's expressions
    from_table: bool = False
    composition_adds: int = 0


@dataclass
class IUBlock:
    block_id: int
    length: int
    emissions: list[IUEmission] = field(default_factory=list)


@dataclass
class IULoop:
    loop_id: int
    var: str
    start: int
    step: int
    trip: int
    body: list["IUItem"] = field(default_factory=list)
    #: Iterations unrolled at the tail so loop signals arrive in time
    #: (0 = the IU tests the counter every iteration).
    unrolled_tail: int = 0
    #: Register updates at the end of every iteration: (register, delta).
    boundary_updates: list[tuple[str, int]] = field(default_factory=list)
    #: Wrap adjustments applied once, when the loop exits.
    exit_updates: list[tuple[str, int]] = field(default_factory=list)


IUItem = Union[IUBlock, IULoop]


@dataclass
class IUProgram:
    """The interface unit's program for one compiled module."""

    items: list[IUItem]
    plan: AllocationPlan
    #: Expression indices resident in table memory.
    table_expressions: frozenset[int]
    #: Total dynamic table entries consumed by one run.
    table_entries: int
    n_registers_used: int
    warnings: list[str] = field(default_factory=list)

    @property
    def n_instructions(self) -> int:
        """Static IU microcode length (the Table 7-1 "IU ucode" metric):
        register initialisation, emissions, composition adds, boundary
        updates, loop control, and the duplicated unrolled tails."""
        static = len(self.plan.registers) + self.plan.scratch_registers
        static += _count_static(self.items)
        return static

    def emission_times(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(emit_time, deadline_time, address)`` for every dynamic
        emission, in FIFO order, with absolute times on the cell-0
        timeline.

        Addresses are computed by direct affine evaluation; a property
        test verifies the induction-register machine produces the same
        values.
        """
        env: dict[str, int] = {}

        def walk(items: list[IUItem], offset: int) -> Iterator[tuple[int, int, int]]:
            for item in items:
                if isinstance(item, IUBlock):
                    for emission in item.emissions:
                        expr = self.plan.expressions[emission.expr_index]
                        yield (
                            offset + emission.cycle,
                            offset + emission.deadline,
                            expr.evaluate(env),
                        )
                    offset += item.length
                else:
                    body_len = _item_length(item.body)
                    for i in range(item.trip):
                        env[item.var] = item.start + i * item.step
                        yield from walk(item.body, offset)
                        offset += body_len
                    env.pop(item.var, None)
            return

        yield from walk(self.items, 0)


def _item_length(items: list[IUItem]) -> int:
    total = 0
    for item in items:
        if isinstance(item, IUBlock):
            total += item.length
        else:
            total += item.trip * _item_length(item.body)
    return total


def _count_static(items: list[IUItem]) -> int:
    total = 0
    for item in items:
        if isinstance(item, IUBlock):
            for emission in item.emissions:
                total += 1 + emission.composition_adds
        else:
            body = _count_static(item.body)
            total += body
            total += len(item.boundary_updates) + len(item.exit_updates)
            total += 2  # loop counter init + test
            total += item.unrolled_tail * body
    return total


class IUCodeGenerator:
    def __init__(self, code: CellCode, config: IUConfig):
        self._code = code
        self._config = config
        self._expressions: list[AffineIndex] = []
        self._expr_ids: dict[AffineIndex, int] = {}
        self._loops: list[LoopInfo] = []
        self._dynamic_counts: dict[int, int] = {}
        self._warnings: list[str] = []

    def generate(self) -> IUProgram:
        self._collect(self._code.items, multiplier=1)
        plan, table_set = self._choose_plan()
        items = self._build_items(self._code.items, plan, table_set)
        table_entries = sum(self._dynamic_counts[i] for i in table_set)
        if table_entries > self._config.table_words:
            raise TableOverflowError(
                f"{table_entries} table addresses exceed the "
                f"{self._config.table_words}-word table memory"
            )
        return IUProgram(
            items=items,
            plan=plan,
            table_expressions=frozenset(table_set),
            table_entries=table_entries,
            n_registers_used=plan.n_registers,
            warnings=self._warnings,
        )

    # Demand collection -----------------------------------------------------

    def _collect(self, items: list[ScheduledItem], multiplier: int) -> None:
        for item in items:
            if isinstance(item, ScheduledBlock):
                for demand in item.addr_demands:
                    index = self._expr_ids.get(demand.expression)
                    if index is None:
                        index = len(self._expressions)
                        self._expr_ids[demand.expression] = index
                        self._expressions.append(demand.expression)
                        self._dynamic_counts[index] = 0
                    self._dynamic_counts[index] += multiplier
            else:
                self._loops.append(
                    LoopInfo(item.var, item.start, item.step, item.trip)
                )
                self._collect(item.body, multiplier * item.trip)

    # Strategy escalation -----------------------------------------------------

    def _choose_plan(self) -> tuple[AllocationPlan, set[int]]:
        budget = self._config.n_registers
        for strategy in (
            Strategy.FULL_ADDRESS,
            Strategy.SHARED_SIGNATURE,
            Strategy.PER_PRODUCT,
        ):
            plan = plan_allocation(self._expressions, self._loops, strategy)
            if plan.n_registers <= budget:
                return plan, set()
        # No strategy fits: demote expressions to table memory, preferring
        # the ones touched least often (deep-loop addresses would overflow
        # the table).
        order = sorted(
            range(len(self._expressions)),
            key=lambda i: self._dynamic_counts[i],
        )
        table: set[int] = set()
        for index in order:
            table.add(index)
            live = [
                e for i, e in enumerate(self._expressions) if i not in table
            ]
            plan = plan_allocation(live, self._loops, Strategy.PER_PRODUCT)
            if plan.n_registers <= budget:
                # Rebuild the plan over the full expression list so
                # indices stay stable; table expressions need no register.
                full = plan_allocation(
                    self._expressions, self._loops, Strategy.PER_PRODUCT
                )
                self._warnings.append(
                    f"{len(table)} address expressions moved to table memory"
                )
                return full, table
        raise IUDeadlineError(
            "address expressions exceed the IU's registers even with "
            "table-memory demotion"
        )

    # Program construction -----------------------------------------------------

    def _build_items(
        self,
        items: list[ScheduledItem],
        plan: AllocationPlan,
        table: set[int],
    ) -> list[IUItem]:
        result: list[IUItem] = []
        for item in items:
            if isinstance(item, ScheduledBlock):
                result.append(self._build_block(item, plan, table))
            else:
                body = self._build_items(item.body, plan, table)
                body_len = _item_length(body)
                unrolled = 0
                if body_len < self._config.loop_test_cycles:
                    unrolled = self._config.loop_test_cycles // max(body_len, 1) + 1
                    unrolled = min(unrolled, item.trip)
                result.append(
                    IULoop(
                        loop_id=item.loop_id,
                        var=item.var,
                        start=item.start,
                        step=item.step,
                        trip=item.trip,
                        body=body,
                        unrolled_tail=unrolled,
                        boundary_updates=plan.updates.get(item.var, []),
                        exit_updates=plan.exit_updates.get(item.var, []),
                    )
                )
        return result

    def _build_block(
        self,
        block: ScheduledBlock,
        plan: AllocationPlan,
        table: set[int],
    ) -> IUBlock:
        emissions: list[IUEmission] = []
        port_use: dict[int, int] = {}
        next_cycle = block.length  # ALAP bound from the right
        for demand in reversed(block.addr_demands):
            index = self._expr_ids[demand.expression]
            cycle = min(demand.cycle, next_cycle)
            while port_use.get(cycle, 0) >= 2:
                cycle -= 1
            if demand.cycle - cycle > MAX_LOOKBEHIND:
                raise IUDeadlineError(
                    f"block {block.block_id}: address for cycle "
                    f"{demand.cycle} cannot be emitted within the "
                    f"{MAX_LOOKBEHIND}-cycle window"
                )
            port_use[cycle] = port_use.get(cycle, 0) + 1
            next_cycle = cycle
            from_table = index in table
            emissions.append(
                IUEmission(
                    deadline=demand.cycle,
                    cycle=cycle,
                    expr_index=index,
                    from_table=from_table,
                    composition_adds=0
                    if from_table
                    else plan.emission_adds.get(index, 0),
                )
            )
        emissions.reverse()
        self._check_arithmetic_slack(block, emissions)
        return IUBlock(
            block_id=block.block_id, length=block.length, emissions=emissions
        )

    def _check_arithmetic_slack(
        self, block: ScheduledBlock, emissions: list[IUEmission]
    ) -> None:
        """One IU adder: composition adds must fit before their emission.
        Infeasibility is recorded as a warning (the simulator applies
        boundary semantics; see DESIGN.md)."""
        total_adds = sum(e.composition_adds for e in emissions)
        if not total_adds:
            return
        if emissions and total_adds > max(e.cycle for e in emissions) + MAX_LOOKBEHIND:
            self._warnings.append(
                f"block {block.block_id}: {total_adds} composition adds "
                "may exceed the IU adder's slack"
            )


def generate_iu_code(code: CellCode, config: IUConfig) -> IUProgram:
    """Generate the IU program for scheduled cell code."""
    return IUCodeGenerator(code, config).generate()
