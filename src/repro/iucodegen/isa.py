"""The interface unit's instruction set (Section 6.3).

The IU generates addresses and loop-control signals for the whole array.
Its datapath is deliberately modest: 16 registers, addition/subtraction
only (no multiplier — strength reduction is mandatory), no data memory,
and a 32K-word *table memory* readable strictly in sequential order as
an escape hatch for addresses it cannot compute in time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Union


@dataclass(frozen=True)
class IUReg:
    index: int

    def __str__(self) -> str:
        return f"i{self.index}"


class IUOpKind(enum.Enum):
    SETI = "seti"          # reg := immediate
    ADDI = "addi"          # reg := reg + immediate  (subtract = negative)
    ADD = "add"            # reg := reg + reg
    SUB = "sub"            # reg := reg - reg
    EMIT = "emit"          # push reg onto the address path
    EMIT_TABLE = "emit_table"  # pop table memory, push onto address path
    LOOP_INIT = "loop_init"    # initialise a loop counter
    LOOP_TEST = "loop_test"    # update/test counter, send loop signal


@dataclass(frozen=True)
class IUOp:
    kind: IUOpKind
    dest: IUReg | None = None
    src1: IUReg | None = None
    src2: IUReg | None = None
    immediate: int | None = None
    #: Local cycle within the enclosing block window (may be negative:
    #: the IU runs ahead and may borrow tail cycles of the previous
    #: window; see DESIGN.md).
    cycle: int = 0

    def __str__(self) -> str:
        if self.kind is IUOpKind.SETI:
            return f"{self.dest} := {self.immediate}"
        if self.kind is IUOpKind.ADDI:
            return f"{self.dest} := {self.src1} + {self.immediate}"
        if self.kind is IUOpKind.ADD:
            return f"{self.dest} := {self.src1} + {self.src2}"
        if self.kind is IUOpKind.SUB:
            return f"{self.dest} := {self.src1} - {self.src2}"
        if self.kind is IUOpKind.EMIT:
            return f"emit {self.src1}"
        if self.kind is IUOpKind.EMIT_TABLE:
            return "emit table[next]"
        if self.kind is IUOpKind.LOOP_INIT:
            return f"loop_init {self.immediate}"
        return "loop_test"
