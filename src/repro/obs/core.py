"""The span/counter telemetry core.

A :class:`Telemetry` object collects two kinds of facts:

* **spans** — named, nestable wall-clock intervals (``with
  telemetry.span("parse"): ...``), used by the compiler driver to time
  every phase;
* **counters** — named accumulating integers (``telemetry.counter(
  "dag.cse_hits", 3)``), used for phase-specific statistics (block
  counts, DAG nodes, CSE hits, spill counts, computed skew, ...).

Instrumented code talks to the *active* telemetry via
:func:`get_telemetry`.  By default that is :data:`NULL_TELEMETRY`, a
shared no-op object whose ``span()`` returns one cached null context
manager and whose ``counter()`` does nothing — the disabled-mode cost is
one attribute lookup and one function call per instrumentation point.
:func:`enable` installs a live collector (and returns it);
:func:`disable` restores the no-op.  :func:`collecting` is the scoped
equivalent for tools and tests.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Span:
    """One closed (or still-open) named interval, in seconds."""

    name: str
    start: float
    end: float = 0.0
    #: Index of the enclosing span in ``Telemetry.spans`` (-1 = root).
    parent: int = -1
    depth: int = 0
    #: Counter deltas attributed to this span (accumulated while open).
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(self.end - self.start, 0.0)


class Telemetry:
    """A live span/counter collector."""

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        #: Completed and open spans, in start order.
        self.spans: list[Span] = []
        #: Global accumulated counters.
        self.counters: dict[str, int] = {}
        self._open: list[int] = []  # indices into ``spans``

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Time a named phase; spans nest with ``with`` structure."""
        index = len(self.spans)
        record = Span(
            name=name,
            start=self._clock(),
            parent=self._open[-1] if self._open else -1,
            depth=len(self._open),
        )
        self.spans.append(record)
        self._open.append(index)
        try:
            yield record
        finally:
            record.end = self._clock()
            self._open.pop()

    def counter(self, name: str, value: int = 1) -> None:
        """Accumulate ``value`` into a named counter (and attribute it
        to the innermost open span, if any)."""
        self.counters[name] = self.counters.get(name, 0) + value
        if self._open:
            span = self.spans[self._open[-1]]
            span.counters[name] = span.counters.get(name, 0) + value

    # Introspection -------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        """Wall time covered by the top-level spans."""
        return sum(s.duration for s in self.spans if s.parent == -1)

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]


class _NullContext:
    """A reusable no-op context manager (yields ``None``)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


class NullTelemetry:
    """Disabled-mode stand-in: every operation is a no-op."""

    __slots__ = ()

    enabled = False
    spans: list[Span] = []
    counters: dict[str, int] = {}
    _NULL_CONTEXT = _NullContext()

    def span(self, name: str) -> _NullContext:
        return self._NULL_CONTEXT

    def counter(self, name: str, value: int = 1) -> None:
        return None

    @property
    def total_seconds(self) -> float:
        return 0.0

    def find(self, name: str) -> list[Span]:
        return []


#: The shared disabled-mode telemetry.
NULL_TELEMETRY = NullTelemetry()

_active: Telemetry | NullTelemetry = NULL_TELEMETRY


def get_telemetry() -> Telemetry | NullTelemetry:
    """The telemetry instrumented code should report to."""
    return _active


def enable(telemetry: Telemetry | None = None) -> Telemetry:
    """Install (and return) a live collector as the active telemetry."""
    global _active
    _active = telemetry if telemetry is not None else Telemetry()
    return _active


def disable() -> None:
    """Restore the no-op telemetry."""
    global _active
    _active = NULL_TELEMETRY


@contextmanager
def collecting() -> Iterator[Telemetry]:
    """Scoped collection: enable a fresh collector, restore on exit."""
    global _active
    previous = _active
    telemetry = enable(Telemetry())
    try:
        yield telemetry
    finally:
        _active = previous
