"""Human- and machine-readable renderings of telemetry and metrics.

* :func:`format_phase_table` — per-phase compile timing (spans indented
  by nesting depth, with each span's counters inline);
* :func:`format_counters` — the accumulated global counters;
* :func:`format_utilization` — per-cell busy/stall/idle breakdown and
  per-queue high-water table of one simulated run;
* :func:`format_compare` — compile-time performance prediction vs.
  measured machine metrics, with deltas;
* :func:`telemetry_to_json` / :func:`metrics_to_json` — the structured
  report written by ``--metrics-out``.
"""

from __future__ import annotations

from typing import Any

from .core import Telemetry
from .metrics import MachineMetrics


def format_phase_table(telemetry: Telemetry) -> str:
    """Render the compile-phase spans as an indented timing table."""
    total = telemetry.total_seconds or 1e-12
    header = f"{'phase':<36} {'time':>10} {'share':>7}"
    lines = [header, "-" * len(header)]
    for span in telemetry.spans:
        name = "  " * span.depth + span.name
        share = span.duration / total if span.parent == -1 else float("nan")
        share_text = f"{share:6.1%}" if span.parent == -1 else "      "
        counters = ", ".join(
            f"{key}={value}" for key, value in sorted(span.counters.items())
        )
        line = f"{name:<36} {span.duration * 1e3:>8.2f}ms {share_text:>7}"
        if counters:
            line += f"  [{counters}]"
        lines.append(line)
    lines.append(f"{'total':<36} {total * 1e3:>8.2f}ms {'100.0%':>7}")
    return "\n".join(lines)


def format_counters(telemetry: Telemetry) -> str:
    """Render the accumulated counters, one per line."""
    if not telemetry.counters:
        return "(no counters)"
    width = max(len(name) for name in telemetry.counters)
    return "\n".join(
        f"{name:<{width}} {value:>10}"
        for name, value in sorted(telemetry.counters.items())
    )


def format_utilization(metrics: MachineMetrics) -> str:
    """Per-cell cycle breakdown plus per-queue occupancy summary."""
    header = (
        f"{'cell':>4} {'busy':>8} {'stall':>8} {'idle':>8} {'util':>7} "
        f"{'FP ops':>8} {'recv wait':>9}"
    )
    lines = [
        f"{metrics.total_cycles} total cycles, skew {metrics.skew}, "
        f"array utilisation {metrics.array_utilization:.1%}",
        header,
        "-" * len(header),
    ]
    for cell in metrics.cells:
        lines.append(
            f"{cell.cell:>4} {cell.busy_cycles:>8} {cell.stall_cycles:>8} "
            f"{cell.idle_cycles:>8} {cell.utilization:>6.1%} "
            f"{cell.fp_ops:>8} {cell.receive_wait_cycles:>9}"
        )
    queue_header = (
        f"{'queue':<16} {'high-water':>10} {'capacity':>9} {'items':>7} "
        f"{'mean wait':>10}"
    )
    lines += ["", queue_header, "-" * len(queue_header)]
    for name, queue in sorted(metrics.queues.items()):
        capacity = "-" if queue.capacity is None else str(queue.capacity)
        lines.append(
            f"{name:<16} {queue.high_water:>10} {capacity:>9} "
            f"{queue.items_sent:>7} {queue.mean_residency:>9.1f}c"
        )
    return "\n".join(lines)


def format_compare(prediction, metrics: MachineMetrics) -> str:
    """Predicted (compile-time) vs. measured (simulated) side by side.

    ``prediction`` is a
    :class:`~repro.compiler.performance.PerformancePrediction`; per-cell
    operation counts are compared against measured cell 0.
    """
    cell0 = metrics.cells[0]
    rows = [
        ("total cycles", prediction.total_cycles, metrics.total_cycles),
        ("skew", prediction.skew, metrics.skew),
        (
            "cycles per cell",
            prediction.cycles_per_cell,
            cell0.end_cycle - cell0.start_cycle,
        ),
        ("ALU ops / cell", prediction.alu_ops, cell0.alu_ops),
        ("MPY ops / cell", prediction.mpy_ops, cell0.mpy_ops),
        ("memory reads / cell", prediction.mem_reads, cell0.mem_reads),
        ("memory writes / cell", prediction.mem_writes, cell0.mem_writes),
        ("receives / cell", prediction.receives, cell0.receives),
        ("sends / cell", prediction.sends, cell0.sends),
    ]
    header = f"{'metric':<22} {'predicted':>10} {'measured':>10} {'delta':>8}"
    lines = [header, "-" * len(header)]
    for name, predicted, measured in rows:
        delta = measured - predicted
        lines.append(
            f"{name:<22} {predicted:>10} {measured:>10} {delta:>+8}"
        )
    worst = max(abs(measured - predicted) for _, predicted, measured in rows)
    lines.append(
        "prediction exact"
        if worst == 0
        else f"largest absolute delta: {worst}"
    )
    return "\n".join(lines)


def format_cache_status(event: str | None, stats=None) -> str:
    """One-line compile-cache status for CLI reports.

    ``event`` is :attr:`repro.exec.CompileCache.last_event` (``None``
    means caching was disabled or never consulted); ``stats`` is the
    cache's :class:`~repro.exec.CacheStats`, summarised when given.
    """
    if event is None:
        return "compile cache: disabled"
    line = f"compile cache: {event}"
    if stats is not None:
        line += (
            f" ({stats.lookups} lookups: {stats.memory_hits} memory hits, "
            f"{stats.disk_hits} disk hits, {stats.misses} misses"
        )
        if stats.disk_errors:
            line += f", {stats.disk_errors} disk errors"
        line += ")"
    return line


def telemetry_to_json(telemetry: Telemetry) -> dict[str, Any]:
    origin = min((s.start for s in telemetry.spans), default=0.0)
    return {
        "spans": [
            {
                "name": span.name,
                "start_us": (span.start - origin) * 1e6,
                "duration_us": span.duration * 1e6,
                "parent": span.parent,
                "depth": span.depth,
                "counters": dict(span.counters),
            }
            for span in telemetry.spans
        ],
        "counters": dict(telemetry.counters),
        "total_seconds": telemetry.total_seconds,
    }


def metrics_to_json(
    metrics: MachineMetrics,
    prediction=None,
    telemetry: Telemetry | None = None,
    cache=None,
    batch=None,
) -> dict[str, Any]:
    """The structured metrics report (``--metrics-out``).

    ``cache`` is a :class:`~repro.exec.CompileCache` (its hit/miss
    accounting lands under ``"cache"``); ``batch`` is a
    :class:`~repro.exec.BatchResult` (aggregate throughput lands under
    ``"batch"``)."""
    document: dict[str, Any] = {
        "total_cycles": metrics.total_cycles,
        "skew": metrics.skew,
        "array_utilization": metrics.array_utilization,
        "cells": [
            {
                "cell": cell.cell,
                "start_cycle": cell.start_cycle,
                "end_cycle": cell.end_cycle,
                "busy_cycles": cell.busy_cycles,
                "stall_cycles": cell.stall_cycles,
                "idle_cycles": cell.idle_cycles,
                "utilization": cell.utilization,
                "alu_ops": cell.alu_ops,
                "mpy_ops": cell.mpy_ops,
                "mem_reads": cell.mem_reads,
                "mem_writes": cell.mem_writes,
                "receives": cell.receives,
                "sends": cell.sends,
                "receive_wait_cycles": cell.receive_wait_cycles,
            }
            for cell in metrics.cells
        ],
        "queues": {
            name: {
                "capacity": queue.capacity,
                "high_water": queue.high_water,
                "items_sent": queue.items_sent,
                "items_received": queue.items_received,
                "total_wait_cycles": queue.total_wait_cycles,
                "mean_residency": queue.mean_residency,
                "occupancy_histogram": {
                    str(level): cycles
                    for level, cycles in sorted(
                        queue.occupancy_histogram().items()
                    )
                },
            }
            for name, queue in metrics.queues.items()
        },
        "iu": {
            "addresses_emitted": metrics.iu.addresses_emitted,
            "first_emit_cycle": metrics.iu.first_emit_cycle,
            "last_emit_cycle": metrics.iu.last_emit_cycle,
        },
    }
    if prediction is not None:
        document["prediction"] = {
            "total_cycles": prediction.total_cycles,
            "cycles_per_cell": prediction.cycles_per_cell,
            "skew": prediction.skew,
            "alu_ops": prediction.alu_ops,
            "mpy_ops": prediction.mpy_ops,
            "mem_reads": prediction.mem_reads,
            "mem_writes": prediction.mem_writes,
            "receives": prediction.receives,
            "sends": prediction.sends,
            "delta_total_cycles": metrics.total_cycles
            - prediction.total_cycles,
        }
    if telemetry is not None and telemetry.spans:
        document["compile"] = telemetry_to_json(telemetry)
    if cache is not None:
        document["cache"] = dict(cache.stats.to_json())
        document["cache"]["last_event"] = cache.last_event
    if batch is not None:
        document["batch"] = {
            "items": batch.n_items,
            "processes": batch.processes,
            "total_cycles": batch.total_cycles,
            "cycles_per_item": batch.cycles_per_item,
            "wall_seconds": batch.wall_seconds,
            "items_per_second": batch.items_per_second,
        }
    return document
