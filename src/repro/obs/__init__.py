"""``repro.obs`` — the observability layer.

Structured compile telemetry (spans + counters), cycle-level machine
metrics, and exporters (terminal tables, structured JSON, Chrome
``trace_event`` files loadable in ``chrome://tracing`` / Perfetto).

The instrumentation contract: library code reports to
:func:`get_telemetry`, which is a shared no-op unless a tool opted in
via :func:`enable` / :func:`collecting` — so the disabled-mode overhead
is a function call per instrumentation point.
"""

from .core import (
    NULL_TELEMETRY,
    NullTelemetry,
    Span,
    Telemetry,
    collecting,
    disable,
    enable,
    get_telemetry,
)
from .chrome_trace import (
    compile_trace_events,
    machine_trace_events,
    simulation_trace_events,
    trace_document,
    write_chrome_trace,
)
from .metrics import (
    BlockSpan,
    CellMetrics,
    IUMetrics,
    MachineMetrics,
    MachineRecorder,
    QueueMetrics,
    cell_metrics_from_counts,
    queue_metrics_from_times,
)
from .report import (
    format_cache_status,
    format_compare,
    format_counters,
    format_phase_table,
    format_utilization,
    metrics_to_json,
    telemetry_to_json,
)

__all__ = [
    "BlockSpan",
    "CellMetrics",
    "IUMetrics",
    "MachineMetrics",
    "MachineRecorder",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "QueueMetrics",
    "Span",
    "Telemetry",
    "cell_metrics_from_counts",
    "collecting",
    "compile_trace_events",
    "disable",
    "enable",
    "format_cache_status",
    "format_compare",
    "format_counters",
    "format_phase_table",
    "format_utilization",
    "get_telemetry",
    "machine_trace_events",
    "metrics_to_json",
    "queue_metrics_from_times",
    "simulation_trace_events",
    "telemetry_to_json",
    "trace_document",
    "write_chrome_trace",
]
