"""Cycle-level machine metrics.

Everything here is computed from raw event times (enqueue/dequeue
cycles, block execution spans) so the simulator can build a
:class:`MachineMetrics` without this module ever importing the machine
package.  The occupancy definition matches the compile-time queue
analysis (:func:`repro.timing.buffers.occupancy_requirement`): an item
occupies the buffer from its send cycle up to *and including* the cycle
of its receive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class CellMetrics:
    """One cell's cycle breakdown over the whole array run.

    ``busy + stall + idle == array_cycles``: *busy* cycles issued at
    least one operation, *stall* cycles are schedule bubbles (latency /
    drain nops inside the cell's own execution window), *idle* covers
    the skew lead-in before the cell starts plus the tail after it
    finishes while the rest of the array drains.
    """

    cell: int
    start_cycle: int
    end_cycle: int
    busy_cycles: int
    stall_cycles: int
    idle_cycles: int
    alu_ops: int
    mpy_ops: int
    mem_reads: int
    mem_writes: int
    receives: int
    sends: int
    #: Cycles the values this cell consumed spent waiting in its input
    #: queues (sum over receives of receive cycle - send cycle).
    receive_wait_cycles: int = 0

    @property
    def active_cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    @property
    def utilization(self) -> float:
        """Busy fraction of the whole array run."""
        total = self.busy_cycles + self.stall_cycles + self.idle_cycles
        return self.busy_cycles / max(total, 1)

    @property
    def fp_ops(self) -> int:
        return self.alu_ops + self.mpy_ops


@dataclass(frozen=True)
class QueueMetrics:
    """One queue's occupancy and residency statistics."""

    name: str
    capacity: int | None
    items_sent: int
    items_received: int
    #: Peak occupancy over the run (words), by the compile-time
    #: occupancy definition.
    high_water: int
    #: Total cycles consumed items spent in the queue.
    total_wait_cycles: int
    send_times: np.ndarray = field(repr=False, default_factory=lambda: np.empty(0, np.int64))
    recv_times: np.ndarray = field(repr=False, default_factory=lambda: np.empty(0, np.int64))

    @property
    def mean_residency(self) -> float:
        """Average cycles an item waited before being received."""
        return self.total_wait_cycles / max(self.items_received, 1)

    def occupancy_series(self) -> tuple[np.ndarray, np.ndarray]:
        """``(cycles, occupancy)`` step series over the run.

        Items enter at their send cycle and leave strictly after their
        receive cycle, mirroring the compile-time analysis where the
        received word still occupies the buffer at the dequeue instant.
        """
        if self.send_times.size == 0:
            return np.empty(0, np.int64), np.empty(0, np.int64)
        # Changes: +1 at each send time, -1 just after each receive.
        times = np.concatenate([self.send_times, self.recv_times + 1])
        deltas = np.concatenate(
            [
                np.ones(self.send_times.size, np.int64),
                -np.ones(self.recv_times.size, np.int64),
            ]
        )
        order = np.argsort(times, kind="stable")
        times, deltas = times[order], deltas[order]
        occupancy = np.cumsum(deltas)
        # Merge simultaneous events into the final occupancy at each time.
        keep = np.append(times[1:] != times[:-1], True)
        return times[keep], occupancy[keep]

    def occupancy_histogram(self, n_bins: int = 0) -> dict[int, int]:
        """Cycles spent at each occupancy level (occupancy -> cycles).

        ``n_bins`` > 0 clips levels above ``n_bins`` into one bucket.
        """
        times, occupancy = self.occupancy_series()
        if times.size == 0:
            return {}
        durations = np.append(np.diff(times), 1)  # last level holds 1 cycle
        histogram: dict[int, int] = {}
        for level, duration in zip(occupancy.tolist(), durations.tolist()):
            if n_bins and level > n_bins:
                level = n_bins
            histogram[level] = histogram.get(level, 0) + duration
        return histogram


@dataclass(frozen=True)
class IUMetrics:
    """The interface unit's address-path statistics."""

    addresses_emitted: int
    first_emit_cycle: int
    last_emit_cycle: int

    @property
    def emit_span_cycles(self) -> int:
        return max(self.last_emit_cycle - self.first_emit_cycle + 1, 0)


@dataclass(frozen=True)
class BlockSpan:
    """One execution of a scheduled block on one cell (for traces)."""

    cell: int
    block_id: int
    start: int
    length: int
    issued_ops: int


class MachineRecorder:
    """Opt-in collector of per-block execution spans (Chrome traces)."""

    def __init__(self, limit: int = 200_000):
        self.blocks: list[BlockSpan] = []
        self.limit = limit
        self.truncated = False

    def block(
        self, cell: int, block_id: int, start: int, length: int, issued: int
    ) -> None:
        if len(self.blocks) >= self.limit:
            self.truncated = True
            return
        self.blocks.append(BlockSpan(cell, block_id, start, length, issued))


@dataclass(frozen=True)
class MachineMetrics:
    """Cycle-level metrics of one simulated run."""

    total_cycles: int
    skew: int
    cells: list[CellMetrics]
    #: Inter-cell data queues plus per-cell address queues, by name.
    queues: dict[str, QueueMetrics]
    iu: IUMetrics

    @property
    def busy_cycles(self) -> int:
        return sum(c.busy_cycles for c in self.cells)

    @property
    def array_utilization(self) -> float:
        """Mean busy fraction across cells."""
        if not self.cells:
            return 0.0
        return sum(c.utilization for c in self.cells) / len(self.cells)

    @property
    def queue_high_water(self) -> dict[str, int]:
        return {name: q.high_water for name, q in self.queues.items()}


def cell_metrics_from_counts(
    *,
    cell: int,
    start_cycle: int,
    end_cycle: int,
    total_cycles: int,
    issue_cycles: int,
    alu_ops: int,
    mpy_ops: int,
    mem_reads: int,
    mem_writes: int,
    receives: int,
    sends: int,
    receive_wait_cycles: int = 0,
) -> CellMetrics:
    """Derive a :class:`CellMetrics` from raw executor counts."""
    active = end_cycle - start_cycle
    stall = max(active - issue_cycles, 0)
    idle = max(total_cycles - active, 0)
    return CellMetrics(
        cell=cell,
        start_cycle=start_cycle,
        end_cycle=end_cycle,
        busy_cycles=issue_cycles,
        stall_cycles=stall,
        idle_cycles=idle,
        alu_ops=alu_ops,
        mpy_ops=mpy_ops,
        mem_reads=mem_reads,
        mem_writes=mem_writes,
        receives=receives,
        sends=sends,
        receive_wait_cycles=receive_wait_cycles,
    )


def queue_metrics_from_times(
    *,
    name: str,
    capacity: int | None,
    high_water: int,
    send_times: list[int],
    recv_times: list[int],
) -> QueueMetrics:
    """Derive a :class:`QueueMetrics` from raw enqueue/dequeue cycles."""
    sends = np.asarray(send_times, dtype=np.int64)
    recvs = np.asarray(recv_times, dtype=np.int64)
    consumed = min(sends.size, recvs.size)
    wait = int((recvs[:consumed] - sends[:consumed]).sum()) if consumed else 0
    return QueueMetrics(
        name=name,
        capacity=capacity,
        items_sent=int(sends.size),
        items_received=int(recvs.size),
        high_water=high_water,
        total_wait_cycles=wait,
        send_times=sends,
        recv_times=recvs,
    )
