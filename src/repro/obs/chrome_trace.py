"""Chrome ``trace_event`` export.

Produces the JSON-array trace format consumed by ``chrome://tracing``
and Perfetto (https://ui.perfetto.dev): a list of event dicts with
``ph`` (phase), ``ts``/``dur`` (microseconds), ``pid``/``tid`` lanes and
``name``.  Two processes are emitted:

* **compiler** (pid 1) — one ``B``/``E`` pair per telemetry span, on a
  single driver lane, in wall-clock microseconds;
* **warp machine** (pid 2) — one lane per cell (``X`` complete events
  per executed block), one lane per queue (``X`` events for item
  residency — the cycles a word waited between send and receive — plus
  ``C`` counter events tracking occupancy), an IU lane with the address
  stream and a host lane for feed/collect.  Machine timestamps map one
  cycle to one microsecond.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from .core import Telemetry
from .metrics import MachineMetrics, MachineRecorder

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.array import SimulationResult

COMPILER_PID = 1
MACHINE_PID = 2

#: Per-lane cap on per-item events (queue waits, IU emissions) so traces
#: of long runs stay loadable; truncation is flagged on the lane's
#: metadata.
MAX_EVENTS_PER_LANE = 4000


def _meta(pid: int, name: str, tid: int | None = None) -> dict[str, Any]:
    event: dict[str, Any] = {
        "ph": "M",
        "pid": pid,
        "name": "process_name" if tid is None else "thread_name",
        "args": {"name": name},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def compile_trace_events(
    telemetry: Telemetry, pid: int = COMPILER_PID
) -> list[dict[str, Any]]:
    """``B``/``E`` span pairs for one compile, relative to its start.

    Events are emitted in properly nested order (a span's ``B``, its
    children recursively, then its ``E``), which also makes timestamps
    monotonic along the stream."""
    if not telemetry.spans:
        return []
    origin = min(span.start for span in telemetry.spans)
    children: dict[int, list[int]] = {}
    for index, span in enumerate(telemetry.spans):
        children.setdefault(span.parent, []).append(index)
    events: list[dict[str, Any]] = [
        _meta(pid, "compiler"),
        _meta(pid, "driver", tid=0),
    ]

    def emit(index: int) -> None:
        span = telemetry.spans[index]
        begin = (span.start - origin) * 1e6
        events.append(
            {
                "ph": "B",
                "pid": pid,
                "tid": 0,
                "name": span.name,
                "ts": begin,
                "args": dict(span.counters),
            }
        )
        for child in children.get(index, []):
            emit(child)
        events.append(
            {
                "ph": "E",
                "pid": pid,
                "tid": 0,
                "name": span.name,
                "ts": begin + span.duration * 1e6,
            }
        )

    for root in children.get(-1, []):
        emit(root)
    return events


def machine_trace_events(
    metrics: MachineMetrics,
    record: MachineRecorder | None = None,
    pid: int = MACHINE_PID,
) -> list[dict[str, Any]]:
    """Lanes for cells, queues, IU and host from one simulated run."""
    events: list[dict[str, Any]] = [_meta(pid, "warp machine")]
    tid = 0

    # Host lane -----------------------------------------------------------
    host_tid = tid
    events.append(_meta(pid, "host", tid=host_tid))
    tid += 1
    feed = [q for name, q in metrics.queues.items() if name.startswith("link0")]
    feed_items = sum(q.items_sent for q in feed)
    if feed_items:
        last = max(int(q.send_times.max()) for q in feed if q.send_times.size)
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": host_tid,
                "name": "feed input queues",
                "ts": 0,
                "dur": last + 1,
                "args": {"items": feed_items},
            }
        )
    events.append(
        {
            "ph": "X",
            "pid": pid,
            "tid": host_tid,
            "name": "collect outputs",
            "ts": metrics.total_cycles,
            "dur": 1,
        }
    )

    # IU lane -------------------------------------------------------------
    iu_tid = tid
    events.append(_meta(pid, "IU address path", tid=iu_tid))
    tid += 1
    if metrics.iu.addresses_emitted:
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": iu_tid,
                "name": "address stream",
                "ts": metrics.iu.first_emit_cycle,
                "dur": metrics.iu.emit_span_cycles,
                "args": {"addresses": metrics.iu.addresses_emitted},
            }
        )

    # Cell lanes ----------------------------------------------------------
    cell_tids: dict[int, int] = {}
    for cell in metrics.cells:
        cell_tids[cell.cell] = tid
        events.append(_meta(pid, f"cell {cell.cell}", tid=tid))
        tid += 1
    if record is not None and record.blocks:
        for span in record.blocks:
            events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": cell_tids[span.cell],
                    "name": f"block b{span.block_id}",
                    "ts": span.start,
                    "dur": max(span.length, 1),
                    "args": {"issued_ops": span.issued_ops},
                }
            )
    else:
        # No per-block record: one span covering each cell's execution.
        for cell in metrics.cells:
            events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": cell_tids[cell.cell],
                    "name": "execute",
                    "ts": cell.start_cycle,
                    "dur": max(cell.active_cycles, 1),
                    "args": {
                        "busy_cycles": cell.busy_cycles,
                        "stall_cycles": cell.stall_cycles,
                    },
                }
            )

    # Queue lanes: item residency spans + occupancy counters --------------
    for name, queue in metrics.queues.items():
        queue_tid = tid
        events.append(_meta(pid, f"queue {name}", tid=queue_tid))
        tid += 1
        consumed = min(queue.send_times.size, queue.recv_times.size)
        truncated = consumed > MAX_EVENTS_PER_LANE
        for k in range(min(consumed, MAX_EVENTS_PER_LANE)):
            sent = int(queue.send_times[k])
            received = int(queue.recv_times[k])
            events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": queue_tid,
                    "name": "queue wait",
                    "ts": sent,
                    "dur": max(received - sent, 0) + 1,
                    "args": {"item": k},
                }
            )
        times, occupancy = queue.occupancy_series()
        for t, level in zip(
            times.tolist()[:MAX_EVENTS_PER_LANE],
            occupancy.tolist()[:MAX_EVENTS_PER_LANE],
        ):
            events.append(
                {
                    "ph": "C",
                    "pid": pid,
                    "tid": queue_tid,
                    "name": f"occupancy {name}",
                    "ts": t,
                    "args": {"words": level},
                }
            )
        if truncated or times.size > MAX_EVENTS_PER_LANE:
            events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": queue_tid,
                    "name": "…truncated",
                    "ts": metrics.total_cycles,
                    "dur": 1,
                    "args": {"omitted_items": max(consumed - MAX_EVENTS_PER_LANE, 0)},
                }
            )
    return events


def simulation_trace_events(
    result: "SimulationResult", telemetry: Telemetry | None = None
) -> list[dict[str, Any]]:
    """Full trace of one run: machine lanes plus compile spans if given."""
    events: list[dict[str, Any]] = []
    if telemetry is not None and telemetry.spans:
        events.extend(compile_trace_events(telemetry))
    assert result.machine_metrics is not None
    events.extend(machine_trace_events(result.machine_metrics, result.record))
    return events


def trace_document(events: list[dict[str, Any]]) -> dict[str, Any]:
    """The standard JSON-object container for a trace-event list."""
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, events: list[dict[str, Any]]) -> None:
    """Write a ``chrome://tracing`` / Perfetto-loadable JSON file."""
    with open(path, "w") as handle:
        json.dump(trace_document(events), handle)
