"""Command-line interface to the Warp compiler and simulator.

Usage (also via ``python -m repro``)::

    python -m repro compile  program.w2        # metrics + listings
    python -m repro run      program.w2 --input a=in.npy --output out.npz
    python -m repro batch    program.w2 --inputs items.npz --output out.npz
    python -m repro profile  program.w2        # phase timings + utilisation
    python -m repro compare  program.w2        # predicted vs measured
    python -m repro timing   program.w2        # skew / buffer report
    python -m repro verify   program.w2        # independent schedule verifier
    python -m repro check    program.w2        # compile + verify, one-line verdict
    python -m repro examples                   # list bundled programs
    python -m repro emit     polynomial        # print a bundled program

Exit codes are script-friendly: 0 success, 2 the program cannot be
compiled (front-end or mapping/overflow errors, printed as one
structured ``error[Class]: ...`` line), 3 the verifier rejected the
emitted schedule (or a seeded mutant escaped ``verify --mutate``).

All compiling subcommands share a compile cache (in-memory by default;
``--cache-dir DIR`` persists artefacts on disk, ``--no-cache`` bypasses
caching entirely).  ``batch`` compiles once and streams many input sets
through one reused machine (``--items N`` replication or an ``--inputs``
npz whose arrays carry a leading item axis).

``run``/``profile``/``compare`` accept ``--trace-out trace.json``
(Chrome ``trace_event`` file for ``chrome://tracing`` / Perfetto) and
``--metrics-out metrics.json`` (structured cycle-level metrics).

Inputs accept ``name=file.npy``, ``name=file.txt`` (whitespace floats)
or ``name=1.0,2.0,3.0`` inline.  Missing inputs default to zeros (cell
schedules are data-independent, so cycle counts are unaffected).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

import numpy as np

from . import obs, programs
from .cellcodegen.listing import format_cell_code
from .compiler import (
    compile_w2,
    decomposition_report,
    format_metrics_table,
    format_performance,
    predict_performance,
)
from .config import DEFAULT_CONFIG
from .errors import (
    CompilationError,
    HostDataError,
    SimulationError,
    VerificationError,
)
from .exec import BatchRunner, CompileCache, default_cache
from .lang import Channel
from .lang.errors import W2Error
from .machine import simulate
from .machine.trace import format_two_cell_trace
from .verify import MUTATION_KINDS, mutate, verify_program

_BUNDLED = {
    "polynomial": programs.polynomial,
    "conv1d": programs.conv1d,
    "binop": programs.binop,
    "colorseg": programs.colorseg,
    "mandelbrot": programs.mandelbrot,
    "matmul": programs.matmul,
    "conv2d": programs.conv2d,
    "firbank": programs.fir_bank,
    "passthrough": programs.passthrough,
}


def _load_source(spec: str) -> str:
    """A file path, or the name of a bundled program."""
    path = Path(spec)
    if path.exists():
        return path.read_text()
    factory = _BUNDLED.get(spec)
    if factory is None:
        raise SystemExit(
            f"error: {spec!r} is neither a file nor a bundled program "
            f"(bundled: {', '.join(sorted(_BUNDLED))})"
        )
    return factory()


def _parse_input(spec: str) -> tuple[str, np.ndarray]:
    if "=" not in spec:
        raise SystemExit(f"error: input {spec!r} must look like name=value")
    name, value = spec.split("=", 1)
    path = Path(value)
    if path.suffix == ".npy" and path.exists():
        return name, np.load(path)
    if path.exists():
        return name, np.loadtxt(path).ravel()
    try:
        return name, np.asarray(
            [float(v) for v in value.split(",") if v], dtype=np.float64
        )
    except ValueError:
        raise SystemExit(f"error: cannot parse input {spec!r}") from None


def _injection_plan(args: argparse.Namespace):
    """The :class:`~repro.faults.InjectionPlan` of the ``--inject``
    flags (``None`` when no faults were requested)."""
    specs = getattr(args, "inject", None)
    if not specs:
        return None
    from .faults import parse_inject_specs

    try:
        return parse_inject_specs(specs)
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None


def _make_cache(
    args: argparse.Namespace, faults=None
) -> CompileCache | None:
    """The compile cache selected by ``--cache-dir`` / ``--no-cache``.

    Default: the process-wide in-memory cache.  ``--cache-dir`` adds the
    on-disk layer; ``--no-cache`` disables caching entirely (the compile
    neither reads nor writes any cache state).  An injection plan with
    cache faults attaches a corrupting injector to a *private* disk
    cache (never the shared default — faulty runs must not poison it).
    """
    if getattr(args, "no_cache", False):
        return None
    cache_dir = getattr(args, "cache_dir", None)
    injector = None
    if faults is not None and faults.has_cache_faults:
        from .faults import FaultInjector

        injector = FaultInjector(faults)
        if not cache_dir:
            # Cache corruption needs a disk layer to corrupt; without
            # --cache-dir there is nothing to inject into.
            raise SystemExit(
                "error: --inject corrupt_cache requires --cache-dir"
            )
    if cache_dir:
        return CompileCache(cache_dir=cache_dir, injector=injector)
    return default_cache()


def _compile_from_args(args: argparse.Namespace, faults=None):
    """Compile the requested program through the selected cache (the
    injection plan, when present, partitions the cache key)."""
    cache = _make_cache(args, faults=faults)
    program = compile_w2(
        _load_source(args.program),
        unroll=args.unroll,
        cache=cache,
        faults=faults,
    )
    return program, cache


def _cache_status(cache: CompileCache | None) -> str:
    return obs.format_cache_status(
        cache.last_event if cache is not None else None,
        cache.stats if cache is not None else None,
    )


def _check_inputs(program, inputs: dict[str, np.ndarray]) -> None:
    """Reject inputs that do not fit the module's declared arrays with a
    clear message (shorter arrays are zero-padded, as documented)."""
    declared = {
        name: int(np.prod(dims)) if dims else 1
        for name, dims in program.ir.host_arrays.items()
    }
    for name, data in inputs.items():
        if name not in declared:
            raise SystemExit(
                f"error: module {program.module_name!r} has no array "
                f"{name!r} (declared: {', '.join(sorted(declared))})"
            )
        if data.size > declared[name]:
            raise SystemExit(
                f"error: input {name!r} has {data.size} elements but "
                f"module {program.module_name!r} declares "
                f"{name}[{declared[name]}]"
            )


def _simulate_with_exports(program, args, telemetry=None, cache=None, faults=None):
    """Simulate honouring ``--trace-out`` / ``--metrics-out``."""
    inputs = dict(_parse_input(spec) for spec in args.input or [])
    _check_inputs(program, inputs)
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    result = simulate(
        program,
        inputs,
        trace_limit=getattr(args, "trace", 0),
        record=bool(trace_out),
        faults=faults,
    )
    if trace_out:
        obs.write_chrome_trace(
            trace_out, obs.simulation_trace_events(result, telemetry)
        )
        print(f"chrome trace written to {trace_out}")
    if metrics_out:
        document = obs.metrics_to_json(
            result.machine_metrics,
            prediction=predict_performance(program),
            telemetry=telemetry,
            cache=cache,
        )
        Path(metrics_out).write_text(json.dumps(document, indent=2))
        print(f"metrics written to {metrics_out}")
    return result


def cmd_compile(args: argparse.Namespace) -> int:
    program, _cache = _compile_from_args(args)
    print(format_metrics_table([program.metrics]))
    report = decomposition_report(program)
    print(
        f"\ndecomposition: {report.cell_instructions} cell instrs, "
        f"{report.iu_instructions} IU instrs, "
        f"{report.iu_supplied_addresses} IU addresses, "
        f"{report.host_inputs} host inputs, {report.host_outputs} outputs"
    )
    print("\npredicted performance:")
    for line in format_performance(predict_performance(program)).splitlines():
        print(f"    {line}")
    if args.listing:
        print("\n" + format_cell_code(program.cell_code))
    return 0


def cmd_timing(args: argparse.Namespace) -> int:
    program, _cache = _compile_from_args(args)
    print(f"inter-cell skew: {program.skew.skew} cycles")
    for entry in program.skew.channels:
        print(
            f"    channel {entry.channel}: {entry.n_sends} sends / "
            f"{entry.n_receives} receives per cell, skew {entry.skew} "
            f"({entry.method})"
        )
    for requirement in program.buffers:
        print(
            f"    queue {requirement.channel}: needs {requirement.required} "
            f"of {program.config.queue_depth} words"
        )
    print(
        f"one cell runs {program.cell_code.total_cycles} cycles; the "
        f"{program.n_cells}-cell array finishes at cycle "
        f"{program.cell_code.total_cycles + program.skew.skew * (program.n_cells - 1)}"
    )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    plan = _injection_plan(args)
    program, cache = _compile_from_args(args, faults=plan)
    attempt = 0
    while True:
        injector = None
        if plan is not None:
            from .faults import FaultInjector

            injector = FaultInjector(plan, item=0, attempt=attempt)
        try:
            result = _simulate_with_exports(
                program, args, cache=cache, faults=injector
            )
            break
        except SimulationError as error:
            if plan is None:
                raise
            if attempt < getattr(args, "max_retries", 0):
                attempt += 1
                print(f"retry {attempt}: {type(error).__name__}: {error}")
                continue
            print(
                f"fault detected after {attempt + 1} attempt(s): "
                f"{type(error).__name__}: {error}",
                file=sys.stderr,
            )
            if injector is not None:
                for line in injector.report():
                    print(f"    injected: {line}", file=sys.stderr)
            return 3
    for line in result.fault_report:
        print(f"    injected (recovered): {line}")
    print(
        f"ran {program.module_name!r} on {program.n_cells} cells: "
        f"{result.total_cycles} cycles, skew {result.skew}"
    )
    for name, data in result.outputs.items():
        preview = np.array2string(data[:8], precision=5)
        print(f"    {name}[{data.size}] = {preview}{'...' if data.size > 8 else ''}")
    if args.trace:
        cells = tuple(args.trace_cells)
        if any(c < 0 or c >= program.n_cells for c in cells):
            raise SystemExit(
                f"error: --trace-cells {cells[0]} {cells[1]} out of range: "
                f"module {program.module_name!r} has cells 0..{program.n_cells - 1}"
            )
        print(
            "\n"
            + format_two_cell_trace(
                result.trace, cells=cells, annotation=_cache_status(cache)
            )
        )
    if args.output:
        np.savez(args.output, **result.outputs)
        print(f"outputs written to {args.output}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Per-phase compile timings plus cycle-level machine utilisation."""
    cache = _make_cache(args)
    with obs.collecting() as telemetry:
        program = compile_w2(
            _load_source(args.program), unroll=args.unroll, cache=cache
        )
        result = _simulate_with_exports(program, args, telemetry, cache=cache)
    print(_cache_status(cache))
    print(f"== compile phases: {program.module_name} ==")
    print(obs.format_phase_table(telemetry))
    print("\n== compile counters ==")
    print(obs.format_counters(telemetry))
    print(f"\n== machine utilisation: {program.n_cells} cells ==")
    print(obs.format_utilization(result.machine_metrics))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Predicted (compile-time) vs measured (simulated) performance."""
    program, cache = _compile_from_args(args)
    result = _simulate_with_exports(program, args, cache=cache)
    print(
        f"{program.module_name}: predicted vs measured "
        f"({program.n_cells} cells)"
    )
    print(obs.format_compare(predict_performance(program), result.machine_metrics))
    return 0


def _batch_input_sets(args: argparse.Namespace, program) -> list[dict[str, np.ndarray]]:
    """The per-item input dicts of a ``batch`` invocation.

    ``--inputs file.npz`` supplies every item at once (each array
    carries a leading item axis); otherwise one ``--input`` set (or the
    all-zeros default) is replicated ``--items`` times.
    """
    if args.inputs:
        path = Path(args.inputs)
        if not path.exists():
            raise SystemExit(f"error: --inputs file {args.inputs!r} not found")
        with np.load(path) as data:
            arrays = {name: np.asarray(data[name]) for name in data.files}
        if not arrays:
            raise SystemExit(f"error: {args.inputs!r} contains no arrays")
        lengths = {array.shape[0] for array in arrays.values() if array.ndim}
        if len(lengths) != 1:
            raise SystemExit(
                "error: --inputs arrays must share one leading item axis "
                f"(got lengths {sorted(lengths)})"
            )
        n_items = lengths.pop()
        items = [
            {name: array[i] for name, array in arrays.items()}
            for i in range(n_items)
        ]
        if items:
            _check_inputs(program, items[0])
        return items
    single = dict(_parse_input(spec) for spec in args.input or [])
    _check_inputs(program, single)
    if args.items < 1:
        raise SystemExit("error: --items must be >= 1")
    return [dict(single) for _ in range(args.items)]


def cmd_batch(args: argparse.Namespace) -> int:
    """Compile once (through the cache), stream many input sets."""
    plan = _injection_plan(args)
    program, cache = _compile_from_args(args, faults=plan)
    input_sets = _batch_input_sets(args, program)
    item_timeout = args.item_timeout
    if item_timeout is None and plan is not None and plan.has_worker_faults:
        item_timeout = 30.0  # an injected hang must not hang the batch
    runner = BatchRunner(
        program,
        processes=args.processes,
        faults=plan,
        max_retries=args.max_retries,
        item_timeout=item_timeout,
    )
    result = runner.run(input_sets)
    result.cache_event = cache.last_event if cache is not None else None
    plural = "es" if result.processes != 1 else ""
    print(
        f"batch: {result.n_items} items through {program.module_name!r} "
        f"on {program.n_cells} cells ({result.processes} process{plural})"
    )
    if result.retries:
        print(f"    {result.retries} retr{'ies' if result.retries != 1 else 'y'}")
    for failure in result.failures:
        print(f"    FAILED: {failure.describe()}", file=sys.stderr)
    print(
        f"    {result.cycles_per_item:.0f} cycles/item, "
        f"{result.total_cycles} machine cycles total"
    )
    print(
        f"    wall {result.wall_seconds:.3f}s, "
        f"{result.items_per_second:.1f} items/s"
    )
    print(f"    {_cache_status(cache)}")
    first_ok = next((r for r in result.results if r is not None), None)
    if args.metrics_out and first_ok is not None:
        # Cell schedules are data-independent, so one item's machine
        # metrics represent every item; batch aggregates ride along.
        document = obs.metrics_to_json(
            first_ok.machine_metrics, cache=cache, batch=result
        )
        Path(args.metrics_out).write_text(json.dumps(document, indent=2))
        print(f"metrics written to {args.metrics_out}")
    if args.output:
        if result.ok:
            np.savez(args.output, **result.stacked_outputs())
            print(f"outputs written to {args.output}")
        else:
            print(
                f"outputs NOT written ({result.n_failures} failed item(s))",
                file=sys.stderr,
            )
    return 1 if result.failures else 0


def _compile_unverified(args: argparse.Namespace):
    """Compile with the in-driver verification pass off — the ``verify``
    and ``check`` subcommands run the verifier themselves so they can
    print the full report instead of an exception."""
    cache = _make_cache(args)
    config = dataclasses.replace(DEFAULT_CONFIG, verify="off")
    program = compile_w2(
        _load_source(args.program),
        config=config,
        unroll=args.unroll,
        cache=cache,
    )
    return program


def cmd_verify(args: argparse.Namespace) -> int:
    """Compile, then verify the emitted artifacts independently; with
    ``--mutate N`` also check N seeded miscompiles are all flagged."""
    program = _compile_unverified(args)
    report = verify_program(program, level=args.level)
    print(f"{program.module_name}: {report.format()}")
    if not report.ok:
        return 3
    if args.mutate:
        return _mutation_smoke(program, args.mutate, args.seed)
    return 0


def _mutation_smoke(program, n_mutants: int, base_seed: int) -> int:
    produced = caught = 0
    attempts = 0
    while produced < n_mutants and attempts < n_mutants * 4:
        kind = MUTATION_KINDS[attempts % len(MUTATION_KINDS)]
        seed = base_seed + attempts // len(MUTATION_KINDS)
        attempts += 1
        mutant = mutate(program, kind, seed)
        if mutant is None:
            continue
        produced += 1
        report = verify_program(mutant.program, level="full")
        if report.ok:
            print(
                f"    ESCAPED {mutant.kind} seed {mutant.seed}: "
                f"{mutant.description}",
                file=sys.stderr,
            )
        else:
            caught += 1
            checks = ",".join(sorted(report.failed_checks()))
            print(f"    caught {mutant.kind} seed {mutant.seed}: {checks}")
    print(f"mutation smoke: {caught}/{produced} mutants flagged")
    return 0 if caught == produced else 3


def cmd_check(args: argparse.Namespace) -> int:
    """Compile + verify with a one-line verdict (exit 0 / 2 / 3)."""
    program = _compile_unverified(args)
    report = verify_program(program, level="full")
    verdict = "ok" if report.ok else "FAIL"
    print(
        f"{program.module_name}: compile ok "
        f"({program.metrics.cell_ucode} cell instrs, "
        f"{program.metrics.iu_ucode} IU instrs, skew {program.skew.skew}); "
        f"verification {verdict} "
        f"({len(report.checks_run)} checks, "
        f"{len(report.diagnostics)} diagnostics)"
    )
    if not report.ok:
        print(report.format(), file=sys.stderr)
        return 3
    return 0


def cmd_examples(_args: argparse.Namespace) -> int:
    for name, factory in sorted(_BUNDLED.items()):
        doc = (factory.__doc__ or "").strip().splitlines()[0]
        print(f"{name:<12} {doc}")
    return 0


def cmd_emit(args: argparse.Namespace) -> int:
    factory = _BUNDLED.get(args.name)
    if factory is None:
        raise SystemExit(f"error: unknown bundled program {args.name!r}")
    print(factory())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="The Warp / W2 compiler and simulator "
        "(Gross & Lam, PLDI 1986 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_cache_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cache-dir",
            metavar="DIR",
            help="persist compiled artefacts in DIR (content-addressed; "
            "corrupt entries silently recompile)",
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="bypass the compile cache entirely (never read or write)",
        )

    compile_p = sub.add_parser("compile", help="compile a W2 module")
    compile_p.add_argument("program", help="W2 file or bundled program name")
    compile_p.add_argument("--unroll", type=int, default=1)
    compile_p.add_argument(
        "--listing", action="store_true", help="print the cell microcode"
    )
    add_cache_options(compile_p)
    compile_p.set_defaults(func=cmd_compile)

    timing_p = sub.add_parser("timing", help="skew and buffer analysis")
    timing_p.add_argument("program")
    timing_p.add_argument("--unroll", type=int, default=1)
    add_cache_options(timing_p)
    timing_p.set_defaults(func=cmd_timing)

    def add_fault_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--inject",
            action="append",
            metavar="SPEC",
            help="inject a deterministic fault: kind:key=value,... "
            "(kinds: drop_send, dup_send, flip_bits, stall_cell, "
            "shrink_queue, corrupt_cache, worker_kill, worker_hang) or "
            "random:seed=N[,count=K]; repeatable — see docs/robustness.md",
        )
        p.add_argument(
            "--max-retries",
            type=int,
            default=0,
            metavar="N",
            help="retry a failed item up to N times with backoff "
            "(default: 0)",
        )

    def add_simulation_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--unroll", type=int, default=1)
        add_cache_options(p)
        p.add_argument(
            "--input",
            action="append",
            metavar="NAME=VALUES",
            help="input array: name=file.npy | name=file.txt | name=1,2,3 "
            "(missing inputs default to zeros)",
        )
        p.add_argument(
            "--trace-out",
            metavar="FILE",
            help="write a Chrome trace_event JSON (chrome://tracing, "
            "Perfetto): one lane per cell/queue plus IU and host lanes",
        )
        p.add_argument(
            "--metrics-out",
            metavar="FILE",
            help="write structured cycle-level metrics as JSON",
        )

    run_p = sub.add_parser("run", help="compile and simulate")
    run_p.add_argument("program")
    add_simulation_options(run_p)
    add_fault_options(run_p)
    run_p.add_argument("--output", help="write outputs to an .npz file")
    run_p.add_argument(
        "--trace", type=int, default=0, metavar="N",
        help="record and print the first N I/O events per cell",
    )
    run_p.add_argument(
        "--trace-cells", type=int, nargs=2, default=(0, 1), metavar=("I", "J"),
        help="which cell pair --trace prints (default: 0 1)",
    )
    run_p.set_defaults(func=cmd_run)

    profile_p = sub.add_parser(
        "profile",
        help="per-phase compile timings and machine utilisation summary",
    )
    profile_p.add_argument("program")
    add_simulation_options(profile_p)
    profile_p.set_defaults(func=cmd_profile)

    compare_p = sub.add_parser(
        "compare", help="predicted vs measured performance, with deltas"
    )
    compare_p.add_argument("program")
    add_simulation_options(compare_p)
    compare_p.set_defaults(func=cmd_compare)

    batch_p = sub.add_parser(
        "batch",
        help="compile once (cached), stream many input sets through the "
        "reused machine",
    )
    batch_p.add_argument("program")
    batch_p.add_argument("--unroll", type=int, default=1)
    batch_p.add_argument(
        "--items", type=int, default=1, metavar="N",
        help="replicate the --input set N times (ignored with --inputs)",
    )
    batch_p.add_argument(
        "--input",
        action="append",
        metavar="NAME=VALUES",
        help="one input set, replicated --items times: name=file.npy | "
        "name=file.txt | name=1,2,3",
    )
    batch_p.add_argument(
        "--inputs",
        metavar="FILE.npz",
        help="all items at once: every array carries a leading item axis",
    )
    batch_p.add_argument(
        "--processes", type=int, default=0, metavar="N",
        help="fan items out over N worker processes (default: in-process)",
    )
    batch_p.add_argument(
        "--output",
        help="write outputs stacked on a leading item axis to an .npz file",
    )
    batch_p.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write item-0 machine metrics plus cache/batch aggregates "
        "as JSON",
    )
    batch_p.add_argument(
        "--item-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-item wall-time bound in pool mode (a hung worker's "
        "item fails with ItemTimeoutError instead of hanging the batch)",
    )
    add_cache_options(batch_p)
    add_fault_options(batch_p)
    batch_p.set_defaults(func=cmd_batch)

    def unroll_arg(value: str):
        return value if value == "auto" else int(value)

    verify_p = sub.add_parser(
        "verify",
        help="compile, then re-derive and check the schedule invariants "
        "from the emitted artifacts (exit 3 on any diagnostic)",
    )
    verify_p.add_argument("program")
    verify_p.add_argument(
        "--unroll", type=unroll_arg, default=1, metavar="N|auto"
    )
    verify_p.add_argument(
        "--level",
        choices=("quick", "full"),
        default="full",
        help="quick: static hazard/register/IU checks; full: adds the "
        "dynamic stream/skew/occupancy/tau recomputation (default)",
    )
    verify_p.add_argument(
        "--mutate",
        type=int,
        default=0,
        metavar="N",
        help="also miscompile the program N times (seeded artifact "
        "mutations) and require the verifier to flag every mutant",
    )
    verify_p.add_argument(
        "--seed", type=int, default=0, help="base seed for --mutate"
    )
    add_cache_options(verify_p)
    verify_p.set_defaults(func=cmd_verify)

    check_p = sub.add_parser(
        "check",
        help="compile + verify with a one-line verdict (exit 0/2/3)",
    )
    check_p.add_argument("program")
    check_p.add_argument(
        "--unroll", type=unroll_arg, default=1, metavar="N|auto"
    )
    add_cache_options(check_p)
    check_p.set_defaults(func=cmd_check)

    examples_p = sub.add_parser("examples", help="list bundled programs")
    examples_p.set_defaults(func=cmd_examples)

    emit_p = sub.add_parser("emit", help="print a bundled program's W2 source")
    emit_p.add_argument("name")
    emit_p.set_defaults(func=cmd_emit)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `repro compile ... | head`
        return 0
    except VerificationError as error:
        # The in-driver verifier rejected the schedule: print the full
        # structured report, then the one-line summary.
        print(error.report.format(), file=sys.stderr)
        print(f"error[VerificationError]: {error}", file=sys.stderr)
        return 3
    except (W2Error, CompilationError) as error:
        # Unmappable / overflowing / ill-formed programs are user input
        # problems: one structured diagnostic line, no traceback.  A
        # QueueOverflowError's message already names the required queue
        # size, as the paper's compiler reports it.
        print(f"error[{type(error).__name__}]: {error}", file=sys.stderr)
        return 2
    except HostDataError as error:
        # Malformed host data (e.g. out-of-bounds I/O bindings) is a
        # usage problem, not a crash: report it without a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
