"""Command-line interface to the Warp compiler and simulator.

Usage (also via ``python -m repro``)::

    python -m repro compile  program.w2        # metrics + listings
    python -m repro run      program.w2 --input a=in.npy --output out.npz
    python -m repro timing   program.w2        # skew / buffer report
    python -m repro examples                   # list bundled programs
    python -m repro emit     polynomial        # print a bundled program

Inputs accept ``name=file.npy``, ``name=file.txt`` (whitespace floats)
or ``name=1.0,2.0,3.0`` inline.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from . import programs
from .cellcodegen.listing import format_cell_code
from .compiler import (
    compile_w2,
    decomposition_report,
    format_metrics_table,
    format_performance,
    predict_performance,
)
from .lang import Channel
from .machine import simulate
from .machine.trace import format_two_cell_trace

_BUNDLED = {
    "polynomial": programs.polynomial,
    "conv1d": programs.conv1d,
    "binop": programs.binop,
    "colorseg": programs.colorseg,
    "mandelbrot": programs.mandelbrot,
    "matmul": programs.matmul,
    "conv2d": programs.conv2d,
    "firbank": programs.fir_bank,
    "passthrough": programs.passthrough,
}


def _load_source(spec: str) -> str:
    """A file path, or the name of a bundled program."""
    path = Path(spec)
    if path.exists():
        return path.read_text()
    factory = _BUNDLED.get(spec)
    if factory is None:
        raise SystemExit(
            f"error: {spec!r} is neither a file nor a bundled program "
            f"(bundled: {', '.join(sorted(_BUNDLED))})"
        )
    return factory()


def _parse_input(spec: str) -> tuple[str, np.ndarray]:
    if "=" not in spec:
        raise SystemExit(f"error: input {spec!r} must look like name=value")
    name, value = spec.split("=", 1)
    path = Path(value)
    if path.suffix == ".npy" and path.exists():
        return name, np.load(path)
    if path.exists():
        return name, np.loadtxt(path).ravel()
    try:
        return name, np.asarray(
            [float(v) for v in value.split(",") if v], dtype=np.float64
        )
    except ValueError:
        raise SystemExit(f"error: cannot parse input {spec!r}") from None


def cmd_compile(args: argparse.Namespace) -> int:
    program = compile_w2(_load_source(args.program), unroll=args.unroll)
    print(format_metrics_table([program.metrics]))
    report = decomposition_report(program)
    print(
        f"\ndecomposition: {report.cell_instructions} cell instrs, "
        f"{report.iu_instructions} IU instrs, "
        f"{report.iu_supplied_addresses} IU addresses, "
        f"{report.host_inputs} host inputs, {report.host_outputs} outputs"
    )
    print("\npredicted performance:")
    for line in format_performance(predict_performance(program)).splitlines():
        print(f"    {line}")
    if args.listing:
        print("\n" + format_cell_code(program.cell_code))
    return 0


def cmd_timing(args: argparse.Namespace) -> int:
    program = compile_w2(_load_source(args.program), unroll=args.unroll)
    print(f"inter-cell skew: {program.skew.skew} cycles")
    for entry in program.skew.channels:
        print(
            f"    channel {entry.channel}: {entry.n_sends} sends / "
            f"{entry.n_receives} receives per cell, skew {entry.skew} "
            f"({entry.method})"
        )
    for requirement in program.buffers:
        print(
            f"    queue {requirement.channel}: needs {requirement.required} "
            f"of {program.config.queue_depth} words"
        )
    print(
        f"one cell runs {program.cell_code.total_cycles} cycles; the "
        f"{program.n_cells}-cell array finishes at cycle "
        f"{program.cell_code.total_cycles + program.skew.skew * (program.n_cells - 1)}"
    )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    program = compile_w2(_load_source(args.program), unroll=args.unroll)
    inputs = dict(_parse_input(spec) for spec in args.input or [])
    result = simulate(program, inputs, trace_limit=args.trace)
    print(
        f"ran {program.module_name!r} on {program.n_cells} cells: "
        f"{result.total_cycles} cycles, skew {result.skew}"
    )
    for name, data in result.outputs.items():
        preview = np.array2string(data[:8], precision=5)
        print(f"    {name}[{data.size}] = {preview}{'...' if data.size > 8 else ''}")
    if args.trace:
        print("\n" + format_two_cell_trace(result.trace))
    if args.output:
        np.savez(args.output, **result.outputs)
        print(f"outputs written to {args.output}")
    return 0


def cmd_examples(_args: argparse.Namespace) -> int:
    for name, factory in sorted(_BUNDLED.items()):
        doc = (factory.__doc__ or "").strip().splitlines()[0]
        print(f"{name:<12} {doc}")
    return 0


def cmd_emit(args: argparse.Namespace) -> int:
    factory = _BUNDLED.get(args.name)
    if factory is None:
        raise SystemExit(f"error: unknown bundled program {args.name!r}")
    print(factory())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="The Warp / W2 compiler and simulator "
        "(Gross & Lam, PLDI 1986 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_p = sub.add_parser("compile", help="compile a W2 module")
    compile_p.add_argument("program", help="W2 file or bundled program name")
    compile_p.add_argument("--unroll", type=int, default=1)
    compile_p.add_argument(
        "--listing", action="store_true", help="print the cell microcode"
    )
    compile_p.set_defaults(func=cmd_compile)

    timing_p = sub.add_parser("timing", help="skew and buffer analysis")
    timing_p.add_argument("program")
    timing_p.add_argument("--unroll", type=int, default=1)
    timing_p.set_defaults(func=cmd_timing)

    run_p = sub.add_parser("run", help="compile and simulate")
    run_p.add_argument("program")
    run_p.add_argument("--unroll", type=int, default=1)
    run_p.add_argument(
        "--input",
        action="append",
        metavar="NAME=VALUES",
        help="input array: name=file.npy | name=file.txt | name=1,2,3",
    )
    run_p.add_argument("--output", help="write outputs to an .npz file")
    run_p.add_argument(
        "--trace", type=int, default=0, metavar="N",
        help="record and print the first N I/O events per cell",
    )
    run_p.set_defaults(func=cmd_run)

    examples_p = sub.add_parser("examples", help="list bundled programs")
    examples_p.set_defaults(func=cmd_examples)

    emit_p = sub.add_parser("emit", help="print a bundled program's W2 source")
    emit_p.add_argument("name")
    emit_p.set_defaults(func=cmd_emit)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `repro compile ... | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
