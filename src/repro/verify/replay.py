"""Per-block replay of the emitted microcode — hazard and lifetime checks.

This module re-derives, from the instruction words alone, everything the
scheduler was supposed to guarantee inside one block (Section 6.1's
scheduling constraints), and cross-checks the block's side metadata
(``addr_demands``, ``io_events``) against the instructions that
supposedly produced it:

* **structural hazards** — per-cycle resource caps (one ALU op, one
  multiplier op, ``mem_ports`` memory references, one crossbar move, one
  distinct literal value, one enqueue and one dequeue per queue);
* **memory hazards** — same-cycle references to one literal address that
  mix a store with anything else (the executor's load-before-store
  order within a cycle would make the outcome order-dependent);
* **register lifetimes** — with delayed writeback (latency ``L`` lands
  the value at ``issue + L``), a register must never be read strictly
  between a write's issue and its landing (the value is in flight and
  the read is timing-ambiguous), two writes to one register must land
  in issue order, and a temp register must not be read before its first
  in-block write lands (temps carry no value across blocks);
* **drain** — every in-flight effect lands within the block's length,
  so loop iterations and successor blocks start from settled state;
* **slot order** — the ``addr_demands`` cycles/kinds equal the
  queue-addressed memory operations in instruction-slot order (the
  PR 3 bug class), and ``io_events`` equals the sends/receives actually
  present in the instruction words.

Everything reads ``CellCode`` only — never the IR that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cellcodegen.emit import CellCode, ScheduledBlock
from ..cellcodegen.isa import AddressSource, Lit, MicroInstr, Reg
from ..config import CellConfig
from ..ir.dag import OpKind
from .report import VerificationReport


@dataclass(frozen=True)
class RegWrite:
    """One register write derived from an instruction field."""

    issue: int
    landing: int
    reg: int
    unit: str  # 'alu' | 'mpy' | 'load' | 'deq' | 'move'


@dataclass
class BlockReplay:
    """Everything later verifier stages need from one block's replay."""

    block_id: int
    length: int
    #: ``(cycle, is_load)`` of queue-addressed memory ops, in
    #: instruction-slot order.
    addr_ops: list[tuple[int, bool]] = field(default_factory=list)
    #: ``(kind, queue-str) -> cycles`` of the I/O ops actually present
    #: in the instruction words, in slot order.
    io_ops: dict[tuple[OpKind, str], list[int]] = field(default_factory=dict)


def _landing(issue: int, latency: int) -> int:
    # All effects take at least one cycle to land.
    return issue + max(latency, 1)


def _register_writes(
    cycle: int, instr: MicroInstr, config: CellConfig
) -> list[RegWrite]:
    writes: list[RegWrite] = []
    for deq in instr.deqs:
        writes.append(
            RegWrite(
                cycle,
                _landing(cycle, config.queue_latency),
                deq.dest.index,
                "deq",
            )
        )
    for mem in instr.mem:
        if mem.is_load and mem.reg is not None:
            writes.append(
                RegWrite(
                    cycle,
                    _landing(cycle, config.mem_read_latency),
                    mem.reg.index,
                    "load",
                )
            )
    if instr.alu is not None:
        writes.append(
            RegWrite(
                cycle,
                _landing(cycle, config.alu_latency),
                instr.alu.dest.index,
                "alu",
            )
        )
    if instr.mpy is not None:
        latency = (
            config.div_latency
            if instr.mpy.op is OpKind.FDIV
            else config.mpy_latency
        )
        writes.append(
            RegWrite(cycle, _landing(cycle, latency), instr.mpy.dest.index, "mpy")
        )
    if instr.move is not None:
        writes.append(
            RegWrite(
                cycle,
                _landing(cycle, config.move_latency),
                instr.move.dest.index,
                "move",
            )
        )
    return writes


def _register_reads(cycle: int, instr: MicroInstr) -> list[tuple[int, int]]:
    reads: list[tuple[int, int]] = []

    def operand(op) -> None:
        if isinstance(op, Reg):
            reads.append((cycle, op.index))

    if instr.alu is not None:
        for source in instr.alu.sources:
            operand(source)
    if instr.mpy is not None:
        for source in instr.mpy.sources:
            operand(source)
    if instr.move is not None:
        operand(instr.move.source)
    for enq in instr.enqs:
        operand(enq.source)
    for mem in instr.mem:
        if not mem.is_load and mem.store_value is not None:
            operand(mem.store_value)
    return reads


def _literal_values(instr: MicroInstr) -> set[float]:
    values: set[float] = set()

    def operand(op) -> None:
        if isinstance(op, Lit):
            values.add(op.value)

    if instr.alu is not None:
        for source in instr.alu.sources:
            operand(source)
    if instr.mpy is not None:
        for source in instr.mpy.sources:
            operand(source)
    if instr.move is not None:
        operand(instr.move.source)
    for enq in instr.enqs:
        operand(enq.source)
    for mem in instr.mem:
        if not mem.is_load and mem.store_value is not None:
            operand(mem.store_value)
    return values


def _check_structural(
    block: ScheduledBlock,
    cycle: int,
    instr: MicroInstr,
    config: CellConfig,
    report: VerificationReport,
) -> None:
    if len(instr.mem) > config.mem_ports:
        report.add(
            "hazard.mem_ports",
            f"{len(instr.mem)} memory references in one cycle "
            f"(the cell has {config.mem_ports} ports)",
            block_id=block.block_id,
            cycle=cycle,
        )
    literals = _literal_values(instr)
    if len(literals) > config.literal_ports:
        report.add(
            "hazard.literal_ports",
            f"{len(literals)} distinct literal values in one "
            f"instruction (one literal field)",
            block_id=block.block_id,
            cycle=cycle,
        )
    per_queue_enq: dict[str, int] = {}
    per_queue_deq: dict[str, int] = {}
    for enq in instr.enqs:
        per_queue_enq[str(enq.queue)] = per_queue_enq.get(str(enq.queue), 0) + 1
    for deq in instr.deqs:
        per_queue_deq[str(deq.queue)] = per_queue_deq.get(str(deq.queue), 0) + 1
    for queue, count in per_queue_enq.items():
        if count > 1:
            report.add(
                "hazard.queue_ports",
                f"{count} enqueues to {queue} in one cycle",
                block_id=block.block_id,
                cycle=cycle,
            )
    for queue, count in per_queue_deq.items():
        if count > 1:
            report.add(
                "hazard.queue_ports",
                f"{count} dequeues from {queue} in one cycle",
                block_id=block.block_id,
                cycle=cycle,
            )
    # Same-cycle references to one literal address: the executor applies
    # loads before stores within a cycle, so a store paired with any
    # other reference to the same word is order-sensitive.
    touched: dict[int, list[bool]] = {}
    for mem in instr.mem:
        if mem.address_source is AddressSource.LITERAL:
            assert mem.address is not None
            if not (0 <= mem.address < config.memory_words):
                report.add(
                    "hazard.address_bounds",
                    f"literal address {mem.address} outside the "
                    f"{config.memory_words}-word data memory",
                    block_id=block.block_id,
                    cycle=cycle,
                )
            touched.setdefault(mem.address, []).append(mem.is_load)
    for address, kinds in touched.items():
        if len(kinds) > 1 and not all(kinds):
            report.add(
                "hazard.mem_conflict",
                f"same-cycle store and {'load' if any(kinds) else 'store'} "
                f"to address {address}",
                block_id=block.block_id,
                cycle=cycle,
            )


def _check_registers(
    block: ScheduledBlock,
    writes: list[RegWrite],
    reads: list[tuple[int, int]],
    pinned: set[int],
    report: VerificationReport,
) -> None:
    by_reg: dict[int, list[RegWrite]] = {}
    for write in writes:
        by_reg.setdefault(write.reg, []).append(write)
    reads_by_reg: dict[int, list[int]] = {}
    for cycle, reg in reads:
        reads_by_reg.setdefault(reg, []).append(cycle)

    for reg, reg_writes in by_reg.items():
        reg_writes.sort(key=lambda w: (w.issue, w.landing))
        for first, second in zip(reg_writes, reg_writes[1:]):
            if second.issue == first.issue:
                report.add(
                    "register.waw_same_cycle",
                    f"two writes to r{reg} issue in cycle {first.issue} "
                    f"({first.unit} and {second.unit})",
                    block_id=block.block_id,
                    cycle=first.issue,
                )
            elif second.landing <= first.landing:
                report.add(
                    "register.waw_order",
                    f"r{reg}: the {second.unit} write issued at cycle "
                    f"{second.issue} lands at {second.landing}, not after "
                    f"the {first.unit} write issued at {first.issue} "
                    f"(lands {first.landing}) — final value is "
                    "issue-order-inverted",
                    block_id=block.block_id,
                    cycle=second.issue,
                )
        if block.length < reg_writes[-1].landing:
            report.add(
                "register.drain",
                f"r{reg}: a {reg_writes[-1].unit} write issued at cycle "
                f"{reg_writes[-1].issue} lands at {reg_writes[-1].landing}, "
                f"past the block's {block.length}-cycle window",
                block_id=block.block_id,
                cycle=reg_writes[-1].issue,
            )

    for reg, cycles in reads_by_reg.items():
        reg_writes = by_reg.get(reg, [])
        first_landing = reg_writes[0].landing if reg_writes else None
        for cycle in cycles:
            in_flight = next(
                (w for w in reg_writes if w.issue < cycle < w.landing), None
            )
            if in_flight is not None:
                report.add(
                    "register.in_flight_read",
                    f"r{reg} read at cycle {cycle} while the {in_flight.unit} "
                    f"write issued at {in_flight.issue} is still in flight "
                    f"(lands {in_flight.landing})",
                    block_id=block.block_id,
                    cycle=cycle,
                )
            elif reg not in pinned and (
                first_landing is None or cycle < first_landing
            ):
                # Temps are block-local: reading one before its first
                # in-block value lands observes leftover garbage.
                report.add(
                    "register.temp_read_before_write",
                    f"temp r{reg} read at cycle {cycle} before any value "
                    f"lands in it this block",
                    block_id=block.block_id,
                    cycle=cycle,
                )


def _check_metadata(
    block: ScheduledBlock, replay: BlockReplay, report: VerificationReport
) -> None:
    declared_addrs = [(d.cycle, d.is_load) for d in block.addr_demands]
    if declared_addrs != replay.addr_ops:
        report.add(
            "slot_order.addr_demands",
            f"addr_demands declares {declared_addrs} but the instruction "
            f"words consume IU addresses as {replay.addr_ops} "
            "(cycle, is_load) in slot order",
            block_id=block.block_id,
        )
    declared_io: dict[tuple[OpKind, str], list[int]] = {}
    for event in block.io_events:
        declared_io.setdefault((event.kind, str(event.queue)), []).append(
            event.cycle
        )
    actual_io = {
        key: sorted(cycles) for key, cycles in replay.io_ops.items()
    }
    declared_sorted = {
        key: sorted(cycles) for key, cycles in declared_io.items()
    }
    if declared_sorted != actual_io:
        report.add(
            "stream.io_events",
            f"io_events metadata {declared_sorted} does not match the "
            f"sends/receives present in the instruction words {actual_io}",
            block_id=block.block_id,
        )


def replay_block(
    block: ScheduledBlock,
    config: CellConfig,
    pinned: set[int],
    report: VerificationReport,
) -> BlockReplay:
    """Re-derive one block's hazards and metadata from its instructions."""
    replay = BlockReplay(block_id=block.block_id, length=block.length)
    if len(block.instructions) != block.length:
        report.add(
            "hazard.block_length",
            f"{len(block.instructions)} instruction words but a declared "
            f"length of {block.length} cycles",
            block_id=block.block_id,
        )
    writes: list[RegWrite] = []
    reads: list[tuple[int, int]] = []
    for cycle, instr in enumerate(block.instructions):
        if instr.is_nop():
            continue
        _check_structural(block, cycle, instr, config, report)
        writes.extend(_register_writes(cycle, instr, config))
        reads.extend(_register_reads(cycle, instr))
        for mem in instr.mem:
            if mem.address_source is not AddressSource.LITERAL:
                replay.addr_ops.append((cycle, mem.is_load))
        for deq in instr.deqs:
            replay.io_ops.setdefault(
                (OpKind.RECV, str(deq.queue)), []
            ).append(cycle)
        for enq in instr.enqs:
            replay.io_ops.setdefault(
                (OpKind.SEND, str(enq.queue)), []
            ).append(cycle)
    _check_registers(block, writes, reads, pinned, report)
    _check_metadata(block, replay, report)
    return replay


def replay_cell_code(
    code: CellCode, report: VerificationReport
) -> dict[int, BlockReplay]:
    """Replay every block; returns per-block data for later stages."""
    for check in (
        "hazard.mem_ports",
        "hazard.literal_ports",
        "hazard.queue_ports",
        "hazard.mem_conflict",
        "hazard.address_bounds",
        "hazard.block_length",
        "register.in_flight_read",
        "register.waw_order",
        "register.waw_same_cycle",
        "register.temp_read_before_write",
        "register.drain",
        "slot_order.addr_demands",
        "stream.io_events",
    ):
        report.ran(check)
    pinned = {reg.index for reg in code.pinned.values()}
    return {
        block.block_id: replay_block(block, code.config, pinned, report)
        for block in code.blocks()
    }
