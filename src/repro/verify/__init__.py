"""Independent post-compile schedule verification (and its mutation
harness).

The verifier re-derives the paper's invariants — Section 6.1 hazard
freedom, register lifetimes under delayed writeback, Section 6.2.1
skew/tau timing, Section 6.2.2 queue occupancy, Section 6.3 IU address
delivery — from the emitted artifacts alone and cross-checks them
against what the compiler declared.  See ``docs/verification.md``.
"""

from .core import LEVELS, resolve_level, verify_artifacts, verify_program
from .mutations import MUTATION_KINDS, Mutant, mutate, mutation_suite
from .report import Diagnostic, VerificationReport

__all__ = [
    "Diagnostic",
    "LEVELS",
    "MUTATION_KINDS",
    "Mutant",
    "VerificationReport",
    "mutate",
    "mutation_suite",
    "resolve_level",
    "verify_artifacts",
    "verify_program",
]
