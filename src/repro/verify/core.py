"""The independent schedule verifier — orchestration and levels.

``verify_artifacts`` re-derives the paper's invariants from the emitted
artifacts alone (``CellCode``, ``IUProgram``, ``HostProgram`` — never
the IR that produced them) and cross-checks them against the compiler's
declared ``skew`` / buffer requirements.  Three levels:

* ``off``   — nothing runs;
* ``quick`` — static per-block replay (hazards, register lifetimes,
  metadata) and the static IU address-path checks;
* ``full``  — adds the dynamic IU emission walk, exact stream
  re-enumeration (conservation, skew, occupancy) and the tau(n)
  closed-form cross-check.

``WarpConfig.verify`` defaults to ``"default"``, which resolves through
the ``REPRO_VERIFY`` environment variable (the test suite sets it to
``full``) and falls back to ``off`` for production compiles, keeping the
verifier out of the hot path unless asked for.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from ..cellcodegen.emit import CellCode
from ..config import WarpConfig
from ..hostcodegen.io_program import HostProgram
from ..iucodegen.codegen import IUProgram
from ..obs import get_telemetry
from ..timing.buffers import BufferRequirement
from ..timing.skew import SkewResult
from .iupath import check_iu_path
from .replay import replay_cell_code
from .report import VerificationReport
from .streams import check_streams

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..compiler.driver import CompiledProgram

LEVELS = ("off", "quick", "full")

#: Environment variable consulted when ``WarpConfig.verify`` is left at
#: ``"default"``.
ENV_VAR = "REPRO_VERIFY"


def resolve_level(level: str) -> str:
    """Resolve a configured verify level to one of :data:`LEVELS`."""
    if level == "default":
        level = os.environ.get(ENV_VAR, "off") or "off"
    if level not in LEVELS:
        raise ValueError(
            f"unknown verify level {level!r}; expected one of "
            f"{', '.join(LEVELS)} (or 'default')"
        )
    return level


def verify_artifacts(
    cell_code: CellCode,
    iu_program: IUProgram,
    host_program: HostProgram,
    *,
    skew: SkewResult,
    buffers: list[BufferRequirement],
    config: WarpConfig,
    n_cells: int,
    level: str = "full",
    max_events: int | None = 200_000,
) -> VerificationReport:
    """Run the verifier over one compiled module's artifacts."""
    level = resolve_level(level)
    report = VerificationReport(level=level)
    if level == "off":
        return report
    obs = get_telemetry()
    with obs.span("verify"):
        replays = replay_cell_code(cell_code, report)
        check_iu_path(
            cell_code,
            iu_program,
            config,
            replays,
            report,
            max_events=max_events if level == "full" else 0,
        )
        if level == "full":
            check_streams(
                cell_code,
                iu_program,
                host_program,
                skew,
                buffers,
                config,
                n_cells,
                report,
                max_events=max_events,
            )
    obs.counter("verify.checks", len(report.checks_run))
    obs.counter("verify.diagnostics", len(report.diagnostics))
    return report


def verify_program(
    program: "CompiledProgram", level: str | None = None
) -> VerificationReport:
    """Verify an already-compiled program (CLI / test entry point)."""
    if level is None:
        level = resolve_level(program.config.verify)
        if level == "off":
            level = "full"
    return verify_artifacts(
        program.cell_code,
        program.iu_program,
        program.host_program,
        skew=program.skew,
        buffers=program.buffers,
        config=program.config,
        n_cells=program.n_cells,
        level=level,
    )
