"""IU address-path verification — the PR 3 bug class, checked statically.

The cells consume IU-supplied addresses strictly in instruction-slot
order (the address path is a FIFO), so the IU program is correct only if
its per-block emission stream lines up, position by position, with the
queue-addressed memory operations re-derived from the instruction words:
same count, same deadline cycles, same affine expressions as the block's
``addr_demands`` declared.  On top of the pairing, the emission schedule
itself must be feasible: every address emitted at or before its
deadline, within the lookbehind window, at most ``emit_ports`` per
cycle, and (dynamically) non-decreasing on the absolute timeline with
every address inside the cell's data memory.
"""

from __future__ import annotations

from ..cellcodegen.emit import CellCode, ScheduledBlock, ScheduledLoop
from ..config import WarpConfig
from ..iucodegen.codegen import IUBlock, IULoop, IUProgram, MAX_LOOKBEHIND
from .replay import BlockReplay
from .report import VerificationReport

IU_CHECKS = (
    "iu.shape",
    "iu.slot_order",
    "iu.expressions",
    "iu.deadline",
    "iu.emit_ports",
    "iu.fifo_order",
    "iu.address_bounds",
)


def check_iu_path(
    code: CellCode,
    iu: IUProgram,
    config: WarpConfig,
    replays: dict[int, BlockReplay],
    report: VerificationReport,
    max_events: int | None = 200_000,
) -> None:
    for check in IU_CHECKS:
        report.ran(check)
    shape_ok = _check_tree(
        code.items, iu.items, iu, config, replays, report
    )
    if not shape_ok:
        return
    if max_events == 0:  # static-only (quick) level
        return
    total = _dynamic_emissions(iu.items)
    if max_events is not None and total > max_events:
        report.notes.append(
            f"iu: {total} dynamic emissions exceed the {max_events} "
            "budget; dynamic address checks skipped"
        )
        return
    previous = None
    count = 0
    for emit_time, deadline_time, address in iu.emission_times():
        count += 1
        if previous is not None and emit_time < previous:
            report.add(
                "iu.fifo_order",
                f"emission at absolute cycle {emit_time} follows one at "
                f"{previous} — the address path FIFO would reorder them",
            )
        previous = emit_time
        if emit_time > deadline_time:
            report.add(
                "iu.deadline",
                f"address for absolute cycle {deadline_time} emitted at "
                f"{emit_time}, after its deadline",
            )
        if not (0 <= address < config.cell.memory_words):
            report.add(
                "iu.address_bounds",
                f"emitted address {address} outside the "
                f"{config.cell.memory_words}-word data memory",
            )
    if count != total:
        report.add(
            "iu.shape",
            f"emission walk produced {count} addresses but the static "
            f"tree promises {total}",
        )


def _check_tree(
    cell_items,
    iu_items,
    iu: IUProgram,
    config: WarpConfig,
    replays,
    report: VerificationReport,
) -> bool:
    """Walk both trees in lockstep; any shape divergence poisons the
    deeper checks, so report it and stop."""
    if len(cell_items) != len(iu_items):
        report.add(
            "iu.shape",
            f"cell program has {len(cell_items)} items where the IU "
            f"program has {len(iu_items)}",
        )
        return False
    ok = True
    for cell_item, iu_item in zip(cell_items, iu_items):
        if isinstance(cell_item, ScheduledBlock):
            if not isinstance(iu_item, IUBlock):
                report.add(
                    "iu.shape",
                    f"cell block {cell_item.block_id} pairs with an IU "
                    "loop",
                    block_id=cell_item.block_id,
                )
                ok = False
                continue
            if (
                iu_item.block_id != cell_item.block_id
                or iu_item.length != cell_item.length
            ):
                report.add(
                    "iu.shape",
                    f"IU block {iu_item.block_id} (length "
                    f"{iu_item.length}) pairs with cell block "
                    f"{cell_item.block_id} (length {cell_item.length})",
                    block_id=cell_item.block_id,
                )
                ok = False
                continue
            _check_block(cell_item, iu_item, iu, config, replays, report)
        else:
            assert isinstance(cell_item, ScheduledLoop)
            if not isinstance(iu_item, IULoop):
                report.add(
                    "iu.shape",
                    f"cell loop {cell_item.loop_id} pairs with an IU block",
                )
                ok = False
                continue
            if (
                iu_item.loop_id != cell_item.loop_id
                or iu_item.trip != cell_item.trip
                or iu_item.var != cell_item.var
                or iu_item.start != cell_item.start
                or iu_item.step != cell_item.step
            ):
                report.add(
                    "iu.shape",
                    f"IU loop {iu_item.loop_id} "
                    f"({iu_item.var}: {iu_item.start} step {iu_item.step} "
                    f"x{iu_item.trip}) diverges from cell loop "
                    f"{cell_item.loop_id} ({cell_item.var}: "
                    f"{cell_item.start} step {cell_item.step} "
                    f"x{cell_item.trip})",
                )
                ok = False
                continue
            ok = _check_tree(
                cell_item.body, iu_item.body, iu, config, replays, report
            ) and ok
    return ok


def _check_block(
    block: ScheduledBlock,
    iu_block: IUBlock,
    iu: IUProgram,
    config: WarpConfig,
    replays: dict[int, BlockReplay],
    report: VerificationReport,
) -> None:
    replay = replays.get(block.block_id)
    slot_cycles = (
        [cycle for cycle, _is_load in replay.addr_ops]
        if replay is not None
        else [d.cycle for d in block.addr_demands]
    )
    deadlines = [e.deadline for e in iu_block.emissions]
    if deadlines != slot_cycles:
        report.add(
            "iu.slot_order",
            f"IU emission deadlines {deadlines} do not match the "
            f"queue-addressed memory ops at cycles {slot_cycles} "
            "(instruction-slot order) — same-cycle addresses would be "
            "consumed by the wrong reference",
            block_id=block.block_id,
        )
        return
    # Pair by position: emission k feeds the k-th addressed op, whose
    # declared expression must be the one the IU will evaluate.
    for position, (emission, demand) in enumerate(
        zip(iu_block.emissions, block.addr_demands)
    ):
        if not (0 <= emission.expr_index < len(iu.plan.expressions)):
            report.add(
                "iu.expressions",
                f"emission {position} references expression "
                f"{emission.expr_index}, outside the plan's "
                f"{len(iu.plan.expressions)} expressions",
                block_id=block.block_id,
                cycle=emission.deadline,
            )
            continue
        expression = iu.plan.expressions[emission.expr_index]
        if expression != demand.expression:
            report.add(
                "iu.expressions",
                f"emission {position} computes {expression} but the cell "
                f"declared {demand.expression} for the reference at "
                f"cycle {demand.cycle}",
                block_id=block.block_id,
                cycle=demand.cycle,
            )
        if emission.cycle > emission.deadline:
            report.add(
                "iu.deadline",
                f"emission {position} scheduled at IU cycle "
                f"{emission.cycle}, after its cycle-{emission.deadline} "
                "deadline",
                block_id=block.block_id,
                cycle=emission.deadline,
            )
        if emission.deadline - emission.cycle > MAX_LOOKBEHIND:
            report.add(
                "iu.deadline",
                f"emission {position} borrows "
                f"{emission.deadline - emission.cycle} cycles, past the "
                f"{MAX_LOOKBEHIND}-cycle lookbehind window",
                block_id=block.block_id,
                cycle=emission.deadline,
            )
    port_use: dict[int, int] = {}
    for emission in iu_block.emissions:
        port_use[emission.cycle] = port_use.get(emission.cycle, 0) + 1
    for cycle, used in sorted(port_use.items()):
        if used > config.iu.emit_ports:
            report.add(
                "iu.emit_ports",
                f"{used} addresses emitted in IU cycle {cycle} "
                f"({config.iu.emit_ports} emit ports)",
                block_id=block.block_id,
                cycle=cycle,
            )
    cycles = [e.cycle for e in iu_block.emissions]
    if any(b < a for a, b in zip(cycles, cycles[1:])):
        report.add(
            "iu.fifo_order",
            f"emission cycles {cycles} are not FIFO-ordered within the "
            "block",
            block_id=block.block_id,
        )


def _dynamic_emissions(items) -> int:
    total = 0
    for item in items:
        if isinstance(item, IUBlock):
            total += len(item.emissions)
        else:
            total += item.trip * _dynamic_emissions(item.body)
    return total
