"""Structured diagnostics of the independent schedule verifier.

Every invariant violation is a :class:`Diagnostic` carrying a dotted
check identifier (stable, script-friendly), a human message, and the
artifact location (block / cycle / channel) it anchors to.  A
:class:`VerificationReport` aggregates the diagnostics of one pass
together with the list of checks that actually ran, so "no diagnostics"
is distinguishable from "nothing was checked".
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Diagnostic:
    """One invariant violation found in the emitted artifacts."""

    #: Stable dotted identifier, e.g. ``hazard.mem_ports`` or
    #: ``stream.conservation``.
    check: str
    message: str
    block_id: int | None = None
    cycle: int | None = None
    channel: str | None = None

    def __str__(self) -> str:
        where = []
        if self.block_id is not None:
            where.append(f"block {self.block_id}")
        if self.cycle is not None:
            where.append(f"cycle {self.cycle}")
        if self.channel is not None:
            where.append(f"channel {self.channel}")
        prefix = f"{', '.join(where)}: " if where else ""
        return f"[{self.check}] {prefix}{self.message}"


@dataclass
class VerificationReport:
    """The outcome of one verifier pass over one compiled module."""

    level: str
    checks_run: list[str] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Non-fatal remarks (budget fallbacks, skipped dynamic checks).
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def add(
        self,
        check: str,
        message: str,
        block_id: int | None = None,
        cycle: int | None = None,
        channel: str | None = None,
    ) -> None:
        self.diagnostics.append(
            Diagnostic(
                check=check,
                message=message,
                block_id=block_id,
                cycle=cycle,
                channel=channel,
            )
        )

    def ran(self, check: str) -> None:
        if check not in self.checks_run:
            self.checks_run.append(check)

    def failed_checks(self) -> set[str]:
        return {d.check for d in self.diagnostics}

    def format(self) -> str:
        """A terminal-friendly rendering of the report."""
        lines = [
            f"verification: {len(self.checks_run)} checks, "
            f"{len(self.diagnostics)} diagnostic(s) "
            f"[level {self.level}]"
        ]
        for diagnostic in self.diagnostics:
            lines.append(f"    FAIL {diagnostic}")
        for note in self.notes:
            lines.append(f"    note: {note}")
        if self.ok:
            lines.append("    all invariants hold")
        return "\n".join(lines)

    def summary(self, limit: int = 4) -> str:
        """The first few diagnostics on one line each (for exceptions)."""
        shown = [str(d) for d in self.diagnostics[:limit]]
        extra = len(self.diagnostics) - len(shown)
        if extra > 0:
            shown.append(f"... and {extra} more")
        return "; ".join(shown)
