"""Stream conservation, skew, queue occupancy and tau(n) verification.

All checks re-derive the event streams from the emitted ``CellCode``
(whose ``io_events`` the replay stage already proved identical to the
instruction words) and compare:

* **conservation** — per channel, a cell's receives never exceed its
  left neighbour's sends, and the host program feeds/collects exactly
  the counts the schedule consumes/produces (host -> cells ->
  collector);
* **skew** — the chosen inter-cell skew covers the exact per-channel
  minimum (re-enumerated from scratch), respects the floor of 1 that
  keeps the address path ahead, and the paper's closed-form bound
  dominates the exact method (Section 6.2.1);
* **occupancy** — re-derived queue occupancy at the chosen skew matches
  the declared :class:`BufferRequirement` and fits ``queue_depth``; the
  address-path queue of the most-skewed cell fits
  ``address_queue_depth`` (Section 6.2.2);
* **tau** — every statement's closed-form tau(n) reproduces the
  enumerated event times over its whole domain (Section 6.2.1).
"""

from __future__ import annotations

import numpy as np

from ..cellcodegen.emit import CellCode
from ..config import WarpConfig
from ..errors import MappingError
from ..hostcodegen.io_program import HostProgram
from ..iucodegen.codegen import IUProgram
from ..lang.ast import Channel
from ..timing.buffers import BufferRequirement, occupancy_requirement
from ..timing.events import TooManyEventsError, stream_event_times
from ..timing.events import stream_times_by_statement
from ..timing.skew import SkewResult, minimum_skew_bound
from ..timing.tau import TimingFunction
from ..timing.vectors import characterize_stream, input_stream, output_stream
from .report import VerificationReport

STREAM_CHECKS = (
    "stream.conservation",
    "stream.host_counts",
    "skew.floor",
    "skew.exact",
    "skew.bound_dominates",
    "skew.channel_counts",
    "occupancy.queue_depth",
    "occupancy.declared",
    "occupancy.address_queue",
    "tau.closed_form",
)


def check_streams(
    code: CellCode,
    iu: IUProgram,
    host: HostProgram,
    skew_result: SkewResult,
    buffers: list[BufferRequirement],
    config: WarpConfig,
    n_cells: int,
    report: VerificationReport,
    max_events: int | None = 200_000,
    tau_budget: int = 20_000,
) -> None:
    for check in STREAM_CHECKS:
        report.ran(check)
    if skew_result.skew < 1:
        report.add(
            "skew.floor",
            f"chosen skew {skew_result.skew} is below the floor of 1 "
            "that keeps the address path one hop ahead",
        )
    declared_buffers = {str(b.channel): b for b in buffers}
    for channel in (Channel.X, Channel.Y):
        try:
            sends = stream_event_times(
                code, output_stream(channel), max_events
            )
            recvs = stream_event_times(
                code, input_stream(channel), max_events
            )
        except TooManyEventsError:
            report.notes.append(
                f"channel {channel}: event streams exceed the "
                f"{max_events} budget; exact stream checks skipped"
            )
            continue
        _check_host_counts(host, channel, sends, recvs, report)
        if n_cells > 1:
            _check_channel(
                code,
                channel,
                sends,
                recvs,
                skew_result,
                declared_buffers.get(str(channel)),
                config,
                report,
            )
        _check_tau(code, channel, report, max_events, tau_budget)
    if n_cells > 1:
        _check_address_queue(
            code, iu, skew_result, config, n_cells, report, max_events
        )


def _check_host_counts(
    host: HostProgram,
    channel: Channel,
    sends: np.ndarray,
    recvs: np.ndarray,
    report: VerificationReport,
) -> None:
    """Host -> cell 0 and last cell -> collector conservation: the host
    program must feed/collect exactly what the schedule moves."""
    try:
        fed = host.input_count(channel)
        collected = host.output_count(channel)
    except KeyError as error:
        report.add(
            "stream.host_counts",
            f"host program references unknown I/O statement {error} — "
            "the schedule and the host sequences have diverged",
            channel=str(channel),
        )
        return
    if fed != recvs.size:
        report.add(
            "stream.host_counts",
            f"the host feeds {fed} items but cell 0's schedule receives "
            f"{recvs.size}",
            channel=str(channel),
        )
    if collected != sends.size:
        report.add(
            "stream.host_counts",
            f"the host collects {collected} items but the last cell's "
            f"schedule sends {sends.size}",
            channel=str(channel),
        )


def _check_channel(
    code: CellCode,
    channel: Channel,
    sends: np.ndarray,
    recvs: np.ndarray,
    skew_result: SkewResult,
    declared: BufferRequirement | None,
    config: WarpConfig,
    report: VerificationReport,
) -> None:
    if recvs.size > sends.size:
        report.add(
            "stream.conservation",
            f"a cell receives {recvs.size} items from its left "
            f"neighbour but the neighbour only sends {sends.size}",
            channel=str(channel),
        )
        return
    try:
        entry = skew_result.channel(channel)
    except KeyError:
        report.add(
            "skew.channel_counts",
            "the skew result carries no entry for this channel",
            channel=str(channel),
        )
        entry = None
    if entry is not None and (
        entry.n_sends != sends.size or entry.n_receives != recvs.size
    ):
        report.add(
            "skew.channel_counts",
            f"skew report claims {entry.n_sends} sends / "
            f"{entry.n_receives} receives, the schedule has "
            f"{sends.size} / {recvs.size}",
            channel=str(channel),
        )
    exact = 0
    if recvs.size:
        exact = max(0, int((sends[: recvs.size] - recvs).max()))
        if skew_result.skew < exact:
            report.add(
                "skew.exact",
                f"chosen skew {skew_result.skew} underflows: the exact "
                f"per-channel minimum re-derived from the schedule is "
                f"{exact}",
                channel=str(channel),
            )
        try:
            bound = minimum_skew_bound(code, channel)
        except MappingError as error:
            report.add(
                "skew.bound_dominates",
                f"closed-form bound rejects the channel: {error}",
                channel=str(channel),
            )
        else:
            if bound.skew < exact:
                report.add(
                    "skew.bound_dominates",
                    f"closed-form bound {bound.skew} is below the exact "
                    f"minimum {exact} — the bound method is unsound here",
                    channel=str(channel),
                )
    occupancy = occupancy_requirement(sends, recvs, skew_result.skew)
    if occupancy > config.queue_depth:
        report.add(
            "occupancy.queue_depth",
            f"needs a queue of {occupancy} words at skew "
            f"{skew_result.skew} (capacity {config.queue_depth})",
            channel=str(channel),
        )
    if sends.size or recvs.size:
        if declared is None:
            report.add(
                "occupancy.declared",
                "no declared buffer requirement for an active channel",
                channel=str(channel),
            )
        elif (
            declared.required != occupancy
            or declared.skew != skew_result.skew
        ):
            report.add(
                "occupancy.declared",
                f"declared requirement {declared.required} words at skew "
                f"{declared.skew}, re-derived {occupancy} words at skew "
                f"{skew_result.skew}",
                channel=str(channel),
            )


def _check_address_queue(
    code: CellCode,
    iu: IUProgram,
    skew_result: SkewResult,
    config: WarpConfig,
    n_cells: int,
    report: VerificationReport,
    max_events: int | None,
) -> None:
    """The address FIFO of the most-delayed cell: emissions enter at
    ``emit + i*hop`` and leave at ``deadline + i*skew``; with skew >=
    hop, the last cell sees the worst backlog."""
    emit_times: list[int] = []
    deadline_times: list[int] = []
    for emit, deadline, _address in iu.emission_times():
        emit_times.append(emit)
        deadline_times.append(deadline)
        if max_events is not None and len(emit_times) > max_events:
            report.notes.append(
                f"address path: more than {max_events} emissions; "
                "address-queue occupancy check skipped"
            )
            return
    if not emit_times:
        return
    relative = (n_cells - 1) * (
        skew_result.skew - config.address_hop_latency
    )
    occupancy = occupancy_requirement(
        np.asarray(emit_times, dtype=np.int64),
        np.asarray(deadline_times, dtype=np.int64),
        max(relative, 0),
    )
    if occupancy > config.address_queue_depth:
        report.add(
            "occupancy.address_queue",
            f"the last cell's address queue needs {occupancy} words "
            f"(capacity {config.address_queue_depth})",
        )


def _check_tau(
    code: CellCode,
    channel: Channel,
    report: VerificationReport,
    max_events: int | None,
    tau_budget: int,
) -> None:
    """tau(n) closed forms vs. the enumerated event times, per statement
    and over the statement's entire ordinal domain."""
    for stream in (input_stream(channel), output_stream(channel)):
        characterizations = characterize_stream(code, stream)
        if not characterizations:
            continue
        total = sum(c.total_executions for c in characterizations)
        if total > tau_budget:
            report.notes.append(
                f"stream {stream}: {total} events exceed the tau budget "
                f"of {tau_budget}; closed-form check skipped"
            )
            continue
        try:
            per_statement = stream_times_by_statement(
                code, stream, max_events
            )
        except TooManyEventsError:
            report.notes.append(
                f"stream {stream}: enumeration over budget; closed-form "
                "check skipped"
            )
            continue
        for char in characterizations:
            tau = TimingFunction(char)
            domain = tau.domain()
            times = per_statement.get(char.io_index)
            if times is None:
                report.add(
                    "tau.closed_form",
                    f"statement {char.io_index} of {stream} never "
                    "executes in the schedule but its characterisation "
                    f"promises {char.total_executions} executions",
                    channel=str(channel),
                )
                continue
            if len(domain) != char.total_executions:
                report.add(
                    "tau.closed_form",
                    f"statement {char.io_index} of {stream}: domain has "
                    f"{len(domain)} ordinals but the characterisation "
                    f"promises {char.total_executions} executions",
                    channel=str(channel),
                )
                continue
            evaluated = [tau(n) for n in domain]
            if evaluated != list(times):
                report.add(
                    "tau.closed_form",
                    f"statement {char.io_index} of {stream}: tau(n) "
                    f"yields {evaluated[:8]}... but the schedule "
                    f"executes at {list(times)[:8]}...",
                    channel=str(channel),
                )
