"""Seeded artifact mutations — miscompiling on purpose to verify the verifier.

Each mutation takes a clean :class:`CompiledProgram`, deep-copies it and
performs surgery on the emitted artifacts only (instruction words, IU
address expressions, declared queue bounds) — exactly the layer the
verifier reads — producing the miscompile classes the project has either
shipped (the PR 3 slot-order bug) or guards against structurally:

* ``swap_slots``            — swap the datapath fields of two instruction
  words inside one block (an I/O or queue-addressed op moves to the
  wrong cycle);
* ``off_by_one_address``    — add 1 to the constant of an IU address
  expression (every use computes a neighbouring word's address);
* ``drop_enqueue``          — delete one enqueue from an instruction;
* ``dup_enqueue``           — duplicate an enqueue into another cycle of
  the same block;
* ``alias_temp_registers``  — rename one temp register onto another
  whose lifetime overlaps it;
* ``shrink_queue_bound``    — understate a declared buffer requirement
  (even seeds) or the configured queue depth (odd seeds).

Generators are deliberately restricted to *observable* mutations — ones
that must change an artifact invariant (metadata stream, register
lifetime, declared bound), so the harness can assert the strict property
"the verifier flags every mutant the differential sweep flags" without
also asserting it about mutants that are semantically invisible.
"""

from __future__ import annotations

import copy
import dataclasses
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from ..cellcodegen.emit import ScheduledBlock
from ..cellcodegen.isa import AddressSource, MicroInstr, Reg

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..compiler.driver import CompiledProgram

MUTATION_KINDS = (
    "swap_slots",
    "off_by_one_address",
    "drop_enqueue",
    "dup_enqueue",
    "alias_temp_registers",
    "shrink_queue_bound",
)

#: Instruction fields that move with a slot swap (``control`` stays: the
#: sequencer's loop marks belong to the position, not the operation).
_SWAP_FIELDS = ("alu", "mpy", "mem", "deqs", "enqs", "move")


@dataclass
class Mutant:
    """One deliberately miscompiled program."""

    kind: str
    seed: int
    description: str
    program: "CompiledProgram"


def mutate(program: "CompiledProgram", kind: str, seed: int) -> Mutant | None:
    """Apply one seeded mutation; None when the program offers no site
    for this mutation kind (e.g. no enqueues to drop)."""
    if kind not in MUTATION_KINDS:
        raise ValueError(f"unknown mutation kind {kind!r}")
    rng = random.Random((MUTATION_KINDS.index(kind) + 1) * 65_537 + seed)
    mutant = copy.deepcopy(program)
    description = _APPLIERS[kind](mutant, rng)
    if description is None:
        return None
    return Mutant(kind=kind, seed=seed, description=description, program=mutant)


def mutation_suite(
    program: "CompiledProgram",
    kinds: tuple[str, ...] = MUTATION_KINDS,
    seeds: tuple[int, ...] = (0, 1, 2),
) -> Iterator[Mutant]:
    """All applicable (kind, seed) mutants of one program."""
    for kind in kinds:
        for seed in seeds:
            mutant = mutate(program, kind, seed)
            if mutant is not None:
                yield mutant


# Sites ----------------------------------------------------------------------


def _io_signature(instr: MicroInstr):
    """The timing-observable content of one instruction word: which
    queue-addressed/IO operations it performs.  Two slots whose
    signatures differ cannot be swapped without desynchronising the
    block's declared metadata."""
    return (
        tuple(
            (m.is_load,)
            for m in instr.mem
            if m.address_source is AddressSource.QUEUE
        ),
        tuple(sorted(str(d.queue) for d in instr.deqs)),
        tuple(sorted(str(e.queue) for e in instr.enqs)),
    )


def _swap_slots(program: "CompiledProgram", rng: random.Random) -> str | None:
    candidates: list[tuple[ScheduledBlock, int, int]] = []
    for block in program.cell_code.blocks():
        signatures = [_io_signature(i) for i in block.instructions]
        bearing = [
            c
            for c, s in enumerate(signatures)
            if s != ((), (), ())
        ]
        for i in bearing:
            for j in range(len(block.instructions)):
                if j != i and signatures[j] != signatures[i]:
                    candidates.append((block, min(i, j), max(i, j)))
    if not candidates:
        return None
    block, i, j = rng.choice(candidates)
    first, second = block.instructions[i], block.instructions[j]
    for fieldname in _SWAP_FIELDS:
        a, b = getattr(first, fieldname), getattr(second, fieldname)
        setattr(first, fieldname, b)
        setattr(second, fieldname, a)
    return f"swapped slots {i} and {j} of block {block.block_id}"


def _off_by_one_address(
    program: "CompiledProgram", rng: random.Random
) -> str | None:
    iu = program.iu_program
    used = sorted(
        {
            emission.expr_index
            for block in _iu_blocks(iu.items)
            for emission in block.emissions
        }
    )
    if not used:
        return None
    index = rng.choice(used)
    expr = iu.plan.expressions[index]
    iu.plan.expressions[index] = dataclasses.replace(
        expr, constant=expr.constant + 1
    )
    return f"added 1 to IU address expression {index} ({expr})"


def _iu_blocks(items):
    from ..iucodegen.codegen import IUBlock

    for item in items:
        if isinstance(item, IUBlock):
            yield item
        else:
            yield from _iu_blocks(item.body)


def _drop_enqueue(program: "CompiledProgram", rng: random.Random) -> str | None:
    candidates: list[tuple[ScheduledBlock, int, int]] = []
    for block in program.cell_code.blocks():
        for cycle, instr in enumerate(block.instructions):
            for position in range(len(instr.enqs)):
                candidates.append((block, cycle, position))
    if not candidates:
        return None
    block, cycle, position = rng.choice(candidates)
    dropped = block.instructions[cycle].enqs.pop(position)
    return (
        f"dropped '{dropped}' from cycle {cycle} of block {block.block_id}"
    )


def _dup_enqueue(program: "CompiledProgram", rng: random.Random) -> str | None:
    candidates: list[tuple[ScheduledBlock, int, int]] = []
    for block in program.cell_code.blocks():
        if len(block.instructions) < 2:
            continue
        for cycle, instr in enumerate(block.instructions):
            for position in range(len(instr.enqs)):
                candidates.append((block, cycle, position))
    if not candidates:
        return None
    block, cycle, position = rng.choice(candidates)
    enq = block.instructions[cycle].enqs[position]
    targets = [c for c in range(len(block.instructions)) if c != cycle]
    target = rng.choice(targets)
    block.instructions[target].enqs.append(enq)
    return (
        f"duplicated '{enq}' from cycle {cycle} into cycle {target} of "
        f"block {block.block_id}"
    )


def _alias_temp_registers(
    program: "CompiledProgram", rng: random.Random
) -> str | None:
    code = program.cell_code
    pinned = {reg.index for reg in code.pinned.values()}
    candidates: list[tuple[ScheduledBlock, int, int]] = []
    for block in code.blocks():
        writes: dict[int, list[tuple[int, int]]] = {}
        reads: dict[int, list[int]] = {}
        for cycle, instr in enumerate(block.instructions):
            for write in _writes_of(cycle, instr, code.config):
                if write[2] not in pinned:
                    writes.setdefault(write[2], []).append(write[:2])
            for reg in _reads_of(instr):
                if reg not in pinned:
                    reads.setdefault(reg, []).append(cycle)
        temps = sorted(set(writes) | set(reads))
        for a in temps:
            for b in temps:
                if b <= a:
                    continue
                if _lifetimes_collide(
                    writes.get(a, []), reads.get(a, []),
                    writes.get(b, []), reads.get(b, []),
                ):
                    candidates.append((block, a, b))
    if not candidates:
        return None
    block, keep, alias = rng.choice(candidates)
    for instr in block.instructions:
        _rename_register(instr, alias, keep)
    return (
        f"aliased temp r{alias} onto r{keep} in block {block.block_id}"
    )


def _lifetimes_collide(writes_a, reads_a, writes_b, reads_b) -> bool:
    """True when merging the two registers must violate a replay
    invariant: a read of one falls strictly inside a write window of the
    other, two writes share an issue cycle, or their landings invert."""
    for issue, landing in writes_a:
        if any(issue < r < landing for r in reads_b):
            return True
    for issue, landing in writes_b:
        if any(issue < r < landing for r in reads_a):
            return True
    for issue_a, landing_a in writes_a:
        for issue_b, landing_b in writes_b:
            if issue_a == issue_b:
                return True
            first, second = (
                ((issue_a, landing_a), (issue_b, landing_b))
                if issue_a < issue_b
                else ((issue_b, landing_b), (issue_a, landing_a))
            )
            if second[1] <= first[1]:
                return True
    return False


def _writes_of(cycle: int, instr: MicroInstr, config):
    from .replay import _register_writes

    for write in _register_writes(cycle, instr, config):
        yield (write.issue, write.landing, write.reg)


def _reads_of(instr: MicroInstr):
    from .replay import _register_reads

    for _cycle, reg in _register_reads(0, instr):
        yield reg


def _rename_register(instr: MicroInstr, old: int, new: int) -> None:
    target, replacement = Reg(old), Reg(new)

    def swap_operand(op):
        return replacement if op == target else op

    if instr.alu is not None:
        instr.alu = dataclasses.replace(
            instr.alu,
            dest=swap_operand(instr.alu.dest),
            sources=tuple(swap_operand(s) for s in instr.alu.sources),
        )
    if instr.mpy is not None:
        instr.mpy = dataclasses.replace(
            instr.mpy,
            dest=swap_operand(instr.mpy.dest),
            sources=tuple(swap_operand(s) for s in instr.mpy.sources),
        )
    instr.mem = [
        dataclasses.replace(
            m,
            reg=swap_operand(m.reg) if m.reg is not None else None,
            store_value=(
                swap_operand(m.store_value)
                if m.store_value is not None
                else None
            ),
        )
        for m in instr.mem
    ]
    instr.deqs = [
        dataclasses.replace(d, dest=swap_operand(d.dest)) for d in instr.deqs
    ]
    instr.enqs = [
        dataclasses.replace(e, source=swap_operand(e.source))
        for e in instr.enqs
    ]
    if instr.move is not None:
        instr.move = dataclasses.replace(
            instr.move,
            dest=swap_operand(instr.move.dest),
            source=swap_operand(instr.move.source),
        )


def _shrink_queue_bound(
    program: "CompiledProgram", rng: random.Random
) -> str | None:
    shrinkable = [b for b in program.buffers if b.required >= 1]
    if not shrinkable:
        return None
    # Alternate between the two declared bounds so both the metadata and
    # the configured capacity get exercised across seeds.
    if rng.randrange(2) == 0:
        target = rng.choice(shrinkable)
        index = program.buffers.index(target)
        program.buffers[index] = dataclasses.replace(
            target, required=target.required - 1
        )
        return (
            f"understated channel {target.channel} buffer requirement "
            f"{target.required} -> {target.required - 1}"
        )
    worst = max(b.required for b in shrinkable)
    program.config = dataclasses.replace(
        program.config, queue_depth=worst - 1
    )
    return f"shrank queue_depth below the {worst}-word requirement"


_APPLIERS = {
    "swap_slots": _swap_slots,
    "off_by_one_address": _off_by_one_address,
    "drop_enqueue": _drop_enqueue,
    "dup_enqueue": _dup_enqueue,
    "alias_temp_registers": _alias_temp_registers,
    "shrink_queue_bound": _shrink_queue_bound,
}
