"""repro — a reproduction of Gross & Lam, PLDI 1986.

"Compilation for a High-performance Systolic Array": the W2 language,
the Warp compiler (flow analysis, computation decomposition, cell/IU/host
code generation, compile-time synchronisation via minimum-skew analysis)
and a cycle-level simulator of the Warp machine.

Quickstart::

    import numpy as np
    from repro import compile_w2, simulate
    from repro.programs import polynomial

    program = compile_w2(polynomial(n_points=100, n_cells=10))
    result = simulate(program, {"z": z_values, "c": coefficients})
    print(result.outputs["results"])

Package map:

* :mod:`repro.lang` — W2 lexer, parser, AST, semantic analysis;
* :mod:`repro.ir` — basic-block DAGs and the structured program tree;
* :mod:`repro.analysis` — local optimisation, global flow summaries,
  communication-cycle classification;
* :mod:`repro.timing` — five-vector timing functions, minimum skew,
  queue-size analysis (Section 6.2);
* :mod:`repro.cellcodegen` / :mod:`repro.iucodegen` /
  :mod:`repro.hostcodegen` — the three code generators;
* :mod:`repro.compiler` — the driver (:func:`compile_w2`) and reports;
* :mod:`repro.machine` — the cycle-level Warp simulator and the
  AST-level reference interpreter;
* :mod:`repro.models` — abstract SIMD vs. skewed execution models
  (Section 3);
* :mod:`repro.programs` — the Table 7-1 evaluation programs;
* :mod:`repro.exec` — compile cache and batched execution engine
  (retries, per-item timeouts, partial results);
* :mod:`repro.faults` — deterministic, seedable fault injection
  (see ``docs/robustness.md``).
"""

__version__ = "1.0.0"

from .compiler import CompiledProgram, compile_w2
from .config import DEFAULT_CONFIG, CellConfig, IUConfig, WarpConfig
from .exec import (
    BatchResult,
    BatchRunner,
    CompileCache,
    ItemFailure,
    compile_cached,
    run_batch,
)
from .faults import FaultInjector, FaultKind, FaultSpec, InjectionPlan
from .lang import analyze, parse_module
from .machine import SimulationResult, WarpMachine, interpret, simulate

__all__ = [
    "BatchResult",
    "BatchRunner",
    "FaultInjector",
    "FaultKind",
    "FaultSpec",
    "InjectionPlan",
    "ItemFailure",
    "CellConfig",
    "CompileCache",
    "CompiledProgram",
    "DEFAULT_CONFIG",
    "IUConfig",
    "SimulationResult",
    "WarpConfig",
    "WarpMachine",
    "analyze",
    "compile_cached",
    "compile_w2",
    "interpret",
    "parse_module",
    "run_batch",
    "simulate",
    "__version__",
]
