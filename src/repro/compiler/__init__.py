"""The Warp compiler driver and reports."""

from .driver import CompiledProgram, CompileMetrics, compile_w2
from .mirror import mirror_module
from .performance import (
    PerformancePrediction,
    format_performance,
    predict_performance,
)
from .report import DecompositionReport, decomposition_report, format_metrics_table

__all__ = [
    "CompileMetrics",
    "CompiledProgram",
    "DecompositionReport",
    "PerformancePrediction",
    "compile_w2",
    "decomposition_report",
    "format_metrics_table",
    "format_performance",
    "mirror_module",
    "predict_performance",
]
