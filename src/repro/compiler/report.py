"""Compilation reports: computation decomposition and metrics tables.

The decomposition report quantifies how the compiler split the program
between the three processors (Section 6.1's computation decomposition
phase): data-independent address computation moves to the IU, I/O
sequencing moves to the host, everything else stays on the cells.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.ast import Channel
from .driver import CompiledProgram, CompileMetrics


@dataclass(frozen=True)
class DecompositionReport:
    """Where the computation went."""

    cell_instructions: int
    iu_instructions: int
    #: Memory references whose address comes from the IU's address path
    #: (static count in the microcode).
    iu_supplied_addresses: int
    #: Memory references with compile-time constant addresses.
    literal_addresses: int
    #: Items the host feeds per run (X + Y).
    host_inputs: int
    #: Items the host stores per run (X + Y).
    host_outputs: int
    #: Host I/O processor descriptors (block transfers + literal runs)
    #: needed to express the feed and the collection.
    host_descriptors: int = 0


def decomposition_report(program: CompiledProgram) -> DecompositionReport:
    queue_addressed = 0
    literal_addressed = 0
    for block in program.cell_code.blocks():
        for instr in block.instructions:
            for mem in instr.mem:
                if mem.address is None:
                    queue_addressed += 1
                else:
                    literal_addressed += 1
    host = program.host_program
    host_inputs = host.input_count(Channel.X) + host.input_count(Channel.Y)
    host_outputs = sum(
        0 if binding.is_discard else 1
        for channel in (Channel.X, Channel.Y)
        for binding in host.output_bindings(channel)
    )
    from ..hostcodegen import lower_input_program, lower_output_program

    descriptors = 0
    for channel in (Channel.X, Channel.Y):
        descriptors += len(lower_input_program(host, channel).ops)
        descriptors += len(lower_output_program(host, channel).ops)
    return DecompositionReport(
        cell_instructions=program.cell_code.n_instructions,
        iu_instructions=program.iu_program.n_instructions,
        iu_supplied_addresses=queue_addressed,
        literal_addresses=literal_addressed,
        host_inputs=host_inputs,
        host_outputs=host_outputs,
        host_descriptors=descriptors,
    )


def format_metrics_table(rows: list[CompileMetrics]) -> str:
    """Render a Table 7-1 style report."""
    header = (
        f"{'Name':<14} {'W2 Lines':>8} {'Cell ucode':>10} "
        f"{'IU ucode':>8} {'Compile time':>13} {'Skew':>5}"
    )
    lines = [header, "-" * len(header)]
    for m in rows:
        lines.append(
            f"{m.module_name:<14} {m.w2_lines:>8} {m.cell_ucode:>10} "
            f"{m.iu_ucode:>8} {m.compile_seconds:>11.3f} s {m.skew:>5}"
        )
    return "\n".join(lines)
