"""The Warp compiler driver (Section 6.1, Figure 6-1).

Phase order follows the paper: flow analysis builds the shared program
representation; the computation is decomposed between the Warp array,
the IU and the host; "code is generated for the Warp cells first", the
resulting scheduling constraints (address deadlines, loop structure)
drive IU code generation, and the IU/cell structure drives host code
generation.  Compile-time synchronisation (minimum skew, queue sizes) is
verified on the finished cell schedule.

Public entry point: :func:`compile_w2`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..analysis import (
    CommReport,
    analyze_communication,
    eliminate_dead_writes,
)
from ..cellcodegen import CellCode, generate_cell_code
from ..errors import CompilationError, MappingError, RegisterPressureError
from ..hostcodegen import HostProgram, generate_host_program
from ..ir import CellProgramIR, build_ir
from ..ir.dag import OpKind
from ..iucodegen import IUProgram, generate_iu_code
from ..lang import AnalyzedModule, analyze, count_w2_lines
from ..lang.lexer import tokenize
from ..lang.parser import Parser
from ..config import DEFAULT_CONFIG, WarpConfig
from ..obs import get_telemetry
from .mirror import mirror_module
from ..timing import (
    BufferRequirement,
    SkewResult,
    check_buffers,
    compute_skew,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..exec.cache import CompileCache


@dataclass(frozen=True)
class CompileMetrics:
    """The Table 7-1 metrics plus a few internals."""

    module_name: str
    w2_lines: int
    cell_ucode: int
    iu_ucode: int
    compile_seconds: float
    skew: int
    cell_cycles: int
    n_cells: int
    max_live_registers: int
    iu_registers: int
    table_entries: int


@dataclass
class CompiledProgram:
    """Everything the Warp machine (simulator) needs to run a module."""

    source: str
    ir: CellProgramIR
    cell_code: CellCode
    iu_program: IUProgram
    host_program: HostProgram
    skew: SkewResult
    buffers: list[BufferRequirement]
    comm: CommReport
    config: WarpConfig
    metrics: CompileMetrics
    #: True when the program's data flow was right-to-left and the
    #: compiler mirrored it onto the canonical direction (the array is
    #: symmetric; cell 0 then denotes the physically-rightmost cell).
    mirrored: bool = False

    @property
    def module_name(self) -> str:
        return self.ir.module_name

    @property
    def n_cells(self) -> int:
        return self.ir.n_cells


def _scalar_use_counts(ir: CellProgramIR) -> dict[str, int]:
    counts = {name: 0 for name in ir.scalars}
    for block in ir.tree.blocks():
        for node in block.dag.nodes.values():
            if node.op in (OpKind.READ, OpKind.WRITE) and node.attr in counts:
                counts[node.attr] += 1  # type: ignore[index]
    return counts


def compile_w2(
    source: str,
    config: WarpConfig = DEFAULT_CONFIG,
    skew_method: str = "auto",
    unroll: int | str = 1,
    local_opt: bool = True,
    cache: "CompileCache | None" = None,
    faults=None,
) -> CompiledProgram:
    """Compile a W2 module for the Warp machine.

    Raises :class:`~repro.lang.errors.W2Error` for front-end problems and
    :class:`~repro.errors.CompilationError` subclasses for back-end ones
    (unmappable communication, register pressure, memory/table overflow,
    queue overflow).

    ``unroll`` unrolls innermost loops up to that factor before
    scheduling, amortising block-drain cycles over several iterations
    (throughput optimisation; 1 = off).  ``unroll="auto"`` tries
    1/2/4/8 and keeps the fastest predicted schedule.

    ``cache`` consults a :class:`~repro.exec.CompileCache` before doing
    any work, keyed on the exact (source, config, flags) content hash;
    a hit returns the cached artefact and skips every phase.  Telemetry
    records ``cache.hit`` / ``cache.miss`` (and ``cache.disk_hit``)
    counters either way.

    ``faults`` (an :class:`~repro.faults.InjectionPlan`) does not change
    compilation at all — it only partitions the cache key, so artefacts
    touched by fault-injection runs can never be served to clean ones.
    """
    started = time.perf_counter()
    obs = get_telemetry()
    key: str | None = None
    if cache is not None:
        from ..exec.keys import cache_key

        with obs.span("cache.lookup"):
            key = cache_key(
                source, config, skew_method, unroll, local_opt, faults=faults
            )
            cached = cache.get(key)
        if cached is not None:
            obs.counter("cache.hit")
            if cache.last_event == "disk-hit":
                obs.counter("cache.disk_hit")
            return cached
        obs.counter("cache.miss")
    with obs.span("frontend.lex"):
        tokens = tokenize(source)
    obs.counter("frontend.tokens", len(tokens))
    with obs.span("frontend.parse"):
        module = Parser(tokens).parse_module()
    with obs.span("frontend.semantic"):
        analyzed = analyze(module)
    if unroll == "auto":
        with obs.span("driver.choose-unroll"):
            unroll = _choose_unroll_factor(analyzed, config)
        obs.counter("driver.unroll_factor", unroll)
    del_local = not local_opt

    ir, cell_code = _generate_with_demotion(
        analyzed, config, unroll, local_opt=not del_local
    )

    with obs.span("analysis.comm"):
        comm = analyze_communication(ir.tree)
    mirrored = False
    if (
        ir.n_cells > 1
        and comm.is_mappable
        and not comm.is_unidirectional_lr
        and comm.is_unidirectional_rl
    ):
        # Right-to-left flow: run the mirror image on the reversed array.
        with obs.span("driver.mirror"):
            analyzed = analyze(mirror_module(module))
            ir, cell_code = _generate_with_demotion(
                analyzed, config, unroll, local_opt=not del_local
            )
            comm = analyze_communication(ir.tree)
        mirrored = True
    _check_mappability(comm, ir)
    if ir.n_cells > config.n_cells:
        raise MappingError(
            f"module uses {ir.n_cells} cells but the machine has "
            f"{config.n_cells}"
        )
    if obs.enabled:
        blocks = list(ir.tree.blocks())
        obs.counter("ir.blocks", len(blocks))
        obs.counter(
            "ir.dag_nodes", sum(len(b.dag.nodes) for b in blocks)
        )
        obs.counter("ir.cse_hits", sum(b.dag.cse_hits for b in blocks))
        obs.counter("codegen.cell_instructions", cell_code.n_instructions)
        obs.counter("codegen.cell_cycles", cell_code.total_cycles)
        obs.counter(
            "codegen.max_live_registers", cell_code.max_live_registers
        )

    with obs.span("timing.skew"):
        skew = compute_skew(
            cell_code, method=skew_method, n_cells=ir.n_cells
        )
    obs.counter("timing.skew_cycles", skew.skew)
    with obs.span("timing.buffers"):
        if ir.n_cells > 1:
            buffers = check_buffers(cell_code, skew.skew, config.queue_depth)
        else:
            buffers = []
    for requirement in buffers:
        obs.counter(
            f"timing.min_buffer.{requirement.channel.value}",
            requirement.required,
        )
    with obs.span("iucodegen"):
        iu_program = generate_iu_code(cell_code, config.iu)
    obs.counter("codegen.iu_instructions", iu_program.n_instructions)
    obs.counter("codegen.iu_table_entries", iu_program.table_entries)
    with obs.span("hostcodegen"):
        host_program = generate_host_program(cell_code, ir.io_statements)

    elapsed = time.perf_counter() - started
    metrics = CompileMetrics(
        module_name=ir.module_name,
        w2_lines=count_w2_lines(source),
        cell_ucode=cell_code.n_instructions,
        iu_ucode=iu_program.n_instructions,
        compile_seconds=elapsed,
        skew=skew.skew,
        cell_cycles=cell_code.total_cycles,
        n_cells=ir.n_cells,
        max_live_registers=cell_code.max_live_registers,
        iu_registers=iu_program.n_registers_used,
        table_entries=iu_program.table_entries,
    )
    program = CompiledProgram(
        source=source,
        ir=ir,
        cell_code=cell_code,
        iu_program=iu_program,
        host_program=host_program,
        skew=skew,
        buffers=buffers,
        comm=comm,
        config=config,
        metrics=metrics,
        mirrored=mirrored,
    )
    _verify_compiled(program, obs)
    if cache is not None and key is not None:
        cache.put(key, program)
    return program


def _verify_compiled(program: CompiledProgram, obs) -> None:
    """Run the independent schedule verifier over the finished artefacts
    (level per ``WarpConfig.verify``); rejected programs never reach the
    cache or the caller."""
    from ..errors import VerificationError
    from ..verify import resolve_level, verify_artifacts

    level = resolve_level(program.config.verify)
    if level == "off":
        return
    report = verify_artifacts(
        program.cell_code,
        program.iu_program,
        program.host_program,
        skew=program.skew,
        buffers=program.buffers,
        config=program.config,
        n_cells=program.n_cells,
        level=level,
    )
    if not report.ok:
        obs.counter("verify.rejected")
        raise VerificationError(report)


def _choose_unroll_factor(analyzed: AnalyzedModule, config: WarpConfig) -> int:
    """Pick the unroll factor with the fastest predicted cell program
    (schedules are static, so prediction is exact)."""
    best_factor, best_cycles = 1, None
    for factor in (1, 2, 4, 8):
        try:
            _ir, code = _generate_with_demotion(analyzed, config, factor)
        except CompilationError:
            continue
        cycles = code.total_cycles
        if best_cycles is None or cycles < best_cycles:
            best_factor, best_cycles = factor, cycles
    return best_factor


def _generate_with_demotion(
    analyzed: AnalyzedModule,
    config: WarpConfig,
    unroll: int = 1,
    local_opt: bool = True,
) -> tuple[CellProgramIR, CellCode]:
    """Build IR and cell code, demoting cold scalars to memory when the
    register files cannot hold them all."""
    obs = get_telemetry()
    memory_scalars: frozenset[str] = frozenset()
    last_error: RegisterPressureError | None = None
    for _attempt in range(64):
        with obs.span("decomposition.build-ir"):
            ir = build_ir(
                analyzed,
                memory_scalars,
                unroll_factor=unroll,
                enable_local_opt=local_opt,
            )
        with obs.span("analysis.local-opt"):
            eliminate_dead_writes(ir.tree)
        try:
            with obs.span("cellcodegen"):
                return ir, generate_cell_code(ir, config.cell)
        except RegisterPressureError as error:
            last_error = error
            counts = _scalar_use_counts(ir)
            candidates = [
                name
                for name in sorted(counts, key=lambda n: counts[n])
                if name not in memory_scalars and name not in ir.branch_assigned
            ]
            if not candidates:
                raise
            demoted = frozenset(candidates[:4])
            obs.counter("regalloc.demoted_scalars", len(demoted))
            memory_scalars = memory_scalars | demoted
    assert last_error is not None
    raise last_error


def _check_mappability(comm: CommReport, ir: CellProgramIR) -> None:
    if not comm.is_mappable:
        raise MappingError(
            "program has both left and right communication cycles and "
            "cannot be mapped onto the skewed computation model "
            "(Section 5.1.1)"
        )
    if ir.n_cells > 1 and not comm.is_unidirectional_lr:
        raise MappingError(
            "only unidirectional left-to-right programs are supported "
            "(receive from L, send to R); the paper's compiler has the "
            "same restriction (Section 5.1.1)"
        )
