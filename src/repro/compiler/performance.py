"""Static performance prediction.

Because schedules are fully static (constant-trip loops, fixed block
lengths, compile-time skew), a compiled program's run time and operation
counts are *computable at compile time* — the simulator must then agree
exactly.  This module produces that prediction; a test asserts
prediction == observation for every program, which is itself a strong
check on both sides.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cellcodegen.emit import CellCode, ScheduledBlock, ScheduledItem, ScheduledLoop
from .driver import CompiledProgram


@dataclass(frozen=True)
class PerformancePrediction:
    """Compile-time prediction of one run."""

    n_cells: int
    skew: int
    cycles_per_cell: int
    total_cycles: int
    #: Dynamic operation counts per cell.
    alu_ops: int
    mpy_ops: int
    mem_reads: int
    mem_writes: int
    receives: int
    sends: int

    @property
    def fp_ops_per_cell(self) -> int:
        return self.alu_ops + self.mpy_ops

    @property
    def array_fp_ops(self) -> int:
        return self.fp_ops_per_cell * self.n_cells

    @property
    def fp_ops_per_cycle(self) -> float:
        """Aggregate arithmetic rate of the whole array."""
        return self.array_fp_ops / max(self.total_cycles, 1)

    @property
    def peak_fraction(self) -> float:
        """Fraction of the machine's peak (2 FP issues/cycle/cell)."""
        return self.fp_ops_per_cycle / (2 * self.n_cells)


def _count_block(block: ScheduledBlock) -> dict:
    counts = {"alu": 0, "mpy": 0, "reads": 0, "writes": 0, "recv": 0, "send": 0}
    for instr in block.instructions:
        if instr.alu:
            counts["alu"] += 1
        if instr.mpy:
            counts["mpy"] += 1
        for mem in instr.mem:
            if mem.is_load:
                counts["reads"] += 1
            else:
                counts["writes"] += 1
        counts["recv"] += len(instr.deqs)
        counts["send"] += len(instr.enqs)
    return counts


def _accumulate(items: list[ScheduledItem], multiplier: int, totals: dict) -> None:
    for item in items:
        if isinstance(item, ScheduledBlock):
            counts = _count_block(item)
            for key, value in counts.items():
                totals[key] += value * multiplier
        else:
            assert isinstance(item, ScheduledLoop)
            _accumulate(item.body, multiplier * item.trip, totals)


def predict_performance(program: CompiledProgram) -> PerformancePrediction:
    """Compute the run-time facts of one execution at compile time."""
    code: CellCode = program.cell_code
    totals = {"alu": 0, "mpy": 0, "reads": 0, "writes": 0, "recv": 0, "send": 0}
    _accumulate(code.items, 1, totals)
    cycles = code.total_cycles
    return PerformancePrediction(
        n_cells=program.n_cells,
        skew=program.skew.skew,
        cycles_per_cell=cycles,
        total_cycles=cycles + program.skew.skew * (program.n_cells - 1),
        alu_ops=totals["alu"],
        mpy_ops=totals["mpy"],
        mem_reads=totals["reads"],
        mem_writes=totals["writes"],
        receives=totals["recv"],
        sends=totals["send"],
    )


def format_performance(prediction: PerformancePrediction) -> str:
    lines = [
        f"{prediction.n_cells} cells, skew {prediction.skew}: "
        f"{prediction.total_cycles} cycles",
        f"per cell: {prediction.alu_ops} ALU + {prediction.mpy_ops} MPY ops, "
        f"{prediction.mem_reads}R/{prediction.mem_writes}W memory, "
        f"{prediction.receives} receives / {prediction.sends} sends",
        f"array rate: {prediction.fp_ops_per_cycle:.2f} FP ops/cycle "
        f"({prediction.peak_fraction:.1%} of peak)",
    ]
    return "\n".join(lines)
