"""Mirroring right-to-left programs onto the canonical array direction.

The Warp array is symmetric: a program whose data flows right-to-left
(receives from ``R``, sends to ``L``) is the mirror image of a canonical
left-to-right program running on the reversed array.  The compiler
handles such programs by flipping every channel direction in the AST and
recording the fact; results are identical because externals (host
bindings) are untouched — only which physical end of the array plays
"first cell" changes.
"""

from __future__ import annotations

import dataclasses

from ..lang import ast


def mirror_module(module: ast.Module) -> ast.Module:
    """Swap L and R in every send/receive of the module."""
    cellprogram = module.cellprogram
    mirrored = dataclasses.replace(
        cellprogram,
        functions=tuple(
            dataclasses.replace(
                function, body=_mirror_stmt(function.body)
            )
            for function in cellprogram.functions
        ),
        body=tuple(_mirror_stmt(stmt) for stmt in cellprogram.body),
    )
    return dataclasses.replace(module, cellprogram=mirrored)


def _flip(direction: ast.Direction) -> ast.Direction:
    if direction is ast.Direction.LEFT:
        return ast.Direction.RIGHT
    return ast.Direction.LEFT


def _mirror_stmt(stmt: ast.Stmt) -> ast.Stmt:
    if isinstance(stmt, ast.Compound):
        return dataclasses.replace(
            stmt, statements=tuple(_mirror_stmt(s) for s in stmt.statements)
        )
    if isinstance(stmt, ast.Receive):
        return dataclasses.replace(stmt, direction=_flip(stmt.direction))
    if isinstance(stmt, ast.Send):
        return dataclasses.replace(stmt, direction=_flip(stmt.direction))
    if isinstance(stmt, ast.If):
        return dataclasses.replace(
            stmt,
            then_body=_mirror_stmt(stmt.then_body),
            else_body=(
                _mirror_stmt(stmt.else_body)
                if stmt.else_body is not None
                else None
            ),
        )
    if isinstance(stmt, ast.For):
        return dataclasses.replace(stmt, body=_mirror_stmt(stmt.body))
    return stmt
