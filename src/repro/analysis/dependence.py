"""Array dependence testing on affine subscripts.

The paper's global flow analysis is "powerful enough to distinguish
between individual array elements and different iterations of a loop"
(Section 6.1, citing Steenkiste's W2 dataflow report).  This module
provides that power for *same-iteration* disambiguation: given two
affine subscripts into the same array and the ranges of the loop
indices, decide whether the two references can ever address the same
element in the same iteration.

Two classic tests, both conservative in the safe direction:

* the **bounds (Banerjee) test** — the difference ``a - b`` is affine;
  if its value range over the loop bounds excludes zero, the references
  are independent;
* the **GCD test** — if ``gcd`` of the difference's coefficients does
  not divide its constant, ``a - b = 0`` has no integer solution at all.

The IR builder uses :func:`may_alias_same_iteration` to prune
store→load order edges and keep store-to-load forwarding entries alive
across provably-disjoint stores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..lang.semantic import AffineIndex, affine_add


@dataclass(frozen=True)
class IndexRange:
    """Inclusive value range of one loop index."""

    low: int
    high: int

    @classmethod
    def of_loop(cls, start: int, step: int, trip: int) -> "IndexRange":
        last = start + step * (trip - 1)
        return cls(min(start, last), max(start, last))


def difference(a: AffineIndex, b: AffineIndex) -> AffineIndex:
    """The affine form ``a - b``."""
    return affine_add(a, b, sign=-1)


def value_range(
    form: AffineIndex, ranges: dict[str, IndexRange]
) -> tuple[int, int] | None:
    """Min/max of an affine form over the given index ranges.

    Returns None when some variable's range is unknown (the caller must
    then assume dependence).
    """
    low = high = form.constant
    for var, coeff in form.coefficients:
        bounds = ranges.get(var)
        if bounds is None:
            return None
        if coeff >= 0:
            low += coeff * bounds.low
            high += coeff * bounds.high
        else:
            low += coeff * bounds.high
            high += coeff * bounds.low
    return low, high


def gcd_test_independent(diff: AffineIndex) -> bool:
    """True when ``diff = 0`` has no integer solution at all:
    gcd(coefficients) does not divide the constant."""
    if not diff.coefficients:
        return diff.constant != 0
    divisor = 0
    for _var, coeff in diff.coefficients:
        divisor = math.gcd(divisor, abs(coeff))
    if divisor == 0:
        return diff.constant != 0
    return diff.constant % divisor != 0


def bounds_test_independent(
    diff: AffineIndex, ranges: dict[str, IndexRange]
) -> bool:
    """True when ``diff`` cannot be zero within the index ranges."""
    bounds = value_range(diff, ranges)
    if bounds is None:
        return False
    low, high = bounds
    return low > 0 or high < 0


def may_alias_same_iteration(
    a: AffineIndex,
    b: AffineIndex,
    ranges: dict[str, IndexRange] | None = None,
) -> bool:
    """Can two references address the same element with the *same* loop
    index values?  (The question the in-block scheduler asks: within one
    iteration, may this load and that store touch the same word?)

    ``a - b`` collapses identical index terms, so `w[i]` vs `w[i+1]`
    is a constant difference of 1 — independent regardless of bounds.
    """
    diff = difference(a, b)
    if gcd_test_independent(diff):
        return False
    if ranges and bounds_test_independent(diff, ranges):
        return False
    return True


def may_alias_any_iteration(
    a: AffineIndex,
    b: AffineIndex,
    ranges: dict[str, IndexRange],
) -> bool:
    """Can the references address the same element with *independent*
    index values (cross-iteration dependence)?

    Rename b's variables so the two occurrences are unconstrained, then
    ask whether ``a - b'`` can be zero in the product space.
    """
    renamed = AffineIndex(
        b.constant, tuple((f"{var}'", coeff) for var, coeff in b.coefficients)
    )
    extended = dict(ranges)
    for var, bounds in list(ranges.items()):
        extended[f"{var}'"] = bounds
    diff = difference(a, renamed)
    if gcd_test_independent(diff):
        return False
    if bounds_test_independent(diff, extended):
        return False
    return True
