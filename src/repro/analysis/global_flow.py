"""Global dataflow analysis over the program tree (Section 6.1).

The paper's global flow analyzer collects cross-basic-block dependence
information "powerful enough to distinguish between individual array
elements and different iterations of a loop" and inserts use/sequencing
arcs so the code generator can overlap basic blocks.

Our scheduler keeps blocks atomic (see DESIGN.md), so the cross-block
facts we need are summaries:

* which scalar variables are ever *read* across a block boundary — writes
  of anything else are dead and removed (``eliminate_dead_writes``);
* per-array read/write summaries with affine index sets, exposed through
  :class:`GlobalFlowInfo` for diagnostics and the dependence tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.dag import Node, OpKind
from ..ir.tree import BasicBlock, ProgramTree
from ..lang.semantic import AffineIndex


@dataclass
class GlobalFlowInfo:
    """Cross-block summaries of a cell program."""

    #: Scalars read at some block entry (live across block boundaries).
    read_scalars: frozenset[str]
    #: Scalars written at some block exit.
    written_scalars: frozenset[str]
    #: Array name -> affine indices loaded anywhere.
    array_loads: dict[str, list[AffineIndex]] = field(default_factory=dict)
    #: Array name -> affine indices stored anywhere.
    array_stores: dict[str, list[AffineIndex]] = field(default_factory=dict)

    @property
    def dead_written_scalars(self) -> frozenset[str]:
        """Scalars written across blocks but never read — their WRITE
        effects are removable."""
        return self.written_scalars - self.read_scalars


def analyze_global_flow(tree: ProgramTree) -> GlobalFlowInfo:
    """Collect the cross-block summaries of ``tree``."""
    read: set[str] = set()
    written: set[str] = set()
    loads: dict[str, list[AffineIndex]] = {}
    stores: dict[str, list[AffineIndex]] = {}
    for block in tree.blocks():
        for node in block.dag.live_nodes():
            if node.op is OpKind.READ:
                read.add(node.attr)  # type: ignore[arg-type]
            elif node.op is OpKind.WRITE:
                written.add(node.attr)  # type: ignore[arg-type]
            elif node.op is OpKind.LOAD:
                loads.setdefault(node.attr.array, []).append(node.attr.index)
            elif node.op is OpKind.STORE:
                stores.setdefault(node.attr.array, []).append(node.attr.index)
    return GlobalFlowInfo(
        read_scalars=frozenset(read),
        written_scalars=frozenset(written),
        array_loads=loads,
        array_stores=stores,
    )


def eliminate_dead_writes(tree: ProgramTree) -> int:
    """Remove WRITE effects for scalars no block ever reads.

    A WRITE at block exit exists to carry a value to a later block (or a
    later iteration); if no block contains a READ of the variable, the
    register update is dead.  Returns the number of writes removed.

    READ nodes only exist for values crossing a block boundary (reads
    satisfied inside a block are handled by the builder's value map), so
    "never read anywhere" is exactly the right deadness condition for a
    variable that is not externally observable.
    """
    info = analyze_global_flow(tree)
    dead = info.dead_written_scalars
    removed = 0
    for block in tree.blocks():
        dag = block.dag
        doomed = {
            node_id
            for node_id in dag.effects
            if dag.nodes[node_id].op is OpKind.WRITE and dag.nodes[node_id].attr in dead
        }
        if not doomed:
            continue
        removed += len(doomed)
        dag.effects = [n for n in dag.effects if n not in doomed]
        dag.order_edges = [
            (a, b) for a, b in dag.order_edges if a not in doomed and b not in doomed
        ]
    return removed
