"""Communication-cycle analysis (Section 5.1.1, Figure 5-1).

The array's computation is represented as a graph over one cell's
operations (all cells run the same code).  Two edge families:

* *computation edges* — intra-cell data dependencies (DAG operand edges,
  store→load flow through memory, write→read flow through scalars);
* *communication edges* — a "right" edge connects each send-to-right to
  the receive-from-left statements of the same channel (the data arrives
  at the right neighbour's input queue), and symmetrically for "left".

A cycle through a "right" communication edge forces cells to be delayed
left-to-right; a "left" cycle forces the opposite.  A program with both
kinds of cycles cannot be mapped onto the skewed computation model.

The analysis is conservative: scalar and memory flow is tracked per
name/array (not per element), and sends are matched to every receive of
the same queue rather than by ordinal.  This can only create extra
cycles, never miss one, so "mappable" verdicts are sound.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..ir.dag import OpKind, QueueRef
from ..ir.tree import ProgramTree
from ..lang.ast import Channel, Direction


@dataclass(frozen=True)
class CommReport:
    """Result of the communication-cycle analysis."""

    has_right_cycles: bool
    has_left_cycles: bool
    sends_right: bool
    sends_left: bool
    receives_from_left: bool
    receives_from_right: bool

    @property
    def is_mappable(self) -> bool:
        """Mappable onto the skewed computation model: not both cycle
        kinds at once (Section 5.1.1)."""
        return not (self.has_right_cycles and self.has_left_cycles)

    @property
    def is_unidirectional_lr(self) -> bool:
        """Pure left-to-right flow (the subset the compiler accepts)."""
        return not (self.sends_left or self.receives_from_right)

    @property
    def is_unidirectional_rl(self) -> bool:
        return not (self.sends_right or self.receives_from_left)

    @property
    def is_bidirectional(self) -> bool:
        return not (self.is_unidirectional_lr or self.is_unidirectional_rl)


def _receive_queue_for_send(queue: QueueRef) -> QueueRef:
    """The receive queue that observes data sent on ``queue``.

    A send-to-right on X is received from-the-left on X by the next cell;
    in the folded single-cell graph the matching receive statement keeps
    the same (direction-of-origin, channel) labelling as the send's
    destination side.
    """
    if queue.direction is Direction.RIGHT:
        return QueueRef(Direction.LEFT, queue.channel)
    return QueueRef(Direction.RIGHT, queue.channel)


def analyze_communication(tree: ProgramTree) -> CommReport:
    """Build the communication graph of a lowered cell program and
    classify its cycles."""
    graph = nx.DiGraph()
    sends: list[tuple[str, QueueRef]] = []
    receives: dict[QueueRef, list[str]] = {}
    # Global (conservative) scalar/array flow endpoints.
    scalar_writes: dict[str, list[str]] = {}
    scalar_reads: dict[str, list[str]] = {}
    array_stores: dict[str, list[str]] = {}
    array_loads: dict[str, list[str]] = {}

    for block in tree.blocks():
        dag = block.dag
        alive = {node.node_id for node in dag.live_nodes()}
        for node_id in alive:
            node = dag.nodes[node_id]
            name = f"b{block.block_id}.n{node_id}"
            graph.add_node(name)
            for operand in node.operands:
                if operand in alive:
                    graph.add_edge(f"b{block.block_id}.n{operand}", name)
            if node.op is OpKind.SEND:
                sends.append((name, node.attr))
            elif node.op is OpKind.RECV:
                receives.setdefault(node.attr, []).append(name)
            elif node.op is OpKind.WRITE:
                scalar_writes.setdefault(node.attr, []).append(name)
            elif node.op is OpKind.READ:
                scalar_reads.setdefault(node.attr, []).append(name)
            elif node.op is OpKind.STORE:
                array_stores.setdefault(node.attr.array, []).append(name)
            elif node.op is OpKind.LOAD:
                array_loads.setdefault(node.attr.array, []).append(name)
        for earlier, later in dag.order_edges:
            if earlier in alive and later in alive:
                graph.add_edge(
                    f"b{block.block_id}.n{earlier}", f"b{block.block_id}.n{later}"
                )

    # Cross-block value flow (conservative: any write reaches any read).
    for var, writers in scalar_writes.items():
        for writer in writers:
            for reader in scalar_reads.get(var, []):
                graph.add_edge(writer, reader)
    for array, stores in array_stores.items():
        for store in stores:
            for load in array_loads.get(array, []):
                graph.add_edge(store, load)

    # Communication edges, labelled by the direction the data travels.
    comm_label: dict[tuple[str, str], str] = {}
    for send_name, queue in sends:
        label = "right" if queue.direction is Direction.RIGHT else "left"
        for recv_name in receives.get(_receive_queue_for_send(queue), []):
            graph.add_edge(send_name, recv_name)
            comm_label[(send_name, recv_name)] = label

    has_right = False
    has_left = False
    for component in nx.strongly_connected_components(graph):
        if len(component) < 2:
            node = next(iter(component))
            if not graph.has_edge(node, node):
                continue
        for u, v in graph.edges(component):
            if v not in component:
                continue
            label = comm_label.get((u, v))
            if label == "right":
                has_right = True
            elif label == "left":
                has_left = True

    queues_sent = {queue for _, queue in sends}
    queues_received = set(receives)
    return CommReport(
        has_right_cycles=has_right,
        has_left_cycles=has_left,
        sends_right=any(q.direction is Direction.RIGHT for q in queues_sent),
        sends_left=any(q.direction is Direction.LEFT for q in queues_sent),
        receives_from_left=any(
            q.direction is Direction.LEFT for q in queues_received
        ),
        receives_from_right=any(
            q.direction is Direction.RIGHT for q in queues_received
        ),
    )
