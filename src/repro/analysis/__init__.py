"""Program analyses: local DAG optimisation, global dataflow summaries,
communication-cycle classification and address classification."""

from . import local_opt
from .comm_graph import CommReport, analyze_communication
from .dependence import (
    IndexRange,
    bounds_test_independent,
    gcd_test_independent,
    may_alias_any_iteration,
    may_alias_same_iteration,
)
from .global_flow import GlobalFlowInfo, analyze_global_flow, eliminate_dead_writes

__all__ = [
    "CommReport",
    "GlobalFlowInfo",
    "IndexRange",
    "analyze_communication",
    "analyze_global_flow",
    "bounds_test_independent",
    "eliminate_dead_writes",
    "gcd_test_independent",
    "local_opt",
    "may_alias_any_iteration",
    "may_alias_same_iteration",
]
