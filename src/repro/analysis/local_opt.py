"""Local DAG optimisations (Section 6.1).

"Many local optimizations have been implemented, including common
sub-expression elimination, constant folding, height reduction and
idempotent operation removal."

CSE happens structurally through DAG value numbering
(:class:`repro.ir.dag.Dag`); this module supplies the rest, applied at
node-construction time through :func:`fold`:

* constant folding — any pure operation over constants;
* algebraic simplification / idempotent-operation removal — ``x+0``,
  ``x*1``, ``x*0``, ``x/1``, ``--x``, ``x and x``, ``select(c,a,a)``, …;
* height reduction — associative chains of ``+``/``*`` are rebalanced
  incrementally so the critical path through the 5-stage pipelined FPUs
  shortens.

Booleans are represented as floats (0.0 / 1.0), matching how the cell
datapath materialises comparison results.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

from ..ir.dag import Dag, Node, OpKind

_ARITH_EVAL: dict[OpKind, Callable[[float, float], float]] = {
    OpKind.FADD: lambda a, b: a + b,
    OpKind.FSUB: lambda a, b: a - b,
    OpKind.FMUL: lambda a, b: a * b,
    OpKind.CMP_EQ: lambda a, b: 1.0 if a == b else 0.0,
    OpKind.CMP_NE: lambda a, b: 1.0 if a != b else 0.0,
    OpKind.CMP_LT: lambda a, b: 1.0 if a < b else 0.0,
    OpKind.CMP_LE: lambda a, b: 1.0 if a <= b else 0.0,
    OpKind.CMP_GT: lambda a, b: 1.0 if a > b else 0.0,
    OpKind.CMP_GE: lambda a, b: 1.0 if a >= b else 0.0,
    OpKind.BAND: lambda a, b: 1.0 if (a != 0.0 and b != 0.0) else 0.0,
    OpKind.BOR: lambda a, b: 1.0 if (a != 0.0 or b != 0.0) else 0.0,
}

_NEGATED_COMPARE = {
    OpKind.CMP_EQ: OpKind.CMP_NE,
    OpKind.CMP_NE: OpKind.CMP_EQ,
    OpKind.CMP_LT: OpKind.CMP_GE,
    OpKind.CMP_LE: OpKind.CMP_GT,
    OpKind.CMP_GT: OpKind.CMP_LE,
    OpKind.CMP_GE: OpKind.CMP_LT,
}

_ASSOCIATIVE = frozenset({OpKind.FADD, OpKind.FMUL})


def _const_value(node: Node) -> Optional[float]:
    if node.op is OpKind.CONST:
        return float(node.attr)  # type: ignore[arg-type]
    return None


_EXTRA_EVAL: dict[OpKind, Callable[..., float]] = {
    OpKind.FDIV: lambda a, b: a / b,
    OpKind.FNEG: lambda a: -a,
    OpKind.BNOT: lambda a: 1.0 if a == 0.0 else 0.0,
    OpKind.SELECT: lambda c, a, b: a if c != 0.0 else b,
}


def pure_evaluator(op: OpKind) -> Optional[Callable[..., float]]:
    """The evaluation function of a pure op, or ``None`` for impure ops.

    Resolving the dispatch once (e.g. when the simulator pre-decodes a
    schedule) avoids a per-execution dictionary lookup."""
    return _ARITH_EVAL.get(op) or _EXTRA_EVAL.get(op)


def evaluate_pure(op: OpKind, values: Sequence[float]) -> float:
    """Reference evaluation of a pure operation over float values.

    Shared by constant folding, the AST interpreter and the simulator so
    that all three agree on the boolean-as-float convention.
    """
    fn = _ARITH_EVAL.get(op) or _EXTRA_EVAL.get(op)
    if fn is None:
        raise ValueError(f"not a pure operation: {op}")
    return fn(*values)


def depth(dag: Dag, node: Node) -> int:
    """Operation height of a node (leaves are 0).  Memoised on the dag."""
    cache: dict[int, int] = getattr(dag, "_depth_cache", None) or {}
    if not hasattr(dag, "_depth_cache"):
        dag._depth_cache = cache  # type: ignore[attr-defined]
    return _depth(dag, node.node_id, cache)


def _depth(dag: Dag, node_id: int, cache: dict[int, int]) -> int:
    cached = cache.get(node_id)
    if cached is not None:
        return cached
    node = dag.nodes[node_id]
    if not node.operands:
        value = 0
    else:
        value = 1 + max(_depth(dag, op, cache) for op in node.operands)
    cache[node_id] = value
    return value


def fold(dag: Dag, op: OpKind, operands: Sequence[Node]) -> Optional[Node]:
    """Try to simplify ``op(operands)``; return a replacement node or None.

    Called by the IR builder before materialising each pure node.  The
    returned node already exists in the dag (or is a fresh constant).
    """
    values = [_const_value(n) for n in operands]

    # Constant folding.
    if all(v is not None for v in values):
        if op is OpKind.FDIV and values[1] == 0.0:
            pass  # leave the fault to run time
        else:
            result = evaluate_pure(op, [v for v in values if v is not None])
            if math.isfinite(result):
                return dag.const(result)

    simplified = _algebraic(dag, op, list(operands), values)
    if simplified is not None:
        return simplified

    if op in _ASSOCIATIVE:
        rebalanced = _height_reduce(dag, op, list(operands))
        if rebalanced is not None:
            return rebalanced
    return None


def _algebraic(
    dag: Dag,
    op: OpKind,
    operands: list[Node],
    values: list[Optional[float]],
) -> Optional[Node]:
    if op is OpKind.FADD:
        if values[0] == 0.0:
            return operands[1]
        if values[1] == 0.0:
            return operands[0]
    elif op is OpKind.FSUB:
        if values[1] == 0.0:
            return operands[0]
        if operands[0].node_id == operands[1].node_id:
            return dag.const(0.0)
    elif op is OpKind.FMUL:
        if values[0] == 1.0:
            return operands[1]
        if values[1] == 1.0:
            return operands[0]
        if values[0] == 0.0 or values[1] == 0.0:
            return dag.const(0.0)
    elif op is OpKind.FDIV:
        if values[1] == 1.0:
            return operands[0]
    elif op is OpKind.FNEG:
        inner = operands[0]
        if inner.op is OpKind.FNEG:
            return dag.nodes[inner.operands[0]]
    elif op in (OpKind.BAND, OpKind.BOR):
        if operands[0].node_id == operands[1].node_id:
            return operands[0]  # idempotent operation removal
        if op is OpKind.BAND:
            if values[0] == 0.0 or values[1] == 0.0:
                return dag.const(0.0)
            if values[0] is not None and values[0] != 0.0:
                return operands[1]
            if values[1] is not None and values[1] != 0.0:
                return operands[0]
        else:
            if values[0] == 0.0:
                return operands[1]
            if values[1] == 0.0:
                return operands[0]
    elif op is OpKind.BNOT:
        inner = operands[0]
        if inner.op is OpKind.BNOT:
            return dag.nodes[inner.operands[0]]
        negated = _NEGATED_COMPARE.get(inner.op)
        if negated is not None:
            left, right = inner.operands
            return dag.pure(negated, dag.nodes[left], dag.nodes[right])
    elif op is OpKind.SELECT:
        cond, if_true, if_false = operands
        if if_true.node_id == if_false.node_id:
            return if_true
        if values[0] is not None:
            return if_true if values[0] != 0.0 else if_false
    return None


def _height_reduce(
    dag: Dag, op: OpKind, operands: list[Node]
) -> Optional[Node]:
    """Rebalance ``op(op(u, v), w)`` into ``op(u, op(v, w))`` when the left
    subtree is deeper, shrinking the critical path of long chains.

    Floating-point reassociation changes rounding; the paper's compiler
    applied it too, and our end-to-end tests compare with tolerance.
    """
    left, right = operands
    if left.op is op and depth(dag, left) > depth(dag, right) + 1:
        u = dag.nodes[left.operands[0]]
        v = dag.nodes[left.operands[1]]
        if depth(dag, v) <= depth(dag, u):
            inner = _build_pure(dag, op, v, right)
            return _build_pure(dag, op, u, inner)
    if right.op is op and depth(dag, right) > depth(dag, left) + 1:
        u = dag.nodes[right.operands[0]]
        v = dag.nodes[right.operands[1]]
        if depth(dag, u) <= depth(dag, v):
            inner = _build_pure(dag, op, left, u)
            return _build_pure(dag, op, inner, v)
    return None


def _build_pure(dag: Dag, op: OpKind, a: Node, b: Node) -> Node:
    """Create a pure node applying folding recursively (but without
    re-entering height reduction, to guarantee termination)."""
    values = [_const_value(a), _const_value(b)]
    if all(v is not None for v in values):
        return dag.const(evaluate_pure(op, values))  # type: ignore[arg-type]
    simplified = _algebraic(dag, op, [a, b], values)
    if simplified is not None:
        return simplified
    node = dag.pure(op, a, b)
    # New nodes invalidate the memoised depth cache entry lazily: depths
    # only ever grow from leaves, and _depth computes on demand, so no
    # action is required here.
    return node
