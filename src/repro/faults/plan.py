"""Injection plans: which faults to inject, where, and when.

A plan is a plain, frozen dataclass so it can be

* **serialised** — :meth:`InjectionPlan.to_json` /
  :meth:`InjectionPlan.from_json` round-trip through JSON (the batch
  runner ships plans to its worker processes this way), and
  :meth:`InjectionPlan.fingerprint` folds the plan into the compile
  cache key so a faulty run can never poison the cache with an artefact
  produced under injection;
* **deterministic** — every fault site is addressed statically (cell
  index, channel, nth occurrence, item index, attempt window), so the
  same plan against the same program and inputs always injects the same
  faults and produces the same outcome;
* **seedable** — :meth:`InjectionPlan.random` derives a whole plan from
  one integer seed, which is all a bug report needs to reproduce an
  injection (see ``docs/robustness.md``).

Sites use the simulator's naming: cell ``c`` sends into inter-cell link
``c + 1`` (link 0 is the host boundary, link ``n_cells`` feeds the
collector).  Queue faults address the *sending* cell; ``SHRINK_QUEUE``
addresses the link index directly.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, replace
from enum import Enum
from typing import Any, Iterable


class FaultKind(str, Enum):
    """Every fault class the injector can produce."""

    #: Silently discard the nth ``send`` of a cell on a channel.
    DROP_SEND = "drop_send"
    #: Enqueue the nth ``send`` twice (a duplicated queue write).
    DUP_SEND = "dup_send"
    #: XOR a bitmask into the stored word of the nth ``send`` (queue
    #: memory corruption; the enqueued bits no longer match the value).
    FLIP_BITS = "flip_bits"
    #: Delay a cell's start by ``cycles`` (a stalled cell; its whole
    #: schedule shifts).
    STALL_CELL = "stall_cell"
    #: Override one inter-cell queue's capacity (e.g. below the
    #: Section 6.2.2 minimum).
    SHRINK_QUEUE = "shrink_queue"
    #: Corrupt the bytes of a disk compile-cache entry as it is read.
    CORRUPT_CACHE = "corrupt_cache"
    #: Kill the batch worker process running a given item.
    WORKER_KILL = "worker_kill"
    #: Hang the batch worker process running a given item.
    WORKER_HANG = "worker_hang"


#: Kinds injected inside one machine run (vs cache / batch-worker kinds).
MACHINE_KINDS = frozenset(
    {
        FaultKind.DROP_SEND,
        FaultKind.DUP_SEND,
        FaultKind.FLIP_BITS,
        FaultKind.STALL_CELL,
        FaultKind.SHRINK_QUEUE,
    }
)
WORKER_KINDS = frozenset({FaultKind.WORKER_KILL, FaultKind.WORKER_HANG})


@dataclass(frozen=True)
class FaultSpec:
    """One fault: a kind plus the static address of its site.

    Field meaning depends on the kind (unused fields are ignored):

    * ``cell`` — the injecting cell for ``DROP_SEND`` / ``DUP_SEND`` /
      ``FLIP_BITS`` / ``STALL_CELL``; the *link index* for
      ``SHRINK_QUEUE`` (link ``i`` connects cell ``i-1`` to cell ``i``).
    * ``channel`` — ``"X"`` or ``"Y"`` for queue faults.
    * ``index`` — the nth dynamic occurrence at the site (nth send on
      the queue, nth disk-cache read for ``CORRUPT_CACHE``).
    * ``cycles`` — stall length for ``STALL_CELL``.
    * ``capacity`` — the override for ``SHRINK_QUEUE``.
    * ``bitmask`` — the XOR mask applied to the float64 bit pattern for
      ``FLIP_BITS`` (and to every byte offset it selects for
      ``CORRUPT_CACHE``).
    * ``seconds`` — how long ``WORKER_HANG`` sleeps.
    * ``item`` — which batch item the fault applies to (``None`` means
      every item; one-shot ``simulate`` runs are item 0).
    * ``attempts`` — the fault fires on the first ``attempts`` attempts
      of its item and then stops, so a retried item recovers; use a
      large value for a persistent fault.
    """

    kind: FaultKind
    cell: int = 0
    channel: str = "X"
    index: int = 0
    cycles: int = 0
    capacity: int | None = None
    bitmask: int = 1 << 52
    seconds: float = 30.0
    item: int | None = None
    attempts: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            object.__setattr__(self, "kind", FaultKind(self.kind))
        if self.channel not in ("X", "Y"):
            raise ValueError(f"channel must be X or Y, not {self.channel!r}")
        if self.index < 0 or self.attempts < 1:
            raise ValueError("index must be >= 0 and attempts >= 1")
        if self.kind is FaultKind.SHRINK_QUEUE and self.capacity is None:
            raise ValueError("SHRINK_QUEUE needs an explicit capacity")

    def applies_to(self, item: int, attempt: int) -> bool:
        """Does this fault fire for the given batch item and attempt?"""
        if self.item is not None and self.item != item:
            return False
        return attempt < self.attempts

    def describe(self) -> str:
        parts = [self.kind.value]
        if self.kind in (FaultKind.DROP_SEND, FaultKind.DUP_SEND, FaultKind.FLIP_BITS):
            parts.append(f"cell={self.cell} channel={self.channel} index={self.index}")
        elif self.kind is FaultKind.STALL_CELL:
            parts.append(f"cell={self.cell} cycles={self.cycles}")
        elif self.kind is FaultKind.SHRINK_QUEUE:
            parts.append(
                f"link={self.cell} channel={self.channel} capacity={self.capacity}"
            )
        elif self.kind is FaultKind.CORRUPT_CACHE:
            parts.append(f"read={self.index}")
        else:
            parts.append(f"item={'*' if self.item is None else self.item}")
        return " ".join(parts)

    def to_json(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"kind": self.kind.value}
        defaults = _SPEC_DEFAULTS
        for name in defaults:
            value = getattr(self, name)
            if value != defaults[name]:
                doc[name] = value
        return doc

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "FaultSpec":
        return cls(**doc)


_SPEC_DEFAULTS = {
    name: f.default
    for name, f in FaultSpec.__dataclass_fields__.items()
    if name != "kind"
}


@dataclass(frozen=True)
class InjectionPlan:
    """A reproducible set of faults to inject into one run or batch."""

    specs: tuple[FaultSpec, ...] = ()
    #: The seed the plan was generated from, if any (reporting only).
    seed: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def with_specs(self, specs: Iterable[FaultSpec]) -> "InjectionPlan":
        return replace(self, specs=tuple(specs))

    @property
    def has_machine_faults(self) -> bool:
        return any(spec.kind in MACHINE_KINDS for spec in self.specs)

    @property
    def has_worker_faults(self) -> bool:
        return any(spec.kind in WORKER_KINDS for spec in self.specs)

    @property
    def has_cache_faults(self) -> bool:
        return any(spec.kind is FaultKind.CORRUPT_CACHE for spec in self.specs)

    # Serialisation -------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"specs": [spec.to_json() for spec in self.specs]}
        if self.seed is not None:
            doc["seed"] = self.seed
        return doc

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "InjectionPlan":
        return cls(
            specs=tuple(FaultSpec.from_json(spec) for spec in doc.get("specs", ())),
            seed=doc.get("seed"),
        )

    def fingerprint(self) -> str:
        """A stable content hash of the plan, folded into compile-cache
        keys so artefacts compiled under injection never shadow clean
        ones (and vice versa)."""
        payload = json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # Generation ----------------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        n_cells: int = 4,
        n_faults: int | None = None,
        max_index: int = 8,
        kinds: Iterable[FaultKind] = tuple(sorted(MACHINE_KINDS)),
    ) -> "InjectionPlan":
        """A deterministic random plan derived from ``seed`` alone.

        Only machine-level kinds by default: a random plan is meant to
        be thrown at ``simulate`` (the soak and the property tests);
        worker/cache faults need a batch/cache context to mean anything.
        """
        rng = random.Random(seed)
        kinds = tuple(kinds)
        count = n_faults if n_faults is not None else rng.randint(1, 3)
        specs = []
        for _ in range(count):
            kind = rng.choice(kinds)
            cell = rng.randrange(max(n_cells, 1))
            channel = rng.choice(("X", "Y"))
            if kind is FaultKind.SHRINK_QUEUE:
                specs.append(
                    FaultSpec(
                        kind=kind,
                        cell=rng.randrange(1, max(n_cells, 2)),
                        channel=channel,
                        capacity=rng.randint(0, 8),
                    )
                )
            elif kind is FaultKind.STALL_CELL:
                specs.append(
                    FaultSpec(kind=kind, cell=cell, cycles=rng.randint(1, 4096))
                )
            else:
                specs.append(
                    FaultSpec(
                        kind=kind,
                        cell=cell,
                        channel=channel,
                        index=rng.randrange(max_index),
                        bitmask=1 << rng.randrange(64),
                    )
                )
        return cls(specs=tuple(specs), seed=seed)


def parse_inject_spec(text: str) -> list[FaultSpec] | InjectionPlan:
    """Parse one ``--inject`` argument.

    Two forms::

        kind:key=value,key=value     one explicit fault
        random:seed=42[,cells=4][,count=2]   a seeded random plan

    Examples: ``drop_send:cell=0,channel=X,index=2``,
    ``stall_cell:cell=1,cycles=500``, ``shrink_queue:link=1,capacity=3``,
    ``worker_kill:item=2``, ``random:seed=42``.
    """
    head, _, rest = text.partition(":")
    head = head.strip().lower()
    params: dict[str, str] = {}
    for chunk in filter(None, (c.strip() for c in rest.split(","))):
        if "=" not in chunk:
            raise ValueError(
                f"--inject parameter {chunk!r} must look like key=value"
            )
        key, value = chunk.split("=", 1)
        params[key.strip()] = value.strip()

    if head == "random":
        if "seed" not in params:
            raise ValueError("--inject random needs seed=N")
        return InjectionPlan.random(
            seed=int(params["seed"]),
            n_cells=int(params.get("cells", 4)),
            n_faults=int(params["count"]) if "count" in params else None,
        )

    try:
        kind = FaultKind(head)
    except ValueError:
        valid = ", ".join(k.value for k in FaultKind)
        raise ValueError(
            f"unknown fault kind {head!r} (valid: {valid}, or random:seed=N)"
        ) from None
    fields: dict[str, Any] = {"kind": kind}
    aliases = {"link": "cell"}
    for key, value in params.items():
        name = aliases.get(key, key)
        if name not in FaultSpec.__dataclass_fields__:
            raise ValueError(f"unknown --inject parameter {key!r} for {head}")
        if name == "channel":
            fields[name] = value.upper()
        elif name == "seconds":
            fields[name] = float(value)
        elif name == "bitmask":
            fields[name] = int(value, 0)
        else:
            fields[name] = int(value)
    return [FaultSpec(**fields)]


def parse_inject_specs(arguments: Iterable[str]) -> InjectionPlan:
    """Combine repeated ``--inject`` arguments into one plan."""
    specs: list[FaultSpec] = []
    seed: int | None = None
    for text in arguments:
        parsed = parse_inject_spec(text)
        if isinstance(parsed, InjectionPlan):
            specs.extend(parsed.specs)
            seed = parsed.seed if seed is None else seed
        else:
            specs.extend(parsed)
    return InjectionPlan(specs=tuple(specs), seed=seed)
