"""``repro.faults`` — deterministic fault injection and detection.

The paper's compile-time synchronisation assumes a perfectly reliable
array: Warp had no runtime flow control, so an undersized queue or a
stalled cell silently corrupts results (Sections 6.2, 6.2.2).  This
package makes the reproduction *demonstrate* at runtime that its static
bounds are tight and that the engine fails loudly, never silently:

* :mod:`repro.faults.plan` — :class:`InjectionPlan` /
  :class:`FaultSpec`, a seedable, serialisable description of which
  faults to inject where (dropped/duplicated sends, bit flips in queue
  slots, stalled cells, shrunk queues, corrupted cache entries,
  killed/hung batch workers);
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the runtime
  layer threaded through :mod:`repro.machine` and :mod:`repro.exec`,
  plus :class:`FaultyQueue`, the integrity-checked queue that turns
  would-be-silent corruption into
  :class:`~repro.errors.SilentCorruptionDetected`.

Detection pairs with recovery: the batch engine
(:class:`repro.exec.BatchRunner`) retries transient faults with backoff
and reports unrecoverable items as structured failure records; see
``docs/robustness.md`` for the full taxonomy and how to reproduce any
injection from its seed.
"""

from .injector import FaultInjector, FaultyQueue, flip_float_bits
from .plan import (
    FaultKind,
    FaultSpec,
    InjectionPlan,
    MACHINE_KINDS,
    WORKER_KINDS,
    parse_inject_spec,
    parse_inject_specs,
)

__all__ = [
    "FaultInjector",
    "FaultKind",
    "FaultSpec",
    "FaultyQueue",
    "InjectionPlan",
    "MACHINE_KINDS",
    "WORKER_KINDS",
    "flip_float_bits",
    "parse_inject_spec",
    "parse_inject_specs",
]
