"""The runtime fault injector, plus the integrity-checked queue.

One :class:`FaultInjector` covers one *attempt* of one *item*: it
filters the plan down to the specs that apply to that (item, attempt)
pair, keeps the per-site occurrence counters, and records every fault it
actually fires (``fired``) while bumping the ``fault.injected``
telemetry counter.  Re-running the same item with a fresh injector and a
higher ``attempt`` is how the batch engine models transient faults: a
spec with ``attempts=1`` fires on the first attempt and is gone on the
retry.

:class:`FaultyQueue` is the injection point for queue faults *and* the
detection layer for them: it keeps a shadow copy of every enqueued word
(modelling the queue memory's parity/ECC bits) and raises
:class:`~repro.errors.SilentCorruptionDetected` the moment a dequeued
word's bits disagree with the bits that were enqueued.  Clean runs never
construct it — the machine builds plain :class:`TimedQueue` objects
unless an injector is active, so the fault layer costs nothing and
cannot perturb results when disabled.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

from ..errors import SilentCorruptionDetected
from ..machine.queue import TimedQueue
from ..obs import get_telemetry
from .plan import FaultKind, FaultSpec, InjectionPlan

if TYPE_CHECKING:  # pragma: no cover
    pass

_PACK = struct.Struct("<d")


def flip_float_bits(value: float, bitmask: int) -> float:
    """XOR ``bitmask`` into the IEEE-754 bit pattern of ``value``."""
    (bits,) = struct.unpack("<Q", _PACK.pack(value))
    return _PACK.unpack(struct.pack("<Q", (bits ^ bitmask) & (2**64 - 1)))[0]


class FaultInjector:
    """Deterministic runtime injection for one (item, attempt) pair."""

    def __init__(
        self, plan: InjectionPlan, item: int = 0, attempt: int = 0
    ) -> None:
        self.plan = plan
        self.item = item
        self.attempt = attempt
        #: Human-readable descriptions of every fault actually fired.
        self.fired: list[str] = []
        active = [s for s in plan.specs if s.applies_to(item, attempt)]
        #: Queue-site faults: queue name -> occurrence index -> spec.
        self._queue_faults: dict[str, dict[int, FaultSpec]] = {}
        self._stalls: dict[int, int] = {}
        self._capacities: dict[tuple[int, str], int] = {}
        self._cache_faults: dict[int, FaultSpec] = {}
        self._worker_fault: FaultSpec | None = None
        self._occurrences: dict[str, int] = {}
        self._cache_reads = 0
        for spec in active:
            if spec.kind in (
                FaultKind.DROP_SEND,
                FaultKind.DUP_SEND,
                FaultKind.FLIP_BITS,
            ):
                name = f"link{spec.cell + 1}.{spec.channel}"
                self._queue_faults.setdefault(name, {})[spec.index] = spec
            elif spec.kind is FaultKind.STALL_CELL:
                self._stalls[spec.cell] = (
                    self._stalls.get(spec.cell, 0) + spec.cycles
                )
            elif spec.kind is FaultKind.SHRINK_QUEUE:
                self._capacities[(spec.cell, spec.channel)] = spec.capacity  # type: ignore[assignment]
            elif spec.kind is FaultKind.CORRUPT_CACHE:
                self._cache_faults[spec.index] = spec
            else:  # worker kill / hang
                self._worker_fault = spec

    @classmethod
    def of(
        cls, faults: "InjectionPlan | FaultInjector | None"
    ) -> "FaultInjector | None":
        """Normalise a ``faults=`` argument to an injector (or None)."""
        if faults is None:
            return None
        if isinstance(faults, FaultInjector):
            return faults
        return cls(faults)

    def _record(self, spec: FaultSpec, detail: str = "") -> None:
        description = spec.describe() + (f" ({detail})" if detail else "")
        self.fired.append(description)
        get_telemetry().counter("fault.injected")

    # Machine-level sites --------------------------------------------------

    def stall_cycles(self, cell: int) -> int:
        """Extra start-delay cycles injected into ``cell``."""
        cycles = self._stalls.get(cell, 0)
        if cycles:
            self._record(
                FaultSpec(kind=FaultKind.STALL_CELL, cell=cell, cycles=cycles)
            )
        return cycles

    def link_capacity(
        self, link: int, channel: str, default: int | None
    ) -> int | None:
        """The (possibly shrunk) capacity of one inter-cell queue."""
        override = self._capacities.get((link, channel))
        if override is None:
            return default
        self._record(
            FaultSpec(
                kind=FaultKind.SHRINK_QUEUE,
                cell=link,
                channel=channel,
                capacity=override,
            ),
            detail=f"default {default}",
        )
        return override

    def on_enqueue(
        self, queue_name: str, value: float
    ) -> tuple[FaultKind | None, float]:
        """Consulted by :class:`FaultyQueue` on every enqueue.

        Returns ``(fault_kind_or_None, value_to_store)``.
        """
        faults = self._queue_faults.get(queue_name)
        if faults is None:
            return None, value
        occurrence = self._occurrences.get(queue_name, 0)
        self._occurrences[queue_name] = occurrence + 1
        spec = faults.get(occurrence)
        if spec is None:
            return None, value
        if spec.kind is FaultKind.FLIP_BITS:
            corrupted = flip_float_bits(value, spec.bitmask)
            self._record(spec, detail=f"{value!r} -> {corrupted!r}")
            return spec.kind, corrupted
        self._record(spec)
        return spec.kind, value

    # Cache / worker sites -------------------------------------------------

    def corrupt_blob(self, blob: bytes) -> bytes:
        """Apply any CORRUPT_CACHE fault to a disk-cache read."""
        read = self._cache_reads
        self._cache_reads += 1
        spec = self._cache_faults.get(read)
        if spec is None or not blob:
            return blob
        corrupted = bytearray(blob)
        offset = len(corrupted) // 2
        corrupted[offset] ^= spec.bitmask & 0xFF or 0xFF
        self._record(spec, detail=f"byte {offset} of {len(blob)}")
        return bytes(corrupted)

    def worker_action(self) -> FaultSpec | None:
        """The kill/hang fault for this (item, attempt), if any."""
        spec = self._worker_fault
        if spec is not None:
            self._record(spec, detail=f"attempt {self.attempt}")
        return spec

    def report(self) -> list[str]:
        return list(self.fired)


class FaultyQueue(TimedQueue):
    """A :class:`TimedQueue` with an injection hook and integrity bits.

    The shadow list stores, per stored word, the link-level *sequence
    tag* and the bit pattern the word *should* have (written before
    injection corrupts the slot) — modelling the queue memory's
    parity/ECC plus a send-side sequence counter.  Any divergence —
    seen at dequeue, or at the post-run sweep for words the program
    never consumed — raises :class:`SilentCorruptionDetected` instead
    of letting a corrupted word flow on.

    The sequence tags are what make drop/dup detection *count-proof*:
    a dropped send consumes a sequence number without storing a word
    and a duplicated send stores one twice, so a slot whose tag
    disagrees with its position betrays a lost or repeated word even
    when a drop and a dup on the same link cancel out in the stream
    accounting totals.
    """

    def __init__(self, injector: FaultInjector | None = None, **kwargs):
        super().__init__(**kwargs)
        self.injector = injector
        self._shadow: list[tuple[int, bytes]] = []
        self._sent_seq = 0

    def enqueue(self, time: int, value: float) -> None:
        kind = None
        stored = value
        if self.injector is not None:
            kind, stored = self.injector.on_enqueue(self.name, value)
        seq = self._sent_seq
        self._sent_seq += 1
        if kind is FaultKind.DROP_SEND:
            return  # sent (seq consumed) but lost on the link
        super().enqueue(time, stored)
        self._shadow.append((seq, _PACK.pack(value)))
        if kind is FaultKind.DUP_SEND:
            super().enqueue(time, stored)
            self._shadow.append((seq, _PACK.pack(value)))

    def _check_slot(self, slot: int, value: float, when: str) -> None:
        seq, shadow = self._shadow[slot]
        if seq != slot:
            get_telemetry().counter("fault.detected")
            raise SilentCorruptionDetected(
                f"{self.name}: word {slot} carries sequence tag {seq} — "
                f"a send was {'dropped' if seq > slot else 'duplicated'} "
                f"upstream ({when})"
            )
        if _PACK.pack(value) != shadow:
            get_telemetry().counter("fault.detected")
            raise SilentCorruptionDetected(
                f"{self.name}: word {slot} reads {value!r} but "
                f"{_PACK.unpack(shadow)[0]!r} was enqueued — queue memory "
                f"corrupted ({when})"
            )

    def dequeue(self, time: int) -> float:
        cursor = self._cursor
        value = super().dequeue(time)
        if cursor < len(self._shadow):
            self._check_slot(cursor, value, f"in flight at cycle {time}")
        return value

    def verify_integrity(self) -> None:
        """Post-run sweep: every *stored* word must still match its
        shadow tag and bits, including words the program never dequeued
        (the collector reads those directly)."""
        for slot, value in enumerate(self.values):
            if slot < len(self._shadow):
                self._check_slot(slot, value, "at rest")
