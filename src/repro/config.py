"""Architecture parameters of the Warp machine (Section 2).

The numbers below come from the paper and its architecture reference
(Annaratone et al., "Warp Architecture and Implementation"):

* 10 identical cells in a linear array;
* two data paths (X and Y) between adjacent cells plus the address path;
* per-channel 128-word queues between neighbours;
* each cell: two 5-stage pipelined floating-point units, a 4K-word data
  memory able to serve two references per cycle, and a 32-word register
  file per floating-point unit;
* the IU: 16 registers, addition/subtraction only, a 32K-word table
  memory readable in sequential order only, and a 3-cycle loop-counter
  update/test.

Simplifications (documented in DESIGN.md): the two per-FPU register
files are modelled as one 64-word pool reachable from every functional
unit (the real crossbar made operands fully routable); one register-move
and one literal field per micro-instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CellConfig:
    """Resources and latencies of one Warp cell."""

    #: Pipeline depth of both floating-point units (Section 2.4).
    fpu_stages: int = 5
    #: Issue-to-use latency of the adder/ALU unit.
    alu_latency: int = 5
    #: Issue-to-use latency of the multiplier unit.
    mpy_latency: int = 5
    #: Issue-to-use latency of a divide (iterative on the multiplier).
    div_latency: int = 10
    #: Data-memory words per cell.
    memory_words: int = 4096
    #: Memory references per cycle ("two memory references per cycle").
    mem_ports: int = 2
    #: Memory read latency (address to register).
    mem_read_latency: int = 2
    #: Queue-dequeue latency (queue to register via crossbar).
    queue_latency: int = 1
    #: Register-to-register move latency.
    move_latency: int = 1
    #: Register moves per cycle (one crossbar transfer field).
    move_ports: int = 1
    #: Distinct literal fields per micro-instruction.
    literal_ports: int = 1
    #: Total general registers (2 x 32-word register files, unified).
    n_registers: int = 64


@dataclass(frozen=True)
class IUConfig:
    """Resources of the interface unit (Section 6.3)."""

    n_registers: int = 16
    #: ALU operations (add/sub) per cycle.
    alu_ports: int = 1
    #: Addresses the IU can emit to the address path per cycle.
    emit_ports: int = 2
    #: Size of the sequential-access table memory.
    table_words: int = 32768
    #: Cycles needed to update and test a loop counter (Section 6.3.1).
    loop_test_cycles: int = 3


@dataclass(frozen=True)
class WarpConfig:
    """A whole Warp machine."""

    n_cells: int = 10
    queue_depth: int = 128
    #: Address/loop-signal queue depth per cell (same hardware FIFO).
    address_queue_depth: int = 128
    #: Propagation delay of the address path per cell hop.
    address_hop_latency: int = 1
    #: Per-cell watchdog slack: a cell running more than this many
    #: cycles past its statically predicted completion cycle is declared
    #: hung (:class:`~repro.errors.CellHangError`).  Schedules are
    #: data-independent, so a healthy cell finishes *exactly* on time
    #: and the watchdog can never fire on a clean run.
    watchdog_slack: int = 64
    #: Post-compile schedule verification level: ``"off"``, ``"quick"``,
    #: ``"full"``, or ``"default"`` (resolve through the ``REPRO_VERIFY``
    #: environment variable, falling back to off).  See
    #: :mod:`repro.verify`.
    verify: str = "default"
    cell: CellConfig = field(default_factory=CellConfig)
    iu: IUConfig = field(default_factory=IUConfig)


DEFAULT_CONFIG = WarpConfig()
