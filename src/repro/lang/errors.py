"""Diagnostics for the W2 front end.

All front-end failures are reported through :class:`W2Error` subclasses so
that callers (the compiler driver, tests, examples) can distinguish the
phase that rejected a program.  Every error carries a source location when
one is available.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in a W2 source text (1-based line and column)."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"line {self.line}, column {self.column}"


class W2Error(Exception):
    """Base class for all errors raised while processing a W2 program."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.message = message
        self.location = location
        if location is not None:
            super().__init__(f"{message} (at {location})")
        else:
            super().__init__(message)


class LexError(W2Error):
    """An invalid character sequence was found while tokenising."""


class ParseError(W2Error):
    """The token stream does not form a syntactically valid W2 program."""


class SemanticError(W2Error):
    """The program is syntactically valid but violates W2 static semantics."""


class UnsupportedProgramError(W2Error):
    """The program is valid W2 but outside the compilable subset.

    Section 5.1 of the paper: programs must have compile-time-analysable
    I/O timing (constant loop bounds) and unidirectional communication.
    """
