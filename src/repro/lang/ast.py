"""Abstract syntax tree for W2 programs.

The shape follows the sample program of Figure 4-1 of the paper: a module
header with typed I/O parameters, host-side declarations, and a
``cellprogram`` block containing function declarations and statements
(assignment, conditional, constant-bound ``for`` loops, ``call``, and the
channel primitives ``send``/``receive``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .errors import SourceLocation


class Direction(enum.Enum):
    """The neighbour a channel operation addresses.

    ``receive (L, X, ...)`` receives from the *left* neighbour;
    ``send (R, X, ...)`` sends to the *right* neighbour.
    """

    LEFT = "L"
    RIGHT = "R"

    def __str__(self) -> str:
        return self.value


class Channel(enum.Enum):
    """The two data paths connecting adjacent cells (Section 2.1)."""

    X = "X"
    Y = "Y"

    def __str__(self) -> str:
        return self.value


class ScalarType(enum.Enum):
    """W2 scalar types; ``int`` is restricted to loop indices (Section 2.2:
    Warp cells have no integer arithmetic — integer work lives on the IU)."""

    FLOAT = "float"
    INT = "int"

    def __str__(self) -> str:
        return self.value


class ParamDirection(enum.Enum):
    """Whether a module parameter flows from the host (``in``) or to it."""

    IN = "in"
    OUT = "out"

    def __str__(self) -> str:
        return self.value


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for expression nodes."""

    location: SourceLocation


@dataclass(frozen=True)
class IntLiteral(Expr):
    value: int


@dataclass(frozen=True)
class FloatLiteral(Expr):
    value: float


@dataclass(frozen=True)
class VarRef(Expr):
    """A reference to a scalar variable (or whole array in a declaration
    context; semantic analysis rejects whole-array reads in expressions)."""

    name: str


@dataclass(frozen=True)
class ArrayRef(Expr):
    """An indexed array reference ``a[i, j+1]``."""

    name: str
    indices: tuple[Expr, ...]


class BinaryOp(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "and"
    OR = "or"


class UnaryOp(enum.Enum):
    NEG = "-"
    NOT = "not"


@dataclass(frozen=True)
class BinaryExpr(Expr):
    op: BinaryOp
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryExpr(Expr):
    op: UnaryOp
    operand: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    """Base class for statement nodes."""

    location: SourceLocation


@dataclass(frozen=True)
class Assign(Stmt):
    target: Expr  # VarRef or ArrayRef
    value: Expr


@dataclass(frozen=True)
class If(Stmt):
    condition: Expr
    then_body: Stmt
    else_body: Stmt | None


@dataclass(frozen=True)
class For(Stmt):
    """``for i := lo to hi do stmt`` (or ``downto``).

    Bounds must be compile-time constants for the program to be compilable
    (Section 5.1); the *parser* accepts arbitrary expressions and the
    restriction check happens during semantic analysis.
    """

    var: str
    start: Expr
    stop: Expr
    downto: bool
    body: Stmt


@dataclass(frozen=True)
class Call(Stmt):
    name: str


@dataclass(frozen=True)
class Receive(Stmt):
    """``receive (dir, chan, internal_lvalue [, external_expr])``.

    ``external`` names the host value consumed by the *first* cell of the
    array; it is ignored on all other cells (Section 4.3).
    """

    direction: Direction
    channel: Channel
    target: Expr  # VarRef or ArrayRef
    external: Expr | None


@dataclass(frozen=True)
class Send(Stmt):
    """``send (dir, chan, internal_expr [, external_lvalue])``.

    ``external`` names the host location written by the *last* cell.
    """

    direction: Direction
    channel: Channel
    value: Expr
    external: Expr | None


@dataclass(frozen=True)
class Compound(Stmt):
    """A ``begin ... end`` statement sequence."""

    statements: tuple[Stmt, ...]


# ---------------------------------------------------------------------------
# Declarations and top level
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VarDecl:
    """One declared name with an optional array shape (empty = scalar)."""

    name: str
    scalar_type: ScalarType
    dimensions: tuple[int, ...]
    location: SourceLocation

    @property
    def is_array(self) -> bool:
        return bool(self.dimensions)

    @property
    def element_count(self) -> int:
        count = 1
        for dim in self.dimensions:
            count *= dim
        return count


@dataclass(frozen=True)
class Param:
    """A module parameter: a host variable bound at call time."""

    name: str
    direction: ParamDirection
    location: SourceLocation


@dataclass(frozen=True)
class FunctionDecl:
    name: str
    locals: tuple[VarDecl, ...]
    body: Compound
    location: SourceLocation


@dataclass(frozen=True)
class CellProgram:
    """``cellprogram (cid : first : last)`` — the code every cell runs."""

    cell_var: str
    first_cell: int
    last_cell: int
    functions: tuple[FunctionDecl, ...]
    locals: tuple[VarDecl, ...]
    body: tuple[Stmt, ...]
    location: SourceLocation

    @property
    def n_cells(self) -> int:
        return self.last_cell - self.first_cell + 1


@dataclass(frozen=True)
class Module:
    """A complete W2 compilation unit."""

    name: str
    params: tuple[Param, ...]
    host_decls: tuple[VarDecl, ...]
    cellprogram: CellProgram
    location: SourceLocation

    def param(self, name: str) -> Param:
        """Return the parameter called ``name`` (KeyError if absent)."""
        for param in self.params:
            if param.name == name:
                return param
        raise KeyError(name)

    def host_decl(self, name: str) -> VarDecl:
        """Return the host declaration for ``name`` (KeyError if absent)."""
        for decl in self.host_decls:
            if decl.name == name:
                return decl
        raise KeyError(name)
