"""Static semantics of W2.

The analyzer enforces the rules of Section 4.3 and the compilable-subset
restrictions of Section 5.1:

* every module parameter has a host declaration and vice versa;
* cell variables hold ``float`` data (scalars or arrays); ``int``
  declarations are only legal as loop indices, because Warp cells have no
  integer arithmetic (Section 2.2) — integer work belongs to the IU;
* ``for`` bounds must be compile-time constants (Section 5.1: the compiler
  "currently can only handle" constant bounds);
* array subscripts must be *affine* expressions in enclosing loop indices,
  so the IU can generate every address with additions only after strength
  reduction (Section 6.3.2);
* ``receive`` externals name host input data (or a literal, which the IU
  synthesises); ``send`` externals name host output locations;
* functions take no arguments, may not contain ``call`` (hence no
  recursion), and are invoked by ``call`` statements.

The result is an :class:`AnalyzedModule` bundling the AST with symbol
tables and the per-reference affine index forms that later phases
(decomposition, IU code generation) consume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from . import ast
from .errors import SemanticError, UnsupportedProgramError
from .symbols import Scope, Symbol, SymbolKind, host_kind


class ExprType(enum.Enum):
    """Types of W2 expressions during checking."""

    FLOAT = "float"
    INT = "int"
    BOOL = "bool"


@dataclass(frozen=True)
class AffineIndex:
    """An affine integer expression ``constant + sum(coeff[var] * var)``.

    Loop-index variables are referred to by name.  This is the canonical
    form the IU strength-reducer works from.
    """

    constant: int
    coefficients: tuple[tuple[str, int], ...]  # sorted by variable name

    def coefficient(self, var: str) -> int:
        for name, coeff in self.coefficients:
            if name == var:
                return coeff
        return 0

    @property
    def is_constant(self) -> bool:
        return not self.coefficients

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.coefficients)

    def evaluate(self, env: dict[str, int]) -> int:
        """Evaluate under a loop-index assignment."""
        value = self.constant
        for name, coeff in self.coefficients:
            value += coeff * env[name]
        return value

    def __str__(self) -> str:
        parts = [str(self.constant)] if self.constant or not self.coefficients else []
        for name, coeff in self.coefficients:
            if coeff == 1:
                parts.append(name)
            else:
                parts.append(f"{coeff}*{name}")
        return " + ".join(parts)


def affine_add(left: AffineIndex, right: AffineIndex, sign: int = 1) -> AffineIndex:
    """Return ``left + sign*right`` as an affine form."""
    coeffs = dict(left.coefficients)
    for name, coeff in right.coefficients:
        coeffs[name] = coeffs.get(name, 0) + sign * coeff
    pruned = tuple(sorted((n, c) for n, c in coeffs.items() if c != 0))
    return AffineIndex(left.constant + sign * right.constant, pruned)


def affine_scale(form: AffineIndex, factor: int) -> AffineIndex:
    if factor == 0:
        return AffineIndex(0, ())
    coeffs = tuple(sorted((n, c * factor) for n, c in form.coefficients))
    return AffineIndex(form.constant * factor, coeffs)


def affine_const(value: int) -> AffineIndex:
    return AffineIndex(value, ())


def affine_var(name: str) -> AffineIndex:
    return AffineIndex(0, ((name, 1),))


class _AffineBuilder:
    """Convert an integer expression over loop indices into affine form."""

    def __init__(self, scope: Scope):
        self._scope = scope

    def build(self, expr: ast.Expr) -> AffineIndex:
        if isinstance(expr, ast.IntLiteral):
            return affine_const(expr.value)
        if isinstance(expr, ast.VarRef):
            symbol = self._scope.lookup_or_fail(expr.name, expr.location)
            if symbol.kind not in (SymbolKind.LOOP_INDEX, SymbolKind.CELL_ID):
                raise SemanticError(
                    f"{expr.name!r} is not a loop index; array subscripts may "
                    "only use loop indices and constants",
                    expr.location,
                )
            return affine_var(expr.name)
        if isinstance(expr, ast.UnaryExpr) and expr.op is ast.UnaryOp.NEG:
            return affine_scale(self.build(expr.operand), -1)
        if isinstance(expr, ast.BinaryExpr):
            if expr.op is ast.BinaryOp.ADD:
                return affine_add(self.build(expr.left), self.build(expr.right))
            if expr.op is ast.BinaryOp.SUB:
                return affine_add(self.build(expr.left), self.build(expr.right), -1)
            if expr.op is ast.BinaryOp.MUL:
                left = self.build(expr.left)
                right = self.build(expr.right)
                if left.is_constant:
                    return affine_scale(right, left.constant)
                if right.is_constant:
                    return affine_scale(left, right.constant)
                raise UnsupportedProgramError(
                    "array subscript is not affine in the loop indices "
                    "(product of two indices); the IU generates addresses "
                    "with additions only",
                    expr.location,
                )
            if expr.op is ast.BinaryOp.DIV:
                left = self.build(expr.left)
                right = self.build(expr.right)
                if right.is_constant and right.constant != 0:
                    if left.is_constant and left.constant % right.constant == 0:
                        return affine_const(left.constant // right.constant)
                raise UnsupportedProgramError(
                    "division in array subscripts must fold to a constant",
                    expr.location,
                )
        raise SemanticError(
            "array subscripts must be affine integer expressions",
            expr.location,
        )


@dataclass
class IOStatementInfo:
    """Semantic facts about one send/receive statement."""

    stmt: ast.Stmt
    direction: ast.Direction
    channel: ast.Channel
    # For receive: the external source ('host array ref' affine indices or a
    # literal). For send: the external destination.  None when absent.
    external_name: str | None
    external_indices: tuple[AffineIndex, ...]
    external_literal: float | None


@dataclass
class AnalyzedModule:
    """A W2 module that passed semantic analysis, plus derived facts."""

    module: ast.Module
    host_scope: Scope
    cell_scope: Scope
    functions: dict[str, ast.FunctionDecl]
    #: Affine forms for every array subscript list, keyed by node identity.
    array_index_forms: dict[int, tuple[AffineIndex, ...]]
    #: Constant values of every for-loop (start, stop, trip count), keyed by
    #: node identity.
    loop_bounds: dict[int, tuple[int, int, int]]
    #: Per-I/O-statement facts, keyed by node identity.
    io_info: dict[int, IOStatementInfo]

    @property
    def n_cells(self) -> int:
        return self.module.cellprogram.n_cells

    def indices_for(self, ref: ast.ArrayRef) -> tuple[AffineIndex, ...]:
        return self.array_index_forms[id(ref)]

    def bounds_for(self, loop: ast.For) -> tuple[int, int, int]:
        return self.loop_bounds[id(loop)]


class SemanticAnalyzer:
    """Single-pass checker producing an :class:`AnalyzedModule`."""

    def __init__(self, module: ast.Module):
        self._module = module
        self._host_scope = Scope()
        self._cell_scope = Scope(self._host_scope)
        self._functions: dict[str, ast.FunctionDecl] = {}
        self._array_index_forms: dict[int, tuple[AffineIndex, ...]] = {}
        self._loop_bounds: dict[int, tuple[int, int, int]] = {}
        self._io_info: dict[int, IOStatementInfo] = {}
        self._loop_depth = 0

    def analyze(self) -> AnalyzedModule:
        self._check_params()
        cellprogram = self._module.cellprogram
        self._cell_scope.define(
            Symbol(
                cellprogram.cell_var,
                SymbolKind.CELL_ID,
                ast.ScalarType.INT,
                (),
                cellprogram.location,
            )
        )
        for decl in cellprogram.locals:
            self._define_cell_var(self._cell_scope, decl)
        for function in cellprogram.functions:
            if function.name in self._functions:
                raise SemanticError(
                    f"duplicate function {function.name!r}", function.location
                )
            self._functions[function.name] = function
        for function in cellprogram.functions:
            scope = Scope(self._cell_scope)
            for decl in function.locals:
                self._define_cell_var(scope, decl)
            self._check_statements(function.body.statements, scope, in_function=True)
        self._check_statements(
            cellprogram.body, self._cell_scope, in_function=False
        )
        return AnalyzedModule(
            module=self._module,
            host_scope=self._host_scope,
            cell_scope=self._cell_scope,
            functions=self._functions,
            array_index_forms=self._array_index_forms,
            loop_bounds=self._loop_bounds,
            io_info=self._io_info,
        )

    # Declarations ---------------------------------------------------------

    def _check_params(self) -> None:
        declared = {decl.name: decl for decl in self._module.host_decls}
        for param in self._module.params:
            decl = declared.pop(param.name, None)
            if decl is None:
                raise SemanticError(
                    f"parameter {param.name!r} has no host declaration",
                    param.location,
                )
            self._host_scope.define(
                Symbol(
                    param.name,
                    host_kind(param.direction),
                    decl.scalar_type,
                    decl.dimensions,
                    decl.location,
                )
            )
        if declared:
            leftover = next(iter(declared.values()))
            raise SemanticError(
                f"host declaration {leftover.name!r} does not match any "
                "module parameter",
                leftover.location,
            )

    def _define_cell_var(self, scope: Scope, decl: ast.VarDecl) -> None:
        if decl.scalar_type is ast.ScalarType.INT and decl.is_array:
            raise SemanticError(
                "int arrays are not supported on Warp cells (cells have no "
                "integer arithmetic)",
                decl.location,
            )
        kind = (
            SymbolKind.LOOP_INDEX
            if decl.scalar_type is ast.ScalarType.INT
            else SymbolKind.CELL_VAR
        )
        scope.define(
            Symbol(decl.name, kind, decl.scalar_type, decl.dimensions, decl.location)
        )

    # Statements -------------------------------------------------------------

    def _check_statements(
        self, statements: tuple[ast.Stmt, ...], scope: Scope, in_function: bool
    ) -> None:
        for stmt in statements:
            self._check_statement(stmt, scope, in_function)

    def _check_statement(self, stmt: ast.Stmt, scope: Scope, in_function: bool) -> None:
        if isinstance(stmt, ast.Assign):
            self._check_assign(stmt, scope)
        elif isinstance(stmt, ast.If):
            cond_type = self._check_expr(stmt.condition, scope)
            if cond_type is not ExprType.BOOL:
                raise SemanticError(
                    "if condition must be a boolean expression", stmt.location
                )
            self._check_statement(stmt.then_body, scope, in_function)
            if stmt.else_body is not None:
                self._check_statement(stmt.else_body, scope, in_function)
        elif isinstance(stmt, ast.For):
            self._check_for(stmt, scope, in_function)
        elif isinstance(stmt, ast.Call):
            if in_function:
                raise SemanticError(
                    "call statements are not allowed inside functions "
                    "(W2 functions do not nest)",
                    stmt.location,
                )
            if stmt.name not in self._functions:
                raise SemanticError(
                    f"call of undefined function {stmt.name!r}", stmt.location
                )
        elif isinstance(stmt, ast.Receive):
            self._check_receive(stmt, scope)
        elif isinstance(stmt, ast.Send):
            self._check_send(stmt, scope)
        elif isinstance(stmt, ast.Compound):
            self._check_statements(stmt.statements, scope, in_function)
        else:  # pragma: no cover - parser produces no other nodes
            raise SemanticError("unknown statement", stmt.location)

    def _check_assign(self, stmt: ast.Assign, scope: Scope) -> None:
        target_type = self._check_lvalue(stmt.target, scope, cell_side=True)
        if target_type is not ExprType.FLOAT:
            raise SemanticError(
                "assignment targets must be float cell variables "
                "(integers live on the IU)",
                stmt.location,
            )
        value_type = self._check_expr(stmt.value, scope)
        if value_type is not ExprType.FLOAT:
            raise SemanticError(
                "assigned value must be a float expression", stmt.location
            )

    def _check_for(self, stmt: ast.For, scope: Scope, in_function: bool) -> None:
        symbol = scope.lookup_or_fail(stmt.var, stmt.location)
        if symbol.kind is not SymbolKind.LOOP_INDEX:
            raise SemanticError(
                f"for-loop variable {stmt.var!r} must be declared int",
                stmt.location,
            )
        start = self._constant_int(stmt.start, scope)
        stop = self._constant_int(stmt.stop, scope)
        if stmt.downto:
            trip = start - stop + 1
        else:
            trip = stop - start + 1
        if trip <= 0:
            raise UnsupportedProgramError(
                "for loop executes zero iterations; empty loops are not "
                "meaningful on the Warp array",
                stmt.location,
            )
        self._loop_bounds[id(stmt)] = (start, stop, trip)
        self._loop_depth += 1
        try:
            self._check_statement(stmt.body, scope, in_function)
        finally:
            self._loop_depth -= 1

    def _check_receive(self, stmt: ast.Receive, scope: Scope) -> None:
        target_type = self._check_lvalue(stmt.target, scope, cell_side=True)
        if target_type is not ExprType.FLOAT:
            raise SemanticError(
                "receive target must be a float cell variable", stmt.location
            )
        external_name: str | None = None
        external_indices: tuple[AffineIndex, ...] = ()
        external_literal: float | None = None
        if stmt.external is not None:
            if isinstance(stmt.external, (ast.FloatLiteral, ast.IntLiteral)):
                external_literal = float(stmt.external.value)
            else:
                external_name, external_indices = self._check_host_ref(
                    stmt.external, scope, want_kind=SymbolKind.HOST_IN
                )
        self._io_info[id(stmt)] = IOStatementInfo(
            stmt=stmt,
            direction=stmt.direction,
            channel=stmt.channel,
            external_name=external_name,
            external_indices=external_indices,
            external_literal=external_literal,
        )

    def _check_send(self, stmt: ast.Send, scope: Scope) -> None:
        value_type = self._check_expr(stmt.value, scope)
        if value_type is not ExprType.FLOAT:
            raise SemanticError(
                "sent value must be a float expression", stmt.location
            )
        external_name: str | None = None
        external_indices: tuple[AffineIndex, ...] = ()
        if stmt.external is not None:
            external_name, external_indices = self._check_host_ref(
                stmt.external, scope, want_kind=SymbolKind.HOST_OUT
            )
        self._io_info[id(stmt)] = IOStatementInfo(
            stmt=stmt,
            direction=stmt.direction,
            channel=stmt.channel,
            external_name=external_name,
            external_indices=external_indices,
            external_literal=None,
        )

    def _check_host_ref(
        self, expr: ast.Expr, scope: Scope, want_kind: SymbolKind
    ) -> tuple[str, tuple[AffineIndex, ...]]:
        if isinstance(expr, ast.VarRef):
            name, indices = expr.name, ()
            location = expr.location
        elif isinstance(expr, ast.ArrayRef):
            name = expr.name
            location = expr.location
            indices = tuple(
                _AffineBuilder(scope).build(index) for index in expr.indices
            )
            self._array_index_forms[id(expr)] = indices
        else:
            raise SemanticError(
                "external argument must name a host variable", expr.location
            )
        symbol = self._host_scope.lookup(name)
        if symbol is None or symbol.kind not in (
            SymbolKind.HOST_IN,
            SymbolKind.HOST_OUT,
        ):
            raise SemanticError(
                f"external argument {name!r} must be a module parameter",
                location,
            )
        if symbol.kind is not want_kind:
            raise SemanticError(
                f"external argument {name!r} has the wrong direction "
                f"({symbol.kind.value}; expected {want_kind.value})",
                location,
            )
        if len(indices) != len(symbol.dimensions):
            raise SemanticError(
                f"{name!r} expects {len(symbol.dimensions)} subscripts, "
                f"got {len(indices)}",
                location,
            )
        return name, indices

    # Expressions --------------------------------------------------------------

    def _check_lvalue(
        self, expr: ast.Expr, scope: Scope, cell_side: bool
    ) -> ExprType:
        if isinstance(expr, ast.VarRef):
            symbol = scope.lookup_or_fail(expr.name, expr.location)
            if cell_side and symbol.kind in (SymbolKind.HOST_IN, SymbolKind.HOST_OUT):
                raise SemanticError(
                    f"host variable {expr.name!r} cannot be accessed directly "
                    "by cell code; use send/receive externals",
                    expr.location,
                )
            if symbol.kind in (SymbolKind.LOOP_INDEX, SymbolKind.CELL_ID):
                raise SemanticError(
                    f"{expr.name!r} is a loop index and cannot be assigned",
                    expr.location,
                )
            if symbol.is_array:
                raise SemanticError(
                    f"array {expr.name!r} used without subscripts", expr.location
                )
            return ExprType.FLOAT
        if isinstance(expr, ast.ArrayRef):
            symbol = scope.lookup_or_fail(expr.name, expr.location)
            if cell_side and symbol.kind in (SymbolKind.HOST_IN, SymbolKind.HOST_OUT):
                raise SemanticError(
                    f"host array {expr.name!r} cannot be accessed directly "
                    "by cell code; use send/receive externals",
                    expr.location,
                )
            if not symbol.is_array:
                raise SemanticError(
                    f"{expr.name!r} is not an array", expr.location
                )
            if len(expr.indices) != len(symbol.dimensions):
                raise SemanticError(
                    f"{expr.name!r} expects {len(symbol.dimensions)} "
                    f"subscripts, got {len(expr.indices)}",
                    expr.location,
                )
            forms = tuple(
                _AffineBuilder(scope).build(index) for index in expr.indices
            )
            self._array_index_forms[id(expr)] = forms
            return ExprType.FLOAT
        raise SemanticError("invalid assignment target", expr.location)

    def _check_expr(self, expr: ast.Expr, scope: Scope) -> ExprType:
        if isinstance(expr, ast.IntLiteral):
            # Integer literals are promoted to float in value contexts; the
            # distinction only matters inside subscripts, which use the
            # affine builder instead.
            return ExprType.FLOAT
        if isinstance(expr, ast.FloatLiteral):
            return ExprType.FLOAT
        if isinstance(expr, (ast.VarRef, ast.ArrayRef)):
            return self._check_value_ref(expr, scope)
        if isinstance(expr, ast.UnaryExpr):
            operand = self._check_expr(expr.operand, scope)
            if expr.op is ast.UnaryOp.NEG:
                if operand is not ExprType.FLOAT:
                    raise SemanticError("negation needs a float", expr.location)
                return ExprType.FLOAT
            if operand is not ExprType.BOOL:
                raise SemanticError("'not' needs a boolean", expr.location)
            return ExprType.BOOL
        if isinstance(expr, ast.BinaryExpr):
            return self._check_binary(expr, scope)
        raise SemanticError("invalid expression", expr.location)

    def _check_value_ref(self, expr: ast.Expr, scope: Scope) -> ExprType:
        if isinstance(expr, ast.VarRef):
            symbol = scope.lookup_or_fail(expr.name, expr.location)
            if symbol.kind in (SymbolKind.HOST_IN, SymbolKind.HOST_OUT):
                raise SemanticError(
                    f"host variable {expr.name!r} cannot be read by cell code",
                    expr.location,
                )
            if symbol.kind is SymbolKind.FUNCTION:
                raise SemanticError(
                    f"function {expr.name!r} used as a value", expr.location
                )
            if symbol.kind in (SymbolKind.LOOP_INDEX, SymbolKind.CELL_ID):
                raise SemanticError(
                    f"loop index {expr.name!r} cannot be used as a float "
                    "value (cells have no integer datapath); use it only in "
                    "array subscripts",
                    expr.location,
                )
            if symbol.is_array:
                raise SemanticError(
                    f"array {expr.name!r} used without subscripts",
                    expr.location,
                )
            return ExprType.FLOAT
        assert isinstance(expr, ast.ArrayRef)
        return self._check_lvalue(expr, scope, cell_side=True)

    def _check_binary(self, expr: ast.BinaryExpr, scope: Scope) -> ExprType:
        left = self._check_expr(expr.left, scope)
        right = self._check_expr(expr.right, scope)
        if expr.op in (ast.BinaryOp.AND, ast.BinaryOp.OR):
            if left is not ExprType.BOOL or right is not ExprType.BOOL:
                raise SemanticError(
                    f"'{expr.op.value}' needs boolean operands", expr.location
                )
            return ExprType.BOOL
        if expr.op in (
            ast.BinaryOp.EQ,
            ast.BinaryOp.NE,
            ast.BinaryOp.LT,
            ast.BinaryOp.LE,
            ast.BinaryOp.GT,
            ast.BinaryOp.GE,
        ):
            if left is not ExprType.FLOAT or right is not ExprType.FLOAT:
                raise SemanticError(
                    "comparisons need float operands", expr.location
                )
            return ExprType.BOOL
        if left is not ExprType.FLOAT or right is not ExprType.FLOAT:
            raise SemanticError(
                f"'{expr.op.value}' needs float operands", expr.location
            )
        return ExprType.FLOAT

    # Constants ---------------------------------------------------------------

    def _constant_int(self, expr: ast.Expr, scope: Scope) -> int:
        """Evaluate a compile-time constant integer expression.

        Loop bounds must be compile-time constants (Section 5.1); anything
        else raises :class:`UnsupportedProgramError`.
        """
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.UnaryExpr) and expr.op is ast.UnaryOp.NEG:
            return -self._constant_int(expr.operand, scope)
        if isinstance(expr, ast.BinaryExpr):
            left = self._constant_int(expr.left, scope)
            right = self._constant_int(expr.right, scope)
            if expr.op is ast.BinaryOp.ADD:
                return left + right
            if expr.op is ast.BinaryOp.SUB:
                return left - right
            if expr.op is ast.BinaryOp.MUL:
                return left * right
            if expr.op is ast.BinaryOp.DIV and right != 0:
                return left // right
        raise UnsupportedProgramError(
            "loop bounds must be compile-time constants (while statements "
            "and dynamic bounds are not supported; Section 5.1)",
            expr.location,
        )


def analyze(module: ast.Module) -> AnalyzedModule:
    """Run semantic analysis on a parsed module."""
    return SemanticAnalyzer(module).analyze()
