"""Token definitions for the W2 language.

The token set follows the surface syntax visible in Figure 4-1 of the
paper: a small block-structured language with ``module``, ``cellprogram``,
``function``, declarations, ``for``/``if`` statements and the channel
primitives ``send`` and ``receive``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import SourceLocation


class TokenKind(enum.Enum):
    """Lexical categories of W2 tokens."""

    # Literals and identifiers.
    IDENT = "identifier"
    INT_LITERAL = "integer literal"
    FLOAT_LITERAL = "float literal"

    # Keywords.
    MODULE = "module"
    CELLPROGRAM = "cellprogram"
    FUNCTION = "function"
    CALL = "call"
    BEGIN = "begin"
    END = "end"
    IF = "if"
    THEN = "then"
    ELSE = "else"
    FOR = "for"
    TO = "to"
    DOWNTO = "downto"
    DO = "do"
    SEND = "send"
    RECEIVE = "receive"
    FLOAT = "float"
    INT = "int"
    IN = "in"
    OUT = "out"

    # Punctuation and operators.
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMICOLON = ";"
    COLON = ":"
    ASSIGN = ":="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "and"
    OR = "or"
    NOT = "not"

    EOF = "end of input"


#: Map from keyword spelling to its token kind.  W2 keywords are reserved
#: words; the lexer consults this table after scanning an identifier.
KEYWORDS: dict[str, TokenKind] = {
    "module": TokenKind.MODULE,
    "cellprogram": TokenKind.CELLPROGRAM,
    "function": TokenKind.FUNCTION,
    "call": TokenKind.CALL,
    "begin": TokenKind.BEGIN,
    "end": TokenKind.END,
    "if": TokenKind.IF,
    "then": TokenKind.THEN,
    "else": TokenKind.ELSE,
    "for": TokenKind.FOR,
    "to": TokenKind.TO,
    "downto": TokenKind.DOWNTO,
    "do": TokenKind.DO,
    "send": TokenKind.SEND,
    "receive": TokenKind.RECEIVE,
    "float": TokenKind.FLOAT,
    "int": TokenKind.INT,
    "in": TokenKind.IN,
    "out": TokenKind.OUT,
    "and": TokenKind.AND,
    "or": TokenKind.OR,
    "not": TokenKind.NOT,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its spelling and source location."""

    kind: TokenKind
    text: str
    location: SourceLocation

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})"
