"""Hand-written lexer for W2.

W2 uses C-style ``/* ... */`` comments (see Figure 4-1 of the paper).
Comments do not nest.  The lexer is a straightforward single-pass scanner
producing a list of :class:`~repro.lang.tokens.Token`.
"""

from __future__ import annotations

from .errors import LexError, SourceLocation
from .tokens import KEYWORDS, Token, TokenKind

_SINGLE_CHAR_TOKENS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMICOLON,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "=": TokenKind.EQ,
}


class Lexer:
    """Tokenise a W2 source string.

    Use :func:`tokenize` for the common case; the class exists so that the
    scanning state (position, line, column) is explicit and testable.
    """

    def __init__(self, source: str):
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> list[Token]:
        """Scan the whole input and return its tokens, ending with EOF."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # Internal helpers ---------------------------------------------------

    def _location(self) -> SourceLocation:
        return SourceLocation(self._line, self._column)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._source):
            return self._source[index]
        return ""

    def _advance(self) -> str:
        char = self._source[self._pos]
        self._pos += 1
        if char == "\n":
            self._line += 1
            self._column = 1
        else:
            self._column += 1
        return char

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._skip_comment()
            else:
                return

    def _skip_comment(self) -> None:
        start = self._location()
        self._advance()  # '/'
        self._advance()  # '*'
        while self._pos < len(self._source):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance()
                self._advance()
                return
            self._advance()
        raise LexError("unterminated comment", start)

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        location = self._location()
        if self._pos >= len(self._source):
            return Token(TokenKind.EOF, "", location)

        char = self._peek()
        if char.isalpha() or char == "_":
            return self._scan_word(location)
        if char.isdigit():
            return self._scan_number(location)
        if char == ".":
            if self._peek(1).isdigit():
                return self._scan_number(location)
            raise LexError("unexpected '.'", location)
        if char == ":":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenKind.ASSIGN, ":=", location)
            return Token(TokenKind.COLON, ":", location)
        if char == "<":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenKind.LE, "<=", location)
            if self._peek() == ">":
                self._advance()
                return Token(TokenKind.NE, "<>", location)
            return Token(TokenKind.LT, "<", location)
        if char == ">":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenKind.GE, ">=", location)
            return Token(TokenKind.GT, ">", location)
        if char in _SINGLE_CHAR_TOKENS:
            self._advance()
            return Token(_SINGLE_CHAR_TOKENS[char], char, location)
        raise LexError(f"unexpected character {char!r}", location)

    def _scan_word(self, location: SourceLocation) -> Token:
        chars: list[str] = []
        while self._peek().isalnum() or self._peek() == "_":
            chars.append(self._advance())
        text = "".join(chars)
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, location)

    def _scan_number(self, location: SourceLocation) -> Token:
        chars: list[str] = []
        is_float = False
        while self._peek().isdigit():
            chars.append(self._advance())
        if self._peek() == ".":
            is_float = True
            chars.append(self._advance())
            while self._peek().isdigit():
                chars.append(self._advance())
        if self._peek() in "eE":
            next_char = self._peek(1)
            after_sign = self._peek(2)
            if next_char.isdigit() or (next_char in "+-" and after_sign.isdigit()):
                is_float = True
                chars.append(self._advance())  # e/E
                if self._peek() in "+-":
                    chars.append(self._advance())
                while self._peek().isdigit():
                    chars.append(self._advance())
        text = "".join(chars)
        if is_float:
            return Token(TokenKind.FLOAT_LITERAL, text, location)
        return Token(TokenKind.INT_LITERAL, text, location)


def tokenize(source: str) -> list[Token]:
    """Tokenise ``source`` and return its tokens (final token is EOF)."""
    return Lexer(source).tokenize()
