"""The W2 language front end: lexer, parser, AST and semantic analysis.

W2 is the "machine language" of the Warp array (Section 4.3 of Gross &
Lam, PLDI 1986): a block-structured language with assignment, conditional
and constant-bound loop statements, and explicit asynchronous ``send`` /
``receive`` communication between neighbouring cells.

The main entry points are::

    from repro.lang import parse_module, analyze

    module = parse_module(source_text)
    analyzed = analyze(module)
"""

from .ast import (
    ArrayRef,
    Assign,
    BinaryExpr,
    BinaryOp,
    Call,
    CellProgram,
    Channel,
    Compound,
    Direction,
    Expr,
    FloatLiteral,
    For,
    FunctionDecl,
    If,
    IntLiteral,
    Module,
    Param,
    ParamDirection,
    Receive,
    ScalarType,
    Send,
    Stmt,
    UnaryExpr,
    UnaryOp,
    VarDecl,
    VarRef,
)
from .errors import (
    LexError,
    ParseError,
    SemanticError,
    SourceLocation,
    UnsupportedProgramError,
    W2Error,
)
from .lexer import tokenize
from .parser import parse_expression, parse_module
from .pretty import count_w2_lines, format_expr, format_module
from .semantic import (
    AffineIndex,
    AnalyzedModule,
    analyze,
    affine_add,
    affine_const,
    affine_scale,
    affine_var,
)
from .symbols import Scope, Symbol, SymbolKind
from .tokens import Token, TokenKind

__all__ = [
    "AffineIndex",
    "AnalyzedModule",
    "ArrayRef",
    "Assign",
    "BinaryExpr",
    "BinaryOp",
    "Call",
    "CellProgram",
    "Channel",
    "Compound",
    "Direction",
    "Expr",
    "FloatLiteral",
    "For",
    "FunctionDecl",
    "If",
    "IntLiteral",
    "LexError",
    "Module",
    "Param",
    "ParamDirection",
    "ParseError",
    "Receive",
    "ScalarType",
    "Scope",
    "SemanticError",
    "Send",
    "SourceLocation",
    "Stmt",
    "Symbol",
    "SymbolKind",
    "Token",
    "TokenKind",
    "UnaryExpr",
    "UnaryOp",
    "UnsupportedProgramError",
    "VarDecl",
    "VarRef",
    "W2Error",
    "affine_add",
    "affine_const",
    "affine_scale",
    "affine_var",
    "analyze",
    "count_w2_lines",
    "format_expr",
    "format_module",
    "parse_expression",
    "parse_module",
    "tokenize",
]
