"""Symbol tables for W2 semantic analysis.

W2 has three name spaces that matter to the compiler:

* *host* names — module parameters (with their host-side declarations),
  living in the host memory and only referenced by the ``external``
  argument of ``send``/``receive``;
* *cell* names — variables declared in the ``cellprogram`` or inside a
  ``function``, living in cell memory / registers;
* *loop indices* — ``int`` scalars bound by ``for`` statements; they never
  exist on the cells at run time (the IU owns all integer arithmetic,
  Section 2.2 of the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .ast import ParamDirection, ScalarType
from .errors import SemanticError, SourceLocation


class SymbolKind(enum.Enum):
    HOST_IN = "host input parameter"
    HOST_OUT = "host output parameter"
    CELL_VAR = "cell variable"
    LOOP_INDEX = "loop index"
    FUNCTION = "function"
    CELL_ID = "cell identifier"


@dataclass(frozen=True)
class Symbol:
    """A resolved name with its kind, type and array shape."""

    name: str
    kind: SymbolKind
    scalar_type: ScalarType
    dimensions: tuple[int, ...]
    location: SourceLocation

    @property
    def is_array(self) -> bool:
        return bool(self.dimensions)

    @property
    def element_count(self) -> int:
        count = 1
        for dim in self.dimensions:
            count *= dim
        return count


def host_kind(direction: ParamDirection) -> SymbolKind:
    if direction is ParamDirection.IN:
        return SymbolKind.HOST_IN
    return SymbolKind.HOST_OUT


class Scope:
    """A single lexical scope mapping names to symbols."""

    def __init__(self, parent: Scope | None = None):
        self._parent = parent
        self._symbols: dict[str, Symbol] = {}

    def define(self, symbol: Symbol) -> None:
        """Add ``symbol``; duplicate names in the same scope are rejected."""
        if symbol.name in self._symbols:
            raise SemanticError(
                f"duplicate declaration of {symbol.name!r}", symbol.location
            )
        self._symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Symbol | None:
        """Resolve ``name`` through this scope and its ancestors."""
        scope: Scope | None = self
        while scope is not None:
            if name in scope._symbols:
                return scope._symbols[name]
            scope = scope._parent
        return None

    def lookup_or_fail(self, name: str, location: SourceLocation) -> Symbol:
        symbol = self.lookup(name)
        if symbol is None:
            raise SemanticError(f"undefined name {name!r}", location)
        return symbol

    def local_symbols(self) -> list[Symbol]:
        """Symbols defined directly in this scope (not ancestors)."""
        return list(self._symbols.values())
