"""Recursive-descent parser for W2.

Grammar (EBNF; ``{}`` = repetition, ``[]`` = option)::

    module      = "module" IDENT "(" param {"," param} ")"
                  {decl ";"} cellprogram
    param       = IDENT ("in" | "out")
    decl        = ("float" | "int") declarator {"," declarator}
    declarator  = IDENT ["[" INT {"," INT} "]"]
    cellprogram = "cellprogram" "(" IDENT ":" INT ":" INT ")"
                  "begin" {decl ";"} {function} {statement} "end"
    function    = "function" IDENT "begin" {decl ";"} {statement} "end"
    statement   = assign | if | for | call | send | receive | compound
    assign      = lvalue ":=" expr ";"
    if          = "if" expr "then" statement ["else" statement]
    for         = "for" IDENT ":=" expr ("to" | "downto") expr "do" statement
    call        = "call" IDENT ";"
    receive     = "receive" "(" dir "," chan "," lvalue ["," expr] ")" ";"
    send        = "send" "(" dir "," chan "," expr ["," lvalue] ")" ";"
    compound    = "begin" {statement} "end" [";"]
    lvalue      = IDENT ["[" expr {"," expr} "]"]

Expressions use the usual precedence: ``or`` < ``and`` < ``not`` <
comparison < additive < multiplicative < unary minus < primary.
"""

from __future__ import annotations

from . import ast
from .errors import ParseError, SourceLocation
from .lexer import tokenize
from .tokens import Token, TokenKind

_COMPARISON_OPS = {
    TokenKind.EQ: ast.BinaryOp.EQ,
    TokenKind.NE: ast.BinaryOp.NE,
    TokenKind.LT: ast.BinaryOp.LT,
    TokenKind.LE: ast.BinaryOp.LE,
    TokenKind.GT: ast.BinaryOp.GT,
    TokenKind.GE: ast.BinaryOp.GE,
}

_ADDITIVE_OPS = {
    TokenKind.PLUS: ast.BinaryOp.ADD,
    TokenKind.MINUS: ast.BinaryOp.SUB,
}

_MULTIPLICATIVE_OPS = {
    TokenKind.STAR: ast.BinaryOp.MUL,
    TokenKind.SLASH: ast.BinaryOp.DIV,
}

_STATEMENT_STARTERS = (
    TokenKind.IDENT,
    TokenKind.IF,
    TokenKind.FOR,
    TokenKind.CALL,
    TokenKind.SEND,
    TokenKind.RECEIVE,
    TokenKind.BEGIN,
)


class Parser:
    """Parse a token stream into a :class:`repro.lang.ast.Module`."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # Token-stream helpers -----------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _expect(self, kind: TokenKind) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r} but found {token.text or token.kind.value!r}",
                token.location,
            )
        return self._advance()

    def _accept(self, kind: TokenKind) -> Token | None:
        if self._at(kind):
            return self._advance()
        return None

    # Top level ------------------------------------------------------------

    def parse_module(self) -> ast.Module:
        """Parse a complete W2 module; input must be fully consumed."""
        start = self._expect(TokenKind.MODULE).location
        name = self._expect(TokenKind.IDENT).text
        params = self._parse_params()
        host_decls: list[ast.VarDecl] = []
        while self._at(TokenKind.FLOAT) or self._at(TokenKind.INT):
            host_decls.extend(self._parse_decl())
            self._expect(TokenKind.SEMICOLON)
        cellprogram = self._parse_cellprogram()
        self._expect(TokenKind.EOF)
        return ast.Module(
            name=name,
            params=tuple(params),
            host_decls=tuple(host_decls),
            cellprogram=cellprogram,
            location=start,
        )

    def _parse_params(self) -> list[ast.Param]:
        self._expect(TokenKind.LPAREN)
        params = [self._parse_param()]
        while self._accept(TokenKind.COMMA):
            params.append(self._parse_param())
        self._expect(TokenKind.RPAREN)
        return params

    def _parse_param(self) -> ast.Param:
        name_token = self._expect(TokenKind.IDENT)
        if self._accept(TokenKind.IN):
            direction = ast.ParamDirection.IN
        elif self._accept(TokenKind.OUT):
            direction = ast.ParamDirection.OUT
        else:
            raise ParseError(
                "expected 'in' or 'out' after parameter name",
                self._peek().location,
            )
        return ast.Param(name_token.text, direction, name_token.location)

    def _parse_decl(self) -> list[ast.VarDecl]:
        if self._accept(TokenKind.FLOAT):
            scalar_type = ast.ScalarType.FLOAT
        else:
            self._expect(TokenKind.INT)
            scalar_type = ast.ScalarType.INT
        decls = [self._parse_declarator(scalar_type)]
        while self._accept(TokenKind.COMMA):
            decls.append(self._parse_declarator(scalar_type))
        return decls

    def _parse_declarator(self, scalar_type: ast.ScalarType) -> ast.VarDecl:
        name_token = self._expect(TokenKind.IDENT)
        dimensions: list[int] = []
        if self._accept(TokenKind.LBRACKET):
            dimensions.append(self._parse_dimension())
            while self._accept(TokenKind.COMMA):
                dimensions.append(self._parse_dimension())
            self._expect(TokenKind.RBRACKET)
        return ast.VarDecl(
            name=name_token.text,
            scalar_type=scalar_type,
            dimensions=tuple(dimensions),
            location=name_token.location,
        )

    def _parse_dimension(self) -> int:
        token = self._expect(TokenKind.INT_LITERAL)
        value = int(token.text)
        if value <= 0:
            raise ParseError("array dimension must be positive", token.location)
        return value

    def _parse_cellprogram(self) -> ast.CellProgram:
        start = self._expect(TokenKind.CELLPROGRAM).location
        self._expect(TokenKind.LPAREN)
        cell_var = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.COLON)
        first_cell = int(self._expect(TokenKind.INT_LITERAL).text)
        self._expect(TokenKind.COLON)
        last_cell = int(self._expect(TokenKind.INT_LITERAL).text)
        self._expect(TokenKind.RPAREN)
        if last_cell < first_cell:
            raise ParseError("cellprogram range is empty", start)
        self._expect(TokenKind.BEGIN)
        locals_, functions, body = self._parse_block_items(allow_functions=True)
        self._expect(TokenKind.END)
        return ast.CellProgram(
            cell_var=cell_var,
            first_cell=first_cell,
            last_cell=last_cell,
            functions=tuple(functions),
            locals=tuple(locals_),
            body=tuple(body),
            location=start,
        )

    def _parse_block_items(
        self, allow_functions: bool
    ) -> tuple[list[ast.VarDecl], list[ast.FunctionDecl], list[ast.Stmt]]:
        locals_: list[ast.VarDecl] = []
        while self._at(TokenKind.FLOAT) or self._at(TokenKind.INT):
            locals_.extend(self._parse_decl())
            self._expect(TokenKind.SEMICOLON)
        functions: list[ast.FunctionDecl] = []
        while allow_functions and self._at(TokenKind.FUNCTION):
            functions.append(self._parse_function())
        body: list[ast.Stmt] = []
        while self._peek().kind in _STATEMENT_STARTERS:
            body.append(self._parse_statement())
        return locals_, functions, body

    def _parse_function(self) -> ast.FunctionDecl:
        start = self._expect(TokenKind.FUNCTION).location
        name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.BEGIN)
        locals_, _, body = self._parse_block_items(allow_functions=False)
        end = self._expect(TokenKind.END).location
        self._accept(TokenKind.SEMICOLON)
        return ast.FunctionDecl(
            name=name,
            locals=tuple(locals_),
            body=ast.Compound(location=end, statements=tuple(body)),
            location=start,
        )

    # Statements -----------------------------------------------------------

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.kind is TokenKind.IDENT:
            return self._parse_assign()
        if token.kind is TokenKind.IF:
            return self._parse_if()
        if token.kind is TokenKind.FOR:
            return self._parse_for()
        if token.kind is TokenKind.CALL:
            return self._parse_call()
        if token.kind is TokenKind.SEND:
            return self._parse_send()
        if token.kind is TokenKind.RECEIVE:
            return self._parse_receive()
        if token.kind is TokenKind.BEGIN:
            return self._parse_compound()
        raise ParseError(
            f"expected a statement but found {token.text or token.kind.value!r}",
            token.location,
        )

    def _parse_assign(self) -> ast.Assign:
        target = self._parse_lvalue()
        self._expect(TokenKind.ASSIGN)
        value = self._parse_expr()
        self._expect(TokenKind.SEMICOLON)
        return ast.Assign(location=target.location, target=target, value=value)

    def _parse_if(self) -> ast.If:
        start = self._expect(TokenKind.IF).location
        condition = self._parse_expr()
        self._expect(TokenKind.THEN)
        then_body = self._parse_statement()
        else_body: ast.Stmt | None = None
        if self._accept(TokenKind.ELSE):
            else_body = self._parse_statement()
        return ast.If(
            location=start,
            condition=condition,
            then_body=then_body,
            else_body=else_body,
        )

    def _parse_for(self) -> ast.For:
        start = self._expect(TokenKind.FOR).location
        var = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.ASSIGN)
        start_expr = self._parse_expr()
        if self._accept(TokenKind.TO):
            downto = False
        else:
            self._expect(TokenKind.DOWNTO)
            downto = True
        stop_expr = self._parse_expr()
        self._expect(TokenKind.DO)
        body = self._parse_statement()
        return ast.For(
            location=start,
            var=var,
            start=start_expr,
            stop=stop_expr,
            downto=downto,
            body=body,
        )

    def _parse_call(self) -> ast.Call:
        start = self._expect(TokenKind.CALL).location
        name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.SEMICOLON)
        return ast.Call(location=start, name=name)

    def _parse_direction(self) -> ast.Direction:
        token = self._expect(TokenKind.IDENT)
        if token.text == "L":
            return ast.Direction.LEFT
        if token.text == "R":
            return ast.Direction.RIGHT
        raise ParseError("channel direction must be 'L' or 'R'", token.location)

    def _parse_channel(self) -> ast.Channel:
        token = self._expect(TokenKind.IDENT)
        if token.text == "X":
            return ast.Channel.X
        if token.text == "Y":
            return ast.Channel.Y
        raise ParseError("channel name must be 'X' or 'Y'", token.location)

    def _parse_receive(self) -> ast.Receive:
        start = self._expect(TokenKind.RECEIVE).location
        self._expect(TokenKind.LPAREN)
        direction = self._parse_direction()
        self._expect(TokenKind.COMMA)
        channel = self._parse_channel()
        self._expect(TokenKind.COMMA)
        target = self._parse_lvalue()
        external: ast.Expr | None = None
        if self._accept(TokenKind.COMMA):
            external = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMICOLON)
        return ast.Receive(
            location=start,
            direction=direction,
            channel=channel,
            target=target,
            external=external,
        )

    def _parse_send(self) -> ast.Send:
        start = self._expect(TokenKind.SEND).location
        self._expect(TokenKind.LPAREN)
        direction = self._parse_direction()
        self._expect(TokenKind.COMMA)
        channel = self._parse_channel()
        self._expect(TokenKind.COMMA)
        value = self._parse_expr()
        external: ast.Expr | None = None
        if self._accept(TokenKind.COMMA):
            external = self._parse_lvalue()
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMICOLON)
        return ast.Send(
            location=start,
            direction=direction,
            channel=channel,
            value=value,
            external=external,
        )

    def _parse_compound(self) -> ast.Compound:
        start = self._expect(TokenKind.BEGIN).location
        statements: list[ast.Stmt] = []
        while self._peek().kind in _STATEMENT_STARTERS:
            statements.append(self._parse_statement())
        self._expect(TokenKind.END)
        self._accept(TokenKind.SEMICOLON)
        return ast.Compound(location=start, statements=tuple(statements))

    # Expressions ------------------------------------------------------------

    def _parse_lvalue(self) -> ast.Expr:
        name_token = self._expect(TokenKind.IDENT)
        if self._accept(TokenKind.LBRACKET):
            indices = [self._parse_expr()]
            while self._accept(TokenKind.COMMA):
                indices.append(self._parse_expr())
            self._expect(TokenKind.RBRACKET)
            return ast.ArrayRef(
                location=name_token.location,
                name=name_token.text,
                indices=tuple(indices),
            )
        return ast.VarRef(location=name_token.location, name=name_token.text)

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        expr = self._parse_and()
        while self._at(TokenKind.OR):
            location = self._advance().location
            right = self._parse_and()
            expr = ast.BinaryExpr(location, ast.BinaryOp.OR, expr, right)
        return expr

    def _parse_and(self) -> ast.Expr:
        expr = self._parse_not()
        while self._at(TokenKind.AND):
            location = self._advance().location
            right = self._parse_not()
            expr = ast.BinaryExpr(location, ast.BinaryOp.AND, expr, right)
        return expr

    def _parse_not(self) -> ast.Expr:
        if self._at(TokenKind.NOT):
            location = self._advance().location
            operand = self._parse_not()
            return ast.UnaryExpr(location, ast.UnaryOp.NOT, operand)
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        expr = self._parse_additive()
        if self._peek().kind in _COMPARISON_OPS:
            token = self._advance()
            right = self._parse_additive()
            expr = ast.BinaryExpr(
                token.location, _COMPARISON_OPS[token.kind], expr, right
            )
        return expr

    def _parse_additive(self) -> ast.Expr:
        expr = self._parse_multiplicative()
        while self._peek().kind in _ADDITIVE_OPS:
            token = self._advance()
            right = self._parse_multiplicative()
            expr = ast.BinaryExpr(
                token.location, _ADDITIVE_OPS[token.kind], expr, right
            )
        return expr

    def _parse_multiplicative(self) -> ast.Expr:
        expr = self._parse_unary()
        while self._peek().kind in _MULTIPLICATIVE_OPS:
            token = self._advance()
            right = self._parse_unary()
            expr = ast.BinaryExpr(
                token.location, _MULTIPLICATIVE_OPS[token.kind], expr, right
            )
        return expr

    def _parse_unary(self) -> ast.Expr:
        if self._at(TokenKind.MINUS):
            location = self._advance().location
            operand = self._parse_unary()
            return ast.UnaryExpr(location, ast.UnaryOp.NEG, operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT_LITERAL:
            self._advance()
            return ast.IntLiteral(token.location, int(token.text))
        if token.kind is TokenKind.FLOAT_LITERAL:
            self._advance()
            return ast.FloatLiteral(token.location, float(token.text))
        if token.kind is TokenKind.IDENT:
            return self._parse_lvalue()
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            return expr
        raise ParseError(
            f"expected an expression but found {token.text or token.kind.value!r}",
            token.location,
        )


def parse_module(source: str) -> ast.Module:
    """Parse W2 source text into a module AST."""
    return Parser(tokenize(source)).parse_module()


def parse_expression(source: str) -> ast.Expr:
    """Parse a standalone W2 expression (useful in tests and tools)."""
    parser = Parser(tokenize(source))
    expr = parser._parse_expr()
    parser._expect(TokenKind.EOF)
    return expr
