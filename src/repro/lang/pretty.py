"""Pretty printer (unparser) for W2 ASTs.

``format_module(parse_module(src))`` produces source that parses back to an
equivalent AST; the round trip is exercised by property-based tests.  The
printer is also what the Table 7-1 benchmark uses to count canonical W2
lines.
"""

from __future__ import annotations

from . import ast

_PRECEDENCE: dict[ast.BinaryOp, int] = {
    ast.BinaryOp.OR: 1,
    ast.BinaryOp.AND: 2,
    ast.BinaryOp.EQ: 3,
    ast.BinaryOp.NE: 3,
    ast.BinaryOp.LT: 3,
    ast.BinaryOp.LE: 3,
    ast.BinaryOp.GT: 3,
    ast.BinaryOp.GE: 3,
    ast.BinaryOp.ADD: 4,
    ast.BinaryOp.SUB: 4,
    ast.BinaryOp.MUL: 5,
    ast.BinaryOp.DIV: 5,
}


def format_expr(expr: ast.Expr, parent_precedence: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, ast.IntLiteral):
        return str(expr.value)
    if isinstance(expr, ast.FloatLiteral):
        return repr(expr.value)
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.ArrayRef):
        indices = ", ".join(format_expr(i) for i in expr.indices)
        return f"{expr.name}[{indices}]"
    if isinstance(expr, ast.UnaryExpr):
        inner = format_expr(expr.operand, 6)
        if expr.op is ast.UnaryOp.NEG:
            text = f"-{inner}"
        else:
            text = f"not {inner}"
        if parent_precedence >= 6:
            return f"({text})"
        return text
    if isinstance(expr, ast.BinaryExpr):
        precedence = _PRECEDENCE[expr.op]
        left = format_expr(expr.left, precedence - 1)
        right = format_expr(expr.right, precedence)
        text = f"{left} {expr.op.value} {right}"
        if precedence <= parent_precedence:
            return f"({text})"
        return text
    raise TypeError(f"unknown expression node: {expr!r}")


def _format_decl(decl: ast.VarDecl) -> str:
    if decl.is_array:
        dims = ", ".join(str(d) for d in decl.dimensions)
        return f"{decl.name}[{dims}]"
    return decl.name


def _format_decl_group(decls: tuple[ast.VarDecl, ...], indent: str) -> list[str]:
    """Group consecutive declarations of the same scalar type on one line."""
    lines: list[str] = []
    i = 0
    while i < len(decls):
        scalar_type = decls[i].scalar_type
        j = i
        while j < len(decls) and decls[j].scalar_type is scalar_type:
            j += 1
        names = ", ".join(_format_decl(d) for d in decls[i:j])
        lines.append(f"{indent}{scalar_type.value} {names};")
        i = j
    return lines


class _StatementPrinter:
    def __init__(self) -> None:
        self.lines: list[str] = []

    def emit(self, stmt: ast.Stmt, indent: str) -> None:
        if isinstance(stmt, ast.Assign):
            self.lines.append(
                f"{indent}{format_expr(stmt.target)} := "
                f"{format_expr(stmt.value)};"
            )
        elif isinstance(stmt, ast.If):
            self.lines.append(f"{indent}if {format_expr(stmt.condition)} then")
            self.emit(stmt.then_body, indent + "    ")
            if stmt.else_body is not None:
                self.lines.append(f"{indent}else")
                self.emit(stmt.else_body, indent + "    ")
        elif isinstance(stmt, ast.For):
            keyword = "downto" if stmt.downto else "to"
            self.lines.append(
                f"{indent}for {stmt.var} := {format_expr(stmt.start)} "
                f"{keyword} {format_expr(stmt.stop)} do"
            )
            self.emit(stmt.body, indent + "    ")
        elif isinstance(stmt, ast.Call):
            self.lines.append(f"{indent}call {stmt.name};")
        elif isinstance(stmt, ast.Receive):
            args = [
                str(stmt.direction),
                str(stmt.channel),
                format_expr(stmt.target),
            ]
            if stmt.external is not None:
                args.append(format_expr(stmt.external))
            self.lines.append(f"{indent}receive ({', '.join(args)});")
        elif isinstance(stmt, ast.Send):
            args = [
                str(stmt.direction),
                str(stmt.channel),
                format_expr(stmt.value),
            ]
            if stmt.external is not None:
                args.append(format_expr(stmt.external))
            self.lines.append(f"{indent}send ({', '.join(args)});")
        elif isinstance(stmt, ast.Compound):
            self.lines.append(f"{indent}begin")
            for inner in stmt.statements:
                self.emit(inner, indent + "    ")
            self.lines.append(f"{indent}end;")
        else:  # pragma: no cover
            raise TypeError(f"unknown statement node: {stmt!r}")


def format_module(module: ast.Module) -> str:
    """Render a module back to canonical W2 source."""
    params = ", ".join(f"{p.name} {p.direction.value}" for p in module.params)
    lines = [f"module {module.name} ({params})"]
    lines.extend(_format_decl_group(module.host_decls, ""))
    cp = module.cellprogram
    lines.append(
        f"cellprogram ({cp.cell_var} : {cp.first_cell} : {cp.last_cell})"
    )
    lines.append("begin")
    lines.extend(_format_decl_group(cp.locals, "    "))
    printer = _StatementPrinter()
    for function in cp.functions:
        printer.lines.append(f"    function {function.name}")
        printer.lines.append("    begin")
        printer.lines.extend(_format_decl_group(function.locals, "        "))
        for stmt in function.body.statements:
            printer.emit(stmt, "        ")
        printer.lines.append("    end")
    for stmt in cp.body:
        printer.emit(stmt, "    ")
    lines.extend(printer.lines)
    lines.append("end")
    return "\n".join(lines) + "\n"


def count_w2_lines(source: str) -> int:
    """Count non-blank, non-comment-only lines of W2 source.

    This is the "W2 Lines" metric of Table 7-1.
    """
    count = 0
    in_comment = False
    for raw_line in source.splitlines():
        line = raw_line
        kept: list[str] = []
        i = 0
        while i < len(line):
            if in_comment:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    in_comment = False
                    i = end + 2
            else:
                start = line.find("/*", i)
                if start < 0:
                    kept.append(line[i:])
                    i = len(line)
                else:
                    kept.append(line[i:start])
                    in_comment = True
                    i = start + 2
        if "".join(kept).strip():
            count += 1
    return count
