"""Intermediate representation: basic-block DAGs and the program tree."""

from .builder import CellProgramIR, IOStatement, IRBuilder, build_ir
from .dag import Dag, MemRef, Node, OpKind, QueueRef
from .tree import BasicBlock, Loop, ProgramTree, TreeNode, enclosing_loops

__all__ = [
    "BasicBlock",
    "CellProgramIR",
    "Dag",
    "IOStatement",
    "IRBuilder",
    "Loop",
    "MemRef",
    "Node",
    "OpKind",
    "ProgramTree",
    "QueueRef",
    "TreeNode",
    "build_ir",
    "enclosing_loops",
]
