"""The structured flowgraph (program tree) of a cell program.

W2 control flow is fully structured — conditionals are if-converted and
loop bounds are compile-time constants — so the flowgraph of Section 6.1
takes the shape of a tree: sequences of basic blocks and constant-trip
loops.  This structure is exactly what makes the five-vector timing
characterisation of Section 6.2.1 extractable after scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from .dag import Dag, Node, OpKind


@dataclass
class BasicBlock:
    """A leaf of the program tree: straight-line code as a DAG."""

    block_id: int
    dag: Dag
    label: str = ""

    def io_nodes(self) -> list[Node]:
        return self.dag.io_nodes()


@dataclass
class Loop:
    """A counted loop.  ``trip`` iterations; the index runs from ``start``
    by ``step`` (+1 or -1).  The index variable is symbolic — it exists
    only on the IU at run time."""

    loop_id: int
    var: str
    start: int
    step: int
    trip: int
    body: list["TreeNode"] = field(default_factory=list)


TreeNode = Union[BasicBlock, Loop]


@dataclass
class ProgramTree:
    """A whole cell program: a sequence of blocks and loops."""

    items: list[TreeNode] = field(default_factory=list)

    def blocks(self) -> Iterator[BasicBlock]:
        """All basic blocks in program order."""
        yield from _walk_blocks(self.items)

    def loops(self) -> Iterator[Loop]:
        yield from _walk_loops(self.items)

    def io_statements(self) -> Iterator[tuple[BasicBlock, Node]]:
        """All RECV/SEND dag nodes with their blocks, in program order."""
        for block in self.blocks():
            for node in block.io_nodes():
                yield block, node

    def count_ops(self) -> int:
        """Total number of live DAG operations (for metrics)."""
        return sum(len(block.dag.live_nodes()) for block in self.blocks())


def _walk_blocks(items: list[TreeNode]) -> Iterator[BasicBlock]:
    for item in items:
        if isinstance(item, BasicBlock):
            yield item
        else:
            yield from _walk_blocks(item.body)


def _walk_loops(items: list[TreeNode]) -> Iterator[Loop]:
    for item in items:
        if isinstance(item, Loop):
            yield item
            yield from _walk_loops(item.body)


def enclosing_loops(
    tree: ProgramTree, target: BasicBlock
) -> list[Loop]:
    """The loops containing ``target``, outermost first."""
    path: list[Loop] = []

    def search(items: list[TreeNode]) -> bool:
        for item in items:
            if isinstance(item, BasicBlock):
                if item is target:
                    return True
            else:
                path.append(item)
                if search(item.body):
                    return True
                path.pop()
        return False

    if not search(tree.items):
        raise ValueError(f"block {target.block_id} is not in the tree")
    return path
