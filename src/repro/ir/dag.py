"""Directed acyclic graphs for basic-block computation.

"The computation of each basic block is represented as a directed acyclic
graph (dag).  Each node in a dag corresponds to an abstract operation of
the Warp cell.  This level models the Warp cell as a simple processor
with memory to memory operations and no registers." (Section 6.1)

Node kinds:

* pure value operations (arithmetic, comparisons, boolean ops, ``SELECT``)
  — value-numbered at construction time, which gives common-subexpression
  elimination for free;
* ``CONST`` — floating literals;
* ``READ``/``WRITE`` — the value of a scalar cell variable at block entry
  and the final value it must hold at block exit;
* ``LOAD``/``STORE`` — array accesses in cell memory, carrying the flat
  affine index expression (the part the IU will compute);
* ``RECV``/``SEND`` — the channel primitives, which are strictly ordered
  per queue.

Ordering (non-value) dependencies are kept as explicit *order edges*:
per-queue chains for I/O operations, load/store chains per array, and
write-after-read edges for scalar variables.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..lang.ast import Channel, Direction
from ..lang.semantic import AffineIndex


class OpKind(enum.Enum):
    CONST = "const"
    READ = "read"     # scalar variable value at block entry
    WRITE = "write"   # scalar variable value at block exit
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FNEG = "fneg"
    CMP_EQ = "cmp_eq"
    CMP_NE = "cmp_ne"
    CMP_LT = "cmp_lt"
    CMP_LE = "cmp_le"
    CMP_GT = "cmp_gt"
    CMP_GE = "cmp_ge"
    BAND = "band"
    BOR = "bor"
    BNOT = "bnot"
    SELECT = "select"  # select(cond, if_true, if_false)
    LOAD = "load"
    STORE = "store"    # store(value)
    RECV = "recv"
    SEND = "send"      # send(value)


#: Operations with no side effects; eligible for value numbering/CSE.
PURE_OPS = frozenset(
    {
        OpKind.CONST,
        OpKind.READ,
        OpKind.FADD,
        OpKind.FSUB,
        OpKind.FMUL,
        OpKind.FDIV,
        OpKind.FNEG,
        OpKind.CMP_EQ,
        OpKind.CMP_NE,
        OpKind.CMP_LT,
        OpKind.CMP_LE,
        OpKind.CMP_GT,
        OpKind.CMP_GE,
        OpKind.BAND,
        OpKind.BOR,
        OpKind.BNOT,
        OpKind.SELECT,
    }
)

#: Commutative binary operations (operand order normalised for CSE).
COMMUTATIVE_OPS = frozenset(
    {OpKind.FADD, OpKind.FMUL, OpKind.CMP_EQ, OpKind.CMP_NE, OpKind.BAND, OpKind.BOR}
)


@dataclass(frozen=True)
class MemRef:
    """An array access: resolved array name plus flat affine index."""

    array: str
    index: AffineIndex

    def __str__(self) -> str:
        return f"{self.array}[{self.index}]"


@dataclass(frozen=True)
class QueueRef:
    """One of the four queues a cell touches: (direction, channel)."""

    direction: Direction
    channel: Channel

    def __str__(self) -> str:
        return f"{self.direction}.{self.channel}"


@dataclass
class Node:
    """One DAG node.  ``operands`` are node ids within the same DAG."""

    node_id: int
    op: OpKind
    operands: tuple[int, ...] = ()
    #: CONST: float value.  READ/WRITE: variable name.  LOAD/STORE: MemRef.
    #: RECV/SEND: QueueRef.
    attr: object = None
    #: Stable global ordinal for I/O statements (RECV/SEND), assigned by
    #: the builder in program order; used to join with host/IU metadata.
    io_index: int | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"n{self.node_id}", self.op.value]
        if self.operands:
            parts.append("(" + ", ".join(f"n{o}" for o in self.operands) + ")")
        if self.attr is not None:
            parts.append(str(self.attr))
        return " ".join(parts)


class Dag:
    """A basic block's computation DAG with value numbering.

    Pure nodes are hash-consed: constructing the same pure operation on
    the same operands returns the existing node (local CSE, Section 6.1).
    Loads participate in value numbering within a "memory epoch" per
    array: a store to an array starts a new epoch, preventing unsound
    merging of loads across it.
    """

    def __init__(self) -> None:
        self.nodes: dict[int, Node] = {}
        self._next_id = 0
        self._value_numbers: dict[tuple, int] = {}
        self._mem_epoch: dict[str, int] = {}
        #: Explicit ordering (non-value) edges: (earlier id, later id).
        self.order_edges: list[tuple[int, int]] = []
        #: I/O, store and write nodes in program order (the block's
        #: observable effects).
        self.effects: list[int] = []
        #: Value-numbering hits: requests answered by an existing node.
        self.cse_hits = 0

    # Construction -------------------------------------------------------

    def _new_node(
        self,
        op: OpKind,
        operands: tuple[int, ...] = (),
        attr: object = None,
    ) -> Node:
        node = Node(self._next_id, op, operands, attr)
        self.nodes[node.node_id] = node
        self._next_id += 1
        return node

    def const(self, value: float) -> Node:
        return self._pure(OpKind.CONST, (), float(value))

    def read(self, var: str) -> Node:
        return self._pure(OpKind.READ, (), var)

    def _pure(self, op: OpKind, operands: tuple[int, ...], attr: object) -> Node:
        if op in COMMUTATIVE_OPS and len(operands) == 2:
            operands = tuple(sorted(operands))
        key = (op, operands, attr)
        existing = self._value_numbers.get(key)
        if existing is not None:
            self.cse_hits += 1
            return self.nodes[existing]
        node = self._new_node(op, operands, attr)
        self._value_numbers[key] = node.node_id
        return node

    def pure(self, op: OpKind, *operands: Node, attr: object = None) -> Node:
        """Create (or reuse) a pure operation node."""
        if op not in PURE_OPS:
            raise ValueError(f"{op} is not a pure operation")
        return self._pure(op, tuple(n.node_id for n in operands), attr)

    def load(self, ref: MemRef) -> Node:
        epoch = self._mem_epoch.get(ref.array, 0)
        key = (OpKind.LOAD, (), (ref, epoch))
        existing = self._value_numbers.get(key)
        if existing is not None:
            self.cse_hits += 1
            return self.nodes[existing]
        node = self._new_node(OpKind.LOAD, (), ref)
        self._value_numbers[key] = node.node_id
        self.effects.append(node.node_id)
        return node

    def store(self, ref: MemRef, value: Node) -> Node:
        node = self._new_node(OpKind.STORE, (value.node_id,), ref)
        self._mem_epoch[ref.array] = self._mem_epoch.get(ref.array, 0) + 1
        self.effects.append(node.node_id)
        return node

    def recv(self, queue: QueueRef) -> Node:
        node = self._new_node(OpKind.RECV, (), queue)
        self.effects.append(node.node_id)
        return node

    def send(self, queue: QueueRef, value: Node) -> Node:
        node = self._new_node(OpKind.SEND, (value.node_id,), queue)
        self.effects.append(node.node_id)
        return node

    def write(self, var: str, value: Node) -> Node:
        node = self._new_node(OpKind.WRITE, (value.node_id,), var)
        self.effects.append(node.node_id)
        return node

    def add_order_edge(self, earlier: Node, later: Node) -> None:
        self.order_edges.append((earlier.node_id, later.node_id))

    # Queries --------------------------------------------------------------

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def io_nodes(self) -> list[Node]:
        """RECV/SEND nodes in program (effect) order."""
        return [
            self.nodes[node_id]
            for node_id in self.effects
            if self.nodes[node_id].op in (OpKind.RECV, OpKind.SEND)
        ]

    def live_nodes(self) -> list[Node]:
        """Nodes reachable from the block's effects, in id order.

        Dead pure nodes (created then superseded by folding) are excluded;
        this is what the scheduler consumes.
        """
        alive: set[int] = set()
        stack = list(self.effects)
        while stack:
            node_id = stack.pop()
            if node_id in alive:
                continue
            alive.add(node_id)
            stack.extend(self.nodes[node_id].operands)
        # Order edges can reference only effect-reachable nodes by
        # construction, so no extra roots are needed.
        return [self.nodes[node_id] for node_id in sorted(alive)]

    def predecessors(self, node: Node) -> list[Node]:
        return [self.nodes[op_id] for op_id in node.operands]
