"""Lowering W2 ASTs to the program tree IR.

This is the "local analysis" half of the paper's flow analyzer
(Section 6.1): it builds the basic-block DAGs, performing on the fly

* function inlining (W2 functions are parameterless and non-recursive,
  so ``call`` is macro expansion with renaming);
* if-conversion — Warp cells run in lock step with the IU's address and
  loop-signal streams, so data-dependent control flow becomes ``SELECT``
  operations over both evaluated arms;
* scalar value propagation (copy propagation within a block);
* constant folding and algebraic simplification (delegated to
  :mod:`repro.analysis.local_opt`);
* common-subexpression elimination (via DAG value numbering);
* store-to-load forwarding within a block;
* flattening of multi-dimensional array subscripts into a single affine
  index (row-major).

The result is a :class:`CellProgramIR`: the program tree plus the symbol
inventory (arrays, scalars) and the I/O statement table that the host and
IU code generators consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import local_opt
from ..analysis.dependence import IndexRange, may_alias_same_iteration
from ..lang import ast
from ..lang.errors import UnsupportedProgramError
from ..lang.semantic import (
    AffineIndex,
    AnalyzedModule,
    affine_add,
    affine_const,
    affine_scale,
)
from ..lang.symbols import Symbol, SymbolKind
from .dag import Dag, MemRef, Node, OpKind, QueueRef
from .tree import BasicBlock, Loop, ProgramTree

_BINOP_TO_OPKIND = {
    ast.BinaryOp.ADD: OpKind.FADD,
    ast.BinaryOp.SUB: OpKind.FSUB,
    ast.BinaryOp.MUL: OpKind.FMUL,
    ast.BinaryOp.DIV: OpKind.FDIV,
    ast.BinaryOp.EQ: OpKind.CMP_EQ,
    ast.BinaryOp.NE: OpKind.CMP_NE,
    ast.BinaryOp.LT: OpKind.CMP_LT,
    ast.BinaryOp.LE: OpKind.CMP_LE,
    ast.BinaryOp.GT: OpKind.CMP_GT,
    ast.BinaryOp.GE: OpKind.CMP_GE,
    ast.BinaryOp.AND: OpKind.BAND,
    ast.BinaryOp.OR: OpKind.BOR,
}


@dataclass(frozen=True)
class IOStatement:
    """Static description of one send/receive statement after lowering.

    ``external_array``/``external_index`` describe the host-side binding
    (flattened row-major); ``external_literal`` is set when the external
    argument was a literal the IU synthesises.  Exactly one of the three
    groups is populated, or none when the statement had no external.
    """

    io_index: int
    kind: OpKind  # RECV or SEND
    direction: ast.Direction
    channel: ast.Channel
    external_array: str | None = None
    external_index: AffineIndex | None = None
    external_literal: float | None = None


@dataclass
class CellProgramIR:
    """The lowered cell program plus the tables later phases consume."""

    tree: ProgramTree
    #: Cell-memory arrays: name -> element count.
    arrays: dict[str, int]
    #: Scalar float cell variables (pinned to registers by the allocator).
    scalars: list[str]
    #: Static I/O statements indexed by io_index.
    io_statements: list[IOStatement]
    #: Host array shapes (row-major), name -> dimensions.
    host_arrays: dict[str, tuple[int, ...]]
    n_cells: int
    module_name: str
    #: Scalars that must not be demoted to memory (assigned in if-arms).
    branch_assigned: frozenset[str] = frozenset()


class _Renamer:
    """Per-call-site renaming of function locals (and affine variables).

    ``substitutions`` additionally maps a loop variable onto an affine
    function of itself, ``var -> scale*var + offset`` — the mechanism
    behind loop unrolling, where copy ``j`` of the body sees the
    original index as ``(step*U)*q + (start + step*j)``.
    """

    def __init__(
        self,
        mapping: dict[str, str],
        substitutions: dict[str, tuple[int, int]] | None = None,
        parent: "_Renamer | None" = None,
    ):
        self._mapping = mapping
        self._substitutions = substitutions or {}
        self._parent = parent

    def name(self, name: str) -> str:
        renamed = self._mapping.get(name, name)
        if self._parent is not None and renamed == name:
            return self._parent.name(name)
        return renamed

    def affine(self, form: AffineIndex) -> AffineIndex:
        if not form.coefficients:
            return form
        constant = form.constant
        coeffs: dict[str, int] = {}
        for var, coeff in form.coefficients:
            renamed = self.name(var)
            scale, offset = self._all_substitutions().get(renamed, (1, 0))
            constant += coeff * offset
            scaled = coeff * scale
            if scaled:
                coeffs[renamed] = coeffs.get(renamed, 0) + scaled
        pruned = tuple(sorted((v, c) for v, c in coeffs.items() if c != 0))
        return AffineIndex(constant, pruned)

    def _all_substitutions(self) -> dict[str, tuple[int, int]]:
        if self._parent is None:
            return self._substitutions
        merged = dict(self._parent._all_substitutions())
        merged.update(self._substitutions)
        return merged

    def with_substitution(
        self, var: str, scale: int, offset: int
    ) -> "_Renamer":
        return _Renamer({}, {var: (scale, offset)}, parent=self)


class IRBuilder:
    """Build a :class:`CellProgramIR` from an analyzed module."""

    def __init__(
        self,
        analyzed: AnalyzedModule,
        memory_scalars: frozenset[str] = frozenset(),
        unroll_factor: int = 1,
        enable_local_opt: bool = True,
    ):
        """``memory_scalars`` names scalar variables to keep in cell
        memory instead of pinning to registers — the driver's escape
        hatch when register pressure is too high.  ``unroll_factor``
        unrolls innermost loops up to that factor (the largest divisor
        of the trip count is used), amortising the block-drain cycles
        over several iterations."""
        self._analyzed = analyzed
        self._memory_scalars = memory_scalars
        self._unroll_factor = max(1, unroll_factor)
        self._enable_local_opt = enable_local_opt
        self._module = analyzed.module
        #: Scalars assigned inside if-arms; these must stay in registers
        #: (their SELECT merge cannot be expressed as a predicated store).
        self.branch_assigned: set[str] = set()
        self._tree = ProgramTree()
        self._next_block_id = 0
        self._next_loop_id = 0
        self._next_io_index = 0
        self._io_statements: list[IOStatement] = []
        self._arrays: dict[str, int] = {}
        self._scalars: list[str] = []
        self._scalar_set: set[str] = set()
        self._inline_counter = 0
        # Per-open-block state.
        self._dag: Dag | None = None
        self._values: dict[str, Node] = {}
        self._reads: dict[str, Node] = {}
        self._last_io: dict[tuple[OpKind, QueueRef], Node] = {}
        self._block_stores: dict[str, list] = {}
        self._block_loads: dict[str, list] = {}
        self._forward: dict[str, dict[AffineIndex, Node]] = {}
        self._container: list = self._tree.items
        self._container_stack: list[list] = []
        #: Ranges of the currently-open loop indices (for dependence
        #: tests on memory references).
        self._loop_ranges: dict[str, IndexRange] = {}

    # Public entry ---------------------------------------------------------

    def build(self) -> CellProgramIR:
        cellprogram = self._module.cellprogram
        renamer = _Renamer({})
        self._declare_locals(cellprogram.locals, renamer)
        self._open_block()
        for stmt in cellprogram.body:
            self._build_stmt(stmt, renamer)
        self._close_block()
        host_arrays = {
            param.name: self._module.host_decl(param.name).dimensions
            for param in self._module.params
        }
        return CellProgramIR(
            tree=self._tree,
            arrays=self._arrays,
            scalars=self._scalars,
            io_statements=self._io_statements,
            host_arrays=host_arrays,
            n_cells=cellprogram.n_cells,
            module_name=self._module.name,
            branch_assigned=frozenset(self.branch_assigned),
        )

    # Declarations ----------------------------------------------------------

    def _declare_locals(self, decls: tuple[ast.VarDecl, ...], renamer: _Renamer) -> None:
        for decl in decls:
            name = renamer.name(decl.name)
            if decl.scalar_type is ast.ScalarType.INT:
                continue  # loop indices live on the IU
            if decl.is_array:
                self._arrays[name] = decl.element_count
            elif name in self._memory_scalars:
                self._arrays[name] = 1
            elif name not in self._scalar_set:
                self._scalar_set.add(name)
                self._scalars.append(name)

    # Block management --------------------------------------------------------

    def _open_block(self) -> None:
        self._dag = Dag()
        self._values = {}
        self._reads = {}
        self._last_io = {}
        self._block_stores = {}
        self._block_loads = {}
        self._forward = {}

    def _close_block(self) -> None:
        """Finalise the open block and append it if non-empty."""
        dag = self._dag
        assert dag is not None
        for var, value in sorted(self._values.items()):
            read = self._reads.get(var)
            if read is not None and read.node_id == value.node_id:
                continue  # unchanged
            write = dag.write(var, value)
            if read is not None:
                dag.add_order_edge(read, write)
        if dag.effects:
            block = BasicBlock(self._next_block_id, dag)
            self._next_block_id += 1
            self._container.append(block)
        self._dag = None

    def _enter_loop(self, loop: Loop) -> None:
        self._close_block()
        self._container.append(loop)
        self._container_stack.append(self._container)
        self._container = loop.body
        self._open_block()

    def _exit_loop(self) -> None:
        self._close_block()
        body = self._container
        self._container = self._container_stack.pop()
        if not body:
            # A loop with no effects compiles to nothing.
            self._container.pop()
        self._open_block()

    # Statements ---------------------------------------------------------------

    def _build_stmt(self, stmt: ast.Stmt, renamer: _Renamer) -> None:
        if isinstance(stmt, ast.Compound):
            for inner in stmt.statements:
                self._build_stmt(inner, renamer)
        elif isinstance(stmt, ast.Assign):
            self._build_assign(stmt, renamer)
        elif isinstance(stmt, ast.If):
            self._build_if(stmt, renamer)
        elif isinstance(stmt, ast.For):
            self._build_for(stmt, renamer)
        elif isinstance(stmt, ast.Call):
            self._build_call(stmt)
        elif isinstance(stmt, ast.Receive):
            self._build_receive(stmt, renamer)
        elif isinstance(stmt, ast.Send):
            self._build_send(stmt, renamer)
        else:  # pragma: no cover
            raise UnsupportedProgramError("unknown statement", stmt.location)

    def _build_call(self, stmt: ast.Call) -> None:
        function = self._analyzed.functions[stmt.name]
        self._inline_counter += 1
        prefix = f"{stmt.name}${self._inline_counter}."
        mapping = {decl.name: prefix + decl.name for decl in function.locals}
        renamer = _Renamer(mapping)
        self._declare_locals(function.locals, renamer)
        for inner in function.body.statements:
            self._build_stmt(inner, renamer)

    def _build_assign(self, stmt: ast.Assign, renamer: _Renamer) -> None:
        value = self._build_expr(stmt.value, renamer)
        self._assign_target(stmt.target, value, renamer)

    def _assign_target(self, target: ast.Expr, value: Node, renamer: _Renamer) -> None:
        if isinstance(target, ast.VarRef):
            name = renamer.name(target.name)
            if name in self._memory_scalars:
                self._store_ref(MemRef(name, affine_const(0)), value)
            else:
                self._values[name] = value
            return
        assert isinstance(target, ast.ArrayRef)
        ref = self._mem_ref(target, renamer)
        self._store_ref(ref, value)

    def _store_ref(self, ref: MemRef, value: Node) -> None:
        dag = self._dag
        assert dag is not None
        store = dag.store(ref, value)
        self._order_memory(store, ref, is_store=True)
        # Store-to-load forwarding: entries whose address provably
        # differs from the stored one (dependence test) survive.
        table = self._forward.setdefault(ref.array, {})
        survivors = {
            index: node
            for index, node in table.items()
            if not may_alias_same_iteration(index, ref.index, self._loop_ranges)
        }
        survivors[ref.index] = value
        self._forward[ref.array] = survivors

    def _build_for(self, stmt: ast.For, renamer: _Renamer) -> None:
        start, _stop, trip = self._analyzed.bounds_for(stmt)
        step = -1 if stmt.downto else 1
        factor = self._choose_unroll(stmt, trip)
        # W2 lets one declared index drive several loops; IR loop
        # variables must be unique (the IU keys induction updates by
        # loop variable), so each loop gets a fresh name.
        unique = f"{renamer.name(stmt.var)}#{self._next_loop_id}"
        body_renamer = _Renamer({stmt.var: unique}, parent=renamer)
        if factor > 1:
            loop = Loop(
                loop_id=self._next_loop_id,
                var=unique,
                start=0,
                step=1,
                trip=trip // factor,
            )
            self._next_loop_id += 1
            self._loop_ranges[unique] = IndexRange(0, trip // factor - 1)
            self._enter_loop(loop)
            for j in range(factor):
                copy_renamer = body_renamer.with_substitution(
                    unique, scale=step * factor, offset=start + step * j
                )
                self._build_stmt(stmt.body, copy_renamer)
            self._exit_loop()
            del self._loop_ranges[unique]
            return
        loop = Loop(
            loop_id=self._next_loop_id,
            var=unique,
            start=start,
            step=step,
            trip=trip,
        )
        self._next_loop_id += 1
        self._loop_ranges[unique] = IndexRange.of_loop(start, step, trip)
        self._enter_loop(loop)
        self._build_stmt(stmt.body, body_renamer)
        self._exit_loop()
        del self._loop_ranges[unique]

    def _choose_unroll(self, stmt: ast.For, trip: int) -> int:
        """The largest divisor of ``trip`` not exceeding the requested
        unroll factor, for innermost loops only."""
        if self._unroll_factor <= 1 or _contains_loop(stmt.body):
            return 1
        for factor in range(min(self._unroll_factor, trip), 1, -1):
            if trip % factor == 0:
                return factor
        return 1

    def _build_if(self, stmt: ast.If, renamer: _Renamer) -> None:
        condition = self._build_expr(stmt.condition, renamer)
        base = dict(self._values)

        self._values = dict(base)
        self._build_branch(stmt.then_body, renamer)
        then_values = self._values

        self._values = dict(base)
        if stmt.else_body is not None:
            self._build_branch(stmt.else_body, renamer)
        else_values = self._values

        merged = dict(base)
        for var in set(then_values) | set(else_values):
            then_val = then_values.get(var)
            else_val = else_values.get(var)
            if then_val is None or else_val is None:
                # Assigned in only one arm: on the other path the
                # variable keeps its current value — the block-entry
                # register contents if this block has not touched it yet.
                other = base.get(var)
                if other is None:
                    other = self._read_scalar(var)
                then_val = then_val if then_val is not None else other
                else_val = else_val if else_val is not None else other
            if then_val.node_id == else_val.node_id:
                merged[var] = then_val
            else:
                merged[var] = self._pure(
                    OpKind.SELECT, condition, then_val, else_val
                )
        self._values = merged

    def _read_scalar(self, name: str) -> Node:
        """The block-entry value of a (register-pinned) scalar."""
        dag = self._dag
        assert dag is not None
        read = self._reads.get(name)
        if read is None:
            read = dag.read(name)
            self._reads[name] = read
        return read

    def _build_branch(self, stmt: ast.Stmt, renamer: _Renamer) -> None:
        """Build an if-arm; only scalar assignments and nested ifs are
        permitted (I/O, loops and array stores cannot be predicated on the
        lock-step Warp array)."""
        if isinstance(stmt, ast.Compound):
            for inner in stmt.statements:
                self._build_branch(inner, renamer)
        elif isinstance(stmt, ast.Assign):
            if isinstance(stmt.target, ast.ArrayRef):
                raise UnsupportedProgramError(
                    "array stores inside 'if' are not supported: cells "
                    "cannot predicate memory writes against the IU's "
                    "address stream",
                    stmt.location,
                )
            name = renamer.name(stmt.target.name)
            if name in self._memory_scalars:
                raise ValueError(
                    f"internal: scalar {name!r} is assigned inside an "
                    "'if' and cannot be demoted to memory"
                )
            self.branch_assigned.add(name)
            self._build_assign(stmt, renamer)
        elif isinstance(stmt, ast.If):
            self._build_if(stmt, renamer)
        elif isinstance(stmt, (ast.Send, ast.Receive)):
            raise UnsupportedProgramError(
                "send/receive inside 'if' is not supported: conditional "
                "I/O has no compile-time timing (Section 5.1)",
                stmt.location,
            )
        elif isinstance(stmt, ast.For):
            raise UnsupportedProgramError(
                "loops inside 'if' are not supported: the IU's loop "
                "signals are unconditional",
                stmt.location,
            )
        else:
            raise UnsupportedProgramError(
                "unsupported statement inside 'if'", stmt.location
            )

    def _build_receive(self, stmt: ast.Receive, renamer: _Renamer) -> None:
        dag = self._dag
        assert dag is not None
        queue = QueueRef(stmt.direction, stmt.channel)
        node = dag.recv(queue)
        node.io_index = self._register_io(stmt, OpKind.RECV, renamer)
        self._order_io(node, OpKind.RECV, queue)
        self._assign_target(stmt.target, node, renamer)

    def _build_send(self, stmt: ast.Send, renamer: _Renamer) -> None:
        dag = self._dag
        assert dag is not None
        value = self._build_expr(stmt.value, renamer)
        queue = QueueRef(stmt.direction, stmt.channel)
        node = dag.send(queue, value)
        node.io_index = self._register_io(stmt, OpKind.SEND, renamer)
        self._order_io(node, OpKind.SEND, queue)

    def _register_io(
        self, stmt: ast.Stmt, kind: OpKind, renamer: _Renamer
    ) -> int:
        info = self._analyzed.io_info[id(stmt)]
        external_array = info.external_name
        external_index: AffineIndex | None = None
        if external_array is not None:
            dims = self._host_dims(external_array)
            renamed = tuple(renamer.affine(form) for form in info.external_indices)
            external_index = _flatten_index(renamed, dims)
        io_stmt = IOStatement(
            io_index=self._next_io_index,
            kind=kind,
            direction=info.direction,
            channel=info.channel,
            external_array=external_array,
            external_index=external_index,
            external_literal=info.external_literal,
        )
        self._next_io_index += 1
        self._io_statements.append(io_stmt)
        return io_stmt.io_index

    def _host_dims(self, name: str) -> tuple[int, ...]:
        return self._module.host_decl(name).dimensions

    # Ordering helpers -----------------------------------------------------

    def _order_io(self, node: Node, kind: OpKind, queue: QueueRef) -> None:
        dag = self._dag
        assert dag is not None
        key = (kind, queue)
        previous = self._last_io.get(key)
        if previous is not None:
            dag.add_order_edge(previous, node)
        self._last_io[key] = node

    def _order_memory(self, node: Node, ref: MemRef, is_store: bool) -> None:
        """Order edges between memory references of one array, pruned by
        the dependence tests: provably-disjoint references (e.g. ``w[i]``
        vs ``w[i+1]`` in the same iteration) may be reordered freely."""
        dag = self._dag
        assert dag is not None
        stores = self._block_stores.setdefault(ref.array, [])
        loads = self._block_loads.setdefault(ref.array, [])
        if is_store:
            for prior, index in stores:
                if may_alias_same_iteration(index, ref.index, self._loop_ranges):
                    dag.add_order_edge(prior, node)
            for prior, index in loads:
                if may_alias_same_iteration(index, ref.index, self._loop_ranges):
                    dag.add_order_edge(prior, node)
            stores.append((node, ref.index))
        else:
            for prior, index in stores:
                if may_alias_same_iteration(index, ref.index, self._loop_ranges):
                    dag.add_order_edge(prior, node)
            loads.append((node, ref.index))

    # Expressions ---------------------------------------------------------

    def _pure(self, op: OpKind, *operands: Node, attr: object = None) -> Node:
        dag = self._dag
        assert dag is not None
        if self._enable_local_opt:
            folded = local_opt.fold(dag, op, operands)
            if folded is not None:
                return folded
        return dag.pure(op, *operands, attr=attr)

    def _build_expr(self, expr: ast.Expr, renamer: _Renamer) -> Node:
        dag = self._dag
        assert dag is not None
        if isinstance(expr, (ast.IntLiteral, ast.FloatLiteral)):
            return dag.const(float(expr.value))
        if isinstance(expr, ast.VarRef):
            name = renamer.name(expr.name)
            if name in self._memory_scalars:
                ref = MemRef(name, affine_const(0))
                forwarded = self._forward.get(name, {}).get(ref.index)
                if forwarded is not None:
                    return forwarded
                node = dag.load(ref)
                self._order_memory(node, ref, is_store=False)
                return node
            value = self._values.get(name)
            if value is not None:
                return value
            read = self._reads.get(name)
            if read is None:
                read = dag.read(name)
                self._reads[name] = read
            self._values[name] = read
            return read
        if isinstance(expr, ast.ArrayRef):
            ref = self._mem_ref(expr, renamer)
            forwarded = self._forward.get(ref.array, {}).get(ref.index)
            if forwarded is not None:
                return forwarded
            node = dag.load(ref)
            self._order_memory(node, ref, is_store=False)
            return node
        if isinstance(expr, ast.UnaryExpr):
            operand = self._build_expr(expr.operand, renamer)
            op = OpKind.FNEG if expr.op is ast.UnaryOp.NEG else OpKind.BNOT
            return self._pure(op, operand)
        if isinstance(expr, ast.BinaryExpr):
            left = self._build_expr(expr.left, renamer)
            right = self._build_expr(expr.right, renamer)
            return self._pure(_BINOP_TO_OPKIND[expr.op], left, right)
        raise UnsupportedProgramError(  # pragma: no cover
            "unsupported expression", expr.location
        )

    def _mem_ref(self, expr: ast.ArrayRef, renamer: _Renamer) -> MemRef:
        name = renamer.name(expr.name)
        symbol = self._cell_symbol(expr.name)
        forms = tuple(
            renamer.affine(form) for form in self._analyzed.indices_for(expr)
        )
        flat = _flatten_index(forms, symbol.dimensions)
        return MemRef(name, flat)

    def _cell_symbol(self, original_name: str) -> Symbol:
        symbol = self._analyzed.cell_scope.lookup(original_name)
        if symbol is not None and symbol.kind is SymbolKind.CELL_VAR:
            return symbol
        # Function locals are not in the cell scope; find the declaring
        # function (names are unique per function by semantic analysis).
        for function in self._analyzed.functions.values():
            for decl in function.locals:
                if decl.name == original_name:
                    return Symbol(
                        decl.name,
                        SymbolKind.CELL_VAR,
                        decl.scalar_type,
                        decl.dimensions,
                        decl.location,
                    )
        raise KeyError(original_name)


def _flatten_index(
    forms: tuple[AffineIndex, ...], dims: tuple[int, ...]
) -> AffineIndex:
    """Row-major flattening of a multi-dimensional affine subscript."""
    flat = affine_const(0)
    stride = 1
    for form, dim in zip(reversed(forms), reversed(dims)):
        flat = affine_add(flat, affine_scale(form, stride))
        stride *= dim
    return flat


def _contains_loop(stmt: ast.Stmt) -> bool:
    if isinstance(stmt, ast.For):
        return True
    if isinstance(stmt, ast.Compound):
        return any(_contains_loop(s) for s in stmt.statements)
    if isinstance(stmt, ast.If):
        if _contains_loop(stmt.then_body):
            return True
        return stmt.else_body is not None and _contains_loop(stmt.else_body)
    return False


def build_ir(
    analyzed: AnalyzedModule,
    memory_scalars: frozenset[str] = frozenset(),
    unroll_factor: int = 1,
    enable_local_opt: bool = True,
) -> CellProgramIR:
    """Lower an analyzed module to the cell-program IR.

    ``enable_local_opt=False`` disables constant folding, algebraic
    simplification and height reduction (CSE via value numbering stays)
    — for ablation studies only."""
    return IRBuilder(
        analyzed, memory_scalars, unroll_factor, enable_local_opt
    ).build()
