"""List scheduling of basic blocks onto the Warp cell datapath.

"The techniques used in the scheduling of the cell computation is based
on those designed originally for increasing the throughput of hardware
pipelines" (Section 6.2) — classic resource-constrained list scheduling
with critical-path priorities over the block DAG, honouring

* one ALU and one multiplier issue per cycle (both 5-stage pipelined, so
  results are available ``latency`` cycles after issue);
* two data-memory references per cycle;
* one enqueue/dequeue per queue per cycle;
* one register-move and one literal field per instruction;
* program order per queue and per array (order edges);
* write-after-read for scalar registers: the operation producing a
  variable's new value may not issue before consumers of the old value
  (the 5-stage writeback then guarantees the old value is long gone
  before anyone could see it).

Inter-cell timing is deliberately ignored here — "Ignoring inter-cell
timing constraints in the code generation phase simplifies the problem
without compromising efficiency" (Section 6.2.1); the skew analysis runs
afterwards on the finished schedule.

The block's schedule *drains*: its length covers every writeback and
memory/queue effect, so values in pinned registers and memory are stable
at the block boundary (this is what makes per-block scheduling composable
with the loop tree and keeps one loop iteration a fixed number of
cycles).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..ir.dag import Dag, Node, OpKind
from ..config import CellConfig
from .isa import ALU_OPS, MPY_OPS

#: Synthetic node kind for register moves materialising WRITEs that could
#: not be folded into their producer.
MOVE = "move"


@dataclass
class SchedItem:
    """One schedulable operation (a DAG node or a synthetic move)."""

    item_id: int
    #: The underlying dag node, or None for synthetic moves.
    node: Node | None
    kind: str  # 'alu' | 'mpy' | 'mem' | 'deq' | 'enq' | 'move'
    latency: int
    #: Operand node ids (dag ids; includes CONST/READ leaves).
    operands: tuple[int, ...]
    #: For moves: the variable written.  For folded producers the
    #: pinned destination variable (else None).
    pinned_var: str | None = None
    cycle: int = -1


@dataclass
class BlockSchedule:
    """The result of scheduling one basic block."""

    items: dict[int, SchedItem]            # item_id -> item
    node_to_item: dict[int, int]           # dag node id -> item_id
    length: int                            # cycles, including drain
    #: item ids in issue order (ties broken by item id).
    order: list[int]

    def items_at(self, cycle: int) -> list[SchedItem]:
        return [item for item in self.items.values() if item.cycle == cycle]


def _item_kind(node: Node) -> str:
    if node.op in ALU_OPS:
        return "alu"
    if node.op in MPY_OPS:
        return "mpy"
    if node.op in (OpKind.LOAD, OpKind.STORE):
        return "mem"
    if node.op is OpKind.RECV:
        return "deq"
    if node.op is OpKind.SEND:
        return "enq"
    raise ValueError(f"unschedulable node {node!r}")


def _latency(node: Node | None, kind: str, config: CellConfig) -> int:
    if kind == "move":
        return config.move_latency
    assert node is not None
    if kind == "alu":
        return config.alu_latency
    if kind == "mpy":
        return config.div_latency if node.op is OpKind.FDIV else config.mpy_latency
    if kind == "mem":
        return config.mem_read_latency if node.op is OpKind.LOAD else 1
    if kind == "deq":
        return config.queue_latency
    return 1  # enq: effect at issue


class BlockScheduler:
    """Schedule one basic-block DAG.  Use :func:`schedule_block`."""

    def __init__(self, dag: Dag, config: CellConfig):
        self._dag = dag
        self._config = config
        self._alive = {node.node_id for node in dag.live_nodes()}
        self._items: dict[int, SchedItem] = {}
        self._node_to_item: dict[int, int] = {}
        self._next_item_id = 0
        #: (pred item, succ item, latency)
        self._edges: list[tuple[int, int, int]] = []
        #: (consumer of old value, writer item, READ node id)
        self._anti_edges: list[tuple[int, int, int]] = []

    # Graph construction ---------------------------------------------------

    def _add_item(
        self,
        node: Node | None,
        kind: str,
        operands: tuple[int, ...],
        pinned_var: str | None = None,
    ) -> SchedItem:
        item = SchedItem(
            item_id=self._next_item_id,
            node=node,
            kind=kind,
            latency=_latency(node, kind, self._config),
            operands=operands,
            pinned_var=pinned_var,
        )
        self._next_item_id += 1
        self._items[item.item_id] = item
        if node is not None:
            self._node_to_item[node.node_id] = item.item_id
        return item

    def _build_items(self) -> None:
        dag = self._dag
        folded_writes: dict[int, str] = {}  # producer node id -> var
        writes: list[Node] = []
        for node_id in sorted(self._alive):
            node = dag.nodes[node_id]
            if node.op in (OpKind.CONST, OpKind.READ):
                continue
            if node.op is OpKind.WRITE:
                writes.append(node)
                continue
            self._add_item(node, _item_kind(node), node.operands)
        # Fold WRITEs into their producers where possible; otherwise emit
        # a register move.  Folding redirects the producer's destination
        # to the pinned register, which is only sound when the producer
        # cannot (transitively) feed a consumer of the *old* register
        # value: such a consumer carries a write-after-read edge back to
        # the producer, and folding would close a cycle — the consumer
        # would need both the old and the new value in one register.
        old_value_readers = self._old_value_readers(writes)
        successors = self._value_successors()
        for write in writes:
            value_id = write.operands[0]
            value = dag.nodes[value_id]
            can_fold = (
                value_id in self._node_to_item
                and value.op not in (OpKind.STORE, OpKind.SEND)
                and value_id not in folded_writes
                and not self._reaches_any(
                    value_id, old_value_readers.get(write.attr, set()), successors
                )
            )
            if can_fold:
                folded_writes[value_id] = write.attr  # type: ignore[assignment]
                item = self._items[self._node_to_item[value_id]]
                item.pinned_var = write.attr  # type: ignore[assignment]
                self._node_to_item[write.node_id] = item.item_id
            else:
                move = self._add_item(None, MOVE, (value_id,), write.attr)
                self._node_to_item[write.node_id] = move.item_id
        # Populate operand tuples for real nodes now that moves exist.
        for item in self._items.values():
            if item.node is not None:
                item.operands = item.node.operands

    def _old_value_readers(self, writes: list[Node]) -> dict[str, set[int]]:
        """For each written variable: the alive nodes that consume its
        block-entry READ value (excluding the WRITE nodes themselves)."""
        dag = self._dag
        read_ids = {
            node.attr: node.node_id
            for node in dag.nodes.values()
            if node.op is OpKind.READ and node.node_id in self._alive
        }
        write_ids = {w.node_id for w in writes}
        readers: dict[str, set[int]] = {}
        for write in writes:
            read_id = read_ids.get(write.attr)
            if read_id is None:
                continue
            consumers = {
                node_id
                for node_id in self._alive
                if node_id not in write_ids
                and read_id in dag.nodes[node_id].operands
            }
            if consumers:
                readers[write.attr] = consumers
        return readers

    def _value_successors(self) -> dict[int, set[int]]:
        """node id -> alive nodes consuming it (value + order edges)."""
        successors: dict[int, set[int]] = {}
        for node_id in self._alive:
            for operand in self._dag.nodes[node_id].operands:
                if operand in self._alive:
                    successors.setdefault(operand, set()).add(node_id)
        for earlier, later in self._dag.order_edges:
            if earlier in self._alive and later in self._alive:
                successors.setdefault(earlier, set()).add(later)
        return successors

    @staticmethod
    def _reaches_any(
        start: int, targets: set[int], successors: dict[int, set[int]]
    ) -> bool:
        if not targets:
            return False
        # The producer may itself read the old value (x := x + 1): it
        # reads its operands at issue, before its own writeback, so only
        # *proper* descendants matter.
        seen = {start}
        stack = list(successors.get(start, ()))
        while stack:
            node = stack.pop()
            if node in targets:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(successors.get(node, ()))
        return False

    def _build_edges(self) -> None:
        dag = self._dag
        # Value edges.
        for item in list(self._items.values()):
            for operand_id in item.operands:
                pred_item_id = self._node_to_item.get(operand_id)
                if pred_item_id is None or pred_item_id == item.item_id:
                    continue
                pred = self._items[pred_item_id]
                self._edges.append((pred.item_id, item.item_id, pred.latency))
        # Order edges from the dag.
        for earlier_id, later_id in dag.order_edges:
            if earlier_id not in self._alive or later_id not in self._alive:
                continue
            earlier = dag.nodes[earlier_id]
            later = dag.nodes[later_id]
            if earlier.op is OpKind.READ and later.op is OpKind.WRITE:
                self._add_anti_edges(earlier, later)
                continue
            pred_item = self._node_to_item.get(earlier_id)
            succ_item = self._node_to_item.get(later_id)
            if pred_item is None or succ_item is None or pred_item == succ_item:
                continue
            self._edges.append((pred_item, succ_item, 1))

    def _add_anti_edges(self, read: Node, write: Node) -> None:
        """Write-after-read: the new value's producer must not issue
        before any consumer of the block-entry value.  Anti edges are
        tracked separately so cross-variable cycles (register swaps) can
        be broken with a compiler temporary."""
        writer_item = self._node_to_item.get(write.node_id)
        if writer_item is None:
            return
        for item in self._items.values():
            if item.item_id == writer_item:
                continue
            if read.node_id in item.operands:
                self._anti_edges.append(
                    (item.item_id, writer_item, read.node_id)
                )

    def _break_anti_cycles(self) -> None:
        """Resolve register-swap cycles (``a := b; b := a`` through
        pinned registers) by copying one old value to a temporary.

        An anti edge ``consumer -> writer`` closes a cycle when the
        writer (transitively) feeds the consumer.  The fix mirrors what
        any register allocator does for parallel copies: a fresh move
        saves the old value early; the consumer reads the temporary, and
        only the move itself must precede the overwrite.
        """
        for _ in range(len(self._anti_edges) + 1):
            successors: dict[int, set[int]] = {}
            for pred, succ, _lat in self._edges:
                successors.setdefault(pred, set()).add(succ)
            for consumer, writer, _read in self._anti_edges:
                successors.setdefault(consumer, set()).add(writer)
            broken = False
            for index, (consumer, writer, read_id) in enumerate(
                self._anti_edges
            ):
                if not self._item_reaches(writer, consumer, successors):
                    continue
                # Insert the saving move and rewire the consumer.
                move = self._add_item(None, MOVE, (read_id,))
                item = self._items[consumer]
                item.operands = tuple(
                    -move.item_id - 1 if op == read_id else op
                    for op in item.operands
                )
                self._edges.append(
                    (move.item_id, consumer, move.latency)
                )
                self._anti_edges[index] = (move.item_id, writer, read_id)
                broken = True
                break
            if not broken:
                self._edges.extend(
                    (consumer, writer, 0)
                    for consumer, writer, _read in self._anti_edges
                )
                return
        raise RuntimeError(  # pragma: no cover - bounded by edge count
            "failed to break anti-dependence cycles"
        )

    @staticmethod
    def _item_reaches(
        start: int, target: int, successors: dict[int, set[int]]
    ) -> bool:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            if node == target:
                return True
            for succ in successors.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return False

    # Literal bookkeeping -----------------------------------------------------

    def _literal_values(self, item: SchedItem) -> list[float]:
        values = []
        for operand_id in item.operands:
            node = self._dag.nodes.get(operand_id)
            if node is not None and node.op is OpKind.CONST:
                values.append(float(node.attr))  # type: ignore[arg-type]
        return sorted(set(values))

    def _split_excess_literals(self) -> None:
        """An instruction has one literal field; operations needing two or
        more distinct literals get all but one materialised via moves."""
        for item in list(self._items.values()):
            literals = self._literal_values(item)
            if len(literals) <= 1:
                continue
            keep = literals[0]
            for value in literals[1:]:
                const_ids = [
                    oid
                    for oid in item.operands
                    if (
                        (n := self._dag.nodes.get(oid)) is not None
                        and n.op is OpKind.CONST
                        and float(n.attr) == value  # type: ignore[arg-type]
                    )
                ]
                move = self._add_item(None, MOVE, (const_ids[0],))
                # Redirect the operand reference at emit time: record the
                # move as the new producer of that const *for this item*.
                item.operands = tuple(
                    oid if oid not in const_ids else -move.item_id - 1
                    for oid in item.operands
                )
                self._edges.append((move.item_id, item.item_id, move.latency))
            del keep

    # Scheduling -------------------------------------------------------------

    def schedule(self) -> BlockSchedule:
        self._build_items()
        self._build_edges()
        self._break_anti_cycles()
        self._split_excess_literals()

        succs: dict[int, list[tuple[int, int]]] = {i: [] for i in self._items}
        preds_count: dict[int, int] = {i: 0 for i in self._items}
        for pred, succ, lat in self._edges:
            succs[pred].append((succ, lat))
            preds_count[succ] += 1

        priority = self._critical_paths(succs)

        earliest: dict[int, int] = {i: 0 for i in self._items}
        ready: list[tuple[int, int, int]] = []  # (-priority, item_id) when released
        for item_id, count in preds_count.items():
            if count == 0:
                heapq.heappush(ready, (-priority[item_id], item_id, 0))

        resource_use: dict[tuple[int, str], int] = {}
        literal_at: dict[int, float] = {}
        capacities = {
            "alu": 1,
            "mpy": 1,
            "mem": self._config.mem_ports,
            "move": self._config.move_ports,
        }
        remaining = dict(preds_count)
        scheduled_order: list[int] = []
        cycle = 0
        unscheduled = set(self._items)

        while unscheduled:
            # Drain the ready heap, try to place everything eligible this
            # cycle in priority order, and push back what did not fit.
            attempt: list[tuple[int, int, int]] = []
            while ready:
                neg_prio, item_id, _ = heapq.heappop(ready)
                attempt.append((neg_prio, item_id, 0))
            deferred: list[tuple[int, int, int]] = []
            for neg_prio, item_id, _ in sorted(attempt):
                if earliest[item_id] > cycle:
                    deferred.append((neg_prio, item_id, 0))
                    continue
                if self._try_place(
                    item_id, cycle, resource_use, literal_at, capacities
                ):
                    item = self._items[item_id]
                    item.cycle = cycle
                    scheduled_order.append(item_id)
                    unscheduled.discard(item_id)
                    for succ, lat in succs[item_id]:
                        earliest[succ] = max(earliest[succ], cycle + lat)
                        remaining[succ] -= 1
                        if remaining[succ] == 0:
                            deferred.append((-priority[succ], succ, 0))
                else:
                    deferred.append((neg_prio, item_id, 0))
            for entry in deferred:
                heapq.heappush(ready, entry)
            cycle += 1
            if cycle > 10_000_000:  # pragma: no cover - defensive
                raise RuntimeError("scheduler failed to converge")

        # Drain: the block ends only after every writeback and effect has
        # landed, so pinned registers and memory are stable at the edge.
        length = 1
        for item in self._items.values():
            length = max(length, item.cycle + max(item.latency, 1))
        return BlockSchedule(
            items=self._items,
            node_to_item=self._node_to_item,
            length=length,
            order=scheduled_order,
        )

    def _critical_paths(
        self, succs: dict[int, list[tuple[int, int]]]
    ) -> dict[int, int]:
        """Longest path (by latency) from each item to any sink."""
        memo: dict[int, int] = {}

        order = self._topological(succs)
        for item_id in reversed(order):
            best = self._items[item_id].latency
            for succ, lat in succs[item_id]:
                best = max(best, lat + memo[succ])
            memo[item_id] = best
        return memo

    def _topological(self, succs: dict[int, list[tuple[int, int]]]) -> list[int]:
        indegree = {i: 0 for i in self._items}
        for pred, edges in succs.items():
            for succ, _ in edges:
                indegree[succ] += 1
        stack = sorted(i for i, d in indegree.items() if d == 0)
        order: list[int] = []
        while stack:
            item_id = stack.pop()
            order.append(item_id)
            for succ, _ in succs[item_id]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    stack.append(succ)
        if len(order) != len(self._items):
            raise RuntimeError("cycle in schedule graph (compiler bug)")
        return order

    def _try_place(
        self,
        item_id: int,
        cycle: int,
        resource_use: dict[tuple[int, str], int],
        literal_at: dict[int, float],
        capacities: dict[str, int],
    ) -> bool:
        item = self._items[item_id]
        if item.kind in ("deq", "enq"):
            assert item.node is not None
            resource = f"{item.kind}:{item.node.attr}"
            capacity = 1
        else:
            resource = item.kind
            capacity = capacities[item.kind]
        if resource_use.get((cycle, resource), 0) >= capacity:
            return False
        literals = self._literal_values(item)
        if literals:
            current = literal_at.get(cycle)
            if current is not None and any(v != current for v in literals):
                return False
            if len(literals) > 1:  # split beforehand; defensive
                return False
        resource_use[(cycle, resource)] = resource_use.get((cycle, resource), 0) + 1
        if literals:
            literal_at[cycle] = literals[0]
        return True


def schedule_block(dag: Dag, config: CellConfig) -> BlockSchedule:
    """Schedule a basic block's DAG; see :class:`BlockScheduler`."""
    return BlockScheduler(dag, config).schedule()
