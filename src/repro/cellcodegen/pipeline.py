"""Pipelining-headroom analysis: resource-bound minimum initiation
intervals.

The paper's throughput claims (one result per cycle) rest on the
software-pipelining techniques of its references [6, 7] (Patel &
Davidson; Rau & Glaeser).  This reproduction substitutes loop unrolling;
this module quantifies how far any schedule of a loop body could go —
the *resource-constrained minimum initiation interval* (ResMII): no
initiation scheme can start iterations faster than the busiest
resource allows.

``pipelining_report`` compares each innermost loop's achieved iteration
length against its ResMII, measuring both the cost of the drain-based
design and the remaining headroom a modulo scheduler would chase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import CellConfig
from ..ir.dag import OpKind
from .emit import CellCode, ScheduledBlock, ScheduledItem, ScheduledLoop


@dataclass(frozen=True)
class LoopPipelineStats:
    """Initiation-interval facts for one innermost loop."""

    loop_id: int
    trip: int
    achieved_interval: int  # cycles per iteration under the drain design
    resource_min_interval: int  # ResMII
    #: Resource usage per iteration: name -> issue slots used.
    usage: dict

    @property
    def headroom(self) -> float:
        """achieved / ResMII — 1.0 means resource-optimal."""
        return self.achieved_interval / max(self.resource_min_interval, 1)

    @property
    def bottleneck(self) -> str:
        """The resource that sets the ResMII."""
        best = max(
            self.usage.items(),
            key=lambda item: item[1][0] / item[1][1],
            default=("none", (0, 1)),
        )
        return best[0]


def _block_usage(block: ScheduledBlock) -> dict:
    """Issue-slot demand of one block: resource -> (uses, capacity)."""
    usage: dict[str, int] = {}
    for instr in block.instructions:
        if instr.alu:
            usage["alu"] = usage.get("alu", 0) + 1
        if instr.mpy:
            usage["mpy"] = usage.get("mpy", 0) + 1
        if instr.mem:
            usage["mem"] = usage.get("mem", 0) + len(instr.mem)
        for deq in instr.deqs:
            key = f"deq:{deq.queue}"
            usage[key] = usage.get(key, 0) + 1
        for enq in instr.enqs:
            key = f"enq:{enq.queue}"
            usage[key] = usage.get(key, 0) + 1
        if instr.move:
            usage["move"] = usage.get("move", 0) + 1
    return usage


def _capacity(resource: str, config: CellConfig) -> int:
    if resource == "mem":
        return config.mem_ports
    if resource == "move":
        return config.move_ports
    return 1


def resource_min_interval(
    blocks: list[ScheduledBlock], config: CellConfig
) -> tuple[int, dict]:
    """ResMII of a loop body: ceil(uses / capacity), maximised over
    resources."""
    usage: dict[str, int] = {}
    for block in blocks:
        for resource, uses in _block_usage(block).items():
            usage[resource] = usage.get(resource, 0) + uses
    annotated = {
        resource: (uses, _capacity(resource, config))
        for resource, uses in usage.items()
    }
    interval = 1
    for resource, (uses, capacity) in annotated.items():
        interval = max(interval, math.ceil(uses / capacity))
    return interval, annotated


def _innermost_loops(items: list[ScheduledItem]):
    for item in items:
        if isinstance(item, ScheduledLoop):
            if any(isinstance(child, ScheduledLoop) for child in item.body):
                yield from _innermost_loops(item.body)
            else:
                yield item


def pipelining_report(code: CellCode) -> list[LoopPipelineStats]:
    """Achieved iteration length vs ResMII for every innermost loop."""
    stats = []
    for loop in _innermost_loops(code.items):
        blocks = [b for b in loop.body if isinstance(b, ScheduledBlock)]
        achieved = sum(b.length for b in blocks)
        interval, usage = resource_min_interval(blocks, code.config)
        stats.append(
            LoopPipelineStats(
                loop_id=loop.loop_id,
                trip=loop.trip,
                achieved_interval=achieved,
                resource_min_interval=interval,
                usage=usage,
            )
        )
    return stats
