"""Assembling scheduled blocks into cell microcode.

The output mirrors the program tree: a sequence of
:class:`ScheduledBlock` (straight-line microcode) and
:class:`ScheduledLoop` (constant-trip loops whose bodies are again
sequences).  The cell sequencer executes loops with zero overhead — the
loop branch rides in the control field of the last body instruction, and
the continue/exit decision comes from the IU's loop signal
(Section 6.3.1).

Emission also produces the two streams later phases consume:

* ``addr_demands`` — for every memory reference whose address is not a
  compile-time constant, the cycle (within the block) at which the cell
  dequeues the address from the IU path, plus the affine expression the
  IU must compute (Section 6.3.2's deadlines);
* ``io_events`` — the cycle of every send/receive, feeding the
  five-vector timing characterisation of Section 6.2.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..errors import RegisterPressureError
from ..ir.builder import CellProgramIR
from ..ir.dag import Dag, OpKind, QueueRef
from ..ir.tree import BasicBlock, Loop, TreeNode
from ..lang.semantic import AffineIndex, affine_add, affine_const
from ..config import CellConfig
from .isa import (
    AddressSource,
    AluOp,
    DeqOp,
    EnqOp,
    Lit,
    LoopMark,
    LoopMarkKind,
    MemOp,
    MicroInstr,
    MoveOp,
    MpyOp,
    Reg,
)
from .layout import MemoryLayout, layout_memory
from .regalloc import allocate_registers, resolve_operand
from .schedule import BlockSchedule, schedule_block


@dataclass(frozen=True)
class AddressDemand:
    """An address the IU must deliver: ``cycle`` within the block, and the
    affine expression (over enclosing loop indices) of the word address."""

    cycle: int
    expression: AffineIndex
    is_load: bool


@dataclass(frozen=True)
class IOEvent:
    """One send/receive in a block schedule."""

    cycle: int
    io_index: int
    kind: OpKind  # RECV or SEND
    queue: QueueRef


@dataclass
class ScheduledBlock:
    block_id: int
    instructions: list[MicroInstr]
    length: int
    addr_demands: list[AddressDemand] = field(default_factory=list)
    io_events: list[IOEvent] = field(default_factory=list)


@dataclass
class ScheduledLoop:
    loop_id: int
    var: str
    start: int
    step: int
    trip: int
    body: list["ScheduledItem"] = field(default_factory=list)


ScheduledItem = Union[ScheduledBlock, ScheduledLoop]


@dataclass
class CellCode:
    """The complete microcode of one (every) Warp cell."""

    items: list[ScheduledItem]
    layout: MemoryLayout
    pinned: dict[str, Reg]
    config: CellConfig
    max_live_registers: int = 0

    def blocks(self):
        yield from _walk_blocks(self.items)

    @property
    def n_instructions(self) -> int:
        """Static microcode length (the Table 7-1 "cell ucode" metric)."""
        return sum(len(block.instructions) for block in self.blocks())

    @property
    def total_cycles(self) -> int:
        """Execution time of the whole program on one cell."""
        return sum(_item_cycles(item) for item in self.items)


def _walk_blocks(items: list[ScheduledItem]):
    for item in items:
        if isinstance(item, ScheduledBlock):
            yield item
        else:
            yield from _walk_blocks(item.body)


def _item_cycles(item: ScheduledItem) -> int:
    if isinstance(item, ScheduledBlock):
        return item.length
    return item.trip * sum(_item_cycles(child) for child in item.body)


class CellCodeGenerator:
    """Drive scheduling, register allocation and emission for a program."""

    def __init__(self, ir: CellProgramIR, config: CellConfig):
        self._ir = ir
        self._config = config
        self._layout = layout_memory(
            ir.arrays, memory_scalars=set(), config=config
        )
        # Pinned registers: one per scalar, then the temp pool.
        self._pinned = {
            name: Reg(index) for index, name in enumerate(ir.scalars)
        }
        n_pinned = len(self._pinned)
        if n_pinned + 8 > config.n_registers:
            raise RegisterPressureError(
                needed=n_pinned + 8, available=config.n_registers
            )
        self._temp_pool = list(range(n_pinned, config.n_registers))
        self._max_live = 0

    def generate(self) -> CellCode:
        items = [self._emit_item(item) for item in self._ir.tree.items]
        _attach_loop_marks(items)
        return CellCode(
            items=items,
            layout=self._layout,
            pinned=self._pinned,
            config=self._config,
            max_live_registers=self._max_live,
        )

    def _emit_item(self, item: TreeNode) -> ScheduledItem:
        if isinstance(item, BasicBlock):
            return self._emit_block(item)
        assert isinstance(item, Loop)
        return ScheduledLoop(
            loop_id=item.loop_id,
            var=item.var,
            start=item.start,
            step=item.step,
            trip=item.trip,
            body=[self._emit_item(child) for child in item.body],
        )

    def _emit_block(self, block: BasicBlock) -> ScheduledBlock:
        schedule = schedule_block(block.dag, self._config)
        assignment = allocate_registers(
            schedule, block.dag, self._pinned, self._temp_pool
        )
        self._max_live = max(self._max_live, assignment.max_live)
        return self._assemble(block.dag, block.block_id, schedule, assignment)

    def _assemble(
        self,
        dag: Dag,
        block_id: int,
        schedule: BlockSchedule,
        assignment,
    ) -> ScheduledBlock:
        instructions = [MicroInstr() for _ in range(schedule.length)]
        demands: list[AddressDemand] = []
        io_events: list[IOEvent] = []

        def operand(operand_id: int):
            return resolve_operand(
                operand_id, schedule, dag, self._pinned, assignment
            )

        for item_id in sorted(
            schedule.items, key=lambda i: (schedule.items[i].cycle, i)
        ):
            item = schedule.items[item_id]
            instr = instructions[item.cycle]
            if item.kind == "alu":
                assert item.node is not None
                instr.alu = AluOp(
                    op=item.node.op,
                    dest=assignment.dest(item_id),
                    sources=tuple(operand(o) for o in item.operands),
                )
            elif item.kind == "mpy":
                assert item.node is not None
                instr.mpy = MpyOp(
                    op=item.node.op,
                    dest=assignment.dest(item_id),
                    sources=tuple(operand(o) for o in item.operands),
                )
            elif item.kind == "mem":
                assert item.node is not None
                ref = item.node.attr
                address = affine_add(
                    affine_const(self._layout.base(ref.array)), ref.index
                )
                is_load = item.node.op is OpKind.LOAD
                if address.is_constant:
                    mem_op = MemOp(
                        is_load=is_load,
                        address_source=AddressSource.LITERAL,
                        address=address.constant,
                        reg=assignment.dest(item_id) if is_load else None,
                        store_value=None if is_load else operand(item.operands[0]),
                    )
                else:
                    demands.append(
                        AddressDemand(
                            cycle=item.cycle, expression=address, is_load=is_load
                        )
                    )
                    mem_op = MemOp(
                        is_load=is_load,
                        address_source=AddressSource.QUEUE,
                        address=None,
                        reg=assignment.dest(item_id) if is_load else None,
                        store_value=None if is_load else operand(item.operands[0]),
                    )
                instr.mem.append(mem_op)
            elif item.kind == "deq":
                assert item.node is not None
                instr.deqs.append(
                    DeqOp(queue=item.node.attr, dest=assignment.dest(item_id))
                )
                io_events.append(
                    IOEvent(
                        cycle=item.cycle,
                        io_index=item.node.io_index,
                        kind=OpKind.RECV,
                        queue=item.node.attr,
                    )
                )
            elif item.kind == "enq":
                assert item.node is not None
                instr.enqs.append(
                    EnqOp(queue=item.node.attr, source=operand(item.operands[0]))
                )
                io_events.append(
                    IOEvent(
                        cycle=item.cycle,
                        io_index=item.node.io_index,
                        kind=OpKind.SEND,
                        queue=item.node.attr,
                    )
                )
            elif item.kind == "move":
                instr.move = MoveOp(
                    dest=assignment.dest(item_id),
                    source=operand(item.operands[0]),
                )
            else:  # pragma: no cover
                raise ValueError(f"unknown item kind {item.kind}")

        demands.sort(key=lambda d: d.cycle)
        io_events.sort(key=lambda e: (e.cycle, e.io_index))
        return ScheduledBlock(
            block_id=block_id,
            instructions=instructions,
            length=schedule.length,
            addr_demands=demands,
            io_events=io_events,
        )


def _attach_loop_marks(items: list[ScheduledItem]) -> None:
    """Decorate first/last body instructions with loop begin/end marks
    (display fidelity; the simulator walks the structured tree)."""
    for item in items:
        if isinstance(item, ScheduledLoop):
            _attach_loop_marks(item.body)
            first = _first_block(item.body)
            last = _last_block(item.body)
            if first is not None and first.instructions:
                first.instructions[0].control.insert(
                    0, LoopMark(LoopMarkKind.BEGIN, item.loop_id)
                )
            if last is not None and last.instructions:
                last.instructions[-1].control.append(
                    LoopMark(LoopMarkKind.END, item.loop_id)
                )


def _first_block(items: list[ScheduledItem]) -> ScheduledBlock | None:
    for item in items:
        if isinstance(item, ScheduledBlock):
            return item
        found = _first_block(item.body)
        if found is not None:
            return found
    return None


def _last_block(items: list[ScheduledItem]) -> ScheduledBlock | None:
    for item in reversed(items):
        if isinstance(item, ScheduledBlock):
            return item
        found = _last_block(item.body)
        if found is not None:
            return found
    return None


def generate_cell_code(ir: CellProgramIR, config: CellConfig) -> CellCode:
    """Generate Warp-cell microcode for a lowered program."""
    return CellCodeGenerator(ir, config).generate()
