"""Warp-array (cell) code generation: scheduling, register allocation and
microcode emission (Section 6.2)."""

from .emit import (
    AddressDemand,
    CellCode,
    IOEvent,
    ScheduledBlock,
    ScheduledItem,
    ScheduledLoop,
    generate_cell_code,
)
from .isa import (
    AddressSource,
    AluOp,
    DeqOp,
    EnqOp,
    Lit,
    LoopMark,
    LoopMarkKind,
    MemOp,
    MicroInstr,
    MoveOp,
    MpyOp,
    Operand,
    Reg,
)
from .layout import MemoryLayout, layout_memory
from .pipeline import LoopPipelineStats, pipelining_report, resource_min_interval
from .regalloc import RegisterAssignment, allocate_registers
from .schedule import BlockSchedule, schedule_block

__all__ = [
    "AddressDemand",
    "AddressSource",
    "AluOp",
    "BlockSchedule",
    "CellCode",
    "DeqOp",
    "EnqOp",
    "IOEvent",
    "Lit",
    "LoopMark",
    "LoopMarkKind",
    "MemOp",
    "MemoryLayout",
    "MicroInstr",
    "LoopPipelineStats",
    "MoveOp",
    "MpyOp",
    "Operand",
    "Reg",
    "RegisterAssignment",
    "ScheduledBlock",
    "ScheduledItem",
    "ScheduledLoop",
    "allocate_registers",
    "generate_cell_code",
    "layout_memory",
    "pipelining_report",
    "resource_min_interval",
    "schedule_block",
]
