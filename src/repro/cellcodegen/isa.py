"""The Warp cell micro-instruction set.

Each micro-instruction is horizontal: one operation per functional unit
per cycle, all controlled by separate fields (the real machine used
micro-words of over 200 bits, Section 2.4).  Fields:

* ``alu`` — the floating-point adder/ALU (adds, subtracts, compares,
  boolean operations, select);
* ``mpy`` — the floating-point multiplier (multiply, divide);
* ``mem`` — up to two data-memory references;
* ``io`` — queue operations (dequeue from a neighbour queue into a
  register; enqueue a register/literal to a neighbour queue);
* ``move`` — one register-to-register (or literal-to-register) transfer
  over the crossbar;
* ``control`` — loop begin/end markers interpreted by the sequencer in
  parallel with the datapath (loop branches cost no extra cycle).

Operands are registers or literals; memory addresses are either literals
(compile-time constant) or dequeued from the address path fed by the IU
(``AddressSource.QUEUE``) — Warp cells have no integer datapath.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Union

from ..ir.dag import OpKind, QueueRef


@dataclass(frozen=True)
class Reg:
    """A physical register."""

    index: int

    def __str__(self) -> str:
        return f"r{self.index}"


@dataclass(frozen=True)
class Lit:
    """A literal operand (one literal field per instruction)."""

    value: float

    def __str__(self) -> str:
        return repr(self.value)


Operand = Union[Reg, Lit]


class AddressSource(enum.Enum):
    """Where a memory reference gets its address."""

    LITERAL = "literal"  # compile-time constant address
    QUEUE = "queue"      # next value from the IU address path


@dataclass(frozen=True)
class AluOp:
    """An operation on the adder/ALU unit."""

    op: OpKind
    dest: Reg
    sources: tuple[Operand, ...]


@dataclass(frozen=True)
class MpyOp:
    """An operation on the multiplier unit."""

    op: OpKind  # FMUL or FDIV
    dest: Reg
    sources: tuple[Operand, ...]


@dataclass(frozen=True)
class MemOp:
    """One data-memory reference."""

    is_load: bool
    address_source: AddressSource
    address: int | None  # literal address; None when from the queue
    reg: Reg | None      # destination (load) or source (store)
    store_value: Operand | None = None  # source operand for stores

    def __str__(self) -> str:
        addr = "@q" if self.address_source is AddressSource.QUEUE else f"@{self.address}"
        if self.is_load:
            return f"load {addr} -> {self.reg}"
        return f"store {self.store_value} -> {addr}"


@dataclass(frozen=True)
class DeqOp:
    """Dequeue the next item of an input queue into a register."""

    queue: QueueRef
    dest: Reg

    def __str__(self) -> str:
        return f"deq {self.queue} -> {self.dest}"


@dataclass(frozen=True)
class EnqOp:
    """Enqueue an operand onto an output queue."""

    queue: QueueRef
    source: Operand

    def __str__(self) -> str:
        return f"enq {self.source} -> {self.queue}"


@dataclass(frozen=True)
class MoveOp:
    """A register/literal transfer over the crossbar."""

    dest: Reg
    source: Operand

    def __str__(self) -> str:
        return f"move {self.source} -> {self.dest}"


class LoopMarkKind(enum.Enum):
    BEGIN = "begin"
    END = "end"


@dataclass(frozen=True)
class LoopMark:
    """Sequencer annotation: this instruction begins/ends loop ``loop_id``.

    ``END`` marks consume one loop-control signal from the IU each time
    they execute (continue vs. exit, Section 6.3.1).
    """

    kind: LoopMarkKind
    loop_id: int


@dataclass
class MicroInstr:
    """One horizontal micro-instruction (one cycle)."""

    alu: AluOp | None = None
    mpy: MpyOp | None = None
    mem: list[MemOp] = field(default_factory=list)
    deqs: list[DeqOp] = field(default_factory=list)
    enqs: list[EnqOp] = field(default_factory=list)
    move: MoveOp | None = None
    #: Ordered innermost-first.
    control: list[LoopMark] = field(default_factory=list)

    def is_nop(self) -> bool:
        return not (
            self.alu
            or self.mpy
            or self.mem
            or self.deqs
            or self.enqs
            or self.move
            or self.control
        )

    def __str__(self) -> str:
        parts: list[str] = []
        if self.alu:
            srcs = ", ".join(str(s) for s in self.alu.sources)
            parts.append(f"alu.{self.alu.op.value} {srcs} -> {self.alu.dest}")
        if self.mpy:
            srcs = ", ".join(str(s) for s in self.mpy.sources)
            parts.append(f"mpy.{self.mpy.op.value} {srcs} -> {self.mpy.dest}")
        parts.extend(str(m) for m in self.mem)
        parts.extend(str(d) for d in self.deqs)
        parts.extend(str(e) for e in self.enqs)
        if self.move:
            parts.append(str(self.move))
        for mark in self.control:
            parts.append(f"{mark.kind.value}:{mark.loop_id}")
        return "; ".join(parts) if parts else "nop"


#: DAG ops executed by the ALU field.
ALU_OPS = frozenset(
    {
        OpKind.FADD,
        OpKind.FSUB,
        OpKind.FNEG,
        OpKind.CMP_EQ,
        OpKind.CMP_NE,
        OpKind.CMP_LT,
        OpKind.CMP_LE,
        OpKind.CMP_GT,
        OpKind.CMP_GE,
        OpKind.BAND,
        OpKind.BOR,
        OpKind.BNOT,
        OpKind.SELECT,
    }
)

#: DAG ops executed by the multiplier field.
MPY_OPS = frozenset({OpKind.FMUL, OpKind.FDIV})
