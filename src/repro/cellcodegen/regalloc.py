"""Register allocation for scheduled blocks.

Scalar cell variables are *pinned*: each gets a dedicated register for
the whole program (the cell's two 32-word register files give 64
registers — plenty for W2-scale programs; under pressure the driver
demotes scalars to memory and recompiles).  Temporaries (values flowing
between operations inside one block) are allocated by linear scan over
the block schedule.

A freed register may be re-assigned to a writer issuing at or after the
old value's last read: the 5-stage writeback then lands strictly after
the read, so the old consumer always sees the old value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RegisterPressureError
from ..ir.dag import Dag, OpKind
from .isa import Lit, Operand, Reg
from .schedule import BlockSchedule, SchedItem

#: Item kinds that define a register value.
_PRODUCER_KINDS = frozenset({"alu", "mpy", "deq", "move"})


@dataclass
class RegisterAssignment:
    """Physical destination registers for one block's schedule."""

    dests: dict[int, Reg] = field(default_factory=dict)  # item_id -> Reg
    max_live: int = 0

    def dest(self, item_id: int) -> Reg:
        return self.dests[item_id]


def _produces_value(item: SchedItem) -> bool:
    if item.kind in _PRODUCER_KINDS:
        return True
    if item.kind == "mem":
        assert item.node is not None
        return item.node.op is OpKind.LOAD
    return False


def _operand_producer(
    operand_id: int, schedule: BlockSchedule, dag: Dag
) -> int | None:
    """Map an operand reference to the item that produces it (None for
    CONST/READ leaves)."""
    if operand_id < 0:  # synthetic move reference
        return -operand_id - 1
    node = dag.nodes[operand_id]
    if node.op in (OpKind.CONST, OpKind.READ):
        return None
    return schedule.node_to_item.get(operand_id)


def allocate_registers(
    schedule: BlockSchedule,
    dag: Dag,
    pinned: dict[str, Reg],
    temp_pool: list[int],
) -> RegisterAssignment:
    """Assign physical registers to every value-producing item.

    ``pinned`` maps scalar variable names to their dedicated registers;
    ``temp_pool`` lists the physical register indices available for
    temporaries.  Raises :class:`RegisterPressureError` when the pool is
    exhausted.
    """
    result = RegisterAssignment()

    # Last read cycle per producing item.
    last_use: dict[int, int] = {}
    for item in schedule.items.values():
        for operand_id in item.operands:
            producer = _operand_producer(operand_id, schedule, dag)
            if producer is not None and producer != item.item_id:
                last_use[producer] = max(last_use.get(producer, -1), item.cycle)

    producers = sorted(
        (item for item in schedule.items.values() if _produces_value(item)),
        key=lambda item: (item.cycle, item.item_id),
    )

    free = sorted(temp_pool, reverse=True)
    active: list[tuple[int, int, int]] = []  # (last_use, reg, item_id)
    live = 0
    for item in producers:
        if item.pinned_var is not None:
            result.dests[item.item_id] = pinned[item.pinned_var]
            continue
        # Expire temporaries whose last read is not after this issue.
        still_active = []
        for use, reg, owner in active:
            if use <= item.cycle:
                free.append(reg)
            else:
                still_active.append((use, reg, owner))
        active = still_active
        if not free:
            raise RegisterPressureError(
                needed=len(active) + len(pinned) + 1,
                available=len(temp_pool) + len(pinned),
            )
        reg = free.pop()
        result.dests[item.item_id] = Reg(reg)
        end = last_use.get(item.item_id, item.cycle)
        active.append((end, reg, item.item_id))
        live = max(live, len(active))
    result.max_live = live + len(pinned)
    return result


def resolve_operand(
    operand_id: int,
    schedule: BlockSchedule,
    dag: Dag,
    pinned: dict[str, Reg],
    assignment: RegisterAssignment,
) -> Operand:
    """Resolve an operand reference to a physical register or literal."""
    if operand_id < 0:
        return assignment.dest(-operand_id - 1)
    node = dag.nodes[operand_id]
    if node.op is OpKind.CONST:
        return Lit(float(node.attr))  # type: ignore[arg-type]
    if node.op is OpKind.READ:
        return pinned[node.attr]  # type: ignore[index]
    item_id = schedule.node_to_item[operand_id]
    return assignment.dest(item_id)
