"""Human-readable microcode listings."""

from __future__ import annotations

from .emit import CellCode, ScheduledBlock, ScheduledItem, ScheduledLoop


def format_cell_code(code: CellCode) -> str:
    """Render the cell microcode as an indented listing with loop
    structure, one line per micro-instruction."""
    lines: list[str] = []
    _format_items(code.items, lines, indent="")
    summary = (
        f"; {code.n_instructions} micro-instructions, "
        f"{code.total_cycles} cycles/cell, "
        f"{len(code.pinned)} pinned registers, "
        f"{code.layout.total_words} memory words"
    )
    return "\n".join([summary, *lines])


def _format_items(
    items: list[ScheduledItem], lines: list[str], indent: str
) -> None:
    for item in items:
        if isinstance(item, ScheduledBlock):
            lines.append(f"{indent}block b{item.block_id}:")
            for cycle, instr in enumerate(item.instructions):
                lines.append(f"{indent}  {cycle:4d}: {instr}")
        else:
            assert isinstance(item, ScheduledLoop)
            lines.append(
                f"{indent}loop L{item.loop_id} "
                f"({item.var} = {item.start}, step {item.step}, "
                f"{item.trip} iterations):"
            )
            _format_items(item.body, lines, indent + "    ")
