"""Cell data-memory layout.

Arrays (and scalars demoted from registers under pressure) get base
addresses in the 4K-word cell memory.  Layout is first-fit in declaration
order; exceeding the memory raises :class:`MemoryOverflowError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import MemoryOverflowError
from ..config import CellConfig


@dataclass
class MemoryLayout:
    """Base addresses of every memory-resident object on a cell."""

    bases: dict[str, int] = field(default_factory=dict)
    sizes: dict[str, int] = field(default_factory=dict)
    total_words: int = 0

    def base(self, name: str) -> int:
        return self.bases[name]

    def contains(self, name: str) -> bool:
        return name in self.bases


def layout_memory(
    arrays: dict[str, int],
    memory_scalars: set[str],
    config: CellConfig,
) -> MemoryLayout:
    """Assign base addresses to ``arrays`` plus one word per demoted
    scalar.  Deterministic: arrays in insertion order, scalars sorted."""
    layout = MemoryLayout()
    cursor = 0
    items = list(arrays.items()) + [(name, 1) for name in sorted(memory_scalars)]
    for name, size in items:
        layout.bases[name] = cursor
        layout.sizes[name] = size
        cursor += size
    layout.total_words = cursor
    if cursor > config.memory_words:
        raise MemoryOverflowError(
            f"cell program needs {cursor} words of data memory; the cell "
            f"has {config.memory_words}"
        )
    return layout
