"""Errors raised by the compiler back end and the machine simulator.

Front-end (lexical/syntactic/semantic) errors live in
:mod:`repro.lang.errors`; everything after IR construction reports
through the classes below.
"""

from __future__ import annotations


class CompilationError(Exception):
    """Base class for back-end compilation failures."""


class MappingError(CompilationError):
    """The program cannot be mapped onto the skewed computation model
    (e.g. bidirectional communication, Section 5.1.1)."""


class RegisterPressureError(CompilationError):
    """A schedule needs more live registers than the cell provides."""

    def __init__(self, needed: int, available: int):
        self.needed = needed
        self.available = available
        super().__init__(
            f"schedule needs {needed} registers, only {available} available"
        )


class MemoryOverflowError(CompilationError):
    """Cell data memory (4K words) exhausted by the program's arrays."""


class QueueOverflowError(CompilationError):
    """A channel queue would exceed its capacity.

    Section 6.2.2: "The queue overflow problem is currently only detected
    and reported."  We follow the paper: report, with the required size.
    """

    def __init__(self, channel: str, required: int, capacity: int):
        self.channel = channel
        self.required = required
        self.capacity = capacity
        super().__init__(
            f"channel {channel} needs a queue of {required} words "
            f"(capacity {capacity}); re-block the program or enlarge the "
            "queues in WarpConfig"
        )


class IUDeadlineError(CompilationError):
    """The IU cannot produce an address by its deadline even via the
    table-memory escape (Section 6.3.2)."""


class TableOverflowError(CompilationError):
    """The IU's 32K sequential table memory is exhausted."""


class SimulationError(Exception):
    """Base class for run-time failures detected by the simulator."""


class QueueUnderflowError(SimulationError):
    """A cell dequeued from an empty queue — the compiler's skew or the
    IU schedule failed to guarantee data availability."""


class QueueCapacityError(SimulationError):
    """A queue exceeded its capacity at run time."""


class HostDataError(SimulationError):
    """The host feeder was asked for data it does not have."""
