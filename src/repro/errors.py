"""Errors raised by the compiler back end and the machine simulator.

Front-end (lexical/syntactic/semantic) errors live in
:mod:`repro.lang.errors`; everything after IR construction reports
through the classes below.
"""

from __future__ import annotations


class CompilationError(Exception):
    """Base class for back-end compilation failures."""


class MappingError(CompilationError):
    """The program cannot be mapped onto the skewed computation model
    (e.g. bidirectional communication, Section 5.1.1)."""


class RegisterPressureError(CompilationError):
    """A schedule needs more live registers than the cell provides."""

    def __init__(self, needed: int, available: int):
        self.needed = needed
        self.available = available
        super().__init__(
            f"schedule needs {needed} registers, only {available} available"
        )


class MemoryOverflowError(CompilationError):
    """Cell data memory (4K words) exhausted by the program's arrays."""


class QueueOverflowError(CompilationError):
    """A channel queue would exceed its capacity.

    Section 6.2.2: "The queue overflow problem is currently only detected
    and reported."  We follow the paper: report, with the required size.
    """

    def __init__(self, channel: str, required: int, capacity: int):
        self.channel = channel
        self.required = required
        self.capacity = capacity
        super().__init__(
            f"channel {channel} needs a queue of {required} words "
            f"(capacity {capacity}); re-block the program or enlarge the "
            "queues in WarpConfig"
        )


class VerificationError(CompilationError):
    """The independent schedule verifier rejected the emitted artifacts.

    Carries the full :class:`~repro.verify.VerificationReport`; the
    message shows the first few diagnostics.
    """

    def __init__(self, report):
        self.report = report
        super().__init__(
            f"schedule verification failed with "
            f"{len(report.diagnostics)} diagnostic(s): {report.summary()}"
        )


class IUDeadlineError(CompilationError):
    """The IU cannot produce an address by its deadline even via the
    table-memory escape (Section 6.3.2)."""


class TableOverflowError(CompilationError):
    """The IU's 32K sequential table memory is exhausted."""


class SimulationError(Exception):
    """Base class for run-time failures detected by the simulator."""


class QueueUnderflowError(SimulationError):
    """A cell dequeued from an empty queue — the compiler's skew or the
    IU schedule failed to guarantee data availability."""


class QueueCapacityError(SimulationError):
    """A queue exceeded its capacity at run time."""


class HostDataError(SimulationError):
    """The host feeder was asked for data it does not have."""


# Fault taxonomy ----------------------------------------------------------
#
# The runtime detection/recovery layer (:mod:`repro.faults`,
# :mod:`repro.exec.batch`) classifies every failure it sees into one of
# three families.  The classification drives the batch engine's retry
# policy: transient faults are retried with backoff, fatal faults fail
# the item immediately, and detected corruption is retried (the fault
# that caused it may have been transient) but never silently returned.


class FaultError(SimulationError):
    """Base class for failures raised by the fault detection layer."""


class TransientFault(FaultError):
    """A failure that a retry may clear (a crashed or hung worker, an
    injected transient fault).  The batch engine retries these up to
    ``max_retries`` times with backoff."""


class FatalFault(FaultError):
    """A failure that retrying cannot clear (a structural violation
    such as a cell running past its watchdog deadline on every
    attempt).  The batch engine fails the item immediately."""


class SilentCorruptionDetected(FaultError):
    """An integrity check caught data that would otherwise have been
    silently wrong: a queue word whose stored bits no longer match the
    bits that were enqueued, or an inter-cell stream whose item count
    diverged from the compiler's static send/receive schedule."""


class CellHangError(FatalFault):
    """A cell's watchdog deadline expired: the cell ran more than
    ``WarpConfig.watchdog_slack`` cycles past its statically predicted
    completion cycle (a stalled or hung cell, caught as a structured
    diagnostic instead of a silent timing corruption)."""


class WorkerCrashError(TransientFault):
    """A batch worker process died while running an item."""


class ItemTimeoutError(TransientFault):
    """A batch item exceeded its per-item timeout (a hung worker or a
    runaway simulation)."""
