"""Lowering host I/O sequences to transfer descriptors.

"The I/O processors in the Warp host must be programmed to supply input
in the exact sequence as the data is used in the Warp cells"
(Section 2.2).  The item-by-item sequence of
:class:`~repro.hostcodegen.io_program.HostProgram` is what must happen;
real I/O processors are programmed with *block transfers* — (base,
stride, count) descriptors — not per-word scripts.

This module compresses each channel's sequence into descriptors:

* ``BlockTransfer`` — ``count`` words from ``array`` starting at
  ``base`` with constant ``stride`` (stride 0 = a repeated element);
* ``LiteralRun`` — ``count`` copies of a literal (the IU synthesises
  these);
* ``Scatter`` — an irregular remainder kept as explicit indices.

A round-trip check (descriptor expansion == original sequence) is part
of the test suite, and :func:`transfer_statistics` feeds the
decomposition report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from ..lang.ast import Channel
from .io_program import HostProgram, HostValueRef


@dataclass(frozen=True)
class BlockTransfer:
    """``count`` words of ``array`` from ``base`` stepping ``stride``."""

    array: str
    base: int
    stride: int
    count: int

    def expand(self) -> Iterator[HostValueRef]:
        for k in range(self.count):
            yield HostValueRef(self.array, self.base + k * self.stride, None)


@dataclass(frozen=True)
class LiteralRun:
    """``count`` copies of ``value``."""

    value: float
    count: int

    def expand(self) -> Iterator[HostValueRef]:
        for _ in range(self.count):
            yield HostValueRef(None, None, self.value)


@dataclass(frozen=True)
class Scatter:
    """An irregular access pattern kept explicit."""

    array: str
    indices: tuple[int, ...]

    def expand(self) -> Iterator[HostValueRef]:
        for index in self.indices:
            yield HostValueRef(self.array, index, None)


TransferOp = Union[BlockTransfer, LiteralRun, Scatter]


@dataclass
class HostTransferProgram:
    """One channel's feed (or collection) as transfer descriptors."""

    channel: Channel
    ops: list[TransferOp] = field(default_factory=list)

    @property
    def total_words(self) -> int:
        return sum(
            op.count if not isinstance(op, Scatter) else len(op.indices)
            for op in self.ops
        )

    def expand(self) -> Iterator[HostValueRef]:
        for op in self.ops:
            yield from op.expand()


def _flush_run(
    ops: list[TransferOp], array: str, indices: list[int]
) -> None:
    """Emit the longest-stride-run decomposition of ``indices``."""
    start = 0
    n = len(indices)
    while start < n:
        if start + 1 == n:
            ops.append(BlockTransfer(array, indices[start], 0, 1))
            start += 1
            continue
        stride = indices[start + 1] - indices[start]
        end = start + 1
        while end + 1 < n and indices[end + 1] - indices[end] == stride:
            end += 1
        count = end - start + 1
        if count >= 2 or stride == 0:
            ops.append(BlockTransfer(array, indices[start], stride, count))
            start = end + 1
        else:
            ops.append(BlockTransfer(array, indices[start], 0, 1))
            start += 1


def compress_sequence(
    channel: Channel, refs: list[HostValueRef]
) -> HostTransferProgram:
    """Compress an item sequence into transfer descriptors."""
    program = HostTransferProgram(channel=channel)
    pending_array: str | None = None
    pending_indices: list[int] = []
    pending_literal: float | None = None
    literal_count = 0

    def flush_array() -> None:
        nonlocal pending_array, pending_indices
        if pending_array is not None and pending_indices:
            _flush_run(program.ops, pending_array, pending_indices)
        pending_array = None
        pending_indices = []

    def flush_literal() -> None:
        nonlocal pending_literal, literal_count
        if literal_count:
            program.ops.append(LiteralRun(pending_literal, literal_count))
        pending_literal = None
        literal_count = 0

    for ref in refs:
        if ref.is_literal:
            flush_array()
            if pending_literal is not None and ref.literal != pending_literal:
                flush_literal()
            pending_literal = ref.literal
            literal_count += 1
        else:
            flush_literal()
            if ref.array != pending_array:
                flush_array()
                pending_array = ref.array
            pending_indices.append(ref.flat_index)
    flush_array()
    flush_literal()
    return program


def lower_input_program(
    host: HostProgram, channel: Channel
) -> HostTransferProgram:
    """The feed of one channel as transfer descriptors."""
    return compress_sequence(channel, list(host.input_sequence(channel)))


def lower_output_program(
    host: HostProgram, channel: Channel
) -> HostTransferProgram:
    """The collection of one channel as transfer descriptors (discards
    become literal runs of 0.0 — the I/O processor still clocks them)."""
    refs = [
        HostValueRef(b.array, b.flat_index, None)
        if not b.is_discard
        else HostValueRef(None, None, 0.0)
        for b in host.output_bindings(channel)
    ]
    return compress_sequence(channel, refs)


@dataclass(frozen=True)
class TransferStatistics:
    """How compactly a channel's sequence was expressed."""

    words: int
    descriptors: int

    @property
    def compression(self) -> float:
        return self.words / max(self.descriptors, 1)


def transfer_statistics(program: HostTransferProgram) -> TransferStatistics:
    return TransferStatistics(
        words=program.total_words, descriptors=len(program.ops)
    )
