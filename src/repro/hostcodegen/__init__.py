"""Host I/O processor code generation."""

from .io_program import HostBinding, HostProgram, HostValueRef, generate_host_program
from .lower import (
    BlockTransfer,
    HostTransferProgram,
    LiteralRun,
    Scatter,
    compress_sequence,
    lower_input_program,
    lower_output_program,
    transfer_statistics,
)

__all__ = [
    "BlockTransfer",
    "HostBinding",
    "HostProgram",
    "HostTransferProgram",
    "HostValueRef",
    "LiteralRun",
    "Scatter",
    "compress_sequence",
    "generate_host_program",
    "lower_input_program",
    "lower_output_program",
    "transfer_statistics",
]
