"""Host I/O processor programs (Sections 2.2, 4.2, 6.1).

"The I/O processors in the Warp host must be programmed to supply input
in the exact sequence as the data is used in the Warp cells."  The host
code generator derives that sequence from the ``external`` arguments of
the first cell's receives, and symmetrically derives where to store each
value the last cell sends.

The program is kept in loop-tree form (mirroring the cell schedule) and
expanded lazily: :meth:`HostProgram.input_sequence` yields, in order,
what to feed into cell 0's queues, and :meth:`HostProgram.output_bindings`
yields where each last-cell output lands in host memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from ..cellcodegen.emit import CellCode, ScheduledBlock, ScheduledLoop
from ..errors import HostDataError
from ..ir.builder import IOStatement
from ..ir.dag import OpKind
from ..lang.ast import Channel, Direction


@dataclass(frozen=True)
class HostValueRef:
    """One input item: a host array element or a literal the IU
    synthesises."""

    array: str | None
    flat_index: int | None
    literal: float | None

    @property
    def is_literal(self) -> bool:
        return self.literal is not None


@dataclass(frozen=True)
class HostBinding:
    """One output item: the host location to store into (or discard)."""

    array: str | None
    flat_index: int | None

    @property
    def is_discard(self) -> bool:
        return self.array is None


class HostProgram:
    """Input-supply and output-collection sequences for one module."""

    def __init__(self, code: CellCode, io_statements: list[IOStatement]):
        self._code = code
        self._io = {stmt.io_index: stmt for stmt in io_statements}
        self._validate()

    def _validate(self) -> None:
        """Every receive-from-left must name its host source — cell 0
        executes the same statement as everyone else, and the host must
        know what to feed it."""
        for stmt in self._io.values():
            if (
                stmt.kind is OpKind.RECV
                and stmt.direction is Direction.LEFT
                and stmt.external_array is None
                and stmt.external_literal is None
            ):
                raise HostDataError(
                    f"receive statement {stmt.io_index} has no external "
                    "source; the host cannot feed the first cell"
                )

    # Sequences ------------------------------------------------------------

    def input_sequence(self, channel: Channel) -> Iterator[HostValueRef]:
        """What the host feeds into cell 0's ``channel`` queue, in order."""
        yield from self._walk(
            kind=OpKind.RECV, direction=Direction.LEFT, channel=channel
        )

    def output_bindings(self, channel: Channel) -> Iterator[HostBinding]:
        """Where the last cell's sends on ``channel`` land, in order."""
        for ref in self._walk(
            kind=OpKind.SEND, direction=Direction.RIGHT, channel=channel
        ):
            yield HostBinding(array=ref.array, flat_index=ref.flat_index)

    def input_count(self, channel: Channel) -> int:
        return sum(1 for _ in self.input_sequence(channel))

    def output_count(self, channel: Channel) -> int:
        return sum(1 for _ in self.output_bindings(channel))

    # Walk -------------------------------------------------------------------

    def _walk(
        self, kind: OpKind, direction: Direction, channel: Channel
    ) -> Iterator[HostValueRef]:
        env: dict[str, int] = {}

        def visit(items) -> Iterator[HostValueRef]:
            for item in items:
                if isinstance(item, ScheduledBlock):
                    for event in item.io_events:
                        if event.kind is not kind:
                            continue
                        if (
                            event.queue.direction is not direction
                            or event.queue.channel is not channel
                        ):
                            continue
                        yield self._resolve(self._io[event.io_index], env)
                else:
                    assert isinstance(item, ScheduledLoop)
                    for i in range(item.trip):
                        env[item.var] = item.start + i * item.step
                        yield from visit(item.body)
                    env.pop(item.var, None)

        yield from visit(self._code.items)

    @staticmethod
    def _resolve(stmt: IOStatement, env: dict[str, int]) -> HostValueRef:
        if stmt.external_literal is not None:
            return HostValueRef(None, None, stmt.external_literal)
        if stmt.external_array is not None:
            assert stmt.external_index is not None
            return HostValueRef(
                stmt.external_array, stmt.external_index.evaluate(env), None
            )
        return HostValueRef(None, None, None)


def generate_host_program(
    code: CellCode, io_statements: list[IOStatement]
) -> HostProgram:
    """Build the host I/O program for scheduled cell code."""
    return HostProgram(code, io_statements)
